//! # cc-env — congestion-control simulator
//!
//! A monitor-interval (MI) environment in the style used to train the
//! paper's Aurora controller: a sender picks a rate multiplier each MI
//! (from ½× to 2×, discretized), packets traverse a bottleneck link with
//! a finite queue, and the sender observes per-MI statistics of latency,
//! delivery, and loss.
//!
//! The link model is fluid (packet-level in expectation): per MI, arrivals
//! `rate·dt` enter a FIFO backlog drained at the capacity; queueing delay
//! is `backlog/capacity` on top of the base RTT and overflow beyond the
//! queue limit is dropped and counted as loss. Capacity follows one of
//! several [`link::LinkPattern`]s — stable, step change, periodic
//! cross-traffic (the paper's Fig. 9 workload), or volatile.

#![forbid(unsafe_code)]

pub mod link;
pub mod observation;
pub mod sim;

pub use link::{CapacityProcess, LinkPattern};
pub use observation::CcObservation;
pub use sim::{CcSimulator, LinkConfig, MiStats};

/// Monitor interval duration in seconds.
pub const MI_SECONDS: f32 = 0.1;
/// Default history length of the controller observation, in MIs.
pub const HISTORY: usize = 10;
/// Discrete rate multipliers available to the controller (paper: "a
/// discretized adjustment to the current data transmission rate (from ½×
/// to 2×)").
pub const RATE_MULTIPLIERS: [f32; 9] = [0.5, 0.65, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0];

/// Number of controller actions.
pub const ACTIONS: usize = RATE_MULTIPLIERS.len();
