//! Bottleneck capacity processes.
//!
//! Each pattern produces a per-MI capacity series (Mbps). The
//! `CrossTraffic` pattern reproduces the paper's Fig. 9 workload: a
//! steady link whose available capacity periodically collapses while a
//! competing flow is active, then recovers.

use crate::MI_SECONDS;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Shapes of available-capacity evolution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkPattern {
    /// Constant capacity with small jitter.
    Stable {
        /// Nominal capacity, Mbps.
        mbps: f32,
    },
    /// Capacity switches between two levels at a fixed period.
    StepChange {
        /// High level, Mbps.
        high: f32,
        /// Low level, Mbps.
        low: f32,
        /// Seconds between switches.
        period_s: f32,
    },
    /// Periodic competing flow: capacity dips while cross traffic is on.
    CrossTraffic {
        /// Capacity with no competitor, Mbps.
        mbps: f32,
        /// Fraction of capacity taken by the competitor while active.
        cross_fraction: f32,
        /// Competitor on-time per cycle, seconds.
        on_s: f32,
        /// Competitor off-time per cycle, seconds.
        off_s: f32,
    },
    /// AR(1) random-walk capacity.
    Volatile {
        /// Mean capacity, Mbps.
        mbps: f32,
        /// Innovation scale, Mbps.
        sigma: f32,
    },
}

/// A realized capacity series, one sample per monitor interval.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CapacityProcess {
    /// Capacity per MI, Mbps.
    pub mbps: Vec<f32>,
    /// Pattern that generated the series.
    pub pattern: LinkPattern,
}

impl CapacityProcess {
    /// Realizes `mis` monitor intervals of the pattern.
    pub fn generate(pattern: LinkPattern, mis: usize, rng: &mut StdRng) -> Self {
        assert!(mis > 0, "capacity process needs at least one MI");
        let mut mbps = Vec::with_capacity(mis);
        match pattern {
            LinkPattern::Stable { mbps: c } => {
                for _ in 0..mis {
                    let jitter: f32 = rng.random_range(-0.02..0.02);
                    mbps.push((c * (1.0 + jitter)).max(0.1));
                }
            }
            LinkPattern::StepChange { high, low, period_s } => {
                let period_mis = (period_s / MI_SECONDS).round().max(1.0) as usize;
                for i in 0..mis {
                    let phase = (i / period_mis) % 2;
                    mbps.push(if phase == 0 { high } else { low });
                }
            }
            LinkPattern::CrossTraffic { mbps: c, cross_fraction, on_s, off_s } => {
                let on_mis = (on_s / MI_SECONDS).round().max(1.0) as usize;
                let off_mis = (off_s / MI_SECONDS).round().max(1.0) as usize;
                let cycle = on_mis + off_mis;
                for i in 0..mis {
                    let in_cycle = i % cycle;
                    let jitter: f32 = rng.random_range(-0.02..0.02);
                    // Competitor active first, then off.
                    let avail = if in_cycle < on_mis { c * (1.0 - cross_fraction) } else { c };
                    mbps.push((avail * (1.0 + jitter)).max(0.1));
                }
            }
            LinkPattern::Volatile { mbps: c, sigma } => {
                let mut level = c;
                for _ in 0..mis {
                    let innovation: f32 = rng.random_range(-sigma..sigma);
                    level = (0.9 * level + 0.1 * c + innovation).clamp(0.2 * c, 2.0 * c);
                    mbps.push(level);
                }
            }
        }
        Self { mbps, pattern }
    }

    /// Seeded convenience constructor.
    pub fn generate_seeded(pattern: LinkPattern, mis: usize, seed: u64) -> Self {
        Self::generate(pattern, mis, &mut StdRng::seed_from_u64(seed))
    }

    /// Capacity at a given MI, clamped to the series end.
    pub fn at(&self, mi: usize) -> f32 {
        self.mbps[mi.min(self.mbps.len() - 1)]
    }

    /// Number of MIs realized.
    pub fn len(&self) -> usize {
        self.mbps.len()
    }

    /// True if no MIs were realized (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.mbps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_stays_near_nominal() {
        let p = CapacityProcess::generate_seeded(LinkPattern::Stable { mbps: 5.0 }, 500, 1);
        assert!(p.mbps.iter().all(|&c| (4.8..=5.2).contains(&c)));
    }

    #[test]
    fn step_change_alternates_levels() {
        let p = CapacityProcess::generate_seeded(
            LinkPattern::StepChange { high: 8.0, low: 2.0, period_s: 1.0 },
            40,
            1,
        );
        // 1 s = 10 MIs per phase.
        assert_eq!(p.at(0), 8.0);
        assert_eq!(p.at(10), 2.0);
        assert_eq!(p.at(20), 8.0);
    }

    #[test]
    fn cross_traffic_dips_while_competitor_active() {
        let p = CapacityProcess::generate_seeded(
            LinkPattern::CrossTraffic { mbps: 10.0, cross_fraction: 0.5, on_s: 2.0, off_s: 3.0 },
            100,
            3,
        );
        assert!(p.at(5) < 6.0, "competitor on at MI 5: {}", p.at(5));
        assert!(p.at(30) > 9.0, "competitor off at MI 30: {}", p.at(30));
    }

    #[test]
    fn volatile_wanders_but_stays_bounded() {
        let p = CapacityProcess::generate_seeded(
            LinkPattern::Volatile { mbps: 6.0, sigma: 1.0 },
            1000,
            5,
        );
        assert!(p.mbps.iter().all(|&c| (1.2..=12.0).contains(&c)));
        let mean = p.mbps.iter().sum::<f32>() / p.len() as f32;
        let var = p.mbps.iter().map(|c| (c - mean) * (c - mean)).sum::<f32>() / p.len() as f32;
        assert!(var.sqrt() > 0.3, "volatile link must actually vary");
    }

    #[test]
    fn at_clamps_past_the_end() {
        let p = CapacityProcess::generate_seeded(LinkPattern::Stable { mbps: 1.0 }, 10, 1);
        assert_eq!(p.at(10_000), p.mbps[9]);
    }
}
