//! The sender/bottleneck simulation stepped per monitor interval.

use crate::link::CapacityProcess;
use crate::observation::CcObservation;
use crate::{ACTIONS, MI_SECONDS, RATE_MULTIPLIERS};
use serde::{Deserialize, Serialize};

/// Static link parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Propagation RTT with an empty queue, milliseconds.
    pub base_rtt_ms: f32,
    /// Queue limit expressed in seconds of the *nominal* capacity
    /// (1.0 ≈ one bandwidth-delay product of buffering per second).
    pub queue_s: f32,
    /// Nominal capacity used to size the queue, Mbps.
    pub nominal_mbps: f32,
    /// Multiplicative measurement jitter on reported latency (e.g. 0.015
    /// for ±1.5%), modelling RTT sampling noise. The buggy controller's
    /// over-reaction to this jitter is exactly the behaviour the paper's
    /// debugging use case diagnoses.
    pub latency_noise: f32,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self { base_rtt_ms: 40.0, queue_s: 0.25, nominal_mbps: 8.0, latency_noise: 0.03 }
    }
}

impl LinkConfig {
    /// A configuration for a link of the given nominal capacity.
    pub fn with_capacity(nominal_mbps: f32) -> Self {
        Self { nominal_mbps, ..Self::default() }
    }
}

/// Per-MI statistics observed by the sender.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MiStats {
    /// Sending rate during the MI, Mbps.
    pub send_mbps: f32,
    /// Delivered throughput during the MI, Mbps.
    pub delivered_mbps: f32,
    /// Mean one-way-inflated latency during the MI, milliseconds.
    pub latency_ms: f32,
    /// Fraction of sent data dropped during the MI, in `[0,1]`.
    pub loss_rate: f32,
}

/// The congestion-control environment.
#[derive(Debug, Clone)]
pub struct CcSimulator {
    capacity: CapacityProcess,
    config: LinkConfig,
    /// Current sending rate, Mbps.
    rate_mbps: f32,
    /// Queue backlog, megabits.
    backlog_mb: f32,
    /// Current MI index.
    mi: usize,
    /// Rolling MI history, most recent last.
    history: Vec<MiStats>,
    /// Measurement-noise state (xorshift; deterministic per simulator).
    noise_state: u64,
}

impl CcSimulator {
    /// Creates a simulator with the default 10-MI observation history.
    pub fn new(capacity: CapacityProcess, config: LinkConfig, initial_rate_mbps: f32) -> Self {
        Self::with_history(capacity, config, initial_rate_mbps, crate::HISTORY)
    }

    /// Creates a simulator with an explicit history length (the debugged
    /// Fig. 10 controller extends it from 10 to 15).
    pub fn with_history(
        capacity: CapacityProcess,
        config: LinkConfig,
        initial_rate_mbps: f32,
        history_len: usize,
    ) -> Self {
        assert!(history_len > 0, "history must be non-empty");
        assert!(initial_rate_mbps > 0.0, "initial rate must be positive");
        let idle = MiStats {
            send_mbps: initial_rate_mbps,
            delivered_mbps: initial_rate_mbps,
            latency_ms: config.base_rtt_ms,
            loss_rate: 0.0,
        };
        Self {
            capacity,
            config,
            rate_mbps: initial_rate_mbps,
            backlog_mb: 0.0,
            mi: 0,
            history: vec![idle; history_len],
            noise_state: 0xCC0C_0C0C_1234_5678,
        }
    }

    /// Next measurement-noise sample in [-1, 1) (xorshift64*).
    fn next_noise(&mut self) -> f32 {
        let mut x = self.noise_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.noise_state = x;
        ((x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
    }

    /// Remaining MIs in the capacity series.
    pub fn mis_left(&self) -> usize {
        self.capacity.len().saturating_sub(self.mi)
    }

    /// True once the capacity series has been fully consumed.
    pub fn done(&self) -> bool {
        self.mi >= self.capacity.len()
    }

    /// Current sending rate, Mbps.
    pub fn rate_mbps(&self) -> f32 {
        self.rate_mbps
    }

    /// Capacity available in the current MI, Mbps.
    pub fn current_capacity(&self) -> f32 {
        self.capacity.at(self.mi)
    }

    /// The controller observation.
    pub fn observation(&self) -> CcObservation {
        CcObservation::from_history(&self.history)
    }

    /// Applies action `action` (an index into [`RATE_MULTIPLIERS`]) and
    /// simulates one MI. Returns the realized statistics.
    ///
    /// # Panics
    /// Panics if stepping past the end of the capacity series or if the
    /// action index is out of range.
    pub fn step(&mut self, action: usize) -> MiStats {
        assert!(!self.done(), "stepping a finished CC episode");
        assert!(action < ACTIONS, "action {action} out of range");
        self.rate_mbps = (self.rate_mbps * RATE_MULTIPLIERS[action]).clamp(0.05, 24.0);
        self.step_at_current_rate()
    }

    /// Simulates one MI at the current rate without changing it (used to
    /// warm the history up before handing control to a policy).
    pub fn step_at_current_rate(&mut self) -> MiStats {
        assert!(!self.done(), "stepping a finished CC episode");
        let capacity = self.capacity.at(self.mi);
        let dt = MI_SECONDS;
        let arrivals_mb = self.rate_mbps * dt;
        let service_mb = capacity * dt;

        // FIFO fluid queue: backlog plus arrivals contend for service.
        let offered = self.backlog_mb + arrivals_mb;
        let delivered_mb = offered.min(service_mb);
        let mut backlog = offered - delivered_mb;

        // Overflow beyond the queue limit is dropped.
        let queue_cap_mb = self.config.queue_s * self.config.nominal_mbps;
        let dropped_mb = (backlog - queue_cap_mb).max(0.0);
        backlog -= dropped_mb;
        self.backlog_mb = backlog;

        // Latency: base RTT plus the queueing delay a packet admitted at
        // the end of the MI experiences at the current capacity.
        let queue_delay_ms = 1000.0 * backlog / capacity.max(0.05);
        let jitter = if self.config.latency_noise > 0.0 {
            1.0 + self.config.latency_noise * self.next_noise()
        } else {
            1.0
        };
        let latency_ms = (self.config.base_rtt_ms + queue_delay_ms) * jitter;

        let loss_rate =
            if arrivals_mb > 0.0 { (dropped_mb / arrivals_mb).clamp(0.0, 1.0) } else { 0.0 };
        let stats = MiStats {
            send_mbps: self.rate_mbps,
            delivered_mbps: delivered_mb / dt,
            latency_ms,
            loss_rate,
        };
        self.history.remove(0);
        self.history.push(stats);
        self.mi += 1;
        stats
    }

    /// Aurora-style reward: throughput minus latency and loss penalties.
    pub fn reward(stats: &MiStats) -> f32 {
        10.0 * stats.delivered_mbps
            - 0.1 * stats.latency_ms
            - 20.0 * stats.send_mbps * stats.loss_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkPattern;

    fn stable_sim(rate: f32) -> CcSimulator {
        let cap = CapacityProcess::generate_seeded(LinkPattern::Stable { mbps: 8.0 }, 500, 1);
        CcSimulator::new(cap, LinkConfig::default(), rate)
    }

    #[test]
    fn underloaded_link_has_base_latency_and_no_loss() {
        let mut sim = stable_sim(4.0);
        for _ in 0..100 {
            let s = sim.step(4); // hold 1.0×
            assert!(s.loss_rate == 0.0);
            assert!(s.latency_ms < 45.0, "latency {} should stay near base", s.latency_ms);
            assert!((s.delivered_mbps - 4.0).abs() < 0.3);
        }
    }

    #[test]
    fn overloaded_link_builds_queue_then_drops() {
        let mut sim = stable_sim(16.0);
        let mut saw_loss = false;
        let mut last_latency = 0.0;
        for _ in 0..100 {
            let s = sim.step(4);
            if s.loss_rate > 0.0 {
                saw_loss = true;
            }
            last_latency = s.latency_ms;
        }
        assert!(saw_loss, "2× overload must overflow the queue");
        assert!(last_latency > 100.0, "queue must inflate latency: {last_latency}");
    }

    #[test]
    fn latency_is_bounded_by_queue_cap() {
        let mut sim = stable_sim(20.0);
        let mut max_latency: f32 = 0.0;
        for _ in 0..200 {
            let s = sim.step(4);
            max_latency = max_latency.max(s.latency_ms);
        }
        // Queue cap = 0.25 s × 8 Mbps = 2 Mb → ≤ 250 ms queueing at 8 Mbps,
        // plus the ±4% measurement jitter.
        assert!(max_latency < (40.0 + 252.0) * 1.05, "latency {max_latency}");
    }

    #[test]
    fn rate_multipliers_apply() {
        let mut sim = stable_sim(2.0);
        sim.step(8); // 2.0×
        assert!((sim.rate_mbps() - 4.0).abs() < 1e-4);
        sim.step(0); // 0.5×
        assert!((sim.rate_mbps() - 2.0).abs() < 1e-4);
    }

    #[test]
    fn queue_drains_after_overload_ends() {
        let mut sim = stable_sim(16.0);
        for _ in 0..50 {
            sim.step(4);
        }
        // Cut to a fraction of the capacity and let the queue drain.
        sim.step(0);
        sim.step(0);
        let mut latency = f32::MAX;
        for _ in 0..80 {
            latency = sim.step(4).latency_ms;
        }
        assert!(latency < 50.0, "queue should drain: latency {latency}");
    }

    #[test]
    fn observation_history_matches_length() {
        let cap = CapacityProcess::generate_seeded(LinkPattern::Stable { mbps: 8.0 }, 100, 2);
        let mut sim = CcSimulator::with_history(cap, LinkConfig::default(), 4.0, 15);
        for _ in 0..20 {
            sim.step(4);
        }
        let obs = sim.observation();
        assert_eq!(obs.latency_ms.len(), 15);
    }

    #[test]
    fn reward_prefers_full_utilization_without_loss() {
        let good =
            MiStats { send_mbps: 8.0, delivered_mbps: 7.8, latency_ms: 45.0, loss_rate: 0.0 };
        let greedy =
            MiStats { send_mbps: 16.0, delivered_mbps: 8.0, latency_ms: 280.0, loss_rate: 0.4 };
        let timid =
            MiStats { send_mbps: 1.0, delivered_mbps: 1.0, latency_ms: 40.0, loss_rate: 0.0 };
        assert!(CcSimulator::reward(&good) > CcSimulator::reward(&greedy));
        assert!(CcSimulator::reward(&good) > CcSimulator::reward(&timid));
    }

    #[test]
    #[should_panic(expected = "stepping a finished CC episode")]
    fn stepping_past_series_end_panics() {
        let cap = CapacityProcess::generate_seeded(LinkPattern::Stable { mbps: 8.0 }, 3, 1);
        let mut sim = CcSimulator::new(cap, LinkConfig::default(), 2.0);
        for _ in 0..4 {
            sim.step(4);
        }
    }
}
