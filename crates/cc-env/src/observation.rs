//! The CC controller observation: per-MI histories of sending rate,
//! delivered throughput, latency, and loss, with conversions to features
//! and to describable sections.

use crate::sim::MiStats;
use agua_text::describer::DescribedSection;
use agua_text::stats::SignalSeries;
use serde::{Deserialize, Serialize};

/// Normalization maxima for the feature vector.
pub const RATE_MAX: f32 = 24.0;
/// Maximum latency for normalization, ms.
pub const LATENCY_MAX: f32 = 400.0;

/// Number of raw signals per MI.
pub const SIGNALS: usize = 4;

/// One controller input: the last `K` monitor intervals of statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
//= spec: specs/applications.toml#cc-observation
//# per-monitor-interval histories of four signals: sending rate,
//# delivered throughput, latency, and loss rate, most recent interval
//# last
pub struct CcObservation {
    /// Sending rate per MI, Mbps.
    pub send_mbps: Vec<f32>,
    /// Delivered throughput per MI, Mbps.
    pub delivered_mbps: Vec<f32>,
    /// Mean latency per MI, milliseconds.
    pub latency_ms: Vec<f32>,
    /// Loss rate per MI, in `[0,1]`.
    pub loss_rate: Vec<f32>,
}

impl CcObservation {
    /// Builds the observation from an MI history (most recent last).
    pub fn from_history(history: &[MiStats]) -> Self {
        Self {
            send_mbps: history.iter().map(|s| s.send_mbps).collect(),
            delivered_mbps: history.iter().map(|s| s.delivered_mbps).collect(),
            latency_ms: history.iter().map(|s| s.latency_ms).collect(),
            loss_rate: history.iter().map(|s| s.loss_rate).collect(),
        }
    }

    /// History length in MIs.
    pub fn history_len(&self) -> usize {
        self.latency_ms.len()
    }

    /// Feature dimensionality for a given history length and feature-set
    /// variant.
    pub fn feature_dim(history: usize, with_avg_latency: bool) -> usize {
        history * SIGNALS + usize::from(with_avg_latency)
    }

    /// Flattens the observation into normalized features.
    ///
    /// `with_avg_latency` appends the window-mean latency as an extra
    /// feature — the fix applied to the Fig. 10 debugged controller,
    /// which the paper adds after Agua reveals the original controller's
    /// distorted latency perception.
    pub fn features(&self, with_avg_latency: bool) -> Vec<f32> {
        let mut f = Vec::with_capacity(Self::feature_dim(self.history_len(), with_avg_latency));
        f.extend(self.send_mbps.iter().map(|v| (v / RATE_MAX).clamp(0.0, 1.0)));
        f.extend(self.delivered_mbps.iter().map(|v| (v / RATE_MAX).clamp(0.0, 1.0)));
        f.extend(self.latency_ms.iter().map(|v| (v / LATENCY_MAX).clamp(0.0, 1.0)));
        f.extend(self.loss_rate.iter().map(|v| v.clamp(0.0, 1.0)));
        if with_avg_latency {
            let avg = self.latency_ms.iter().sum::<f32>() / self.history_len() as f32;
            f.push((avg / LATENCY_MAX).clamp(0.0, 1.0));
        }
        f
    }

    /// Reconstructs an observation from a plain feature vector (inverse of
    /// [`CcObservation::features`] without the appended average).
    pub fn from_features(f: &[f32], history: usize) -> Self {
        assert!(
            f.len() == history * SIGNALS || f.len() == history * SIGNALS + 1,
            "wrong CC feature length"
        );
        let take = |offset: usize, max: f32| -> Vec<f32> {
            f[offset..offset + history].iter().map(|v| v * max).collect()
        };
        Self {
            send_mbps: take(0, RATE_MAX),
            delivered_mbps: take(history, RATE_MAX),
            latency_ms: take(2 * history, LATENCY_MAX),
            loss_rate: take(3 * history, 1.0),
        }
    }

    /// Relative latency inflation: each sample divided by the window
    /// minimum. Queueing delay expressed independent of the path's base
    /// RTT — the statistic congestion-control reasoning actually uses.
    pub fn latency_inflation(&self) -> Vec<f32> {
        let min = self.latency_ms.iter().cloned().fold(f32::MAX, f32::min).max(1.0);
        self.latency_ms.iter().map(|&l| l / min).collect()
    }

    /// Converts the observation into describable sections.
    pub fn sections(&self) -> Vec<DescribedSection> {
        vec![
            DescribedSection::new(
                "Latency behavior",
                vec![
                    SignalSeries::new(
                        "Network Latency",
                        "ms",
                        self.latency_ms.clone(),
                        LATENCY_MAX,
                    ),
                    SignalSeries::new(
                        "Network Latency Inflation",
                        "x",
                        self.latency_inflation(),
                        4.0,
                    ),
                ],
            ),
            DescribedSection::new(
                "Loss behavior",
                vec![SignalSeries::new(
                    "Packet Loss Rate",
                    "fraction",
                    self.loss_rate.clone(),
                    1.0,
                )],
            ),
            DescribedSection::new(
                "Rate and utilization",
                vec![
                    SignalSeries::new("Sending Rate", "Mbps", self.send_mbps.clone(), RATE_MAX),
                    SignalSeries::new(
                        "Delivered Network Utilization Throughput",
                        "Mbps",
                        self.delivered_mbps.clone(),
                        RATE_MAX,
                    ),
                ],
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> CcObservation {
        let history: Vec<MiStats> = (0..10)
            .map(|i| MiStats {
                send_mbps: 4.0 + i as f32 * 0.1,
                delivered_mbps: 4.0,
                latency_ms: 40.0 + i as f32,
                loss_rate: 0.0,
            })
            .collect();
        CcObservation::from_history(&history)
    }

    #[test]
    fn features_have_documented_dimension() {
        let o = obs();
        assert_eq!(o.features(false).len(), CcObservation::feature_dim(10, false));
        assert_eq!(o.features(true).len(), CcObservation::feature_dim(10, true));
    }

    #[test]
    fn avg_latency_feature_is_the_window_mean() {
        let o = obs();
        let f = o.features(true);
        let avg = o.latency_ms.iter().sum::<f32>() / 10.0;
        assert!((f[f.len() - 1] * LATENCY_MAX - avg).abs() < 1e-3);
    }

    #[test]
    fn features_roundtrip() {
        let o = obs();
        let restored = CcObservation::from_features(&o.features(false), 10);
        for (a, b) in o.latency_ms.iter().zip(&restored.latency_ms) {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn sections_cover_latency_loss_and_rate() {
        let names: Vec<String> = obs()
            .sections()
            .iter()
            .flat_map(|s| s.signals.iter().map(|sig| sig.name.clone()))
            .collect();
        assert!(names.iter().any(|n| n.contains("Latency")));
        assert!(names.iter().any(|n| n.contains("Loss")));
        assert!(names.iter().any(|n| n.contains("Utilization")));
    }

    #[test]
    #[should_panic(expected = "wrong CC feature length")]
    fn from_features_validates_length() {
        let _ = CcObservation::from_features(&[0.0; 7], 10);
    }
}
