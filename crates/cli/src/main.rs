//! `agua-cli` — drive the Agua pipeline from the shell.
//!
//! ```text
//! agua-cli concepts  --app ddos
//! agua-cli train     --app ddos --out-dir /tmp/agua-ddos [--seed 7]
//! agua-cli fidelity  --app ddos --model-dir /tmp/agua-ddos [--samples 400]
//! agua-cli explain   --app ddos --model-dir /tmp/agua-ddos [--scenario syn-flood]
//! ```
//!
//! `train` fits a controller and an Agua surrogate and writes the shared
//! `agua_app::Checkpoint` format (`controller.json`, `agua.json`,
//! `quantizer.json`, `meta.json`); `fidelity` and `explain` operate on
//! those checkpoints through the same loader the experiment bins use.

#![forbid(unsafe_code)]

mod args;
mod commands;
mod obs;

use args::Args;
use std::process::ExitCode;

const USAGE: &str = "\
agua-cli — concept-based explanations for learning-enabled controllers

USAGE:
  agua-cli <COMMAND> [OPTIONS]

COMMANDS:
  concepts   list the base concepts for an application and their
             inter-concept similarity check
  train      train a controller + Agua surrogate; write JSON checkpoints
  fidelity   evaluate a saved surrogate's fidelity on fresh rollouts
  explain    explain a scenario with a saved surrogate
  report     global model report: fidelity, Ω sparsity, per-class drivers

OPTIONS:
  --app <name>             application (required); registered:
                           abr | cc | cc-debugged | ddos
  --out-dir <dir>          where `train` writes checkpoints
  --model-dir <dir>        where `fidelity`/`explain` read checkpoints
  --seed <n>               RNG seed (default 11)
  --samples <n>            evaluation sample count (default 400)
  --scenario <name>        explain: abr = motivating;
                           ddos = benign-http | benign-dns | syn-flood |
                                  udp-flood | low-and-slow
  --counterfactual <k>     explain: also show the counterfactual for
                           output class k
  --llm <hq|os>            simulated LLM variant (default hq)
  --threads <n>            worker threads for the deterministic parallel
                           backend's persistent pool (default: AGUA_THREADS
                           env or all cores; results are identical at any
                           value)
  --obs <mode>             observability subscriber, honored by every
                           command: off (default) | stderr | metrics |
                           jsonl (results/logs/<cmd>_<app>.jsonl) |
                           trace (metrics + Chrome trace_event JSON for
                           chrome://tracing / ui.perfetto.dev).
                           Subscribers observe only — artifacts are
                           byte-identical under every mode
  --metrics-out <path>     where `--obs metrics|trace` writes its JSON
                           snapshot (default
                           results/logs/<cmd>_<app>_metrics.json)
  --trace-out <path>       where `--obs trace` writes the Chrome trace
                           (default results/logs/<cmd>_<app>_trace.json)
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&raw) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(threads) = args.threads {
        agua_nn::parallel::set_global_threads(threads);
    }
    let result = match args.command.as_str() {
        "concepts" => commands::concepts(&args),
        "train" => commands::train(&args),
        "fidelity" => commands::fidelity(&args),
        "explain" => commands::explain(&args),
        "report" => commands::report(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
