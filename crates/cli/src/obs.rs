//! CLI wiring for the `agua-obs` instrumentation layer: builds the
//! subscriber requested by `--obs`, installs it for the duration of a
//! command, and persists its outputs (metrics snapshot, JSONL trace,
//! Chrome trace) when the command finishes.

use crate::args::{Args, ObsMode};
use agua_obs::scoped::with_scoped_subscriber;
use agua_obs::{Fanout, JsonlWriter, Metrics, MetricsSnapshot, Stderr, Subscriber, TraceWriter};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// An observability session for one CLI command.
///
/// Holds the subscriber chosen by `--obs` (if any) plus typed handles to
/// the stateful ones, so the command can snapshot/flush at the end.
/// Subscribers observe only — every command produces identical artifacts
/// under every `--obs` mode.
pub struct CliObs {
    subscriber: Option<Arc<dyn Subscriber>>,
    metrics: Option<Arc<Metrics>>,
    jsonl: Option<Arc<JsonlWriter>>,
    trace: Option<Arc<TraceWriter>>,
    metrics_out: Option<PathBuf>,
}

impl CliObs {
    /// Builds the session for a command named `command` (used in default
    /// output paths, e.g. `results/logs/train_abr.jsonl`).
    pub fn from_args(args: &Args, command: &str) -> Result<CliObs, String> {
        let app = args.app.as_deref().unwrap_or("app");
        let mut session =
            CliObs { subscriber: None, metrics: None, jsonl: None, trace: None, metrics_out: None };
        let default_metrics_out = |args: &Args| {
            args.metrics_out
                .as_deref()
                .map(PathBuf::from)
                .unwrap_or_else(|| default_logs_dir().join(format!("{command}_{app}_metrics.json")))
        };
        match args.obs {
            ObsMode::Off => {}
            ObsMode::Stderr => {
                session.subscriber = Some(Arc::new(Stderr::new()));
            }
            ObsMode::Metrics => {
                let metrics = Arc::new(Metrics::new());
                session.metrics = Some(metrics.clone());
                session.subscriber = Some(metrics);
                session.metrics_out = Some(default_metrics_out(args));
            }
            ObsMode::Jsonl => {
                let path = default_logs_dir().join(format!("{command}_{app}.jsonl"));
                let writer = Arc::new(
                    JsonlWriter::create(&path)
                        .map_err(|e| format!("cannot create trace {}: {e}", path.display()))?,
                );
                session.jsonl = Some(writer.clone());
                session.subscriber = Some(writer);
            }
            // `trace` is metrics + a Chrome `trace_event` file: the span
            // tree needs the metrics side anyway for the snapshot, and a
            // flamegraph without the numbers answers only half the
            // questions.
            ObsMode::Trace => {
                let path = args.trace_out.as_deref().map(PathBuf::from).unwrap_or_else(|| {
                    default_logs_dir().join(format!("{command}_{app}_trace.json"))
                });
                let trace = Arc::new(
                    TraceWriter::create(&path)
                        .map_err(|e| format!("cannot create trace {}: {e}", path.display()))?,
                );
                let metrics = Arc::new(Metrics::new());
                session.metrics = Some(metrics.clone());
                session.trace = Some(trace.clone());
                session.subscriber = Some(Fanout::new().push(metrics).push(trace).shared());
                session.metrics_out = Some(default_metrics_out(args));
            }
        }
        Ok(session)
    }

    /// A shared handle to the subscriber, for callers composing their
    /// own [`agua_obs::Fanout`] (e.g. `train`'s always-on loss curves).
    pub fn subscriber_handle(&self) -> Option<Arc<dyn Subscriber>> {
        self.subscriber.clone()
    }

    /// Runs `f` with the subscriber also installed as the ambient scoped
    /// subscriber, so the `agua-nn` kernels report their dispatches.
    pub fn observe<R>(&self, f: impl FnOnce(&dyn Subscriber) -> R) -> R {
        match &self.subscriber {
            Some(s) => {
                let obs = s.clone();
                with_scoped_subscriber(s.clone(), || f(&*obs))
            }
            None => f(&agua_obs::Noop),
        }
    }

    /// Persists the session outputs: drains the pool's worker
    /// utilization into the metrics, writes the metrics snapshot to
    /// `--metrics-out` (or its default path), and flushes the JSONL /
    /// Chrome traces to disk. Prints where each artifact went.
    pub fn finish(&self) -> Result<(), String> {
        if let Some(subscriber) = &self.subscriber {
            let chunk_hist = agua_nn::pool::emit_worker_utilization(&**subscriber);
            if let Some(metrics) = &self.metrics {
                metrics.merge_latency_hist("pool.chunk_seconds", &chunk_hist);
            }
        }
        if let (Some(metrics), Some(path)) = (&self.metrics, &self.metrics_out) {
            write_snapshot(path, &metrics.snapshot())?;
            println!("[obs] metrics snapshot written to {}", path.display());
        }
        if let Some(jsonl) = &self.jsonl {
            jsonl.flush().map_err(|e| format!("cannot flush trace: {e}"))?;
            println!("[obs] event trace written to {}", jsonl.path().display());
        }
        if let Some(trace) = &self.trace {
            trace.flush().map_err(|e| format!("cannot flush trace: {e}"))?;
            println!(
                "[obs] chrome trace written to {} (open in chrome://tracing or ui.perfetto.dev)",
                trace.path().display()
            );
        }
        Ok(())
    }
}

/// Default directory for observability artifacts.
fn default_logs_dir() -> PathBuf {
    Path::new("results").join("logs")
}

/// Serializes a snapshot to pretty JSON at `path`, creating parents.
pub fn write_snapshot(path: &Path, snapshot: &MetricsSnapshot) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    let json = serde_json::to_string_pretty(snapshot).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))
}
