//! Minimal hand-rolled argument parsing (the workspace's offline crate
//! budget does not include an argument-parsing dependency).

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand.
    pub command: String,
    /// `--app`.
    pub app: Option<String>,
    /// `--out-dir`.
    pub out_dir: Option<String>,
    /// `--model-dir`.
    pub model_dir: Option<String>,
    /// `--seed`.
    pub seed: u64,
    /// `--samples`.
    pub samples: usize,
    /// `--scenario`.
    pub scenario: Option<String>,
    /// `--counterfactual`.
    pub counterfactual: Option<usize>,
    /// `--llm`.
    pub llm: String,
    /// `--threads`.
    pub threads: Option<usize>,
    /// `--obs` (off | stderr | metrics | jsonl | trace).
    pub obs: ObsMode,
    /// `--metrics-out`.
    pub metrics_out: Option<String>,
    /// `--trace-out`.
    pub trace_out: Option<String>,
}

/// Which observability subscriber the command installs (`--obs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// No subscriber (the default).
    #[default]
    Off,
    /// Human-readable progress lines on standard error.
    Stderr,
    /// In-memory metrics aggregation, persisted as a JSON snapshot.
    Metrics,
    /// Append every event to a JSONL trace file.
    Jsonl,
    /// Metrics aggregation plus a Chrome `trace_event` JSON file
    /// (openable in `chrome://tracing` / Perfetto) of the span tree.
    Trace,
}

impl ObsMode {
    fn parse(v: &str) -> Result<ObsMode, String> {
        match v {
            "off" => Ok(ObsMode::Off),
            "stderr" => Ok(ObsMode::Stderr),
            "metrics" => Ok(ObsMode::Metrics),
            "jsonl" => Ok(ObsMode::Jsonl),
            "trace" => Ok(ObsMode::Trace),
            other => Err(format!("--obs expects off|stderr|metrics|jsonl|trace, got `{other}`")),
        }
    }
}

impl Args {
    /// Parses raw arguments (without the binary name).
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut args = Args { seed: 11, samples: 400, llm: "hq".to_string(), ..Args::default() };
        let mut iter = raw.iter();
        args.command = iter.next().ok_or_else(|| "missing command".to_string())?.clone();

        while let Some(flag) = iter.next() {
            let mut value =
                || iter.next().cloned().ok_or_else(|| format!("flag {flag} needs a value"));
            match flag.as_str() {
                "--app" => args.app = Some(value()?),
                "--out-dir" => args.out_dir = Some(value()?),
                "--model-dir" => args.model_dir = Some(value()?),
                "--seed" => {
                    args.seed =
                        value()?.parse().map_err(|_| "--seed expects an integer".to_string())?
                }
                "--samples" => {
                    args.samples =
                        value()?.parse().map_err(|_| "--samples expects an integer".to_string())?
                }
                "--scenario" => args.scenario = Some(value()?),
                "--counterfactual" => {
                    args.counterfactual = Some(
                        value()?
                            .parse()
                            .map_err(|_| "--counterfactual expects a class index".to_string())?,
                    )
                }
                "--llm" => {
                    let v = value()?;
                    if v != "hq" && v != "os" {
                        return Err("--llm expects `hq` or `os`".to_string());
                    }
                    args.llm = v;
                }
                "--threads" => {
                    let t: usize =
                        value()?.parse().map_err(|_| "--threads expects an integer".to_string())?;
                    if t == 0 {
                        return Err("--threads must be at least 1".to_string());
                    }
                    args.threads = Some(t);
                }
                "--obs" => args.obs = ObsMode::parse(&value()?)?,
                "--metrics-out" => args.metrics_out = Some(value()?),
                "--trace-out" => args.trace_out = Some(value()?),
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(args)
    }

    /// The `--app` value, resolved against the application registry.
    /// Unknown names fail with the list of registered applications.
    pub fn require_app(&self) -> Result<&'static dyn agua_app::Application, String> {
        match self.app.as_deref() {
            Some(name) => agua_app::lookup(name),
            None => Err(format!(
                "--app is required (registered: {})",
                agua_app::registered_names().join(", ")
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Result<Args, String> {
        Args::parse(&parts.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_a_full_command_line() {
        let a =
            parse(&["train", "--app", "ddos", "--out-dir", "/tmp/x", "--seed", "9", "--llm", "os"])
                .unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.require_app().unwrap().name(), "ddos");
        assert_eq!(a.out_dir.as_deref(), Some("/tmp/x"));
        assert_eq!(a.seed, 9);
        assert_eq!(a.llm, "os");
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["concepts", "--app", "abr"]).unwrap();
        assert_eq!(a.seed, 11);
        assert_eq!(a.samples, 400);
        assert_eq!(a.llm, "hq");
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse(&["train", "--bogus"]).is_err());
        assert!(parse(&["train", "--seed", "x"]).is_err());
        assert!(parse(&["train", "--llm", "gpt5"]).is_err());
        assert!(parse(&["train", "--threads", "0"]).is_err());
        assert!(parse(&["train", "--threads", "many"]).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn parses_obs_modes() {
        assert_eq!(parse(&["train", "--app", "abr"]).unwrap().obs, ObsMode::Off);
        for (v, mode) in [
            ("off", ObsMode::Off),
            ("stderr", ObsMode::Stderr),
            ("metrics", ObsMode::Metrics),
            ("jsonl", ObsMode::Jsonl),
            ("trace", ObsMode::Trace),
        ] {
            let a = parse(&["train", "--app", "abr", "--obs", v]).unwrap();
            assert_eq!(a.obs, mode);
        }
        assert!(parse(&["train", "--obs", "tracing"]).is_err());
        assert!(parse(&["train", "--obs"]).is_err());
    }

    #[test]
    fn parses_metrics_out() {
        let a = parse(&["train", "--app", "abr", "--metrics-out", "/tmp/m.json"]).unwrap();
        assert_eq!(a.metrics_out.as_deref(), Some("/tmp/m.json"));
        assert_eq!(parse(&["train", "--app", "abr"]).unwrap().metrics_out, None);
    }

    #[test]
    fn parses_trace_out() {
        let a = parse(&["train", "--app", "abr", "--obs", "trace", "--trace-out", "/tmp/t.json"])
            .unwrap();
        assert_eq!(a.obs, ObsMode::Trace);
        assert_eq!(a.trace_out.as_deref(), Some("/tmp/t.json"));
        assert_eq!(parse(&["train", "--app", "abr"]).unwrap().trace_out, None);
        assert!(parse(&["train", "--trace-out"]).is_err());
    }

    #[test]
    fn parses_threads() {
        let a = parse(&["train", "--app", "abr", "--threads", "4"]).unwrap();
        assert_eq!(a.threads, Some(4));
        let b = parse(&["train", "--app", "abr"]).unwrap();
        assert_eq!(b.threads, None);
    }

    #[test]
    fn validates_app() {
        let a = parse(&["train", "--app", "cc-debugged"]).unwrap();
        assert_eq!(a.require_app().map(|app| app.name()), Ok("cc-debugged"));
        let b = parse(&["train"]).unwrap();
        assert!(b.require_app().map(|app| app.name()).is_err());
    }

    /// Regression: unknown `--app` values used to be silently routed to
    /// the DDoS pipeline by `_ =>` match arms; they must fail and name
    /// every registered application.
    #[test]
    fn unknown_app_fails_listing_the_registry() {
        let a = parse(&["train", "--app", "dns"]).unwrap();
        let err = a.require_app().map(|app| app.name()).unwrap_err();
        assert!(err.contains("unknown application `dns`"), "{err}");
        for name in agua_app::registered_names() {
            assert!(err.contains(name), "error should list `{name}`: {err}");
        }
    }
}
