//! Command implementations: train / fidelity / explain / concepts.
//!
//! Every command resolves `--app` through `agua_app::lookup` and drives
//! the pipeline through the [`Application`] trait; checkpoints use the
//! shared [`Checkpoint`] format from `agua-app`, so experiment bins and
//! the CLI read and write the same files.

use crate::args::Args;
use crate::obs::{write_snapshot, CliObs};
use agua::explain::RowQuery;
use agua::surrogate::TrainParams;
use agua_app::{fit_agua_observed, Application, Checkpoint, CheckpointMeta, RolloutSpec};
use agua_engine::{serve_one, AppSession, ExplainRequest};
use agua_obs::scoped::with_scoped_subscriber;
use agua_obs::{emit, span_end, span_start, Fanout, FitCompleted, Metrics, Stage, Subscriber};
use agua_text::embedding::Embedder;
use std::fs;
use std::path::Path;
use std::sync::Arc;

fn variant_of(args: &Args) -> agua_app::LlmVariant {
    if args.llm == "os" {
        agua_app::LlmVariant::OpenSource
    } else {
        agua_app::LlmVariant::HighQuality
    }
}

/// `agua-cli concepts --app <app>`.
pub fn concepts(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let session = CliObs::from_args(args, "concepts")?;
    let set = app.concepts();
    println!("{} base concepts for {}:", set.len(), app.name());
    for (i, c) in set.concepts.iter().enumerate() {
        println!("  {:>2}. {}", i + 1, c.name);
    }
    let (filtered_len, removed) = session.observe(|obs| {
        let span = span_start(obs, Stage::Custom("concept_filter"));
        let embedder = Embedder::new(512);
        let (filtered, removed) = set.filter_redundant(&embedder, 0.85);
        span_end(obs, span);
        (filtered.len(), removed)
    });
    println!(
        "S_max = 0.85 similarity check keeps {}/{} (removed: {removed:?})",
        filtered_len,
        set.len()
    );
    session.finish()?;
    Ok(())
}

/// `agua-cli train --app <app> --out-dir <dir>`.
pub fn train(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let out =
        args.out_dir.as_deref().ok_or_else(|| "--out-dir is required for train".to_string())?;
    fs::create_dir_all(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let session = CliObs::from_args(args, "train")?;

    // The per-epoch δ/Ω loss curves are always collected and persisted
    // next to the model artifact, whatever `--obs` says; the session
    // subscriber rides along on a fanout.
    let curves = Arc::new(Metrics::new());
    let fan: Arc<dyn Subscriber> = {
        let mut fan = Fanout::new().push(curves.clone());
        if let Some(s) = session.subscriber_handle() {
            fan = fan.push(s);
        }
        fan.shared()
    };

    println!("training the {} controller (seed {})…", app.name(), args.seed);
    let controller = app.build_controller(args.seed);
    println!("collecting rollouts and fitting the Agua surrogate…");
    let data = app.rollout(&controller, &RolloutSpec::new(args.samples.max(800), args.seed + 1));
    let concepts = app.concepts();
    let obs = fan.clone();
    let (model, labeler) = with_scoped_subscriber(fan.clone(), || {
        fit_agua_observed(
            &concepts,
            app.n_outputs(),
            &data,
            variant_of(args),
            &TrainParams::tuned(),
            42,
            &*obs,
        )
    });
    let train_fidelity = model.fidelity(&data.embeddings, &data.outputs);
    emit(&*fan, FitCompleted { fidelity: train_fidelity });

    let checkpoint = Checkpoint {
        controller,
        model,
        quantizer: labeler.quantizer().clone(),
        meta: CheckpointMeta {
            app: app.name().to_string(),
            llm: args.llm.clone(),
            seed: args.seed,
            n_outputs: app.n_outputs(),
            train_fidelity,
        },
    };
    checkpoint.save(Path::new(out))?;
    write_snapshot(&Path::new(out).join("training_metrics.json"), &curves.snapshot())?;
    println!("checkpoints written to {out} (train fidelity {train_fidelity:.3})");
    session.finish()?;
    Ok(())
}

/// Loads `--model-dir` as an engine [`AppSession`] — the same loader
/// and app-registry binding the daemon serves from.
fn load_session(args: &Args, app: &dyn Application) -> Result<AppSession, String> {
    let dir = args.model_dir.as_deref().ok_or_else(|| "--model-dir is required".to_string())?;
    let session = AppSession::new(Checkpoint::load(Path::new(dir))?)?;
    if session.name() != app.name() {
        return Err(format!(
            "checkpoint was trained for `{}` but --app is `{}`",
            session.name(),
            app.name()
        ));
    }
    Ok(session)
}

/// `agua-cli fidelity --app <app> --model-dir <dir>`.
pub fn fidelity(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let session = CliObs::from_args(args, "fidelity")?;
    let loaded = load_session(args, app)?;
    let ckpt = loaded.checkpoint();
    println!("rolling {} fresh samples…", args.samples);
    let (data, fid) = session.observe(|obs| {
        let span = span_start(obs, Stage::Custom("fidelity_eval"));
        let data = app.rollout(&ckpt.controller, &RolloutSpec::new(args.samples, args.seed + 1000));
        let fid = ckpt.model.fidelity(&data.embeddings, &data.outputs);
        span_end(obs, span);
        emit(obs, FitCompleted { fidelity: fid });
        (data, fid)
    });
    println!(
        "held-out fidelity: {fid:.3} over {} decisions (train fidelity was {:.3})",
        data.len(),
        ckpt.meta.train_fidelity
    );
    session.finish()?;
    Ok(())
}

/// `agua-cli report --app <app> --model-dir <dir>`.
pub fn report(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let session = CliObs::from_args(args, "report")?;
    let loaded = load_session(args, app)?;
    let ckpt = loaded.checkpoint();
    println!("rolling {} fresh samples…", args.samples);
    let report = session.observe(|obs| {
        let span = span_start(obs, Stage::Custom("report_rollout"));
        let data = app.rollout(&ckpt.controller, &RolloutSpec::new(args.samples, args.seed + 2000));
        span_end(obs, span);
        let span = span_start(obs, Stage::Custom("report_build"));
        let report = agua::AguaReport::build(&ckpt.model, &data.embeddings, &data.outputs, 4);
        span_end(obs, span);
        report
    });
    println!("{}", report.render());
    session.finish()?;
    Ok(())
}

/// `agua-cli explain --app <app> --model-dir <dir> [--scenario s]`.
///
/// Serves through the engine's one-shot path ([`serve_one`]) — the
/// same validated request pipeline the daemon coalesces, minus the
/// queue — so the CLI's output bytes match what `agua-serve` returns
/// for the same checkpoint and features.
pub fn explain(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let session = CliObs::from_args(args, "explain")?;
    let loaded = load_session(args, app)?;

    let features = app.scenario_features(
        &loaded.checkpoint().controller,
        args.scenario.as_deref(),
        args.seed,
    )?;
    let request = |query: RowQuery| ExplainRequest {
        app: app.name().to_string(),
        features: features.clone(),
        query,
    };
    session.observe(|obs| {
        let factual =
            serve_one(&loaded, &request(RowQuery::Factual), obs).map_err(|e| e.to_string())?;
        println!("controller output: class {}", factual.verdict);
        println!("{}", factual.explanation.render(6));
        if let Some(class) = args.counterfactual {
            let cf = serve_one(&loaded, &request(RowQuery::Counterfactual(class)), obs)
                .map_err(|e| e.to_string())?;
            println!("{}", cf.explanation.render(6));
        }
        Ok::<(), String>(())
    })?;
    session.finish()?;
    Ok(())
}
