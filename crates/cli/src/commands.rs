//! Command implementations: train / fidelity / explain / concepts.

use crate::args::Args;
use crate::obs::{write_snapshot, CliObs};
use abr_env::DatasetEra;
use agua::concepts::{abr_concepts, cc_concepts, ddos_concepts, ConceptSet};
use agua::explain::{counterfactual_observed, factual_observed};
use agua::surrogate::{AguaModel, TrainParams};
use agua_bench::apps::{abr_app, cc_app, ddos_app, fit_agua_observed, AppData, LlmVariant};
use agua_controllers::cc::CcVariant;
use agua_controllers::PolicyNet;
use agua_nn::Matrix;
use agua_obs::scoped::with_scoped_subscriber;
use agua_obs::{emit, span_end, span_start, Fanout, FitCompleted, Metrics, Stage, Subscriber};
use agua_text::embedding::Embedder;
use ddos_env::{DdosObservation, FlowKind, FlowWindow};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;
use std::rc::Rc;

/// Checkpoint metadata, persisted alongside the model JSONs.
#[derive(Debug, Serialize, Deserialize)]
struct Meta {
    app: String,
    llm: String,
    seed: u64,
    n_outputs: usize,
    train_fidelity: f32,
}

fn variant_of(args: &Args) -> LlmVariant {
    if args.llm == "os" {
        LlmVariant::OpenSource
    } else {
        LlmVariant::HighQuality
    }
}

fn concepts_of(app: &str) -> ConceptSet {
    match app {
        "abr" => abr_concepts(),
        "cc" => cc_concepts(),
        _ => ddos_concepts(),
    }
}

fn n_outputs_of(app: &str) -> usize {
    match app {
        "abr" => abr_env::LEVELS,
        "cc" => cc_env::ACTIONS,
        _ => ddos_env::CLASSES,
    }
}

fn build_controller(app: &str, seed: u64) -> PolicyNet {
    match app {
        "abr" => abr_app::build_controller(seed),
        "cc" => cc_app::build_controller(CcVariant::Original, seed),
        _ => ddos_app::build_controller(seed),
    }
}

fn rollout(app: &str, controller: &PolicyNet, samples: usize, seed: u64) -> AppData {
    match app {
        "abr" => abr_app::rollout(
            controller,
            DatasetEra::Train2021,
            (samples / abr_app::CHUNKS).max(1),
            seed,
        ),
        "cc" => cc_app::rollout(controller, CcVariant::Original, samples, seed),
        _ => ddos_app::rollout(controller, samples, seed),
    }
}

/// `agua-cli concepts --app <app>`.
pub fn concepts(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let set = concepts_of(app);
    println!("{} base concepts for {app}:", set.len());
    for (i, c) in set.concepts.iter().enumerate() {
        println!("  {:>2}. {}", i + 1, c.name);
    }
    let embedder = Embedder::new(512);
    let (filtered, removed) = set.filter_redundant(&embedder, 0.85);
    println!(
        "S_max = 0.85 similarity check keeps {}/{} (removed: {removed:?})",
        filtered.len(),
        set.len()
    );
    Ok(())
}

/// `agua-cli train --app <app> --out-dir <dir>`.
pub fn train(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let out =
        args.out_dir.as_deref().ok_or_else(|| "--out-dir is required for train".to_string())?;
    fs::create_dir_all(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let session = CliObs::from_args(args, "train")?;

    // The per-epoch δ/Ω loss curves are always collected and persisted
    // next to the model artifact, whatever `--obs` says; the session
    // subscriber rides along on a fanout.
    let curves = Rc::new(Metrics::new());
    let fan: Rc<dyn Subscriber> = {
        let mut fan = Fanout::new().push(curves.clone());
        if let Some(s) = session.subscriber_rc() {
            fan = fan.push(s);
        }
        Rc::new(fan)
    };

    println!("training the {app} controller (seed {})…", args.seed);
    let controller = build_controller(app, args.seed);
    println!("collecting rollouts and fitting the Agua surrogate…");
    let data = rollout(app, &controller, args.samples.max(800), args.seed + 1);
    let concepts = concepts_of(app);
    let obs = fan.clone();
    let (model, _) = with_scoped_subscriber(fan.clone(), || {
        fit_agua_observed(
            &concepts,
            n_outputs_of(app),
            &data,
            variant_of(args),
            &TrainParams::tuned(),
            42,
            &*obs,
        )
    });
    let train_fidelity = model.fidelity(&data.embeddings, &data.outputs);
    emit(&*fan, FitCompleted { fidelity: train_fidelity });

    let write = |name: &str, json: String| -> Result<(), String> {
        let path = Path::new(out).join(name);
        fs::write(&path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))
    };
    write("controller.json", serde_json::to_string(&controller).map_err(|e| e.to_string())?)?;
    write("agua.json", serde_json::to_string(&model).map_err(|e| e.to_string())?)?;
    write(
        "meta.json",
        serde_json::to_string_pretty(&Meta {
            app: app.to_string(),
            llm: args.llm.clone(),
            seed: args.seed,
            n_outputs: n_outputs_of(app),
            train_fidelity,
        })
        .map_err(|e| e.to_string())?,
    )?;
    write_snapshot(&Path::new(out).join("training_metrics.json"), &curves.snapshot())?;
    println!("checkpoints written to {out} (train fidelity {train_fidelity:.3})");
    session.finish()?;
    Ok(())
}

fn load_checkpoints(args: &Args) -> Result<(PolicyNet, AguaModel, Meta), String> {
    let dir = args.model_dir.as_deref().ok_or_else(|| "--model-dir is required".to_string())?;
    let read = |name: &str| -> Result<String, String> {
        let path = Path::new(dir).join(name);
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))
    };
    let controller: PolicyNet =
        serde_json::from_str(&read("controller.json")?).map_err(|e| e.to_string())?;
    let model: AguaModel = serde_json::from_str(&read("agua.json")?).map_err(|e| e.to_string())?;
    let meta: Meta = serde_json::from_str(&read("meta.json")?).map_err(|e| e.to_string())?;
    Ok((controller, model, meta))
}

/// `agua-cli fidelity --app <app> --model-dir <dir>`.
pub fn fidelity(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let session = CliObs::from_args(args, "fidelity")?;
    let (controller, model, meta) = load_checkpoints(args)?;
    if meta.app != app {
        return Err(format!("checkpoint was trained for `{}` but --app is `{app}`", meta.app));
    }
    println!("rolling {} fresh samples…", args.samples);
    let (data, fid) = session.observe(|obs| {
        let span = span_start(obs, Stage::Custom("fidelity_eval"));
        let data = rollout(app, &controller, args.samples, args.seed + 1000);
        let fid = model.fidelity(&data.embeddings, &data.outputs);
        span_end(obs, span);
        emit(obs, FitCompleted { fidelity: fid });
        (data, fid)
    });
    println!(
        "held-out fidelity: {fid:.3} over {} decisions (train fidelity was {:.3})",
        data.len(),
        meta.train_fidelity
    );
    session.finish()?;
    Ok(())
}

/// `agua-cli report --app <app> --model-dir <dir>`.
pub fn report(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let (controller, model, meta) = load_checkpoints(args)?;
    if meta.app != app {
        return Err(format!("checkpoint was trained for `{}` but --app is `{app}`", meta.app));
    }
    println!("rolling {} fresh samples…", args.samples);
    let data = rollout(app, &controller, args.samples, args.seed + 2000);
    let report = agua::AguaReport::build(&model, &data.embeddings, &data.outputs, 4);
    println!("{}", report.render());
    Ok(())
}

/// `agua-cli explain --app <app> --model-dir <dir> [--scenario s]`.
pub fn explain(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let session = CliObs::from_args(args, "explain")?;
    let (controller, model, meta) = load_checkpoints(args)?;
    if meta.app != app {
        return Err(format!("checkpoint was trained for `{}` but --app is `{app}`", meta.app));
    }

    let features: Vec<f32> = match app {
        "abr" => abr_app::motivating_observation().features(),
        "ddos" => {
            let kind = match args.scenario.as_deref().unwrap_or("syn-flood") {
                "benign-http" => FlowKind::BenignHttp,
                "benign-dns" => FlowKind::BenignDns,
                "syn-flood" => FlowKind::SynFlood,
                "udp-flood" => FlowKind::UdpFlood,
                "low-and-slow" => FlowKind::LowAndSlow,
                other => return Err(format!("unknown DDoS scenario `{other}`")),
            };
            DdosObservation::new(FlowWindow::generate_seeded(kind, args.seed)).features()
        }
        "cc" => {
            // A representative state: a fresh rollout's final observation.
            let data = cc_app::rollout(&controller, CcVariant::Original, 50, args.seed + 7);
            data.features.last().expect("non-empty rollout").clone()
        }
        _ => unreachable!("validated by require_app"),
    };

    let x = Matrix::row_vector(&features);
    let h = controller.embeddings(&x);
    let verdict = controller.act(&features);
    println!("controller output: class {verdict}");
    if let Some(class) = args.counterfactual {
        if class >= meta.n_outputs {
            return Err(format!(
                "--counterfactual {class} out of range (controller has {} outputs)",
                meta.n_outputs
            ));
        }
    }
    session.observe(|obs| {
        println!("{}", factual_observed(&model, &h, obs).render(6));
        if let Some(class) = args.counterfactual {
            println!("{}", counterfactual_observed(&model, &h, class, obs).render(6));
        }
    });
    session.finish()?;
    Ok(())
}
