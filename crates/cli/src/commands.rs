//! Command implementations: train / fidelity / explain / concepts.
//!
//! Every command resolves `--app` through `agua_app::lookup` and drives
//! the pipeline through the [`Application`] trait; checkpoints use the
//! shared [`Checkpoint`] format from `agua-app`, so experiment bins and
//! the CLI read and write the same files.

use crate::args::Args;
use crate::obs::{write_snapshot, CliObs};
use agua::explain::{counterfactual_observed, factual_observed};
use agua::surrogate::TrainParams;
use agua_app::{fit_agua_observed, Application, Checkpoint, CheckpointMeta, RolloutSpec};
use agua_nn::Matrix;
use agua_obs::scoped::with_scoped_subscriber;
use agua_obs::{emit, span_end, span_start, Fanout, FitCompleted, Metrics, Stage, Subscriber};
use agua_text::embedding::Embedder;
use std::fs;
use std::path::Path;
use std::sync::Arc;

fn variant_of(args: &Args) -> agua_app::LlmVariant {
    if args.llm == "os" {
        agua_app::LlmVariant::OpenSource
    } else {
        agua_app::LlmVariant::HighQuality
    }
}

/// `agua-cli concepts --app <app>`.
pub fn concepts(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let session = CliObs::from_args(args, "concepts")?;
    let set = app.concepts();
    println!("{} base concepts for {}:", set.len(), app.name());
    for (i, c) in set.concepts.iter().enumerate() {
        println!("  {:>2}. {}", i + 1, c.name);
    }
    let (filtered_len, removed) = session.observe(|obs| {
        let span = span_start(obs, Stage::Custom("concept_filter"));
        let embedder = Embedder::new(512);
        let (filtered, removed) = set.filter_redundant(&embedder, 0.85);
        span_end(obs, span);
        (filtered.len(), removed)
    });
    println!(
        "S_max = 0.85 similarity check keeps {}/{} (removed: {removed:?})",
        filtered_len,
        set.len()
    );
    session.finish()?;
    Ok(())
}

/// `agua-cli train --app <app> --out-dir <dir>`.
pub fn train(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let out =
        args.out_dir.as_deref().ok_or_else(|| "--out-dir is required for train".to_string())?;
    fs::create_dir_all(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    let session = CliObs::from_args(args, "train")?;

    // The per-epoch δ/Ω loss curves are always collected and persisted
    // next to the model artifact, whatever `--obs` says; the session
    // subscriber rides along on a fanout.
    let curves = Arc::new(Metrics::new());
    let fan: Arc<dyn Subscriber> = {
        let mut fan = Fanout::new().push(curves.clone());
        if let Some(s) = session.subscriber_handle() {
            fan = fan.push(s);
        }
        fan.shared()
    };

    println!("training the {} controller (seed {})…", app.name(), args.seed);
    let controller = app.build_controller(args.seed);
    println!("collecting rollouts and fitting the Agua surrogate…");
    let data = app.rollout(&controller, &RolloutSpec::new(args.samples.max(800), args.seed + 1));
    let concepts = app.concepts();
    let obs = fan.clone();
    let (model, labeler) = with_scoped_subscriber(fan.clone(), || {
        fit_agua_observed(
            &concepts,
            app.n_outputs(),
            &data,
            variant_of(args),
            &TrainParams::tuned(),
            42,
            &*obs,
        )
    });
    let train_fidelity = model.fidelity(&data.embeddings, &data.outputs);
    emit(&*fan, FitCompleted { fidelity: train_fidelity });

    let checkpoint = Checkpoint {
        controller,
        model,
        quantizer: labeler.quantizer().clone(),
        meta: CheckpointMeta {
            app: app.name().to_string(),
            llm: args.llm.clone(),
            seed: args.seed,
            n_outputs: app.n_outputs(),
            train_fidelity,
        },
    };
    checkpoint.save(Path::new(out))?;
    write_snapshot(&Path::new(out).join("training_metrics.json"), &curves.snapshot())?;
    println!("checkpoints written to {out} (train fidelity {train_fidelity:.3})");
    session.finish()?;
    Ok(())
}

fn load_checkpoint(args: &Args, app: &dyn Application) -> Result<Checkpoint, String> {
    let dir = args.model_dir.as_deref().ok_or_else(|| "--model-dir is required".to_string())?;
    let checkpoint = Checkpoint::load(Path::new(dir))?;
    if checkpoint.meta.app != app.name() {
        return Err(format!(
            "checkpoint was trained for `{}` but --app is `{}`",
            checkpoint.meta.app,
            app.name()
        ));
    }
    Ok(checkpoint)
}

/// `agua-cli fidelity --app <app> --model-dir <dir>`.
pub fn fidelity(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let session = CliObs::from_args(args, "fidelity")?;
    let ckpt = load_checkpoint(args, app)?;
    println!("rolling {} fresh samples…", args.samples);
    let (data, fid) = session.observe(|obs| {
        let span = span_start(obs, Stage::Custom("fidelity_eval"));
        let data = app.rollout(&ckpt.controller, &RolloutSpec::new(args.samples, args.seed + 1000));
        let fid = ckpt.model.fidelity(&data.embeddings, &data.outputs);
        span_end(obs, span);
        emit(obs, FitCompleted { fidelity: fid });
        (data, fid)
    });
    println!(
        "held-out fidelity: {fid:.3} over {} decisions (train fidelity was {:.3})",
        data.len(),
        ckpt.meta.train_fidelity
    );
    session.finish()?;
    Ok(())
}

/// `agua-cli report --app <app> --model-dir <dir>`.
pub fn report(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let session = CliObs::from_args(args, "report")?;
    let ckpt = load_checkpoint(args, app)?;
    println!("rolling {} fresh samples…", args.samples);
    let report = session.observe(|obs| {
        let span = span_start(obs, Stage::Custom("report_rollout"));
        let data = app.rollout(&ckpt.controller, &RolloutSpec::new(args.samples, args.seed + 2000));
        span_end(obs, span);
        let span = span_start(obs, Stage::Custom("report_build"));
        let report = agua::AguaReport::build(&ckpt.model, &data.embeddings, &data.outputs, 4);
        span_end(obs, span);
        report
    });
    println!("{}", report.render());
    session.finish()?;
    Ok(())
}

/// `agua-cli explain --app <app> --model-dir <dir> [--scenario s]`.
pub fn explain(args: &Args) -> Result<(), String> {
    let app = args.require_app()?;
    let session = CliObs::from_args(args, "explain")?;
    let ckpt = load_checkpoint(args, app)?;

    let features = app.scenario_features(&ckpt.controller, args.scenario.as_deref(), args.seed)?;
    let x = Matrix::row_vector(&features);
    let h = ckpt.controller.embeddings(&x);
    let verdict = ckpt.controller.act(&features);
    println!("controller output: class {verdict}");
    if let Some(class) = args.counterfactual {
        if class >= ckpt.meta.n_outputs {
            return Err(format!(
                "--counterfactual {class} out of range (controller has {} outputs)",
                ckpt.meta.n_outputs
            ));
        }
    }
    session.observe(|obs| {
        println!("{}", factual_observed(&ckpt.model, &h, obs).render(6));
        if let Some(class) = args.counterfactual {
            println!("{}", counterfactual_observed(&ckpt.model, &h, class, obs).render(6));
        }
    });
    session.finish()?;
    Ok(())
}
