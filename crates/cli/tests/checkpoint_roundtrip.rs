//! Checkpoint round-trip: a model trained through the CLI must reload
//! through the shared `agua_app::Checkpoint` loader and reproduce the
//! CLI's own numbers byte-for-byte.

use agua_app::{Application, Checkpoint, RolloutSpec, DDOS};
use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_agua-cli"))
}

fn run(args: &[&str]) -> String {
    let out = cli().args(args).output().expect("cli should spawn");
    assert!(
        out.status.success(),
        "agua-cli {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("cli output should be utf-8")
}

#[test]
fn cli_checkpoint_reloads_through_the_shared_loader() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("roundtrip-ddos");
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();

    run(&["train", "--app", "ddos", "--out-dir", dir_s, "--seed", "7", "--samples", "200"]);
    for file in ["controller.json", "agua.json", "quantizer.json", "meta.json"] {
        assert!(dir.join(file).is_file(), "train should write {file}");
    }

    // The shared loader reads what the CLI wrote.
    let ckpt = Checkpoint::load(&dir).expect("checkpoint should reload");
    assert_eq!(ckpt.meta.app, "ddos");
    assert_eq!(ckpt.meta.seed, 7);
    assert_eq!(ckpt.meta.llm, "hq");
    assert_eq!(ckpt.meta.n_outputs, DDOS.n_outputs());

    // The reloaded model reproduces the CLI's held-out fidelity exactly:
    // same rollout spec as `agua-cli fidelity --seed 7 --samples 300`.
    let data = DDOS.rollout(&ckpt.controller, &RolloutSpec::new(300, 7 + 1000));
    let fid = ckpt.model.fidelity(&data.embeddings, &data.outputs);
    let fidelity_out = run(&[
        "fidelity",
        "--app",
        "ddos",
        "--model-dir",
        dir_s,
        "--seed",
        "7",
        "--samples",
        "300",
    ]);
    assert!(
        fidelity_out.contains(&format!("held-out fidelity: {fid:.3}")),
        "CLI fidelity should match the reloaded model's {fid:.3}:\n{fidelity_out}"
    );

    // Explanations from the saved checkpoint are deterministic: two runs
    // produce byte-identical output.
    let explain = ["explain", "--app", "ddos", "--model-dir", dir_s, "--scenario", "syn-flood"];
    assert_eq!(run(&explain), run(&explain), "explain output should be byte-identical");

    // A checkpoint trained for one app refuses to load as another.
    let err = cli()
        .args(["fidelity", "--app", "abr", "--model-dir", dir_s])
        .output()
        .expect("cli should spawn");
    assert!(!err.status.success());
    let msg = String::from_utf8_lossy(&err.stderr);
    assert!(msg.contains("trained for `ddos`"), "expected app mismatch error, got: {msg}");
}
