//! Persistent worker-thread pool behind the deterministic parallel
//! backend.
//!
//! PR 1's backend spawned a fresh `std::thread::scope` per qualifying
//! operation — tens of microseconds of spawn/join cost on every one of
//! the thousands of small matmuls a δ/Ω fit dispatches. This module
//! replaces that with a pool of **parked workers** that are:
//!
//! * **lazily spawned** — no threads exist until the first over-gate
//!   operation actually asks for more than one chunk,
//! * **resized** — [`crate::parallel::set_global_threads`] shrinks the
//!   pool immediately (surplus workers exit and are joined); growth
//!   stays lazy, so a larger scoped override simply spawns the missing
//!   workers at its next dispatch,
//! * **shut down** on demand ([`shutdown`]) so tests can assert that no
//!   threads leak.
//!
//! ## Determinism
//!
//! The pool changes *where* chunks run, never *what* they compute. The
//! dispatcher partitions the output by row exactly as the scoped-spawn
//! path did (`rows.div_ceil(workers)`-row chunks, each owned by one
//! executor), the chunk kernels accumulate in the same `k`-ascending
//! order, and the dispatching thread blocks until every chunk is done.
//! Results are therefore byte-identical to the sequential kernels at any
//! pool size — the same invariant PR 1 established, now without the
//! per-op spawn.
//!
//! Workers also deliberately do **not** inherit the dispatcher's
//! thread-local observability scope (see `agua_obs::scoped`): events are
//! emitted by the dispatching thread only, so metrics aggregate
//! identically at any `AGUA_THREADS`.
//!
//! ## The one `unsafe` region
//!
//! Handing borrowed data (the kernel closure and `&mut` output chunks)
//! to pool threads requires erasing lifetimes — this is the single
//! `unsafe` region in the workspace, concentrated in `Task` and kept
//! deliberately small. Soundness rests on one invariant: **the
//! dispatcher does not return until the completion latch counts every
//! task done** (normally or by panic). The closure reference, the chunk
//! pointers, and the latch itself therefore strictly outlive every use
//! by a worker. Workers run tasks under `catch_unwind`, so a panicking
//! kernel still completes its latch slot; the first captured panic
//! payload is re-thrown on the dispatching thread.
//!
//! ## Leaf kernels only
//!
//! Only the row-partitioned leaf kernels (`par_matmul`, `par_matmul_tn`,
//! `par_matmul_nt`, `par_for_each_rows`) dispatch through the pool.
//! Coarse-grained helpers (`par_map`, `par_jobs`, …) keep their scoped
//! threads because their jobs may themselves dispatch leaf kernels;
//! routing them through the pool could park a worker waiting on a task
//! queued behind itself. As a second line of defence, a dispatch *from*
//! a pool worker runs its chunks inline instead of re-entering the pool.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::mpsc::{channel, Receiver, Sender};
use crate::sync::thread::JoinHandle;
use crate::sync::{thread, Condvar, Mutex};
use agua_obs::ring::SpscRing;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A lifetime-erased unit of work: one contiguous run of output rows.
///
/// `run` is a monomorphized shim that reconstitutes the kernel closure
/// from `ctx` and the output chunk from `out`/`len`. All pointers target
/// stack data of the dispatching `run_chunks` frame; they are valid
/// because that frame blocks on `latch` until this task completes.
struct Task {
    run: unsafe fn(*const (), usize, *mut f32, usize),
    ctx: *const (),
    row_start: usize,
    out: *mut f32,
    len: usize,
    latch: *const Latch,
}

//= spec: specs/pool-protocol.toml#latch-outlives-task
//# Every raw pointer in a dispatched task MUST target data owned by the
//# dispatching frame, and that frame MUST block on the completion latch
//# until the task completes
//= spec: specs/determinism.toml#row-ownership
//# the chunks handed to workers partition the output disjointly, and no
//# worker reads or writes another worker's chunk
// SAFETY: sending a `Task` to a worker is sound because every raw
// pointer in it targets data owned by the dispatching `run_chunks`
// frame, and that frame blocks on the latch until the task completes
// (normally or by panic) — the borrowed closure strictly outlives every
// worker that can observe it:
//  * `ctx` points at a `F: Fn(..) + Sync` closure, so a shared `&F` may
//    be used from the worker while the dispatcher also runs chunk 0
//    through it;
//  * `out`/`len` come from an exclusive `&mut [f32]` chunk produced by
//    `chunks_mut`, so no two tasks (nor the dispatcher) alias it;
//  * `latch` points into the same blocked frame.
// Note `Task` is deliberately **not** `Sync` (asserted below): a task is
// consumed by exactly one worker, and nothing may share `&Task` across
// threads — `*const ()` would make that unsound in general.
unsafe impl Send for Task {}

// Compile-time guard: `Task` must be `Send` (that is the handoff) and
// must NOT be `Sync` — if a future refactor made `Task` `Sync` (e.g. by
// replacing the raw pointers with references), the ambiguity below would
// vanish and this would stop compiling, forcing the soundness argument
// to be revisited.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Task>();
};
const _: fn() = || {
    trait AmbiguousIfSync<A> {
        fn some_item() {}
    }
    impl<T: ?Sized> AmbiguousIfSync<()> for T {}
    #[allow(dead_code)]
    struct TaskIsSyncButMustNotBe;
    impl<T: ?Sized + Sync> AmbiguousIfSync<TaskIsSyncButMustNotBe> for T {}
    // Exactly one blanket impl applies while `Task: !Sync`; a second
    // would make this associated-item path ambiguous and fail to build.
    let _ = <Task as AmbiguousIfSync<_>>::some_item;
};

/// Monomorphized shim stored in [`Task::run`].
///
/// SAFETY: callers must guarantee the contract documented on [`Task`] —
/// `ctx` is a live `&F`, `out`/`len` an exclusively owned chunk, both
/// kept alive by a dispatcher frame blocked on the task's latch.
unsafe fn call_chunk<F: Fn(usize, &mut [f32]) + Sync>(
    ctx: *const (),
    row_start: usize,
    out: *mut f32,
    len: usize,
) {
    // SAFETY: `ctx` was produced from `&F` in `run_chunks`; the closure
    // outlives the task per the latch protocol documented on `Task`, and
    // `F: Sync` makes the shared borrow from this thread legal.
    let work = unsafe { &*(ctx as *const F) };
    // SAFETY: `out`/`len` come from an exclusive `&mut [f32]` chunk in
    // the dispatcher's frame (still alive — it blocks on the latch), and
    // chunk ranges are pairwise disjoint, so this is the only live
    // reference to these elements.
    let chunk = unsafe { std::slice::from_raw_parts_mut(out, len) };
    work(row_start, chunk);
}

enum Msg {
    Run(Task),
    Exit,
}

//= spec: specs/pool-protocol.toml#panic-propagation
//# A panic inside a task on a worker MUST be captured and re-thrown on
//# the dispatching thread; the latch is still counted down
/// Countdown latch: the dispatcher waits until `remaining` reaches zero;
/// workers record the first panic payload for re-throw.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            state: Mutex::new(LatchState { remaining: count, panic: None }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock().expect("latch mutex poisoned");
        if state.panic.is_none() {
            state.panic = panic;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut state = self.state.lock().expect("latch mutex poisoned");
        while state.remaining > 0 {
            state = self.done.wait(state).expect("latch mutex poisoned");
        }
        state.panic.take()
    }
}

/// Per-worker profiling state, shared between the worker thread (the
/// producer) and whoever drains utilization for reporting.
///
/// Deliberately built on `std::sync::atomic` rather than the
/// `crate::sync` loom facade: these are observation-only counters that
/// never influence scheduling or numerics, and keeping them outside the
/// loom model means the profiling hooks add zero states to the
/// model-checked pool protocol. Relaxed ordering is sufficient for the
/// same reason — readers tolerate slightly stale totals.
#[derive(Debug)]
struct WorkerStats {
    /// Nanoseconds spent executing chunks.
    busy_ns: std::sync::atomic::AtomicU64,
    /// Nanoseconds spent parked in `recv` waiting for work.
    parked_ns: std::sync::atomic::AtomicU64,
    /// Times the worker woke from park to handle a message.
    wakeups: std::sync::atomic::AtomicU64,
    /// Chunks executed.
    chunks: std::sync::atomic::AtomicU64,
    /// Per-chunk duration samples (ns), drained by
    /// [`emit_worker_utilization`]. Lock-free: a full ring drops the
    /// sample and counts the drop — the worker never blocks on
    /// telemetry.
    ring: SpscRing,
}

/// Chunk-duration samples kept per worker between drains. A δ/Ω fit
/// dispatches a few thousand chunks per worker between utilization
/// drains; 4096 slots make drops rare without holding >32 KiB per
/// worker.
const RING_CAPACITY: usize = 4096;

impl WorkerStats {
    fn new() -> Self {
        Self {
            busy_ns: std::sync::atomic::AtomicU64::new(0),
            parked_ns: std::sync::atomic::AtomicU64::new(0),
            wakeups: std::sync::atomic::AtomicU64::new(0),
            chunks: std::sync::atomic::AtomicU64::new(0),
            ring: SpscRing::with_capacity(RING_CAPACITY),
        }
    }
}

struct Worker {
    tx: Sender<Msg>,
    handle: JoinHandle<()>,
    stats: Arc<WorkerStats>,
}

static POOL: Mutex<Vec<Worker>> = Mutex::new(Vec::new());
/// Tasks handed to workers but not yet picked up — the queue depth
/// reported on `KernelDispatched` events.
static QUEUED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Peak value of `QUEUED` observed by this thread's most recent
    /// [`run_chunks`] call, recorded at enqueue time — the only moment
    /// the true high-water is observable (workers drain the queue
    /// within microseconds, so a dequeue-side or after-the-fact sample
    /// reads 0). Thread-local so concurrent dispatchers never steal
    /// each other's peaks.
    static LAST_DISPATCH_HIGH_WATER: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

fn worker_main(rx: Receiver<Msg>, stats: Arc<WorkerStats>) {
    use std::sync::atomic::Ordering::Relaxed;
    IS_POOL_WORKER.with(|f| f.set(true));
    loop {
        // audit:allow(wall-clock): pool profiling — park/busy time feeds
        // the `scheduling` snapshot section, never the numerics.
        let parked_at = std::time::Instant::now();
        let Ok(msg) = rx.recv() else { break };
        stats.parked_ns.fetch_add(parked_at.elapsed().as_nanos() as u64, Relaxed);
        stats.wakeups.fetch_add(1, Relaxed);
        match msg {
            Msg::Run(task) => {
                QUEUED.fetch_sub(1, Ordering::Relaxed);
                // audit:allow(wall-clock): pool profiling — chunk
                // duration sample for the utilization histograms.
                let busy_at = std::time::Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| {
                    // SAFETY: see `Task` — the dispatcher frame that owns
                    // the targets is blocked on the latch until we
                    // complete below.
                    unsafe { (task.run)(task.ctx, task.row_start, task.out, task.len) }
                }));
                let busy = busy_at.elapsed().as_nanos() as u64;
                stats.busy_ns.fetch_add(busy, Relaxed);
                stats.chunks.fetch_add(1, Relaxed);
                stats.ring.push(busy);
                // SAFETY: the latch lives in the blocked dispatcher frame.
                let latch = unsafe { &*task.latch };
                latch.complete(result.err());
            }
            Msg::Exit => break,
        }
    }
}

/// Spawns workers until at least `n` exist and returns the pool guard,
/// still locked. Growth is the only spawning path, so the pool comes up
/// lazily on the first over-gate dispatch.
///
/// Callers send their tasks **before releasing the guard**: a worker
/// present in `POOL` cannot have been sent `Exit` yet (`resize_to`
/// removes it under this same lock first), so channel FIFO order
/// guarantees every task sent under the guard is processed before the
/// worker exits. The loom suite's shutdown-vs-dispatch model found the
/// counterexample that makes this protocol load-bearing: with senders
/// cloned out of the lock, `Exit` could slip in ahead of a task and
/// strand it behind a dead worker, deadlocking the dispatcher's latch.
//= spec: specs/pool-protocol.toml#send-under-lock
//# Tasks MUST be sent to workers while the pool guard is held. A worker
//# present in the pool cannot have been sent Exit yet, so channel FIFO
//# order guarantees every task sent under the guard is processed before
//# the worker exits
fn ensure_workers(n: usize) -> crate::sync::MutexGuard<'static, Vec<Worker>> {
    let mut pool = POOL.lock().expect("pool mutex poisoned");
    while pool.len() < n {
        let idx = pool.len();
        let (tx, rx) = channel();
        let stats = Arc::new(WorkerStats::new());
        let worker_stats = stats.clone();
        let handle = thread::Builder::new()
            .name(format!("agua-pool-{idx}"))
            .spawn(move || worker_main(rx, worker_stats))
            .expect("failed to spawn pool worker");
        pool.push(Worker { tx, handle, stats });
    }
    pool
}

/// True when called from a pool worker thread. Dispatches from workers
/// run inline (leaf kernels never nest in this workspace; this guard
/// makes the "no self-deadlock" property unconditional).
//= spec: specs/pool-protocol.toml#no-nested-dispatch
//# A dispatch issued from a pool worker thread MUST run inline on that
//# worker instead of re-entering the pool
pub fn on_worker_thread() -> bool {
    IS_POOL_WORKER.with(|f| f.get())
}

/// Number of live pool workers.
pub fn worker_count() -> usize {
    POOL.lock().expect("pool mutex poisoned").len()
}

/// Tasks currently queued on the pool and not yet picked up by a worker.
pub fn queued_tasks() -> usize {
    QUEUED.load(Ordering::Relaxed)
}

/// Peak enqueue-time queue depth of the calling thread's most recent
/// [`run_chunks`] call (0 when it ran inline). The dispatching kernels
/// read this after their pool handoff completes and report it as
/// `KernelDispatched::queue_depth`.
pub fn last_dispatch_queue_high_water() -> usize {
    LAST_DISPATCH_HIGH_WATER.with(std::cell::Cell::get)
}

/// Drains every worker's profiling state and reports it through `obs`:
/// one [`agua_obs::PoolWorkerUtilization`] event per worker, **in
/// worker-index order**, plus the merged chunk-duration histogram
/// (seconds) as the return value — per-worker histograms are built from
/// the drained rings and merged in the same fixed index order, so the
/// merge is deterministic for a given set of samples.
///
/// Counters are cumulative for each worker's lifetime; ring samples are
/// consumed by the drain. Drains are serialized under the pool lock,
/// preserving the rings' single-consumer contract, and the lock also
/// means utilization cannot be drained mid-`run_chunks` send (dispatch
/// holds the same lock).
pub fn emit_worker_utilization(obs: &dyn agua_obs::Subscriber) -> agua_obs::Histogram {
    let pool = POOL.lock().expect("pool mutex poisoned");
    let mut merged = agua_obs::Histogram::new();
    for (index, worker) in pool.iter().enumerate() {
        use std::sync::atomic::Ordering::Relaxed;
        let mut chunk_hist = agua_obs::Histogram::new();
        worker.stats.ring.drain(|ns| chunk_hist.record(ns as f64 / 1e9));
        agua_obs::emit(
            obs,
            agua_obs::PoolWorkerUtilization {
                worker: index,
                busy_ns: worker.stats.busy_ns.load(Relaxed),
                parked_ns: worker.stats.parked_ns.load(Relaxed),
                wakeups: worker.stats.wakeups.load(Relaxed),
                chunks: worker.stats.chunks.load(Relaxed),
                ring_dropped: worker.stats.ring.dropped(),
            },
        );
        merged.merge(&chunk_hist);
    }
    merged
}

/// Shrinks the pool to at most `max_workers` threads, joining the
/// surplus. Growth is lazy, so this never spawns.
pub fn resize_to(max_workers: usize) {
    let surplus: Vec<Worker> = {
        let mut pool = POOL.lock().expect("pool mutex poisoned");
        if pool.len() <= max_workers {
            return;
        }
        pool.drain(max_workers..).collect()
    };
    // Join outside the lock so concurrent dispatches to the surviving
    // workers are not blocked. Exit is queued behind any in-flight tasks
    // (mpsc is FIFO), so surplus workers drain before exiting.
    for worker in surplus {
        let _ = worker.tx.send(Msg::Exit);
        let _ = worker.handle.join();
    }
}

/// Joins every pool worker. The next over-gate dispatch respawns the
/// pool lazily; tests use this to prove no threads leak.
pub fn shutdown() {
    resize_to(0);
}

/// Splits `out` (row-major, `width` columns) into `chunk_rows`-row runs
/// and executes `work(first_row_index, chunk)` on each: the first chunk
/// inline on the calling thread, the rest on pool workers. Blocks until
/// every chunk is done; worker panics are re-thrown here.
///
/// The chunk boundaries — and therefore every output element's
/// accumulation order — depend only on `chunk_rows`, not on which thread
/// runs which chunk, so results are byte-identical to a sequential pass.
///
/// Public as the pool's primitive entry point: [`crate::parallel`]'s
/// leaf kernels dispatch through it, and `tests/loom_pool.rs`
/// model-checks it directly under `--cfg loom`.
//= spec: specs/determinism.toml#thread-invariance
//# Chunk boundaries may depend only on the work shape (rows and
//# chunk_rows), never on which thread executes a chunk or in what order
//# chunks complete
pub fn run_chunks<F>(out: &mut [f32], width: usize, chunk_rows: usize, work: &F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert!(width > 0 && out.len().is_multiple_of(width) && chunk_rows > 0);
    let chunk_len = chunk_rows * width;
    let n_chunks = out.len().div_ceil(chunk_len).max(1);
    LAST_DISPATCH_HIGH_WATER.with(|hw| hw.set(0));
    if n_chunks <= 1 || on_worker_thread() {
        for (c, chunk) in out.chunks_mut(chunk_len).enumerate() {
            work(c * chunk_rows, chunk);
        }
        return;
    }

    let latch = Latch::new(n_chunks - 1);
    let mut chunks = out.chunks_mut(chunk_len).enumerate();
    let (_, first) = chunks.next().expect("at least one chunk");
    // Chunks whose worker could not be reached; completed locally after
    // the pool lock is released (running kernels under the lock could
    // self-deadlock if a kernel ever dispatched).
    let mut orphans: Vec<(usize, &mut [f32])> = Vec::new();
    {
        // Send every task while the pool guard is held — see
        // `ensure_workers` for why this ordering is what makes a
        // concurrent `resize_to`/`shutdown` unable to strand a task.
        let pool = ensure_workers(n_chunks - 1);
        let mut workers = pool.iter();
        let mut peak = 0usize;
        for (c, chunk) in chunks {
            let worker = workers.next().expect("ensure_workers grew the pool");
            let task = Task {
                run: call_chunk::<F>,
                ctx: work as *const F as *const (),
                row_start: c * chunk_rows,
                out: chunk.as_mut_ptr(),
                len: chunk.len(),
                latch: &latch,
            };
            let depth = QUEUED.fetch_add(1, Ordering::Relaxed) + 1;
            peak = peak.max(depth);
            if worker.tx.send(Msg::Run(task)).is_err() {
                // Defensive only: unreachable under the lock protocol
                // above, but a lost chunk must never be silent.
                QUEUED.fetch_sub(1, Ordering::Relaxed);
                orphans.push((c * chunk_rows, chunk));
            }
        }
        LAST_DISPATCH_HIGH_WATER.with(|hw| hw.set(peak));
    }
    for (row_start, chunk) in orphans {
        let result = catch_unwind(AssertUnwindSafe(|| work(row_start, chunk)));
        latch.complete(result.err());
    }
    let own = catch_unwind(AssertUnwindSafe(|| work(0, first)));
    // Block until every task settled — this is what makes the borrowed
    // pointers in `Task` sound — *then* surface any panic.
    let worker_panic = latch.wait();
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
    if let Err(payload) = own {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_chunks_partitions_rows_exactly_once() {
        let width = 3;
        let mut out = vec![0.0f32; 10 * width];
        run_chunks(&mut out, width, 3, &|row_start, chunk: &mut [f32]| {
            for (local, row) in chunk.chunks_exact_mut(width).enumerate() {
                for v in row.iter_mut() {
                    *v += (row_start + local) as f32 + 1.0;
                }
            }
        });
        for (r, row) in out.chunks_exact(width).enumerate() {
            assert!(row.iter().all(|&v| v == (r + 1) as f32), "row {r}: {row:?}");
        }
    }

    #[test]
    fn worker_panics_propagate_to_the_dispatcher() {
        let width = 1;
        let mut out = vec![0.0f32; 8];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_chunks(&mut out, width, 2, &|row_start, _chunk: &mut [f32]| {
                if row_start >= 4 {
                    panic!("kernel blew up");
                }
            });
        }));
        assert!(caught.is_err(), "panic must cross the pool boundary");
        // The pool survives the panic and stays usable.
        let mut out2 = vec![0.0f32; 8];
        run_chunks(&mut out2, 1, 2, &|row_start, chunk: &mut [f32]| {
            chunk.iter_mut().enumerate().for_each(|(i, v)| *v = (row_start + i) as f32);
        });
        assert_eq!(out2, (0..8).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn queue_high_water_is_sampled_at_enqueue() {
        let width = 2;
        let mut out = vec![0.0f32; 8 * width];
        run_chunks(&mut out, width, 2, &|row_start, chunk: &mut [f32]| {
            chunk.iter_mut().for_each(|v| *v = row_start as f32);
        });
        // 4 chunks → 3 enqueued tasks; however fast the workers drain,
        // the first enqueue alone pushes this dispatch's high-water to
        // ≥ 1 (the retired dequeue-side sample always read 0 here).
        let peak = last_dispatch_queue_high_water();
        assert!(peak >= 1, "enqueue-time high-water must be visible, got {peak}");
        // An inline dispatch resets the gauge.
        let mut small = vec![0.0f32; 2];
        run_chunks(&mut small, 2, 1, &|_, chunk: &mut [f32]| {
            chunk.iter_mut().for_each(|v| *v = 1.0);
        });
        assert_eq!(last_dispatch_queue_high_water(), 0);
    }

    #[test]
    fn worker_utilization_reports_workers_in_index_order() {
        // Dispatch enough chunks to guarantee live workers with samples.
        let width = 2;
        let mut out = vec![0.0f32; 8 * width];
        run_chunks(&mut out, width, 2, &|row_start, chunk: &mut [f32]| {
            chunk.iter_mut().for_each(|v| *v = row_start as f32);
        });

        let metrics = agua_obs::Metrics::new();
        let chunk_hist = emit_worker_utilization(&metrics);
        let snap = metrics.snapshot();
        let workers = worker_count();
        assert!(workers >= 3, "dispatch above must have grown the pool");
        for index in 0..workers {
            let key = format!("pool.worker{index:02}.chunks");
            assert!(snap.scheduling.contains_key(&key), "missing {key}");
        }
        // Chunk samples drained from the rings land in the histogram
        // (other tests share the pool, so only a lower bound is stable).
        assert!(chunk_hist.count() >= 1, "expected drained chunk samples");
        assert!(snap.scheduling.contains_key("pool.ring_dropped"));
        // Utilization is scheduling state only — never deterministic.
        assert!(snap.deterministic().scheduling.is_empty());
    }

    #[test]
    fn dispatch_from_a_worker_runs_inline() {
        let mut outer = vec![0.0f32; 4];
        run_chunks(&mut outer, 1, 1, &|row_start, chunk: &mut [f32]| {
            // A (forbidden in practice) nested dispatch must not deadlock.
            let mut inner = vec![0.0f32; 4];
            run_chunks(&mut inner, 1, 1, &|rs, c: &mut [f32]| {
                c.iter_mut().for_each(|v| *v = rs as f32);
            });
            chunk.iter_mut().for_each(|v| *v = row_start as f32 + inner.iter().sum::<f32>());
        });
        assert_eq!(outer, vec![6.0, 7.0, 8.0, 9.0]);
    }
}
