//! A serializable sequential network container.
//!
//! [`Mlp`] stacks a fixed vocabulary of layers ([`LayerKind`]) so that
//! whole models — controllers and Agua surrogates alike — can be saved and
//! restored as JSON checkpoints without trait-object gymnastics.

use crate::layer::{Layer, LayerNorm, Linear, Param, ReLU, Tanh};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Any layer the sequential container can hold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LayerKind {
    /// Fully connected affine layer.
    Linear(Linear),
    /// Rectified linear activation.
    ReLU(ReLU),
    /// Hyperbolic tangent activation.
    Tanh(Tanh),
    /// Layer normalization.
    LayerNorm(LayerNorm),
}

impl Layer for LayerKind {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        match self {
            LayerKind::Linear(l) => l.forward(input),
            LayerKind::ReLU(l) => l.forward(input),
            LayerKind::Tanh(l) => l.forward(input),
            LayerKind::LayerNorm(l) => l.forward(input),
        }
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        match self {
            LayerKind::Linear(l) => l.backward(grad_output),
            LayerKind::ReLU(l) => l.backward(grad_output),
            LayerKind::Tanh(l) => l.backward(grad_output),
            LayerKind::LayerNorm(l) => l.backward(grad_output),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            LayerKind::Linear(l) => l.params_mut(),
            LayerKind::ReLU(l) => l.params_mut(),
            LayerKind::Tanh(l) => l.params_mut(),
            LayerKind::LayerNorm(l) => l.params_mut(),
        }
    }
}

impl LayerKind {
    /// Inference-only forward pass that does not cache activations, usable
    /// through a shared reference.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        match self {
            LayerKind::Linear(l) => l.infer(input),
            LayerKind::ReLU(l) => l.infer(input),
            LayerKind::Tanh(l) => l.infer(input),
            LayerKind::LayerNorm(l) => l.infer(input),
        }
    }
}

/// A sequential multi-layer network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    /// Layers applied in order.
    pub layers: Vec<LayerKind>,
}

impl Mlp {
    /// Creates an empty network; push layers with [`Mlp::push`].
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer and returns `self` for builder-style chaining.
    pub fn push(mut self, layer: LayerKind) -> Self {
        self.layers.push(layer);
        self
    }

    /// Training forward pass: caches activations in every layer.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Inference forward pass through a shared reference (no caching).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.infer(&x);
        }
        x
    }

    /// Inference capturing the intermediate activation after layer
    /// `hidden_after` (0-based, inclusive) alongside the final output.
    ///
    /// Controllers expose their embedding network `h(x)` this way: the
    /// activations of the penultimate hidden layer are handed to Agua's
    /// concept mapping function.
    pub fn infer_with_hidden(&self, input: &Matrix, hidden_after: usize) -> (Matrix, Matrix) {
        assert!(hidden_after < self.layers.len(), "hidden layer index out of range");
        let mut x = input.clone();
        let mut hidden = None;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.infer(&x);
            if i == hidden_after {
                hidden = Some(x.clone());
            }
        }
        (hidden.expect("hidden layer captured"), x)
    }

    /// Backpropagates `dL/d(output)` through the stack, accumulating
    /// parameter gradients and returning `dL/d(input)`.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// All parameters of all layers.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Clears every accumulated gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.rows() * p.value.cols()).sum()
    }

    /// Serializes the model to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialization cannot fail")
    }

    /// Deserializes a model from JSON.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }

    /// Writes the model as a JSON checkpoint.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Reads a JSON checkpoint.
    pub fn load(path: &Path) -> io::Result<Self> {
        let s = std::fs::read_to_string(path)?;
        Self::from_json(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

impl Default for Mlp {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net(rng: &mut StdRng, in_dim: usize, hidden: usize, out: usize) -> Mlp {
        Mlp::new()
            .push(LayerKind::Linear(Linear::new(rng, in_dim, hidden)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::LayerNorm(LayerNorm::new(hidden)))
            .push(LayerKind::Linear(Linear::new(rng, hidden, out)))
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = small_net(&mut rng, 4, 8, 3);
        let x = Matrix::from_rows(&[vec![0.1, -0.2, 0.3, 0.4], vec![1.0, 0.0, -1.0, 0.5]]);
        let a = net.forward(&x);
        let b = net.infer(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn infer_with_hidden_returns_intermediate() {
        let mut rng = StdRng::seed_from_u64(42);
        let net = small_net(&mut rng, 4, 8, 3);
        let x = Matrix::row_vector(&[0.1, 0.2, 0.3, 0.4]);
        let (hidden, out) = net.infer_with_hidden(&x, 2);
        assert_eq!(hidden.shape(), (1, 8));
        assert_eq!(out.shape(), (1, 3));
        // The hidden capture after the LayerNorm must differ from the raw
        // post-linear activations.
        let (h1, _) = net.infer_with_hidden(&x, 0);
        assert_ne!(hidden, h1);
    }

    #[test]
    fn network_learns_xor() {
        // XOR is the classic non-linearly-separable sanity check: if the
        // stack, losses, and optimizer compose correctly, it must fit.
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Mlp::new()
            .push(LayerKind::Linear(Linear::new(&mut rng, 2, 16)))
            .push(LayerKind::Tanh(Tanh::new()))
            .push(LayerKind::Linear(Linear::new(&mut rng, 16, 2)));
        let x =
            Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]]);
        let y = [0usize, 1, 1, 0];
        let mut opt = Adam::new(0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            net.zero_grad();
            let logits = net.forward(&x);
            let (loss, grad) = softmax_cross_entropy(&logits, &y);
            net.backward(&grad);
            opt.step(&mut net.params_mut());
            final_loss = loss;
        }
        assert!(final_loss < 0.05, "XOR did not converge: loss {final_loss}");
        let logits = net.infer(&x);
        for (r, &t) in y.iter().enumerate() {
            assert_eq!(logits.argmax_row(r), t, "row {r} misclassified");
        }
    }

    #[test]
    fn json_roundtrip_preserves_inference() {
        let mut rng = StdRng::seed_from_u64(13);
        let net = small_net(&mut rng, 5, 6, 2);
        let x = Matrix::row_vector(&[0.3, -0.1, 0.7, 0.0, -0.5]);
        let before = net.infer(&x);
        let restored = Mlp::from_json(&net.to_json()).expect("roundtrip");
        let after = restored.infer(&x);
        assert_eq!(before, after);
    }

    #[test]
    fn param_count_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = small_net(&mut rng, 4, 8, 3);
        // Linear(4→8): 32+8; LayerNorm(8): 8+8; Linear(8→3): 24+3.
        assert_eq!(net.param_count(), 32 + 8 + 8 + 8 + 24 + 3);
    }
}
