//! A serializable sequential network container.
//!
//! [`Mlp`] stacks a fixed vocabulary of layers ([`LayerKind`]) so that
//! whole models — controllers and Agua surrogates alike — can be saved
//! and restored as JSON checkpoints without trait-object gymnastics.
//! The checkpoint codec itself lives in `agua-app` (`codec::Artifact`),
//! which is the one home for on-disk formats.

use crate::layer::{BackwardScratch, Layer, LayerNorm, Linear, Param, ReLU, Tanh};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};

/// Any layer the sequential container can hold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum LayerKind {
    /// Fully connected affine layer.
    Linear(Linear),
    /// Rectified linear activation.
    ReLU(ReLU),
    /// Hyperbolic tangent activation.
    Tanh(Tanh),
    /// Layer normalization.
    LayerNorm(LayerNorm),
}

impl Layer for LayerKind {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        match self {
            LayerKind::Linear(l) => l.forward(input),
            LayerKind::ReLU(l) => l.forward(input),
            LayerKind::Tanh(l) => l.forward(input),
            LayerKind::LayerNorm(l) => l.forward(input),
        }
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        match self {
            LayerKind::Linear(l) => l.backward(grad_output),
            LayerKind::ReLU(l) => l.backward(grad_output),
            LayerKind::Tanh(l) => l.backward(grad_output),
            LayerKind::LayerNorm(l) => l.backward(grad_output),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            LayerKind::Linear(l) => l.params_mut(),
            LayerKind::ReLU(l) => l.params_mut(),
            LayerKind::Tanh(l) => l.params_mut(),
            LayerKind::LayerNorm(l) => l.params_mut(),
        }
    }
}

impl LayerKind {
    /// Inference-only forward pass that does not cache activations, usable
    /// through a shared reference.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        match self {
            LayerKind::Linear(l) => l.infer(input),
            LayerKind::ReLU(l) => l.infer(input),
            LayerKind::Tanh(l) => l.infer(input),
            LayerKind::LayerNorm(l) => l.infer(input),
        }
    }

    /// [`LayerKind::infer`] into a caller-owned buffer; bitwise-identical
    /// output, no steady-state allocation.
    pub fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        match self {
            LayerKind::Linear(l) => l.infer_into(input, out),
            LayerKind::ReLU(l) => l.infer_into(input, out),
            LayerKind::Tanh(l) => l.infer_into(input, out),
            LayerKind::LayerNorm(l) => l.infer_into(input, out),
        }
    }

    /// [`Layer::forward`] into a caller-owned buffer; bitwise-identical
    /// output, no steady-state allocation.
    pub fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        match self {
            LayerKind::Linear(l) => l.forward_into(input, out),
            LayerKind::ReLU(l) => l.forward_into(input, out),
            LayerKind::Tanh(l) => l.forward_into(input, out),
            LayerKind::LayerNorm(l) => l.forward_into(input, out),
        }
    }

    /// [`Layer::backward`] writing `dL/d(input)` into `dx`, staging
    /// intermediates in `scratch`.
    pub fn backward_into(
        &mut self,
        grad_output: &Matrix,
        dx: &mut Matrix,
        scratch: &mut BackwardScratch,
    ) {
        match self {
            LayerKind::Linear(l) => l.backward_into(grad_output, dx, scratch),
            LayerKind::ReLU(l) => l.backward_into(grad_output, dx),
            LayerKind::Tanh(l) => l.backward_into(grad_output, dx),
            LayerKind::LayerNorm(l) => l.backward_into(grad_output, dx, scratch),
        }
    }
}

/// Reusable activation/gradient buffers for allocation-free training
/// steps via [`Mlp::forward_ws`] / [`Mlp::backward_ws`].
///
/// One workspace serves one network; after the first step every buffer
/// has reached its steady-state capacity and subsequent steps perform no
/// heap allocation. The workspace holds no model state — dropping it and
/// starting fresh changes nothing but allocation traffic.
#[derive(Debug, Default)]
pub struct MlpWorkspace {
    /// `acts[i]` is the output of layer `i` (last entry = network output).
    acts: Vec<Matrix>,
    /// `grads[i]` is `dL/d(input of layer i)`.
    grads: Vec<Matrix>,
    /// Shared per-layer backward intermediates.
    scratch: BackwardScratch,
}

/// Ping-pong activation buffers for allocation-free inference via
/// [`Mlp::forward_into`]. Holds no model state; after the first call
/// both buffers reach steady-state capacity and subsequent passes over
/// same-shaped batches perform no heap allocation.
#[derive(Debug, Default)]
pub struct InferWorkspace {
    a: Matrix,
    b: Matrix,
}

/// A sequential multi-layer network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    /// Layers applied in order.
    pub layers: Vec<LayerKind>,
}

impl Mlp {
    /// Creates an empty network; push layers with [`Mlp::push`].
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer and returns `self` for builder-style chaining.
    pub fn push(mut self, layer: LayerKind) -> Self {
        self.layers.push(layer);
        self
    }

    /// Training forward pass: caches activations in every layer.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x);
        }
        x
    }

    /// Inference forward pass through a shared reference (no caching).
    ///
    /// Routed through [`Mlp::forward_into`], so `Linear → ReLU →
    /// LayerNorm` windows run fused; the output is bitwise identical to
    /// the per-layer [`LayerKind::infer`] loop.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut ws = InferWorkspace::default();
        let mut out = Matrix::default();
        out.copy_from(self.forward_into(input, &mut ws));
        out
    }

    /// Inference forward pass into workspace-owned ping-pong buffers:
    /// no activation caching, no steady-state allocation, and
    /// `Linear → ReLU → LayerNorm` windows (the shape of Agua's concept
    /// mapping function δ) are **fused** — one [`Linear::infer_into`]
    /// followed by a single row-partitioned epilogue that applies the
    /// ReLU and the LayerNorm per row, instead of three full passes over
    /// the activation matrix.
    ///
    /// The epilogue evaluates exactly the expressions of
    /// `ReLU::infer` and [`LayerNorm::normalize_affine_row`] per row,
    /// and each row is owned by one executor, so the result is bitwise
    /// identical to the unfused per-layer loop at any thread count.
    ///
    /// The returned reference points into `ws` and stays valid until the
    /// next call with the same workspace.
    pub fn forward_into<'w>(&self, input: &Matrix, ws: &'w mut InferWorkspace) -> &'w Matrix {
        let n = self.layers.len();
        let InferWorkspace { a, b } = ws;
        if n == 0 {
            a.copy_from(input);
            return a;
        }
        let mut i = 0;
        let mut first = true;
        // `flip == false` means the next output lands in `a`.
        let mut flip = false;
        while i < n {
            let fused = i + 2 < n
                && matches!(&self.layers[i], LayerKind::Linear(_))
                && matches!(&self.layers[i + 1], LayerKind::ReLU(_))
                && matches!(&self.layers[i + 2], LayerKind::LayerNorm(_));
            let (src, dst): (&Matrix, &mut Matrix) = if first {
                (input, &mut *a)
            } else if flip {
                (&*a, &mut *b)
            } else {
                (&*b, &mut *a)
            };
            if fused {
                let LayerKind::Linear(lin) = &self.layers[i] else { unreachable!() };
                let LayerKind::LayerNorm(ln) = &self.layers[i + 2] else { unreachable!() };
                lin.infer_into(src, dst);
                crate::parallel::par_for_each_rows_cost(
                    dst,
                    crate::parallel::NORM_ELEM_FLOPS,
                    |_, row| {
                        for v in row.iter_mut() {
                            *v = v.max(0.0);
                        }
                        ln.normalize_affine_row(row);
                    },
                );
                i += 3;
            } else {
                self.layers[i].infer_into(src, dst);
                i += 1;
            }
            first = false;
            flip = !flip;
        }
        // `flip` was toggled after the last write: true ⇒ result in `a`.
        if flip {
            a
        } else {
            b
        }
    }

    /// Inference capturing the intermediate activation after layer
    /// `hidden_after` (0-based, inclusive) alongside the final output.
    ///
    /// Controllers expose their embedding network `h(x)` this way: the
    /// activations of the penultimate hidden layer are handed to Agua's
    /// concept mapping function.
    pub fn infer_with_hidden(&self, input: &Matrix, hidden_after: usize) -> (Matrix, Matrix) {
        assert!(hidden_after < self.layers.len(), "hidden layer index out of range");
        let mut x = input.clone();
        let mut hidden = None;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.infer(&x);
            if i == hidden_after {
                hidden = Some(x.clone());
            }
        }
        (hidden.expect("hidden layer captured"), x)
    }

    /// Backpropagates `dL/d(output)` through the stack, accumulating
    /// parameter gradients and returning `dL/d(input)`.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// [`Mlp::forward`] into workspace-owned buffers: bitwise-identical
    /// output, allocation-free once `ws` has warmed up. The returned
    /// reference points into `ws` and stays valid until the next
    /// workspace call.
    pub fn forward_ws<'w>(&mut self, input: &Matrix, ws: &'w mut MlpWorkspace) -> &'w Matrix {
        let n = self.layers.len();
        ws.acts.resize_with(n.max(1), Matrix::default);
        if n == 0 {
            ws.acts[0].copy_from(input);
            return &ws.acts[0];
        }
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if i == 0 {
                layer.forward_into(input, &mut ws.acts[0]);
            } else {
                let (prev, rest) = ws.acts.split_at_mut(i);
                layer.forward_into(&prev[i - 1], &mut rest[0]);
            }
        }
        &ws.acts[n - 1]
    }

    /// [`Mlp::backward`] into workspace-owned buffers: accumulates the
    /// same parameter gradients bitwise and returns `dL/d(input)`
    /// borrowed from `ws`. Must follow a [`Mlp::forward_ws`] (or
    /// [`Mlp::forward`]) on the same batch.
    pub fn backward_ws<'w>(
        &mut self,
        grad_output: &Matrix,
        ws: &'w mut MlpWorkspace,
    ) -> &'w Matrix {
        let n = self.layers.len();
        ws.grads.resize_with(n.max(1), Matrix::default);
        if n == 0 {
            ws.grads[0].copy_from(grad_output);
            return &ws.grads[0];
        }
        for j in (0..n).rev() {
            if j == n - 1 {
                self.layers[j].backward_into(grad_output, &mut ws.grads[j], &mut ws.scratch);
            } else {
                let (left, right) = ws.grads.split_at_mut(j + 1);
                self.layers[j].backward_into(&right[0], &mut left[j], &mut ws.scratch);
            }
        }
        &ws.grads[0]
    }

    /// All parameters of all layers.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Clears every accumulated gradient.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of scalar parameters.
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.rows() * p.value.cols()).sum()
    }
}

impl Default for Mlp {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_net(rng: &mut StdRng, in_dim: usize, hidden: usize, out: usize) -> Mlp {
        Mlp::new()
            .push(LayerKind::Linear(Linear::new(rng, in_dim, hidden)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::LayerNorm(LayerNorm::new(hidden)))
            .push(LayerKind::Linear(Linear::new(rng, hidden, out)))
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut net = small_net(&mut rng, 4, 8, 3);
        let x = Matrix::from_rows(&[vec![0.1, -0.2, 0.3, 0.4], vec![1.0, 0.0, -1.0, 0.5]]);
        let a = net.forward(&x);
        let b = net.infer(&x);
        assert_eq!(a, b);
    }

    #[test]
    fn infer_with_hidden_returns_intermediate() {
        let mut rng = StdRng::seed_from_u64(42);
        let net = small_net(&mut rng, 4, 8, 3);
        let x = Matrix::row_vector(&[0.1, 0.2, 0.3, 0.4]);
        let (hidden, out) = net.infer_with_hidden(&x, 2);
        assert_eq!(hidden.shape(), (1, 8));
        assert_eq!(out.shape(), (1, 3));
        // The hidden capture after the LayerNorm must differ from the raw
        // post-linear activations.
        let (h1, _) = net.infer_with_hidden(&x, 0);
        assert_ne!(hidden, h1);
    }

    #[test]
    fn network_learns_xor() {
        // XOR is the classic non-linearly-separable sanity check: if the
        // stack, losses, and optimizer compose correctly, it must fit.
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = Mlp::new()
            .push(LayerKind::Linear(Linear::new(&mut rng, 2, 16)))
            .push(LayerKind::Tanh(Tanh::new()))
            .push(LayerKind::Linear(Linear::new(&mut rng, 16, 2)));
        let x =
            Matrix::from_rows(&[vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]]);
        let y = [0usize, 1, 1, 0];
        let mut opt = Adam::new(0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            net.zero_grad();
            let logits = net.forward(&x);
            let (loss, grad) = softmax_cross_entropy(&logits, &y);
            net.backward(&grad);
            opt.step(&mut net.params_mut());
            final_loss = loss;
        }
        assert!(final_loss < 0.05, "XOR did not converge: loss {final_loss}");
        let logits = net.infer(&x);
        for (r, &t) in y.iter().enumerate() {
            assert_eq!(logits.argmax_row(r), t, "row {r} misclassified");
        }
    }

    // JSON checkpoint round-trips are covered where the codec lives:
    // `agua-app`'s `codec` tests restore an Mlp from bytes and assert
    // bit-identical inference.

    #[test]
    fn workspace_training_step_is_bitwise_identical_to_allocating_path() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut alloc_net = Mlp::new()
            .push(LayerKind::Linear(Linear::new(&mut rng, 4, 8)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::LayerNorm(LayerNorm::new(8)))
            .push(LayerKind::Tanh(Tanh::new()))
            .push(LayerKind::Linear(Linear::new(&mut rng, 8, 3)));
        let mut ws_net = alloc_net.clone();
        let mut ws = MlpWorkspace::default();

        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        let x = test_batch();
        let seed = Matrix::from_fn(3, 3, |r, c| 0.21 * (r as f32) - 0.13 * (c as f32) + 0.4);

        // Two steps so the second runs against warm (stale) buffers.
        for _ in 0..2 {
            alloc_net.zero_grad();
            ws_net.zero_grad();
            let out_a = alloc_net.forward(&x);
            let out_w = ws_net.forward_ws(&x, &mut ws);
            assert_eq!(bits(&out_a), bits(out_w));
            let dx_a = alloc_net.backward(&seed);
            let dx_w = ws_net.backward_ws(&seed, &mut ws);
            assert_eq!(bits(&dx_a), bits(dx_w));
            for (pa, pw) in alloc_net.params_mut().iter().zip(ws_net.params_mut().iter()) {
                assert_eq!(bits(&pa.grad), bits(&pw.grad));
            }
        }
    }

    fn test_batch() -> Matrix {
        Matrix::from_rows(&[
            vec![0.5, -1.2, 2.0, 0.1],
            vec![-0.3, 0.8, -0.9, 1.5],
            vec![1.1, 0.2, 0.4, -0.6],
        ])
    }

    /// Unfused per-layer inference loop: the reference the fused
    /// [`Mlp::forward_into`] must match bitwise.
    fn infer_unfused(net: &Mlp, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for layer in &net.layers {
            out = layer.infer(&out);
        }
        out
    }

    #[test]
    fn fused_forward_into_is_bitwise_identical_to_unfused() {
        let mut rng = StdRng::seed_from_u64(17);
        let net = small_net(&mut rng, 6, 32, 5);
        let x = Matrix::from_fn(9, 6, |r, c| 0.37 * (r as f32) - 0.21 * (c as f32) + 0.05);
        let reference = infer_unfused(&net, &x);
        let mut ws = InferWorkspace::default();
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        // Twice through the same workspace: the second pass runs against
        // warm (stale) buffers.
        for _ in 0..2 {
            let fused = net.forward_into(&x, &mut ws);
            assert_eq!(bits(&reference), bits(fused));
        }
        assert_eq!(bits(&reference), bits(&net.infer(&x)));
    }

    #[test]
    fn fused_forward_handles_non_fusable_stacks() {
        // No Linear→ReLU→LayerNorm window anywhere: every layer goes
        // through the per-layer fallback, including odd orderings.
        let mut rng = StdRng::seed_from_u64(23);
        let net = Mlp::new()
            .push(LayerKind::LayerNorm(LayerNorm::new(4)))
            .push(LayerKind::Linear(Linear::new(&mut rng, 4, 7)))
            .push(LayerKind::Tanh(Tanh::new()))
            .push(LayerKind::ReLU(ReLU::new()));
        let x = test_batch();
        let mut ws = InferWorkspace::default();
        assert_eq!(infer_unfused(&net, &x), *net.forward_into(&x, &mut ws));
    }

    #[test]
    fn fused_forward_handles_empty_and_single_layer_nets() {
        let mut ws = InferWorkspace::default();
        let x = test_batch();
        let empty = Mlp::new();
        assert_eq!(*empty.forward_into(&x, &mut ws), x);
        let single = Mlp::new().push(LayerKind::ReLU(ReLU::new()));
        assert_eq!(*single.forward_into(&x, &mut ws), infer_unfused(&single, &x));
    }

    #[test]
    fn fused_forward_is_bitwise_identical_across_thread_counts() {
        use crate::parallel::{with_thread_config, ThreadConfig};
        let mut rng = StdRng::seed_from_u64(31);
        let net = small_net(&mut rng, 8, 16, 4);
        let x = Matrix::from_fn(21, 8, |r, c| ((r * 8 + c) as f32).sin());
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        let forced = |threads| ThreadConfig { threads, min_flops: 0 };
        let base = with_thread_config(forced(1), || net.infer(&x));
        for threads in [2, 4, 7] {
            let par = with_thread_config(forced(threads), || net.infer(&x));
            assert_eq!(bits(&base), bits(&par), "threads={threads}");
        }
    }

    #[test]
    fn param_count_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = small_net(&mut rng, 4, 8, 3);
        // Linear(4→8): 32+8; LayerNorm(8): 8+8; Linear(8→3): 24+3.
        assert_eq!(net.param_count(), 32 + 8 + 8 + 8 + 24 + 3);
    }
}
