//! Neural-network layers with hand-derived backward passes.
//!
//! Each layer caches whatever it needs during [`Layer::forward`] so that a
//! following [`Layer::backward`] can compute input and parameter gradients.
//! The usage contract is strictly `forward` → `backward` on the same batch;
//! this is asserted where cheap.
//!
//! Every layer additionally offers `forward_into` / `backward_into`
//! variants that write into caller-owned buffers (plus a shared
//! [`BackwardScratch`] for intermediates), making a steady-state
//! training step allocation-free — see `Mlp::forward_ws`. The `_into`
//! passes compute exactly the same expressions in the same order as the
//! allocating ones, so trained weights stay byte-identical. Output
//! buffers must not alias the layer input.

use crate::init;
use crate::matrix::Matrix;
use crate::parallel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A learnable tensor together with its gradient and optimizer state.
///
/// `m` and `v` are first/second-moment accumulators; SGD-with-momentum uses
/// only `m`, Adam uses both. They are sized lazily by the optimizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Gradient of the loss with respect to `value`, accumulated by
    /// `backward` and cleared by [`Param::zero_grad`].
    pub grad: Matrix,
    /// First-moment (momentum) accumulator.
    pub m: Matrix,
    /// Second-moment accumulator (Adam only).
    pub v: Matrix,
}

impl Param {
    /// Wraps a value tensor with zeroed gradient and optimizer state.
    pub fn new(value: Matrix) -> Self {
        let (r, c) = value.shape();
        Self { value, grad: Matrix::zeros(r, c), m: Matrix::zeros(r, c), v: Matrix::zeros(r, c) }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }
}

/// A differentiable transformation of a batch (`batch × features` matrix).
pub trait Layer {
    /// Computes the layer output, caching activations for `backward`.
    fn forward(&mut self, input: &Matrix) -> Matrix;

    /// Given `dL/d(output)`, accumulates parameter gradients and returns
    /// `dL/d(input)`.
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Mutable access to the layer's parameters (empty for stateless
    /// layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Clears all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }
}

/// Reusable scratch buffers threaded through the `*_into` backward
/// passes so steady-state training performs no heap allocation. One
/// instance is shared across all layers of a network (each pass fully
/// overwrites what it uses).
#[derive(Debug, Default)]
pub struct BackwardScratch {
    /// Matrix-shaped intermediate (Linear `dW`/`db`, LayerNorm `dγ`/`dβ`).
    pub mat: Matrix,
    /// Row-shaped intermediate (LayerNorm `dx̂`).
    pub row: Vec<f32>,
}

/// Fully connected affine layer: `y = x W + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, `in_dim × out_dim`.
    pub weight: Param,
    /// Bias row vector, `1 × out_dim`.
    pub bias: Param,
    #[serde(skip)]
    cached_input: Option<Matrix>,
}

impl Linear {
    /// Creates a linear layer with He-normal weights (good default for the
    /// ReLU stacks used throughout this workspace) and zero bias.
    pub fn new(rng: &mut impl Rng, in_dim: usize, out_dim: usize) -> Self {
        Self {
            weight: Param::new(init::he_normal(rng, in_dim, out_dim)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
            cached_input: None,
        }
    }

    /// Creates a linear layer with Xavier-uniform weights (for linear or
    /// tanh heads such as Agua's output mapping function Ω).
    pub fn new_xavier(rng: &mut impl Rng, in_dim: usize, out_dim: usize) -> Self {
        Self {
            weight: Param::new(init::xavier_uniform(rng, in_dim, out_dim)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
            cached_input: None,
        }
    }

    /// Reassembles a layer from saved parameters (artifact codecs).
    pub fn from_params(weight: Param, bias: Param) -> Self {
        assert_eq!(weight.value.cols(), bias.value.cols(), "bias width must match weight");
        Self { weight, bias, cached_input: None }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Forward pass without caching — usable through a shared reference,
    /// for inference paths that must not mutate the model.
    ///
    /// Runs on the deterministic parallel backend (see
    /// [`crate::parallel`]); results are byte-identical at any thread
    /// count.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.infer_into(input, &mut out);
        out
    }

    /// [`Linear::infer`] into a caller-owned buffer.
    pub fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        parallel::par_matmul_into(input, &self.weight.value, out);
        out.add_row_broadcast_assign(&self.bias.value);
    }

    /// [`Layer::forward`] into a caller-owned buffer; the input cache is
    /// reused across steps, so steady-state training does not allocate.
    pub fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        let mut cache = self.cached_input.take().unwrap_or_default();
        cache.copy_from(input);
        self.cached_input = Some(cache);
        self.infer_into(input, out);
    }

    /// [`Layer::backward`] writing `dL/d(input)` into `dx`, with the
    /// `dW`/`db` intermediates staged in `scratch`. Bitwise-identical
    /// gradients.
    pub fn backward_into(
        &mut self,
        grad_output: &Matrix,
        dx: &mut Matrix,
        scratch: &mut BackwardScratch,
    ) {
        let input = self.cached_input.as_ref().expect("Linear::backward called before forward");
        parallel::par_matmul_tn_into(input, grad_output, &mut scratch.mat);
        self.weight.grad.add_scaled_inplace(&scratch.mat, 1.0);
        grad_output.sum_rows_into(&mut scratch.mat);
        self.bias.grad.add_scaled_inplace(&scratch.mat, 1.0);
        parallel::par_matmul_nt_into(grad_output, &self.weight.value, dx);
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        self.cached_input = Some(input.clone());
        self.infer(input)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.cached_input.as_ref().expect("Linear::backward called before forward");
        // dW = xᵀ g, db = Σ_batch g, dx = g Wᵀ — each output row of the
        // parallel kernels is owned by one worker, so gradients are
        // byte-identical to the sequential path.
        self.weight.grad.add_scaled_inplace(&parallel::par_matmul_tn(input, grad_output), 1.0);
        self.bias.grad.add_scaled_inplace(&grad_output.sum_rows(), 1.0);
        parallel::par_matmul_nt(grad_output, &self.weight.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Rectified linear activation, `y = max(0, x)`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReLU {
    #[serde(skip)]
    cached_input: Option<Matrix>,
}

impl ReLU {
    /// Creates the activation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass without caching (inference only).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        input.map(|v| v.max(0.0))
    }

    /// [`ReLU::infer`] into a caller-owned buffer.
    pub fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        out.copy_from(input);
        out.map_inplace(|v| v.max(0.0));
    }

    /// [`Layer::forward`] into a caller-owned buffer with a reused
    /// input cache.
    pub fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        let mut cache = self.cached_input.take().unwrap_or_default();
        cache.copy_from(input);
        self.cached_input = Some(cache);
        out.copy_from(input);
        out.map_inplace(|v| v.max(0.0));
    }

    /// [`Layer::backward`] writing `dL/d(input)` into `dx`.
    pub fn backward_into(&mut self, grad_output: &Matrix, dx: &mut Matrix) {
        let input = self.cached_input.as_ref().expect("ReLU::backward called before forward");
        assert_eq!(input.shape(), grad_output.shape());
        dx.copy_from(grad_output);
        for (d, &x) in dx.as_mut_slice().iter_mut().zip(input.as_slice()) {
            *d = if x > 0.0 { *d } else { 0.0 };
        }
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        self.cached_input = Some(input.clone());
        self.infer(input)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self.cached_input.as_ref().expect("ReLU::backward called before forward");
        assert_eq!(input.shape(), grad_output.shape());
        Matrix::from_fn(input.rows(), input.cols(), |r, c| {
            if input.get(r, c) > 0.0 {
                grad_output.get(r, c)
            } else {
                0.0
            }
        })
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Tanh {
    #[serde(skip)]
    cached_output: Option<Matrix>,
}

impl Tanh {
    /// Creates the activation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forward pass without caching (inference only).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        input.map(f32::tanh)
    }

    /// [`Tanh::infer`] into a caller-owned buffer.
    pub fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        out.copy_from(input);
        out.map_inplace(f32::tanh);
    }

    /// [`Layer::forward`] into a caller-owned buffer with a reused
    /// output cache.
    pub fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        out.copy_from(input);
        out.map_inplace(f32::tanh);
        let mut cache = self.cached_output.take().unwrap_or_default();
        cache.copy_from(out);
        self.cached_output = Some(cache);
    }

    /// [`Layer::backward`] writing `dL/d(input)` into `dx`.
    pub fn backward_into(&mut self, grad_output: &Matrix, dx: &mut Matrix) {
        let out = self.cached_output.as_ref().expect("Tanh::backward called before forward");
        assert_eq!(out.shape(), grad_output.shape());
        dx.copy_from(grad_output);
        // d tanh(x)/dx = 1 - tanh(x)²
        for (d, &y) in dx.as_mut_slice().iter_mut().zip(out.as_slice()) {
            *d *= 1.0 - y * y;
        }
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let out = self.infer(input);
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let out = self.cached_output.as_ref().expect("Tanh::backward called before forward");
        // d tanh(x)/dx = 1 - tanh(x)²
        grad_output.hadamard(&out.map(|y| 1.0 - y * y))
    }
}

/// Layer normalization over the feature dimension (Ba et al., 2016).
///
/// The paper's concept mapping function places a LayerNorm between its two
/// linear layers so that information "shifts away from the distribution of
/// the controller embeddings" (§4); this is the same normalization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerNorm {
    /// Per-feature scale γ, `1 × dim`.
    pub gamma: Param,
    /// Per-feature shift β, `1 × dim`.
    pub beta: Param,
    /// Numerical-stability epsilon added to the variance.
    pub eps: f32,
    #[serde(skip)]
    cached: Option<LayerNormCache>,
}

#[derive(Debug, Clone, Default)]
struct LayerNormCache {
    xhat: Matrix,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Creates a LayerNorm over `dim` features with γ=1, β=0.
    pub fn new(dim: usize) -> Self {
        Self {
            gamma: Param::new(Matrix::full(1, dim, 1.0)),
            beta: Param::new(Matrix::zeros(1, dim)),
            eps: 1e-5,
            cached: None,
        }
    }

    /// Reassembles a layer from saved parameters (artifact codecs).
    pub fn from_params(gamma: Param, beta: Param, eps: f32) -> Self {
        assert_eq!(gamma.value.shape(), beta.value.shape(), "γ and β must match");
        Self { gamma, beta, eps, cached: None }
    }

    fn normalize(&self, input: &Matrix) -> (Matrix, Vec<f32>) {
        let mut xhat = Matrix::default();
        let mut inv_stds = Vec::new();
        self.normalize_into(input, &mut xhat, &mut inv_stds);
        (xhat, inv_stds)
    }

    fn normalize_into(&self, input: &Matrix, xhat: &mut Matrix, inv_stds: &mut Vec<f32>) {
        let (n, d) = input.shape();
        xhat.reset_zeros(n, d);
        inv_stds.clear();
        inv_stds.reserve(n);
        for r in 0..n {
            let row = input.row(r);
            // audit:allow(fp-reduce): per-row moments in fixed column order
            // on the dispatching thread — LayerNorm rows are never split.
            let mean = row.iter().sum::<f32>() / d as f32;
            // audit:allow(fp-reduce): same fixed column order as `mean`.
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            for (c, &v) in row.iter().enumerate() {
                xhat.set(r, c, (v - mean) * inv_std);
            }
            inv_stds.push(inv_std);
        }
    }

    /// Forward pass without caching (inference only).
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let (xhat, _) = self.normalize(input);
        self.affine(&xhat)
    }

    /// [`LayerNorm::infer`] into a caller-owned buffer, normalizing each
    /// row in place without the `x̂` intermediate. Same expressions in
    /// the same order as `normalize_into` + `affine_into`, so the output
    /// is bitwise identical to [`LayerNorm::infer`].
    pub fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        out.copy_from(input);
        for r in 0..out.rows() {
            self.normalize_affine_row(out.row_mut(r));
        }
    }

    /// Normalizes one row in place: `row[c] ← x̂_c·γ_c + β_c` with the
    /// moments computed from the row itself. This is the fused-epilogue
    /// building block (`Mlp::forward_into`): the expressions and their
    /// evaluation order replicate `normalize_into` followed by
    /// `affine_into` exactly, and the row is self-contained, so calling
    /// it from a row-partitioned parallel loop stays byte-identical to
    /// the sequential unfused pass.
    pub fn normalize_affine_row(&self, row: &mut [f32]) {
        let d = row.len();
        assert_eq!(d, self.gamma.value.cols(), "row width must match γ/β");
        // audit:allow(fp-reduce): per-row moments in fixed column order;
        // rows are never split across executors.
        let mean = row.iter().sum::<f32>() / d as f32;
        // audit:allow(fp-reduce): same fixed column order as `mean`.
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let inv_std = 1.0 / (var + self.eps).sqrt();
        for (c, v) in row.iter_mut().enumerate() {
            *v = ((*v - mean) * inv_std) * self.gamma.value.get(0, c) + self.beta.value.get(0, c);
        }
    }

    fn affine(&self, xhat: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.affine_into(xhat, &mut out);
        out
    }

    fn affine_into(&self, xhat: &Matrix, out: &mut Matrix) {
        let (n, d) = xhat.shape();
        out.reset_zeros(n, d);
        for r in 0..n {
            for c in 0..d {
                out.set(
                    r,
                    c,
                    xhat.get(r, c) * self.gamma.value.get(0, c) + self.beta.value.get(0, c),
                );
            }
        }
    }

    /// [`Layer::forward`] into a caller-owned buffer; the `x̂`/`1/σ`
    /// cache buffers are reused across steps.
    pub fn forward_into(&mut self, input: &Matrix, out: &mut Matrix) {
        let mut cache = self.cached.take().unwrap_or_default();
        self.normalize_into(input, &mut cache.xhat, &mut cache.inv_std);
        self.affine_into(&cache.xhat, out);
        self.cached = Some(cache);
    }

    /// [`Layer::backward`] writing `dL/d(input)` into `dx`, with the
    /// `dγ`/`dβ`/`dx̂` intermediates staged in `scratch`.
    pub fn backward_into(
        &mut self,
        grad_output: &Matrix,
        dx: &mut Matrix,
        scratch: &mut BackwardScratch,
    ) {
        let cache = self.cached.as_ref().expect("LayerNorm::backward called before forward");
        let (n, d) = grad_output.shape();
        assert_eq!(cache.xhat.shape(), (n, d));

        // dγ_c = Σ_r g_{rc}·x̂_{rc}, accumulated r-ascending per column —
        // the same order as `hadamard(..).sum_rows()` on the allocating
        // path, so gradients stay bitwise-identical.
        scratch.mat.reset_zeros(1, d);
        for r in 0..n {
            for c in 0..d {
                let v = scratch.mat.get(0, c) + grad_output.get(r, c) * cache.xhat.get(r, c);
                scratch.mat.set(0, c, v);
            }
        }
        self.gamma.grad.add_scaled_inplace(&scratch.mat, 1.0);
        grad_output.sum_rows_into(&mut scratch.mat);
        self.beta.grad.add_scaled_inplace(&scratch.mat, 1.0);

        // Input gradient, per row (same expressions as `backward`):
        //   dx̂ = g ∘ γ
        //   dx  = inv_std · (dx̂ − mean(dx̂) − x̂ · mean(dx̂ ∘ x̂))
        dx.reset_zeros(n, d);
        scratch.row.clear();
        scratch.row.resize(d, 0.0);
        for r in 0..n {
            for c in 0..d {
                scratch.row[c] = grad_output.get(r, c) * self.gamma.value.get(0, c);
            }
            // audit:allow(fp-reduce): per-row gradient moments in fixed
            // column order on the dispatching thread.
            let mean_dxhat = scratch.row.iter().sum::<f32>() / d as f32;
            // audit:allow(fp-reduce): same fixed column order as above.
            let mean_dxhat_xhat =
                scratch.row.iter().enumerate().map(|(c, &v)| v * cache.xhat.get(r, c)).sum::<f32>()
                    / d as f32;
            for c in 0..d {
                let v = cache.inv_std[r]
                    * (scratch.row[c] - mean_dxhat - cache.xhat.get(r, c) * mean_dxhat_xhat);
                dx.set(r, c, v);
            }
        }
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let (xhat, inv_std) = self.normalize(input);
        let out = self.affine(&xhat);
        self.cached = Some(LayerNormCache { xhat, inv_std });
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let cache = self.cached.as_ref().expect("LayerNorm::backward called before forward");
        let (n, d) = grad_output.shape();
        assert_eq!(cache.xhat.shape(), (n, d));

        // Parameter gradients: dγ_c = Σ_r g_{rc}·x̂_{rc}, dβ_c = Σ_r g_{rc}.
        self.gamma.grad.add_scaled_inplace(&grad_output.hadamard(&cache.xhat).sum_rows(), 1.0);
        self.beta.grad.add_scaled_inplace(&grad_output.sum_rows(), 1.0);

        // Input gradient, per row:
        //   dx̂ = g ∘ γ
        //   dx  = inv_std · (dx̂ − mean(dx̂) − x̂ · mean(dx̂ ∘ x̂))
        let mut dx = Matrix::zeros(n, d);
        for r in 0..n {
            let mut dxhat = vec![0.0f32; d];
            for c in 0..d {
                dxhat[c] = grad_output.get(r, c) * self.gamma.value.get(0, c);
            }
            // audit:allow(fp-reduce): per-row gradient moments in fixed
            // column order on the dispatching thread.
            let mean_dxhat = dxhat.iter().sum::<f32>() / d as f32;
            // audit:allow(fp-reduce): same fixed column order as above.
            let mean_dxhat_xhat =
                dxhat.iter().enumerate().map(|(c, &v)| v * cache.xhat.get(r, c)).sum::<f32>()
                    / d as f32;
            for c in 0..d {
                let v = cache.inv_std[r]
                    * (dxhat[c] - mean_dxhat - cache.xhat.get(r, c) * mean_dxhat_xhat);
                dx.set(r, c, v);
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Numerically checks `dL/dx` for a layer against central differences,
    /// with `L = Σ out ∘ seed`.
    fn check_input_gradient<L: Layer>(layer: &mut L, x: &Matrix, seed: &Matrix, tol: f32) {
        let out = layer.forward(x);
        assert_eq!(out.shape(), seed.shape());
        layer.zero_grad();
        let analytic = layer.backward(seed);

        let h = 1e-3f32;
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + h);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - h);
                let lp: f32 = layer.forward(&xp).hadamard(seed).as_slice().iter().sum();
                let lm: f32 = layer.forward(&xm).hadamard(seed).as_slice().iter().sum();
                let numeric = (lp - lm) / (2.0 * h);
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                    "grad mismatch at ({r},{c}): analytic {a}, numeric {numeric}"
                );
            }
        }
    }

    fn test_input() -> Matrix {
        Matrix::from_rows(&[
            vec![0.5, -1.2, 2.0, 0.1],
            vec![-0.3, 0.8, -0.9, 1.5],
            vec![1.1, 0.2, 0.4, -0.6],
        ])
    }

    #[test]
    fn linear_forward_matches_manual() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lin = Linear::new(&mut rng, 2, 2);
        lin.weight.value = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        lin.bias.value = Matrix::row_vector(&[0.5, -0.5]);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let y = lin.forward(&x);
        assert_eq!(y.as_slice(), &[4.5, 5.5]);
    }

    #[test]
    fn linear_input_gradient_is_correct() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lin = Linear::new(&mut rng, 4, 3);
        let x = test_input();
        let seed = Matrix::from_fn(3, 3, |r, c| ((r + 2 * c) as f32 * 0.3) - 0.5);
        check_input_gradient(&mut lin, &x, &seed, 1e-2);
    }

    #[test]
    fn linear_weight_gradient_matches_numeric() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lin = Linear::new(&mut rng, 4, 2);
        let x = test_input();
        let seed = Matrix::full(3, 2, 1.0);
        lin.zero_grad();
        lin.forward(&x);
        lin.backward(&seed);
        let analytic = lin.weight.grad.clone();

        let h = 1e-3f32;
        for r in 0..4 {
            for c in 0..2 {
                let orig = lin.weight.value.get(r, c);
                lin.weight.value.set(r, c, orig + h);
                let lp: f32 = lin.infer(&x).as_slice().iter().sum();
                lin.weight.value.set(r, c, orig - h);
                let lm: f32 = lin.infer(&x).as_slice().iter().sum();
                lin.weight.value.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * h);
                assert!(
                    (analytic.get(r, c) - numeric).abs() < 1e-2,
                    "weight grad mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn relu_zeroes_negative_inputs_and_gradients() {
        let mut relu = ReLU::new();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
        let g = relu.backward(&Matrix::full(1, 4, 1.0));
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn tanh_input_gradient_is_correct() {
        let mut tanh = Tanh::new();
        let x = test_input();
        let seed = Matrix::from_fn(3, 4, |r, c| 0.2 * (r as f32) - 0.1 * (c as f32) + 0.3);
        check_input_gradient(&mut tanh, &x, &seed, 1e-2);
    }

    #[test]
    fn layernorm_output_has_zero_mean_unit_variance_per_row() {
        let mut ln = LayerNorm::new(4);
        let x = test_input();
        let y = ln.forward(&x);
        for r in 0..y.rows() {
            let row = y.row(r);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layernorm_input_gradient_is_correct() {
        let mut ln = LayerNorm::new(4);
        // Exercise non-trivial γ/β.
        ln.gamma.value = Matrix::row_vector(&[1.5, 0.5, -1.0, 2.0]);
        ln.beta.value = Matrix::row_vector(&[0.1, -0.2, 0.3, 0.0]);
        let x = test_input();
        let seed = Matrix::from_fn(3, 4, |r, c| 0.15 * ((r * 4 + c) as f32) - 0.4);
        check_input_gradient(&mut ln, &x, &seed, 2e-2);
    }

    #[test]
    fn layernorm_param_gradients_match_numeric() {
        let mut ln = LayerNorm::new(3);
        let x = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![0.2, 0.9, -1.4]]);
        let seed = Matrix::full(2, 3, 1.0);
        ln.zero_grad();
        ln.forward(&x);
        ln.backward(&seed);
        let dgamma = ln.gamma.grad.clone();

        let h = 1e-3f32;
        for c in 0..3 {
            let orig = ln.gamma.value.get(0, c);
            ln.gamma.value.set(0, c, orig + h);
            let lp: f32 = ln.infer(&x).as_slice().iter().sum();
            ln.gamma.value.set(0, c, orig - h);
            let lm: f32 = ln.infer(&x).as_slice().iter().sum();
            ln.gamma.value.set(0, c, orig);
            let numeric = (lp - lm) / (2.0 * h);
            assert!((dgamma.get(0, c) - numeric).abs() < 1e-2);
        }
    }

    #[test]
    fn zero_grad_clears_all_params() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lin = Linear::new(&mut rng, 3, 3);
        let x = Matrix::full(2, 3, 1.0);
        lin.forward(&x);
        lin.backward(&Matrix::full(2, 3, 1.0));
        assert!(lin.weight.grad.l1_norm() > 0.0);
        lin.zero_grad();
        assert_eq!(lin.weight.grad.l1_norm(), 0.0);
        assert_eq!(lin.bias.grad.l1_norm(), 0.0);
    }
}
