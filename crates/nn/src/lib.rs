//! # agua-nn — minimal dense neural-network substrate
//!
//! A from-scratch, dependency-light neural-network library sized for the
//! models used by the Agua reproduction:
//!
//! * the **concept mapping function** δ — `Linear → ReLU → LayerNorm →
//!   Linear` (paper §3.4 / §4),
//! * the **output mapping function** Ω — a single `Linear` layer trained
//!   with ElasticNet regularization (paper Eq. 5–6),
//! * the **controllers** being explained — small MLP policies and
//!   classifiers for ABR, congestion control, and DDoS detection.
//!
//! All tensors are dense, row-major, `f32`, batch-major (`batch × features`).
//! Gradients are derived by hand per layer; there is no tape autodiff.
//! Everything is deterministic given an RNG seed — including under the
//! [`parallel`] backend, whose row-partitioned kernels are byte-identical
//! to the sequential ones at any thread count (`AGUA_THREADS`), and which
//! dispatches to a lazily-spawned persistent worker pool ([`pool`]).
//!
//! The crate deliberately avoids fancy generics and confines `unsafe` to
//! one audited region (the lifetime-erased task handoff in [`pool`],
//! whose soundness argument is documented there): robustness and
//! auditability over raw speed, in the spirit of event-driven networking
//! libraries such as smoltcp. The crate root carries
//! `#![deny(unsafe_code)]`, overridden for [`pool`] alone, and
//! `cargo xtask audit` cross-checks the same invariant at the source
//! level; every other workspace crate is `#![forbid(unsafe_code)]`.
//!
//! ## Verification
//!
//! The pool's concurrency protocol is model-checked: [`sync`] abstracts
//! its primitives (`std` normally, the vendored [`loom`] facades under
//! `RUSTFLAGS="--cfg loom"`), and `tests/loom_pool.rs` explores the
//! dispatch/latch/shutdown interleavings exhaustively under a
//! preemption bound. See DESIGN.md §10 and `ci.sh --deep`.

// `unsafe` is denied crate-wide and re-allowed only for the audited
// worker-pool handoff; see the soundness argument in `pool`.
#![deny(unsafe_code)]

pub mod gradcheck;
pub mod handoff;
pub mod init;
pub mod layer;
pub mod loom;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod parallel;
#[allow(unsafe_code)]
pub mod pool;
pub mod quant;
pub mod sync;

pub use handoff::{Abandoned, BatchQueue, Responder, SubmitError, Ticket};
pub use layer::{BackwardScratch, Layer, LayerNorm, Linear, Param, ReLU, Tanh};
pub use loss::{
    entropy_of_rows, grouped_softmax_cross_entropy, grouped_softmax_cross_entropy_into, mse_loss,
    softmax_cross_entropy, softmax_cross_entropy_into, softmax_cross_entropy_weighted,
    softmax_rows,
};
pub use matrix::Matrix;
pub use mlp::{InferWorkspace, LayerKind, Mlp, MlpWorkspace};
pub use optim::{Adam, ElasticNet, Optimizer, Sgd};
pub use parallel::{
    par_matmul, par_matmul_into, par_matmul_nt, par_matmul_nt_into, par_matmul_tn,
    par_matmul_tn_into, set_global_threads, with_thread_config, with_threads, ThreadConfig,
};
pub use quant::{QuantError, QuantInferWorkspace, QuantLayer, QuantizedLinear, QuantizedMlp};
