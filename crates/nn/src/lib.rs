//! # agua-nn — minimal dense neural-network substrate
//!
//! A from-scratch, dependency-light neural-network library sized for the
//! models used by the Agua reproduction:
//!
//! * the **concept mapping function** δ — `Linear → ReLU → LayerNorm →
//!   Linear` (paper §3.4 / §4),
//! * the **output mapping function** Ω — a single `Linear` layer trained
//!   with ElasticNet regularization (paper Eq. 5–6),
//! * the **controllers** being explained — small MLP policies and
//!   classifiers for ABR, congestion control, and DDoS detection.
//!
//! All tensors are dense, row-major, `f32`, batch-major (`batch × features`).
//! Gradients are derived by hand per layer; there is no tape autodiff.
//! Everything is deterministic given an RNG seed — including under the
//! [`parallel`] backend, whose row-partitioned kernels are byte-identical
//! to the sequential ones at any thread count (`AGUA_THREADS`).
//!
//! The crate deliberately avoids `unsafe` and fancy generics: robustness
//! and auditability over raw speed, in the spirit of event-driven
//! networking libraries such as smoltcp.

pub mod gradcheck;
pub mod init;
pub mod layer;
pub mod loss;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod parallel;

pub use layer::{Layer, LayerNorm, Linear, Param, ReLU, Tanh};
pub use loss::{
    entropy_of_rows, grouped_softmax_cross_entropy, mse_loss, softmax_cross_entropy,
    softmax_cross_entropy_weighted, softmax_rows,
};
pub use matrix::Matrix;
pub use mlp::{LayerKind, Mlp};
pub use optim::{Adam, ElasticNet, Optimizer, Sgd};
pub use parallel::{
    par_matmul, par_matmul_nt, par_matmul_tn, set_global_threads, with_thread_config, with_threads,
    ThreadConfig,
};
