//! Int8 quantized **inference-only** network mirror.
//!
//! [`QuantizedMlp`] freezes a trained [`Mlp`] into per-tensor symmetric
//! int8 weights (`w ≈ q · scale`, `q ∈ [-127, 127]`). At inference the
//! activations are dynamically quantized per batch with the same
//! symmetric scheme, the matmul accumulates in `i32` (exact — no
//! rounding inside the dot product), and the result is rescaled to
//! `f32` before the bias add. ReLU/Tanh/LayerNorm run in `f32` on the
//! dequantized activations: they are cheap relative to the matmuls and
//! keeping them exact confines the quantization error to the weights
//! and activations.
//!
//! This path trades accuracy for a 4× smaller weight footprint, so it
//! ships only behind a **fidelity gate**: `agua-core`'s
//! `QuantizedAguaModel::from_model_gated` refuses to hand out a
//! quantized surrogate whose fidelity drop against the `f32` model
//! exceeds the caller's ε (the paper's Table-2-style agreement check).
//!
//! Determinism: activation scales depend only on the batch values, the
//! `i32` accumulation is exact and order-independent, and the row
//! partitioning of the parallel backend never splits a row — so
//! quantized inference is byte-identical at any thread count.

use crate::layer::LayerNorm;
use crate::matrix::Matrix;
use crate::mlp::{LayerKind, Mlp};
use crate::parallel;

/// Symmetric per-tensor int8 quantization of a weight matrix, stored
/// **transposed** (`out_dim × in_dim`) so the inner dot products read
/// both operands contiguously.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLinear {
    /// Input feature dimension.
    pub in_dim: usize,
    /// Output feature dimension.
    pub out_dim: usize,
    /// Weight scale: `w[i][o] ≈ weight_t[o·in_dim + i] · scale`.
    pub scale: f32,
    /// Transposed quantized weights, `out_dim × in_dim`, row-major.
    pub weight_t: Vec<i8>,
    /// Bias kept in `f32` (`1 × out_dim`): it adds once per output, so
    /// quantizing it would cost accuracy for no footprint win.
    pub bias: Vec<f32>,
}

/// Quantizes `v / scale` to the symmetric int8 range. Non-finite values
/// saturate (`as` casts clamp; `NaN → 0`), matching the "absence of
/// signal" a poisoned weight should contribute.
fn quantize_value(v: f32, scale: f32) -> i8 {
    (v / scale).round().clamp(-127.0, 127.0) as i8
}

/// The symmetric per-tensor scale for `values`: `max |v| / 127`, with 1
/// as the degenerate all-zero fallback (any scale represents zero
/// exactly). Non-finite entries are ignored for the scale — they would
/// otherwise blow it up to ∞ and zero out every finite weight.
fn symmetric_scale(values: &[f32]) -> f32 {
    let mut max_abs = 0.0f32;
    for &v in values {
        if v.is_finite() {
            max_abs = max_abs.max(v.abs());
        }
    }
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

impl QuantizedLinear {
    /// Quantizes a trained `f32` linear layer (weight `in_dim × out_dim`,
    /// bias `1 × out_dim`).
    pub fn from_f32(weight: &Matrix, bias: &Matrix) -> Self {
        let (in_dim, out_dim) = weight.shape();
        assert_eq!(bias.shape(), (1, out_dim), "bias width must match weight");
        let scale = symmetric_scale(weight.as_slice());
        let mut weight_t = vec![0i8; in_dim * out_dim];
        for i in 0..in_dim {
            for o in 0..out_dim {
                weight_t[o * in_dim + i] = quantize_value(weight.get(i, o), scale);
            }
        }
        Self { in_dim, out_dim, scale, weight_t, bias: bias.row(0).to_vec() }
    }

    /// Reassembles a layer from saved parts (artifact codecs).
    ///
    /// # Panics
    /// Panics if the buffer lengths do not match the declared shape.
    pub fn from_parts(
        in_dim: usize,
        out_dim: usize,
        scale: f32,
        weight_t: Vec<i8>,
        bias: Vec<f32>,
    ) -> Self {
        assert_eq!(weight_t.len(), in_dim * out_dim, "weight buffer must be in_dim × out_dim");
        assert_eq!(bias.len(), out_dim, "bias must have one entry per output");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive and finite");
        Self { in_dim, out_dim, scale, weight_t, bias }
    }

    /// Quantized affine pass: dynamically quantizes `input`, multiplies
    /// in `i32`, rescales to `f32`, adds the bias. Row-partitioned on
    /// the parallel backend with the true per-output cost (`in_dim`
    /// MACs per element) as the gate hint.
    pub fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        assert_eq!(input.cols(), self.in_dim, "quantized linear dimension mismatch");
        let (n, kdim) = input.shape();
        let x_scale = symmetric_scale(input.as_slice());
        let qx: Vec<i8> = input.as_slice().iter().map(|&v| quantize_value(v, x_scale)).collect();
        let rescale = x_scale * self.scale;
        out.reset_zeros(n, self.out_dim);
        let weight_t = &self.weight_t;
        let bias = &self.bias;
        parallel::par_for_each_rows_cost(out, kdim.max(1), |r, row| {
            let xrow = &qx[r * kdim..(r + 1) * kdim];
            for (o, dst) in row.iter_mut().enumerate() {
                let wrow = &weight_t[o * kdim..(o + 1) * kdim];
                let mut acc = 0i32;
                for (&x, &w) in xrow.iter().zip(wrow) {
                    acc += i32::from(x) * i32::from(w);
                }
                *dst = acc as f32 * rescale + bias[o];
            }
        });
    }

    /// [`QuantizedLinear::infer_into`] returning a fresh matrix.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.infer_into(input, &mut out);
        out
    }

    /// Weight bytes of this layer (the footprint the quantization buys).
    pub fn weight_bytes(&self) -> usize {
        self.weight_t.len()
    }
}

/// A non-linear layer carried over to the quantized stack in `f32`.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantLayer {
    /// Int8 affine layer.
    Linear(QuantizedLinear),
    /// `max(0, x)`, exact.
    ReLU,
    /// `tanh(x)`, exact.
    Tanh,
    /// LayerNorm with `f32` γ/β (per-feature, `1 × dim`).
    LayerNorm {
        /// Per-feature scale γ.
        gamma: Vec<f32>,
        /// Per-feature shift β.
        beta: Vec<f32>,
        /// Variance epsilon.
        eps: f32,
    },
}

/// An inference-only int8 mirror of an [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    /// Layers applied in order.
    pub layers: Vec<QuantLayer>,
}

impl QuantizedMlp {
    /// Quantizes every `Linear` of a trained network; activations and
    /// normalizations are carried over exactly.
    pub fn from_mlp(mlp: &Mlp) -> Self {
        let layers = mlp
            .layers
            .iter()
            .map(|layer| match layer {
                LayerKind::Linear(l) => {
                    QuantLayer::Linear(QuantizedLinear::from_f32(&l.weight.value, &l.bias.value))
                }
                LayerKind::ReLU(_) => QuantLayer::ReLU,
                LayerKind::Tanh(_) => QuantLayer::Tanh,
                LayerKind::LayerNorm(l) => QuantLayer::LayerNorm {
                    gamma: l.gamma.value.row(0).to_vec(),
                    beta: l.beta.value.row(0).to_vec(),
                    eps: l.eps,
                },
            })
            .collect();
        Self { layers }
    }

    /// Inference through the quantized stack.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        let mut buf = Matrix::default();
        for layer in &self.layers {
            match layer {
                QuantLayer::Linear(l) => {
                    l.infer_into(&x, &mut buf);
                    std::mem::swap(&mut x, &mut buf);
                }
                QuantLayer::ReLU => x.map_inplace(|v| v.max(0.0)),
                QuantLayer::Tanh => x.map_inplace(f32::tanh),
                QuantLayer::LayerNorm { gamma, beta, eps } => {
                    let ln = layernorm_of(gamma, beta, *eps);
                    for r in 0..x.rows() {
                        ln.normalize_affine_row(x.row_mut(r));
                    }
                }
            }
        }
        x
    }

    /// Total quantized weight bytes across all linear layers.
    pub fn weight_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QuantLayer::Linear(q) => q.weight_bytes(),
                _ => 0,
            })
            .sum()
    }
}

/// Rehydrates a scratch [`LayerNorm`] so the quantized stack shares the
/// exact per-row normalization expressions with the `f32` path.
fn layernorm_of(gamma: &[f32], beta: &[f32], eps: f32) -> LayerNorm {
    let mut ln = LayerNorm::new(gamma.len());
    ln.gamma.value = Matrix::row_vector(gamma);
    ln.beta.value = Matrix::row_vector(beta);
    ln.eps = eps;
    ln
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Linear;
    use crate::layer::ReLU;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pattern(rows: usize, cols: usize, salt: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let h = (r as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((c as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
                .wrapping_add(salt);
            ((h % 2001) as f32 - 1000.0) / 500.0
        })
    }

    #[test]
    fn quantized_linear_tracks_f32_within_quantization_error() {
        let mut rng = StdRng::seed_from_u64(3);
        let lin = Linear::new(&mut rng, 16, 8);
        let q = QuantizedLinear::from_f32(&lin.weight.value, &lin.bias.value);
        let x = pattern(12, 16, 5);
        let exact = lin.infer(&x);
        let approx = q.infer(&x);
        for (a, b) in exact.as_slice().iter().zip(approx.as_slice()) {
            // Two int8 roundings over a 16-term dot product: loose bound.
            assert!((a - b).abs() < 0.15, "quantized output drifted: {a} vs {b}");
        }
    }

    #[test]
    fn quantized_inference_is_byte_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(9);
        let mlp = Mlp::new()
            .push(LayerKind::Linear(Linear::new(&mut rng, 12, 24)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::LayerNorm(LayerNorm::new(24)))
            .push(LayerKind::Linear(Linear::new(&mut rng, 24, 6)));
        let q = QuantizedMlp::from_mlp(&mlp);
        let x = pattern(33, 12, 11);
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        let base = parallel::with_thread_config(
            parallel::ThreadConfig { threads: 1, min_flops: 0 },
            || q.infer(&x),
        );
        for threads in [2, 4, 7] {
            let par = parallel::with_thread_config(
                parallel::ThreadConfig { threads, min_flops: 0 },
                || q.infer(&x),
            );
            assert_eq!(bits(&base), bits(&par), "threads={threads}");
        }
    }

    #[test]
    fn zero_weight_layer_quantizes_to_exact_zeros() {
        let weight = Matrix::zeros(4, 3);
        let bias = Matrix::row_vector(&[0.5, -0.25, 0.0]);
        let q = QuantizedLinear::from_f32(&weight, &bias);
        let out = q.infer(&pattern(2, 4, 1));
        for r in 0..2 {
            assert_eq!(out.row(r), &[0.5, -0.25, 0.0]);
        }
    }

    #[test]
    fn weight_bytes_counts_only_linear_layers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new()
            .push(LayerKind::Linear(Linear::new(&mut rng, 10, 20)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::Linear(Linear::new(&mut rng, 20, 5)));
        let q = QuantizedMlp::from_mlp(&mlp);
        assert_eq!(q.weight_bytes(), 10 * 20 + 20 * 5);
    }

    #[test]
    #[should_panic(expected = "weight buffer must be in_dim × out_dim")]
    fn from_parts_validates_shape() {
        let _ = QuantizedLinear::from_parts(3, 2, 0.1, vec![0i8; 5], vec![0.0; 2]);
    }
}
