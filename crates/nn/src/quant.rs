//! Int8 quantized **inference-only** network mirror.
//!
//! [`QuantizedMlp`] freezes a trained [`Mlp`] into per-tensor symmetric
//! int8 weights (`w ≈ q · scale`, `q ∈ [-127, 127]`). At inference the
//! activations are dynamically quantized per batch with the same
//! symmetric scheme, the matmul accumulates in `i32` (exact — no
//! rounding inside the dot product), and the result is rescaled to
//! `f32` before the bias add. ReLU/Tanh/LayerNorm run in `f32` on the
//! dequantized activations: they are cheap relative to the matmuls and
//! keeping them exact confines the quantization error to the weights
//! and activations.
//!
//! The matmul itself is **lane-wise**: weights stay `i8` at rest (the
//! 4× footprint win) and are widened to `i16` once per matmul into the
//! `QuantWorkspace` scratch — amortized across every row of the
//! batch — while activations quantize directly into `i16`. The inner
//! dot then runs sixteen `i32` accumulator lanes over `i16 × i16`
//! products (±127² fits `i16`, and the widening-multiply-add shape is
//! exactly what baseline SIMD targets fuse into a single
//! multiply-add-adjacent-pairs instruction; feeding the multiplier
//! `i8` directly would spend more cycles sign-extending than
//! multiplying). Integer addition is associative, so the lane split
//! changes nothing about the result bits — the retained
//! [`quant_row_scalar`] oracle and the lane kernel agree bit for bit
//! by construction.
//!
//! Dispatch goes through `parallel::par_matmul_q8`, which gates pool
//! handoff on its own calibrated break-even (`breakeven::MATMUL_Q8` —
//! int8 MACs are cheaper per element than f32 MACs, so the f32
//! thresholds would parallelize too early) and reports
//! `KernelDispatched` events like every other kernel.
//!
//! Inference is allocation-free in steady state: the dynamic input
//! quantization writes into a thread-local `QuantWorkspace` scratch,
//! and [`QuantizedMlp::forward_into`] ping-pongs activations through a
//! caller-owned [`QuantInferWorkspace`], fusing every
//! `Linear → ReLU → LayerNorm` window into one integer matmul plus a
//! single row-local `f32` epilogue (dequantize + bias + ReLU +
//! LayerNorm in one pass — the quantized mirror of `Mlp::forward_into`).
//!
//! This path trades accuracy for a 4× smaller weight footprint, so it
//! ships only behind a **fidelity gate**: `agua-core`'s
//! `QuantizedAguaModel::from_model_gated` refuses to hand out a
//! quantized surrogate whose fidelity drop against the `f32` model
//! exceeds the caller's ε (the paper's Table-2-style agreement check).
//!
//! Determinism: activation scales depend only on the batch values, the
//! `i32` accumulation is exact and order-independent, and the row
//! partitioning of the parallel backend never splits a row — so
//! quantized inference is byte-identical at any thread count.

use crate::matrix::Matrix;
use crate::mlp::{LayerKind, Mlp};
use crate::parallel;
use std::cell::Cell;

/// Why a tensor could not be quantized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantError {
    /// The symmetric scale underflowed to zero (every finite weight is
    /// subnormal-tiny): `v / 0` would poison `quantize_value` with
    /// ±∞/NaN quotients.
    ZeroScale,
    /// The scale is NaN, ±∞, or negative — not invertible.
    NonFiniteScale,
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::ZeroScale => write!(f, "quantization scale underflowed to zero"),
            QuantError::NonFiniteScale => {
                write!(f, "quantization scale is not positive and finite")
            }
        }
    }
}

impl std::error::Error for QuantError {}

/// Symmetric per-tensor int8 quantization of a weight matrix, stored
/// **transposed** (`out_dim × in_dim`) so the inner dot products read
/// both operands contiguously.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedLinear {
    /// Input feature dimension.
    pub in_dim: usize,
    /// Output feature dimension.
    pub out_dim: usize,
    /// Weight scale: `w[i][o] ≈ weight_t[o·in_dim + i] · scale`.
    pub scale: f32,
    /// Transposed quantized weights, `out_dim × in_dim`, row-major.
    pub weight_t: Vec<i8>,
    /// Bias kept in `f32` (`1 × out_dim`): it adds once per output, so
    /// quantizing it would cost accuracy for no footprint win.
    pub bias: Vec<f32>,
}

/// Quantizes `v · (1 / scale)` to the symmetric int8 range, rounding
/// to nearest (ties to even — the hardware default) via the
/// magic-number trick: adding `1.5 · 2²³` forces the clamped quotient
/// into a fixed-exponent `f32` whose low mantissa bits *are* the
/// rounded integer in two's complement, so the whole pipeline —
/// reciprocal multiply, clamp, non-finite select, bias add, bit
/// truncation — stays in vector registers with no division, no libm
/// rounding call, and no scalar float→int conversion. That matters:
/// this runs once per element of every inference input batch. The
/// clamp pins ±∞ to ±127 and the finite-select maps `NaN → 0`,
/// matching the "absence of signal" a poisoned weight should
/// contribute. Callers must hand in a scale that passed
/// [`validate_scale`] — a zero or non-finite scale would make every
/// quotient ±∞/NaN.
//= spec: specs/quantization.toml#round-nearest-even
//# MUST round to nearest with ties to even, implemented by adding the
//# magic constant 1.5 * 2^23
//= spec: specs/quantization.toml#nonfinite-mapping
//# A NaN value MUST quantize to 0, and +/- infinity MUST clamp to +/- 127
fn quantize_value(v: f32, scale: f32) -> i8 {
    // 1.5 × 2²³: large enough that adding any |c| ≤ 127 rounds c to an
    // integer in the mantissa, small enough that the low mantissa bits
    // hold c exactly (mod 2⁸ — which the i8 truncation takes anyway).
    const MAGIC: f32 = 12_582_912.0;
    debug_assert!(scale > 0.0 && scale.is_finite(), "quantize_value needs a validated scale");
    let q = v * (1.0 / scale);
    let c = q.clamp(-127.0, 127.0);
    let c = if c.is_finite() { c } else { 0.0 };
    ((c + MAGIC).to_bits() as u8) as i8
}

/// The symmetric per-tensor scale for `values`: `max |v| / 127`, with 1
/// as the degenerate all-zero fallback (any scale represents zero
/// exactly). Non-finite entries are ignored for the scale — they would
/// otherwise blow it up to ∞ and zero out every finite weight; the
/// branchless select (non-finite ⇒ 0, which never wins against the
/// running max of absolute values) keeps the scan vectorizable, and
/// `max` over finite absolutes is exact, so the lane split cannot
/// change the result. This scan runs over every element of every
/// inference batch, so its throughput is part of the quantized
/// inference budget.
//= spec: specs/quantization.toml#symmetric-scale
//# per-tensor symmetric: scale = max |v| / 127 over the tensor, where
//# non-finite entries are ignored
fn symmetric_scale(values: &[f32]) -> f32 {
    const LANES: usize = 8;
    let mut lanes = [0.0f32; LANES];
    let mut k = 0;
    while k + LANES <= values.len() {
        let vs: &[f32; LANES] = values[k..k + LANES].try_into().expect("8-lane chunk");
        for (m, &v) in lanes.iter_mut().zip(vs) {
            let a = v.abs();
            *m = m.max(if a.is_finite() { a } else { 0.0 });
        }
        k += LANES;
    }
    // audit:allow(fp-reduce): `max` over non-NaN values is exact and
    // fully associative — lane order cannot change the result.
    let mut max_abs = lanes.iter().fold(0.0f32, |m, &l| m.max(l));
    for &v in &values[k..] {
        let a = v.abs();
        max_abs = max_abs.max(if a.is_finite() { a } else { 0.0 });
    }
    if max_abs > 0.0 {
        max_abs / 127.0
    } else {
        1.0
    }
}

/// Accepts a scale iff it is positive and finite — the precondition of
/// [`quantize_value`]. `max |v| / 127` can underflow to zero when every
/// finite weight is subnormal-tiny; that case must surface as a typed
/// error, not as a division by zero inside the kernel.
//= spec: specs/quantization.toml#scale-validation
//# A quantization scale MUST be accepted only if it is positive and
//# finite; a degenerate scale surfaces as a typed error
fn validate_scale(scale: f32) -> Result<f32, QuantError> {
    if scale > 0.0 && scale.is_finite() {
        Ok(scale)
    } else if scale == 0.0 {
        Err(QuantError::ZeroScale)
    } else {
        Err(QuantError::NonFiniteScale)
    }
}

/// Activation scale for a batch: [`symmetric_scale`] hardened for the
/// runtime path. A scale that underflowed to zero (subnormal-only
/// batch) falls back to 1, which quantizes the batch to exact zeros
/// instead of poisoning [`quantize_value`].
fn activation_scale(values: &[f32]) -> f32 {
    validate_scale(symmetric_scale(values)).unwrap_or(1.0)
}

/// Lane width of the int8 accumulator bank.
const Q_LANES: usize = 16;

/// One lane-accumulated dot product over pre-widened `i16` operands:
/// sixteen independent `i32` accumulator lanes walk the row sixteen
/// entries at a time (each product ±127² fits `i16`, the lane add is
/// exact `i32`), then a horizontal sum and a scalar tail finish the
/// ragged end. The inline bound check (`k + Q_LANES ≤ len`) plus the
/// array-chunk conversion is the exact shape the backend folds into
/// multiply-add-adjacent-pairs SIMD on baseline targets — hoisting it
/// into a helper or pre-computing the rounded-down length defeats the
/// fold. Integer arithmetic throughout: lane order and thread count
/// stay out of the result bits.
#[inline(always)]
//= spec: specs/quantization.toml#exact-i32-accumulation
//# MUST accumulate i16-widened products exactly in i32 accumulators
fn dot_lanes(xrow: &[i16], wrow: &[i16]) -> i32 {
    let mut acc = [0i32; Q_LANES];
    let mut k = 0;
    while k + Q_LANES <= xrow.len() {
        let xs: &[i16; Q_LANES] = xrow[k..k + Q_LANES].try_into().expect("16-lane chunk");
        let ws: &[i16; Q_LANES] = wrow[k..k + Q_LANES].try_into().expect("16-lane chunk");
        for ((a, &xv), &wv) in acc.iter_mut().zip(xs).zip(ws) {
            *a += i32::from(xv) * i32::from(wv);
        }
        k += Q_LANES;
    }
    let mut total: i32 = acc.iter().sum();
    for i in k..xrow.len() {
        total += i32::from(xrow[i]) * i32::from(wrow[i]);
    }
    total
}

/// Lane-wise kernel for one output row: every output column runs the
/// inlined [`dot_lanes`] reduction over the shared quantized input row
/// (both operands pre-widened to `i16` by the caller). The `i32`
/// totals are exact, so this matches [`quant_row_scalar`] bit for bit
/// at every shape.
fn quant_row_lanes(xrow: &[i16], weight_t: &[i16], bias: &[f32], rescale: f32, row: &mut [f32]) {
    let kdim = xrow.len();
    for (o, dst) in row.iter_mut().enumerate() {
        let wrow = &weight_t[o * kdim..(o + 1) * kdim];
        *dst = dot_lanes(xrow, wrow) as f32 * rescale + bias[o];
    }
}

/// The pre-lane scalar row kernel, retained as the bitwise oracle the
/// lane path must match: one `i32` accumulator per output, k-ascending.
/// Tests and benches compare against it; production inference goes
/// through `quant_row_lanes`.
pub fn quant_row_scalar(xrow: &[i8], weight_t: &[i8], bias: &[f32], rescale: f32, row: &mut [f32]) {
    let kdim = xrow.len();
    for (o, dst) in row.iter_mut().enumerate() {
        let wrow = &weight_t[o * kdim..(o + 1) * kdim];
        let mut acc = 0i32;
        for (&x, &w) in xrow.iter().zip(wrow) {
            acc += i32::from(x) * i32::from(w);
        }
        *dst = acc as f32 * rescale + bias[o];
    }
}

/// Per-thread scratch for the dynamic input quantization and the
/// per-matmul weight widening — hoists the former per-call allocations
/// out of the inference path (the int8 counterpart of `matrix.rs`'s
/// scratch cells and the mlp workspaces).
#[derive(Default)]
struct QuantWorkspace {
    /// Quantized input batch, row-major, `rows × in_dim`. Stored
    /// pre-widened to `i16` so the lane kernel multiplies without
    /// per-element sign extension.
    qx: Vec<i16>,
    /// The layer's transposed `i8` weights widened to `i16` for this
    /// call — one cheap pass per matmul, amortized across every row of
    /// the batch, so the at-rest footprint stays `i8`.
    qw: Vec<i16>,
}

thread_local! {
    /// Take/replace cell (like `matrix.rs`'s `FINITE_SCRATCH`): nested
    /// calls degrade to a fresh allocation instead of aliasing.
    static QUANT_SCRATCH: Cell<QuantWorkspace> =
        const { Cell::new(QuantWorkspace { qx: Vec::new(), qw: Vec::new() }) };
}

/// Row-local `f32` epilogue fused into the quantized matmul dispatch:
/// applied inside the same row closure, right after the dequantize +
/// bias, so a fused window makes exactly one pass over its output.
enum QuantEpilogue<'a> {
    /// `max(0, x)` then LayerNorm — the quantized mirror of the f32
    /// fused `Linear → ReLU → LayerNorm` window.
    ReluLayerNorm {
        /// Per-feature scale γ.
        gamma: &'a [f32],
        /// Per-feature shift β.
        beta: &'a [f32],
        /// Variance epsilon.
        eps: f32,
    },
}

impl QuantEpilogue<'_> {
    /// Applies the epilogue to one dequantized output row. Each row is
    /// owned by a single executor, so the fused result is bitwise
    /// identical to the per-layer reference at any thread count.
    fn apply(&self, row: &mut [f32]) {
        match self {
            QuantEpilogue::ReluLayerNorm { gamma, beta, eps } => {
                for v in row.iter_mut() {
                    *v = v.max(0.0);
                }
                normalize_affine_row(row, gamma, beta, *eps);
            }
        }
    }
}

/// Slice-form replica of `LayerNorm::normalize_affine_row`: the same
/// expressions in the same order (bitwise-identical result) without
/// rehydrating a scratch `LayerNorm`, which would allocate on the
/// otherwise allocation-free quantized inference path.
fn normalize_affine_row(row: &mut [f32], gamma: &[f32], beta: &[f32], eps: f32) {
    let d = row.len();
    // audit:allow(fp-reduce): fixed column-order row moments — rows are
    // never split across executors (mirrors LayerNorm::normalize_affine_row).
    let mean = row.iter().sum::<f32>() / d as f32;
    // audit:allow(fp-reduce): same fixed column order as `mean` above.
    let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
    let inv_std = 1.0 / (var + eps).sqrt();
    for ((v, &g), &b) in row.iter_mut().zip(gamma).zip(beta) {
        *v = ((*v - mean) * inv_std) * g + b;
    }
}

impl QuantizedLinear {
    /// Quantizes a trained `f32` linear layer (weight `in_dim × out_dim`,
    /// bias `1 × out_dim`), or reports why the weight tensor does not
    /// admit a usable symmetric scale.
    pub fn try_from_f32(weight: &Matrix, bias: &Matrix) -> Result<Self, QuantError> {
        let (in_dim, out_dim) = weight.shape();
        assert_eq!(bias.shape(), (1, out_dim), "bias width must match weight");
        let scale = validate_scale(symmetric_scale(weight.as_slice()))?;
        let mut weight_t = vec![0i8; in_dim * out_dim];
        for i in 0..in_dim {
            for o in 0..out_dim {
                weight_t[o * in_dim + i] = quantize_value(weight.get(i, o), scale);
            }
        }
        Ok(Self { in_dim, out_dim, scale, weight_t, bias: bias.row(0).to_vec() })
    }

    /// [`QuantizedLinear::try_from_f32`] for callers that treat a
    /// degenerate scale as a bug.
    ///
    /// # Panics
    /// Panics if the weight scale is zero or non-finite.
    pub fn from_f32(weight: &Matrix, bias: &Matrix) -> Self {
        match Self::try_from_f32(weight, bias) {
            Ok(q) => q,
            Err(e) => panic!("quantizing linear layer failed: {e}"),
        }
    }

    /// Reassembles a layer from saved parts (artifact codecs).
    ///
    /// # Panics
    /// Panics if the buffer lengths do not match the declared shape.
    pub fn from_parts(
        in_dim: usize,
        out_dim: usize,
        scale: f32,
        weight_t: Vec<i8>,
        bias: Vec<f32>,
    ) -> Self {
        assert_eq!(weight_t.len(), in_dim * out_dim, "weight buffer must be in_dim × out_dim");
        assert_eq!(bias.len(), out_dim, "bias must have one entry per output");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive and finite");
        Self { in_dim, out_dim, scale, weight_t, bias }
    }

    /// Quantized affine pass: dynamically quantizes `input` and widens
    /// the stored `i8` weights into the thread-local
    /// [`QuantWorkspace`] (both as `i16`, once per call), multiplies in
    /// `i32` through the lane kernel, rescales to `f32`, adds the
    /// bias, and — when a fused window asked for one — applies the
    /// row-local epilogue in the same pass. Dispatched through
    /// `par_matmul_q8` under the calibrated `MATMUL_Q8` break-even
    /// gate.
    fn infer_epilogue_into(
        &self,
        input: &Matrix,
        out: &mut Matrix,
        epilogue: Option<&QuantEpilogue>,
    ) {
        assert_eq!(input.cols(), self.in_dim, "quantized linear dimension mismatch");
        let (n, kdim) = input.shape();
        QUANT_SCRATCH.with(|cell| {
            let mut ws = cell.take();
            let x_scale = activation_scale(input.as_slice());
            ws.qx.clear();
            ws.qx.extend(input.as_slice().iter().map(|&v| i16::from(quantize_value(v, x_scale))));
            ws.qw.clear();
            ws.qw.extend(self.weight_t.iter().map(|&w| i16::from(w)));
            let rescale = x_scale * self.scale;
            out.reset_zeros(n, self.out_dim);
            let (bias, out_dim) = (&self.bias[..], self.out_dim);
            let (qx, weight_t) = (&ws.qx[..], &ws.qw[..]);
            parallel::par_matmul_q8(out, kdim, |row_start, chunk| {
                for (i, row) in chunk.chunks_exact_mut(out_dim).enumerate() {
                    let r = row_start + i;
                    quant_row_lanes(&qx[r * kdim..(r + 1) * kdim], weight_t, bias, rescale, row);
                    if let Some(epi) = epilogue {
                        epi.apply(row);
                    }
                }
            });
            cell.set(ws);
        });
    }

    /// Quantized affine pass into a caller-owned buffer: dynamic input
    /// quantization (thread-local scratch, no allocation), exact `i32`
    /// lane matmul, `f32` rescale + bias.
    pub fn infer_into(&self, input: &Matrix, out: &mut Matrix) {
        self.infer_epilogue_into(input, out, None);
    }

    /// [`QuantizedLinear::infer_into`] returning a fresh matrix.
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.infer_into(input, &mut out);
        out
    }

    /// Dequantizes one transposed-weight row: `w[·][o] = q · scale`.
    /// This is the concept column a quantized explanation reads.
    pub fn dequantized_row(&self, o: usize) -> Vec<f32> {
        self.weight_t[o * self.in_dim..(o + 1) * self.in_dim]
            .iter()
            .map(|&q| f32::from(q) * self.scale)
            .collect()
    }

    /// Weight bytes of this layer (the footprint the quantization buys).
    pub fn weight_bytes(&self) -> usize {
        self.weight_t.len()
    }
}

/// A non-linear layer carried over to the quantized stack in `f32`.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantLayer {
    /// Int8 affine layer.
    Linear(QuantizedLinear),
    /// `max(0, x)`, exact.
    ReLU,
    /// `tanh(x)`, exact.
    Tanh,
    /// LayerNorm with `f32` γ/β (per-feature, `1 × dim`).
    LayerNorm {
        /// Per-feature scale γ.
        gamma: Vec<f32>,
        /// Per-feature shift β.
        beta: Vec<f32>,
        /// Variance epsilon.
        eps: f32,
    },
}

/// Ping-pong activation buffers for allocation-free quantized inference
/// via [`QuantizedMlp::forward_into`]. Holds no model state; after the
/// first call both buffers reach steady-state capacity and subsequent
/// passes over same-shaped batches perform no heap allocation.
#[derive(Debug, Default)]
pub struct QuantInferWorkspace {
    a: Matrix,
    b: Matrix,
}

/// An inference-only int8 mirror of an [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    /// Layers applied in order.
    pub layers: Vec<QuantLayer>,
}

impl QuantizedMlp {
    /// Quantizes every `Linear` of a trained network; activations and
    /// normalizations are carried over exactly. Fails if any layer's
    /// weight tensor does not admit a usable symmetric scale.
    pub fn try_from_mlp(mlp: &Mlp) -> Result<Self, QuantError> {
        let layers = mlp
            .layers
            .iter()
            .map(|layer| {
                Ok(match layer {
                    LayerKind::Linear(l) => QuantLayer::Linear(QuantizedLinear::try_from_f32(
                        &l.weight.value,
                        &l.bias.value,
                    )?),
                    LayerKind::ReLU(_) => QuantLayer::ReLU,
                    LayerKind::Tanh(_) => QuantLayer::Tanh,
                    LayerKind::LayerNorm(l) => QuantLayer::LayerNorm {
                        gamma: l.gamma.value.row(0).to_vec(),
                        beta: l.beta.value.row(0).to_vec(),
                        eps: l.eps,
                    },
                })
            })
            .collect::<Result<_, QuantError>>()?;
        Ok(Self { layers })
    }

    /// [`QuantizedMlp::try_from_mlp`] for callers that treat a
    /// degenerate scale as a bug.
    ///
    /// # Panics
    /// Panics if any layer's weight scale is zero or non-finite.
    pub fn from_mlp(mlp: &Mlp) -> Self {
        match Self::try_from_mlp(mlp) {
            Ok(q) => q,
            Err(e) => panic!("quantizing network failed: {e}"),
        }
    }

    /// Inference through the quantized stack.
    ///
    /// Routed through [`QuantizedMlp::forward_into`], so
    /// `Linear → ReLU → LayerNorm` windows run fused; the output is
    /// bitwise identical to [`QuantizedMlp::infer_unfused`].
    pub fn infer(&self, input: &Matrix) -> Matrix {
        let mut ws = QuantInferWorkspace::default();
        let mut out = Matrix::default();
        out.copy_from(self.forward_into(input, &mut ws));
        out
    }

    /// Quantized inference into workspace-owned ping-pong buffers: no
    /// steady-state allocation, and `Linear → ReLU → LayerNorm` windows
    /// (the shape of Agua's concept mapping function δ) are **fused** —
    /// one integer matmul whose row closure also dequantizes, adds the
    /// bias, applies the ReLU, and normalizes, instead of three full
    /// passes over the activation matrix.
    ///
    /// The epilogue evaluates exactly the expressions of the unfused
    /// per-layer loop per row, and each row is owned by one executor,
    /// so the result is bitwise identical to
    /// [`QuantizedMlp::infer_unfused`] at any thread count.
    ///
    /// The returned reference points into `ws` and stays valid until
    /// the next call with the same workspace.
    pub fn forward_into<'w>(&self, input: &Matrix, ws: &'w mut QuantInferWorkspace) -> &'w Matrix {
        let n = self.layers.len();
        let QuantInferWorkspace { a, b } = ws;
        if n == 0 {
            a.copy_from(input);
            return a;
        }
        let mut i = 0;
        let mut first = true;
        // `flip == false` means the next output lands in `a`.
        let mut flip = false;
        while i < n {
            let fused = i + 2 < n
                && matches!(&self.layers[i], QuantLayer::Linear(_))
                && matches!(&self.layers[i + 1], QuantLayer::ReLU)
                && matches!(&self.layers[i + 2], QuantLayer::LayerNorm { .. });
            let (src, dst): (&Matrix, &mut Matrix) = if first {
                (input, &mut *a)
            } else if flip {
                (&*a, &mut *b)
            } else {
                (&*b, &mut *a)
            };
            if fused {
                let QuantLayer::Linear(lin) = &self.layers[i] else { unreachable!() };
                let QuantLayer::LayerNorm { gamma, beta, eps } = &self.layers[i + 2] else {
                    unreachable!()
                };
                let epi = QuantEpilogue::ReluLayerNorm { gamma, beta, eps: *eps };
                lin.infer_epilogue_into(src, dst, Some(&epi));
                i += 3;
            } else {
                match &self.layers[i] {
                    QuantLayer::Linear(l) => l.infer_epilogue_into(src, dst, None),
                    QuantLayer::ReLU => {
                        dst.copy_from(src);
                        dst.map_inplace(|v| v.max(0.0));
                    }
                    QuantLayer::Tanh => {
                        dst.copy_from(src);
                        dst.map_inplace(f32::tanh);
                    }
                    QuantLayer::LayerNorm { gamma, beta, eps } => {
                        dst.copy_from(src);
                        for r in 0..dst.rows() {
                            normalize_affine_row(dst.row_mut(r), gamma, beta, *eps);
                        }
                    }
                }
                i += 1;
            }
            first = false;
            flip = !flip;
        }
        // `flip` was toggled after the last write: true ⇒ result in `a`.
        if flip {
            a
        } else {
            b
        }
    }

    /// The unfused per-layer pass, retained as the reference the fused
    /// [`QuantizedMlp::forward_into`] must match bitwise.
    pub fn infer_unfused(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        let mut buf = Matrix::default();
        for layer in &self.layers {
            match layer {
                QuantLayer::Linear(l) => {
                    l.infer_into(&x, &mut buf);
                    std::mem::swap(&mut x, &mut buf);
                }
                QuantLayer::ReLU => x.map_inplace(|v| v.max(0.0)),
                QuantLayer::Tanh => x.map_inplace(f32::tanh),
                QuantLayer::LayerNorm { gamma, beta, eps } => {
                    for r in 0..x.rows() {
                        normalize_affine_row(x.row_mut(r), gamma, beta, *eps);
                    }
                }
            }
        }
        x
    }

    /// Total quantized weight bytes across all linear layers.
    pub fn weight_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QuantLayer::Linear(q) => q.weight_bytes(),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{LayerNorm, Linear, ReLU, Tanh};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pattern(rows: usize, cols: usize, salt: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let h = (r as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((c as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
                .wrapping_add(salt);
            ((h % 2001) as f32 - 1000.0) / 500.0
        })
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    fn forced(threads: usize) -> parallel::ThreadConfig {
        parallel::ThreadConfig { threads, min_flops: 0 }
    }

    /// Full inference through the retained scalar kernel — the oracle
    /// the lane path must reproduce bit for bit.
    fn scalar_infer(q: &QuantizedLinear, input: &Matrix) -> Matrix {
        let (n, kdim) = input.shape();
        let x_scale = activation_scale(input.as_slice());
        let qx: Vec<i8> = input.as_slice().iter().map(|&v| quantize_value(v, x_scale)).collect();
        let rescale = x_scale * q.scale;
        let mut out = Matrix::zeros(n, q.out_dim);
        for r in 0..n {
            quant_row_scalar(
                &qx[r * kdim..(r + 1) * kdim],
                &q.weight_t,
                &q.bias,
                rescale,
                out.row_mut(r),
            );
        }
        out
    }

    #[test]
    fn quantized_linear_tracks_f32_within_quantization_error() {
        let mut rng = StdRng::seed_from_u64(3);
        let lin = Linear::new(&mut rng, 16, 8);
        let q = QuantizedLinear::from_f32(&lin.weight.value, &lin.bias.value);
        let x = pattern(12, 16, 5);
        let exact = lin.infer(&x);
        let approx = q.infer(&x);
        for (a, b) in exact.as_slice().iter().zip(approx.as_slice()) {
            // Two int8 roundings over a 16-term dot product: loose bound.
            assert!((a - b).abs() < 0.15, "quantized output drifted: {a} vs {b}");
        }
    }

    #[test]
    fn lane_kernel_matches_scalar_reference_with_ragged_tails() {
        // kdim 37 = two full 16-lane steps + a 5-wide scalar tail;
        // out_dim 11 = two full column tiles + 3 ragged outputs.
        let weight = pattern(37, 11, 3);
        let bias = pattern(1, 11, 4);
        let q = QuantizedLinear::from_f32(&weight, &bias);
        let x = pattern(9, 37, 5);
        let expected = scalar_infer(&q, &x);
        for threads in [1, 2, 4, 7] {
            let got = parallel::with_thread_config(forced(threads), || q.infer(&x));
            assert_eq!(bits(&expected), bits(&got), "threads={threads}");
        }
        crate::pool::shutdown();
    }

    #[test]
    fn saturating_and_poisoned_inputs_match_the_scalar_reference() {
        let weight = pattern(20, 6, 7);
        let q = QuantizedLinear::from_f32(&weight, &pattern(1, 6, 8));
        let mut x = pattern(5, 20, 9);
        x.set(0, 0, f32::NAN); // quantizes to 0
        x.set(1, 3, f32::INFINITY); // saturates at +127
        x.set(2, 7, f32::NEG_INFINITY); // saturates at -127
        x.set(3, 11, 1.0e30); // sets the batch scale: exactly +127
        x.set(4, 19, -1.0e30);
        let expected = scalar_infer(&q, &x);
        for threads in [1, 2, 4, 7] {
            let got = parallel::with_thread_config(forced(threads), || q.infer(&x));
            assert_eq!(bits(&expected), bits(&got), "threads={threads}");
        }
        crate::pool::shutdown();
    }

    #[test]
    fn quantized_inference_is_byte_identical_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(9);
        let mlp = Mlp::new()
            .push(LayerKind::Linear(Linear::new(&mut rng, 12, 24)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::LayerNorm(LayerNorm::new(24)))
            .push(LayerKind::Linear(Linear::new(&mut rng, 24, 6)));
        let q = QuantizedMlp::from_mlp(&mlp);
        let x = pattern(33, 12, 11);
        let base = parallel::with_thread_config(forced(1), || q.infer(&x));
        for threads in [2, 4, 7] {
            let par = parallel::with_thread_config(forced(threads), || q.infer(&x));
            assert_eq!(bits(&base), bits(&par), "threads={threads}");
        }
    }

    #[test]
    fn fused_forward_matches_the_unfused_reference() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut ln = LayerNorm::new(18);
        ln.gamma.value = Matrix::from_fn(1, 18, |_, c| 1.0 + (c % 7) as f32 * 0.05);
        ln.beta.value = Matrix::from_fn(1, 18, |_, c| (c % 5) as f32 * 0.1 - 0.2);
        let mlp = Mlp::new()
            .push(LayerKind::Linear(Linear::new(&mut rng, 10, 18)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::LayerNorm(ln))
            .push(LayerKind::Tanh(Tanh::new()))
            .push(LayerKind::Linear(Linear::new(&mut rng, 18, 5)));
        let q = QuantizedMlp::from_mlp(&mlp);
        let x = pattern(13, 10, 23);
        let reference = parallel::with_thread_config(forced(1), || q.infer_unfused(&x));
        let mut ws = QuantInferWorkspace::default();
        for threads in [1, 2, 4, 7] {
            // Twice through the same workspace: stale contents from the
            // first pass must not leak into the second.
            for pass in 0..2 {
                let fused = parallel::with_thread_config(forced(threads), || {
                    q.forward_into(&x, &mut ws).clone()
                });
                assert_eq!(bits(&reference), bits(&fused), "threads={threads} pass={pass}");
            }
        }
        crate::pool::shutdown();
    }

    #[test]
    fn subnormal_weights_yield_a_typed_zero_scale_error() {
        // max |w| / 127 underflows to 0.0 for the smallest subnormal:
        // before the typed guard this poisoned quantize_value with ∞.
        let weight = Matrix::from_fn(4, 3, |_, _| f32::from_bits(1));
        let bias = Matrix::zeros(1, 3);
        assert_eq!(
            QuantizedLinear::try_from_f32(&weight, &bias).unwrap_err(),
            QuantError::ZeroScale
        );

        let mut rng = StdRng::seed_from_u64(5);
        let mut lin = Linear::new(&mut rng, 4, 3);
        lin.weight.value = weight;
        let mlp = Mlp::new().push(LayerKind::Linear(lin));
        assert_eq!(QuantizedMlp::try_from_mlp(&mlp).unwrap_err(), QuantError::ZeroScale);
    }

    #[test]
    fn validate_scale_classifies_degenerate_scales() {
        assert_eq!(validate_scale(0.5), Ok(0.5));
        assert_eq!(validate_scale(0.0), Err(QuantError::ZeroScale));
        assert_eq!(validate_scale(f32::NAN), Err(QuantError::NonFiniteScale));
        assert_eq!(validate_scale(f32::INFINITY), Err(QuantError::NonFiniteScale));
        assert_eq!(validate_scale(-1.0), Err(QuantError::NonFiniteScale));
        assert!(QuantError::ZeroScale.to_string().contains("zero"));
    }

    #[test]
    fn subnormal_activations_fall_back_to_unit_scale() {
        // A batch whose max |v| underflows the scale division must not
        // divide by zero: the fallback quantizes it to exact zeros, so
        // the output is exactly the bias.
        let weight = pattern(4, 3, 2);
        let bias = Matrix::row_vector(&[0.5, -0.25, 0.0]);
        let q = QuantizedLinear::from_f32(&weight, &bias);
        let x = Matrix::from_fn(2, 4, |_, _| f32::from_bits(1));
        let out = q.infer(&x);
        for r in 0..2 {
            assert_eq!(out.row(r), &[0.5, -0.25, 0.0]);
        }
    }

    #[test]
    fn zero_weight_layer_quantizes_to_exact_zeros() {
        let weight = Matrix::zeros(4, 3);
        let bias = Matrix::row_vector(&[0.5, -0.25, 0.0]);
        let q = QuantizedLinear::from_f32(&weight, &bias);
        let out = q.infer(&pattern(2, 4, 1));
        for r in 0..2 {
            assert_eq!(out.row(r), &[0.5, -0.25, 0.0]);
        }
    }

    #[test]
    fn dequantized_row_rehydrates_the_stored_scale() {
        let weight = pattern(6, 4, 13);
        let q = QuantizedLinear::from_f32(&weight, &Matrix::zeros(1, 4));
        let row = q.dequantized_row(2);
        assert_eq!(row.len(), 6);
        for (i, v) in row.iter().enumerate() {
            let expect = f32::from(q.weight_t[2 * 6 + i]) * q.scale;
            assert_eq!(v.to_bits(), expect.to_bits());
            // Dequantization stays within half a step of the original.
            assert!((v - weight.get(i, 2)).abs() <= q.scale * 0.5 + f32::EPSILON);
        }
    }

    #[test]
    fn weight_bytes_counts_only_linear_layers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new()
            .push(LayerKind::Linear(Linear::new(&mut rng, 10, 20)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::Linear(Linear::new(&mut rng, 20, 5)));
        let q = QuantizedMlp::from_mlp(&mlp);
        assert_eq!(q.weight_bytes(), 10 * 20 + 20 * 5);
    }

    #[test]
    #[should_panic(expected = "weight buffer must be in_dim × out_dim")]
    fn from_parts_validates_shape() {
        let _ = QuantizedLinear::from_parts(3, 2, 0.1, vec![0i8; 5], vec![0.0; 2]);
    }

    /// Randomized lane-vs-scalar suite; compiled out under Miri (the
    /// fixed-shape tests above cover the same contract there).
    #[cfg(not(miri))]
    mod randomized {
        use super::*;
        use proptest::prelude::*;

        const THREADS: [usize; 4] = [1, 2, 4, 7];

        proptest! {
            /// The lane kernel reproduces the retained scalar oracle
            /// bit for bit over shapes that exercise every tail path
            /// (lane tail, column-tile tail), at thread counts 1/2/4/7,
            /// with a ±127 saturation driver and a NaN/∞ poison planted
            /// in the batch.
            #[test]
            fn lane_kernel_matches_scalar_reference(
                batch in 1usize..8,
                in_dim in 1usize..48,
                out_dim in 1usize..12,
                tidx in 0usize..THREADS.len(),
                poison_at in 0usize..64,
                kind in 0usize..4,
                seed in 0u64..200,
            ) {
                let threads = THREADS[tidx];
                let weight = pattern(in_dim, out_dim, seed);
                let bias = pattern(1, out_dim, seed ^ 0xA5);
                let q = QuantizedLinear::from_f32(&weight, &bias);
                let mut x = pattern(batch, in_dim, seed ^ 0xBEEF);
                // `1e30` dominates the batch scale, pushing every other
                // entry toward the quantizer's rounding boundary; the
                // non-finite values exercise NaN → 0 and ±∞ → ±127.
                let value = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.0e30][kind];
                x.set(poison_at % batch, poison_at % in_dim, value);
                let expected = scalar_infer(&q, &x);
                let got = parallel::with_thread_config(forced(threads), || q.infer(&x));
                prop_assert_eq!(bits(&expected), bits(&got));
            }
        }
    }
}
