//! Vendored mini-loom: a bounded model checker for the worker pool.
//!
//! The real [loom](https://crates.io/crates/loom) crate is the obvious
//! tool for model-checking `pool.rs`, but this workspace builds against
//! a vendored dependency set that does not include it. This module is a
//! from-scratch, dependency-free re-implementation of the loom API
//! *subset the pool needs* — `model`, `thread::spawn`/`Builder`/`join`,
//! `sync::{Mutex, Condvar}`, `sync::mpsc`, `sync::atomic` — with the
//! same usage contract, so swapping in upstream loom later is a one-line
//! change in [`crate::sync`].
//!
//! ## How it explores interleavings
//!
//! Where loom uses coroutines and a C11 memory-model simulator, this
//! checker uses **real OS threads serialized by a scheduler**: exactly
//! one model thread runs at a time, and every operation on a facade
//! primitive is a *yield point* where the scheduler may context-switch.
//! All cross-thread communication in the code under test goes through
//! the facades, so serializing at yield points is enough to control
//! every observable interleaving at sync-operation granularity. The
//! scheduler hands execution from thread to thread through a
//! `Mutex`/`Condvar` baton, which also gives each switch a
//! happens-before edge — the model itself is data-race-free by
//! construction.
//!
//! [`model`] runs the closure repeatedly under depth-first schedule
//! exploration: each run replays a recorded prefix of scheduling choices
//! and then takes default choices; afterwards the deepest decision with
//! an untried alternative is flipped and the run repeats. Exploration is
//! **preemption-bounded** (CHESS-style): forced switches (the running
//! thread blocked or finished) are always available, but involuntary
//! preemptions are limited to [`Options::max_preemptions`] per
//! execution. Small preemption bounds empirically find almost all
//! concurrency bugs while keeping the schedule space tractable.
//!
//! ## What it checks
//!
//! * **Deadlock**: a state where no thread is runnable but some thread
//!   is blocked fails the model with a thread-state dump.
//! * **Missed completion / lost wakeup**: these manifest as deadlocks
//!   (a waiter parked forever) and are caught the same way.
//! * **Assertion failures** in the closure under any explored schedule
//!   propagate out of [`model`] together with the schedule length.
//! * **Leaked threads**: the closure must join every thread it spawned
//!   before returning (same contract as upstream loom).
//!
//! ## Semantic deviations from upstream loom
//!
//! * Atomics are modeled as sequentially consistent regardless of the
//!   requested `Ordering` — conservative for the liveness/deadlock
//!   properties checked here, but weak-memory reorderings are *not*
//!   explored. The pool's only relaxed atomic (`QUEUED`) is a
//!   monitoring counter, never synchronization, so this is acceptable.
//! * Mutex poisoning is not modeled inside a model run (facade guards
//!   released during unwinding simply unlock).
//! * `Condvar::notify_one` wakes the lowest-indexed waiter
//!   (deterministic) instead of branching over all waiters; the pool
//!   only uses `notify_all`.
//!
//! Outside a [`model`] run every facade falls back to plain `std`
//! behaviour, so code compiled against the facades (`--cfg loom`) still
//! works when executed without a model harness.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError, TryLockError};

/// Exploration limits for [`model_with`].
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Maximum involuntary preemptions per execution (CHESS bound).
    pub max_preemptions: usize,
    /// Maximum number of schedules explored before giving up.
    pub max_iterations: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options { max_preemptions: 2, max_iterations: 50_000 }
    }
}

/// Summary of one [`model_with`] exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// True when exploration stopped at `max_iterations` with schedules
    /// still unexplored — treat as "not verified", never as a pass.
    pub capped: bool,
}

/// What a non-runnable thread is waiting for. Resources are identified
/// by the address of the facade object, which is stable for its
/// lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resource {
    Lock(usize),
    Cond(usize),
    Chan(usize),
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(Resource),
    Finished,
}

/// One scheduling decision: which of `n_options` runnable candidates
/// was chosen. Recorded on every yield point so a choice vector replays
/// an execution exactly.
#[derive(Debug, Clone, Copy)]
struct Decision {
    n_options: usize,
    chosen: usize,
}

struct SchedState {
    threads: Vec<Status>,
    active: usize,
    decisions: Vec<Decision>,
    replay: Vec<usize>,
    preemptions: usize,
    fatal: Option<String>,
}

/// The per-execution scheduler: the baton (`active` + condvar) that
/// serializes model threads and records the decision trace.
struct Sched {
    state: StdMutex<SchedState>,
    cv: StdCondvar,
    max_preemptions: usize,
}

/// Panic payload used to tear down parked threads after a fatal model
/// state; swallowed by the spawn wrapper, never surfaced as a user
/// panic.
struct ExecAbort;

/// Panic payload carrying a fatal model-state message (e.g. deadlock)
/// from the detecting thread to [`model_with`]'s caller.
struct ModelFatal(String);

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

fn set_current(v: Option<(Arc<Sched>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

impl Sched {
    fn new(replay: Vec<usize>, max_preemptions: usize) -> Arc<Sched> {
        Arc::new(Sched {
            state: StdMutex::new(SchedState {
                threads: vec![Status::Runnable],
                active: 0,
                decisions: Vec::new(),
                replay,
                preemptions: 0,
                fatal: None,
            }),
            cv: StdCondvar::new(),
            max_preemptions,
        })
    }

    /// The scheduler/thread-id pair for the calling thread, when it is a
    /// registered model thread.
    fn current() -> Option<(Arc<Sched>, usize)> {
        CURRENT.with(|c| c.borrow().clone())
    }

    fn check_fatal_locked(st: &SchedState, me: usize) -> Option<String> {
        st.fatal.as_ref().map(|msg| if me == 0 { msg.clone() } else { String::new() })
    }

    /// The core context switch. Picks the next thread to run among the
    /// runnable candidates (recording the decision), hands it the baton,
    /// and — when `park` — blocks the caller until the baton returns.
    ///
    /// `me_runnable` is false for forced switches (the caller just
    /// blocked or finished); those never cost preemption budget.
    fn switch(&self, me: usize, me_runnable: bool, park: bool) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.fatal.is_some() {
            drop(st);
            self.abort(me);
        }

        let mut options: Vec<usize> = Vec::new();
        if me_runnable {
            options.push(me);
        }
        if !me_runnable || st.preemptions < self.max_preemptions {
            for (tid, status) in st.threads.iter().enumerate() {
                if tid != me && *status == Status::Runnable {
                    options.push(tid);
                }
            }
        }

        if options.is_empty() {
            let all_done = st.threads.iter().all(|s| *s == Status::Finished);
            if all_done {
                // Last thread finishing with nothing left to schedule.
                return;
            }
            let dump = st
                .threads
                .iter()
                .enumerate()
                .map(|(tid, s)| format!("  thread {tid}: {s:?}"))
                .collect::<Vec<_>>()
                .join("\n");
            let msg = format!(
                "model deadlock: no runnable threads after {} decisions\n{dump}",
                st.decisions.len()
            );
            st.fatal = Some(msg.clone());
            self.cv.notify_all();
            drop(st);
            if me == 0 {
                panic!("{msg}");
            }
            std::panic::panic_any(ModelFatal(msg));
        }

        let index = st.decisions.len();
        let chosen = if index < st.replay.len() { st.replay[index] } else { 0 };
        assert!(
            chosen < options.len(),
            "schedule replay diverged at decision {index}: \
             choice {chosen} of {} options — the model is nondeterministic",
            options.len()
        );
        st.decisions.push(Decision { n_options: options.len(), chosen });
        let next = options[chosen];

        if next != me {
            if me_runnable {
                st.preemptions += 1;
            }
            st.active = next;
            self.cv.notify_all();
            if park {
                while st.active != me {
                    if st.fatal.is_some() {
                        drop(st);
                        self.abort(me);
                    }
                    st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                if st.fatal.is_some() {
                    drop(st);
                    self.abort(me);
                }
            }
        }
    }

    /// A plain preemption point: the scheduler may switch away and the
    /// caller resumes later.
    fn yield_point(&self, me: usize) {
        self.switch(me, true, true);
    }

    /// Marks the caller blocked on `res` and switches away; returns once
    /// the caller has been unblocked *and* rescheduled.
    fn block_on(&self, me: usize, res: Resource) {
        {
            let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.threads[me] = Status::Blocked(res);
        }
        self.switch(me, false, true);
    }

    /// Marks every thread blocked on `res` runnable again. They compete
    /// for the baton at subsequent decisions; no wakeup is lost because
    /// status is state, not a signal.
    fn unblock_all(&self, res: Resource) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        for status in st.threads.iter_mut() {
            if *status == Status::Blocked(res) {
                *status = Status::Runnable;
            }
        }
    }

    /// Wakes the lowest-indexed thread blocked on `res` (deterministic
    /// `notify_one` model).
    fn unblock_one(&self, res: Resource) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        for status in st.threads.iter_mut() {
            if *status == Status::Blocked(res) {
                *status = Status::Runnable;
                return;
            }
        }
    }

    /// Registers a new thread (runnable, parked until first scheduled).
    fn add_thread(&self) -> usize {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.threads.push(Status::Runnable);
        st.threads.len() - 1
    }

    /// Parks a freshly spawned thread until the scheduler first hands it
    /// the baton.
    fn wait_first_schedule(&self, me: usize) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while st.active != me {
            if st.fatal.is_some() {
                drop(st);
                self.abort(me);
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks the caller finished, wakes joiners, and hands the baton on
    /// without parking (the caller's OS thread is about to exit).
    fn finish(&self, me: usize) {
        {
            let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            if st.fatal.is_some() {
                st.threads[me] = Status::Finished;
                self.cv.notify_all();
                return;
            }
            st.threads[me] = Status::Finished;
            for status in st.threads.iter_mut() {
                if *status == Status::Blocked(Resource::Join(me)) {
                    *status = Status::Runnable;
                }
            }
        }
        self.switch(me, false, false);
    }

    fn is_finished(&self, tid: usize) -> bool {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        st.threads[tid] == Status::Finished
    }

    /// Unwinds the calling model thread after another thread reported a
    /// fatal state. Thread 0 re-raises the fatal message so it reaches
    /// the `model` caller; helpers raise a quiet teardown payload.
    fn abort(&self, me: usize) -> ! {
        let msg = {
            let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            Self::check_fatal_locked(&st, me)
        };
        match msg {
            Some(m) if me == 0 => std::panic::panic_any(ModelFatal(m)),
            _ => std::panic::panic_any(ExecAbort),
        }
    }
}

/// Model-checks `f` with default [`Options`], panicking on the first
/// schedule that deadlocks or panics. See the module docs.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_with(Options::default(), f);
}

/// Serializes model runs process-wide: the code under test may use
/// process-global state (the worker pool's statics), so two concurrent
/// explorations would interfere.
static MODEL_SERIAL: StdMutex<()> = StdMutex::new(());

/// Model-checks `f` under `opts`, returning how many schedules were
/// explored. Panics (with the failing schedule's decision count) on the
/// first schedule that deadlocks, panics, or leaks threads.
pub fn model_with<F>(opts: Options, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let _serial = MODEL_SERIAL.lock().unwrap_or_else(PoisonError::into_inner);

    // Exploration deliberately drives code into panics (deadlock
    // reports, panic-propagation schedules), so the default
    // print-a-backtrace hook would flood stderr. Silence panics on
    // model-registered threads only — the failing schedule's payload is
    // re-raised with context below, after the hook is restored.
    type Hook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;
    struct RestoreHook(Option<Arc<Hook>>);
    impl Drop for RestoreHook {
        fn drop(&mut self) {
            // take_hook/set_hook themselves panic on a panicking thread,
            // so restoring here would turn an unwind into an abort. The
            // quiet hook forwards to the previous one for non-model
            // threads, so leaking it is benign.
            if std::thread::panicking() {
                return;
            }
            drop(std::panic::take_hook());
            if let Some(prev) = self.0.take() {
                if let Some(hook) = Arc::into_inner(prev) {
                    std::panic::set_hook(hook);
                }
            }
        }
    }

    /// A failed exploration, carried as a value so the verdict is raised
    /// only *after* the hook is restored (modifying the panic hook from
    /// a panicking thread aborts the process).
    enum Failure {
        Message(String),
        Panic { context: String, payload: Box<dyn std::any::Any + Send> },
    }

    let explore = |f: &F| -> Result<Report, Failure> {
        let mut replay: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        loop {
            schedules += 1;
            let sched = Sched::new(replay.clone(), opts.max_preemptions);
            set_current(Some((sched.clone(), 0)));
            let run = catch_unwind(AssertUnwindSafe(f));
            set_current(None);

            let (decisions, fatal, live) = {
                let st = sched.state.lock().unwrap_or_else(PoisonError::into_inner);
                let live = st
                    .threads
                    .iter()
                    .enumerate()
                    .skip(1)
                    .filter(|(_, s)| **s != Status::Finished)
                    .map(|(tid, _)| tid)
                    .collect::<Vec<_>>();
                (st.decisions.clone(), st.fatal.clone(), live)
            };

            if let Err(payload) = run {
                let context = format!(
                    "model failed on schedule {schedules} after {} decisions",
                    decisions.len()
                );
                if let Some(fatal) = payload.downcast_ref::<ModelFatal>() {
                    return Err(Failure::Message(format!("{context}: {}", fatal.0)));
                }
                return Err(Failure::Panic { context, payload });
            }
            if let Some(msg) = fatal {
                return Err(Failure::Message(format!(
                    "model failed on schedule {schedules}: {msg}"
                )));
            }
            if !live.is_empty() {
                return Err(Failure::Message(format!(
                    "model closure returned with live threads {live:?}: join every \
                     spawned thread before returning (schedule {schedules})"
                )));
            }

            // Depth-first backtrack: flip the deepest decision with an
            // untried alternative.
            let mut next: Option<Vec<usize>> = None;
            for i in (0..decisions.len()).rev() {
                if decisions[i].chosen + 1 < decisions[i].n_options {
                    let mut prefix: Vec<usize> = decisions[..i].iter().map(|d| d.chosen).collect();
                    prefix.push(decisions[i].chosen + 1);
                    next = Some(prefix);
                    break;
                }
            }
            match next {
                None => return Ok(Report { schedules, capped: false }),
                Some(_) if schedules >= opts.max_iterations => {
                    eprintln!(
                        "model: exploration capped at {} schedules with alternatives \
                         unexplored — result is NOT exhaustive",
                        opts.max_iterations
                    );
                    return Ok(Report { schedules, capped: true });
                }
                Some(prefix) => replay = prefix,
            }
        }
    };

    let outcome = {
        let prev: Arc<Hook> = Arc::new(std::panic::take_hook());
        let in_hook = prev.clone();
        std::panic::set_hook(Box::new(move |info| {
            if Sched::current().is_none() {
                in_hook(info);
            }
        }));
        let _restore = RestoreHook(Some(prev));
        explore(&f)
    };

    match outcome {
        Ok(report) => report,
        Err(Failure::Message(msg)) => panic!("{msg}"),
        Err(Failure::Panic { context, payload }) => {
            eprintln!("{context}");
            resume_unwind(payload);
        }
    }
}

/// Scheduler-aware stand-ins for `std::thread`.
pub mod thread {
    use super::{
        catch_unwind, set_current, Arc, AssertUnwindSafe, ExecAbort, PoisonError, Resource, Sched,
        StdMutex,
    };

    type Payload<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

    enum Inner<T> {
        Std(std::thread::JoinHandle<T>),
        Model { sched: Arc<Sched>, tid: usize, result: Payload<T>, os: std::thread::JoinHandle<()> },
    }

    /// Facade for [`std::thread::JoinHandle`].
    pub struct JoinHandle<T>(Inner<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, returning its result or panic
        /// payload. Inside a model this is a blocking yield point.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Inner::Std(h) => h.join(),
                Inner::Model { sched, tid, result, os } => {
                    let me = super::Sched::current()
                        .map(|(_, me)| me)
                        .expect("model JoinHandle joined from a non-model thread");
                    sched.yield_point(me);
                    while !sched.is_finished(tid) {
                        sched.block_on(me, Resource::Join(tid));
                    }
                    let _ = os.join();
                    result
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .take()
                        .expect("model thread finished without storing a result")
                }
            }
        }
    }

    /// Facade for [`std::thread::Builder`].
    #[derive(Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// Creates a builder with no name set.
        pub fn new() -> Builder {
            Builder { name: None }
        }

        /// Names the thread (used by the std fallback; model threads are
        /// identified by index).
        pub fn name(mut self, name: String) -> Builder {
            self.name = Some(name);
            self
        }

        /// Spawns a thread. Inside a model the new thread is registered
        /// with the scheduler and parked until first scheduled; the
        /// spawn itself is a preemption point.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            match super::Sched::current() {
                None => {
                    let mut builder = std::thread::Builder::new();
                    if let Some(name) = self.name {
                        builder = builder.name(name);
                    }
                    builder.spawn(f).map(|h| JoinHandle(Inner::Std(h)))
                }
                Some((sched, me)) => {
                    let tid = sched.add_thread();
                    let result: Payload<T> = Arc::new(StdMutex::new(None));
                    let slot = result.clone();
                    let child_sched = sched.clone();
                    let os = std::thread::Builder::new().spawn(move || {
                        set_current(Some((child_sched.clone(), tid)));
                        let run_sched = child_sched.clone();
                        let out = catch_unwind(AssertUnwindSafe(move || {
                            run_sched.wait_first_schedule(tid);
                            f()
                        }));
                        let teardown = matches!(&out, Err(p) if p.is::<ExecAbort>());
                        if !teardown {
                            *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
                        }
                        set_current(None);
                        child_sched.finish(tid);
                    })?;
                    sched.yield_point(me);
                    Ok(JoinHandle(Inner::Model { sched, tid, result, os }))
                }
            }
        }
    }

    /// Facade for [`std::thread::spawn`].
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn model thread")
    }

    /// Facade for [`std::thread::yield_now`]: a pure preemption point
    /// inside a model, a real yield outside.
    pub fn yield_now() {
        match super::Sched::current() {
            None => std::thread::yield_now(),
            Some((sched, me)) => sched.yield_point(me),
        }
    }
}

/// Scheduler-aware stand-ins for `std::sync` primitives.
pub mod sync {
    use super::{PoisonError, Resource, Sched, StdCondvar, StdMutex, TryLockError};
    use std::sync::LockResult;

    /// Facade for [`std::sync::Mutex`]: a real mutex plus scheduler
    /// bookkeeping, so lock acquisition order is explored by the model.
    pub struct Mutex<T> {
        inner: StdMutex<T>,
    }

    /// Facade for [`std::sync::MutexGuard`]. Dropping it releases the
    /// lock, wakes model waiters, and yields.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// Creates the mutex (usable in statics, like `std`).
        pub const fn new(value: T) -> Mutex<T> {
            Mutex { inner: StdMutex::new(value) }
        }

        fn addr(&self) -> usize {
            self as *const Mutex<T> as usize
        }

        /// Locks, blocking through the model scheduler when contended.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match Sched::current() {
                None => match self.inner.lock() {
                    Ok(g) => Ok(MutexGuard { lock: self, inner: Some(g) }),
                    Err(e) => Err(PoisonError::new(MutexGuard {
                        lock: self,
                        inner: Some(e.into_inner()),
                    })),
                },
                Some((sched, me)) => {
                    sched.yield_point(me);
                    loop {
                        match self.inner.try_lock() {
                            Ok(g) => return Ok(MutexGuard { lock: self, inner: Some(g) }),
                            Err(TryLockError::Poisoned(e)) => {
                                return Err(PoisonError::new(MutexGuard {
                                    lock: self,
                                    inner: Some(e.into_inner()),
                                }))
                            }
                            Err(TryLockError::WouldBlock) => {
                                sched.block_on(me, Resource::Lock(self.addr()));
                            }
                        }
                    }
                }
            }
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard released")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard released")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            let held = self.inner.take();
            if held.is_some() {
                drop(held);
                if let Some((sched, me)) = Sched::current() {
                    sched.unblock_all(Resource::Lock(self.lock.addr()));
                    // Never re-enter the scheduler while unwinding: a
                    // panic inside drop glue during cleanup aborts the
                    // process. Waiters are already woken; they get the
                    // baton at the next live decision point.
                    if !std::thread::panicking() {
                        sched.yield_point(me);
                    }
                }
            }
        }
    }

    /// Facade for [`std::sync::Condvar`] with precise lost-wakeup
    /// semantics inside a model (a notify with no waiter is dropped).
    pub struct Condvar {
        fallback: StdCondvar,
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Condvar {
        /// Creates the condvar (usable in statics, like `std`).
        pub const fn new() -> Condvar {
            Condvar { fallback: StdCondvar::new() }
        }

        fn addr(&self) -> usize {
            self as *const Condvar as usize
        }

        /// Releases the guard, waits for a notification, re-acquires.
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            match Sched::current() {
                None => {
                    let std_guard = guard.inner.take().expect("guard released");
                    match self.fallback.wait(std_guard) {
                        Ok(g) => {
                            guard.inner = Some(g);
                            Ok(guard)
                        }
                        Err(e) => {
                            guard.inner = Some(e.into_inner());
                            Err(PoisonError::new(guard))
                        }
                    }
                }
                Some((sched, me)) => {
                    let lock = guard.lock;
                    // Release without the Drop-side yield: the wait and
                    // the unlock are one atomic step to the model, which
                    // is exactly the guarantee a condvar provides.
                    drop(guard.inner.take());
                    sched.unblock_all(Resource::Lock(lock.addr()));
                    sched.block_on(me, Resource::Cond(self.addr()));
                    lock.lock()
                }
            }
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            match Sched::current() {
                None => self.fallback.notify_all(),
                Some((sched, me)) => {
                    sched.unblock_all(Resource::Cond(self.addr()));
                    sched.yield_point(me);
                }
            }
        }

        /// Wakes one waiter (the lowest-indexed, deterministically).
        pub fn notify_one(&self) {
            match Sched::current() {
                None => self.fallback.notify_one(),
                Some((sched, me)) => {
                    sched.unblock_one(Resource::Cond(self.addr()));
                    sched.yield_point(me);
                }
            }
        }
    }

    /// Scheduler-aware stand-ins for `std::sync::atomic`. Every
    /// operation is a preemption point; all orderings are modeled as
    /// sequentially consistent (see the module docs for why that is
    /// acceptable here).
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        /// Facade for [`std::sync::atomic::AtomicUsize`].
        #[derive(Debug, Default)]
        pub struct AtomicUsize {
            inner: std::sync::atomic::AtomicUsize,
        }

        impl AtomicUsize {
            /// Creates the atomic (usable in statics, like `std`).
            pub const fn new(value: usize) -> AtomicUsize {
                AtomicUsize { inner: std::sync::atomic::AtomicUsize::new(value) }
            }

            fn yield_point() {
                if let Some((sched, me)) = super::Sched::current() {
                    sched.yield_point(me);
                }
            }

            /// Facade for `AtomicUsize::load`.
            pub fn load(&self, _order: Ordering) -> usize {
                Self::yield_point();
                self.inner.load(Ordering::SeqCst)
            }

            /// Facade for `AtomicUsize::store`.
            pub fn store(&self, value: usize, _order: Ordering) {
                Self::yield_point();
                self.inner.store(value, Ordering::SeqCst);
            }

            /// Facade for `AtomicUsize::fetch_add`.
            pub fn fetch_add(&self, value: usize, _order: Ordering) -> usize {
                Self::yield_point();
                self.inner.fetch_add(value, Ordering::SeqCst)
            }

            /// Facade for `AtomicUsize::fetch_sub`.
            pub fn fetch_sub(&self, value: usize, _order: Ordering) -> usize {
                Self::yield_point();
                self.inner.fetch_sub(value, Ordering::SeqCst)
            }
        }
    }

    /// Scheduler-aware stand-in for `std::sync::mpsc` (the unbounded
    /// channel subset the pool uses).
    pub mod mpsc {
        use super::super::{Arc, PoisonError, Resource, Sched, StdCondvar, StdMutex, VecDeque};

        /// Error returned by [`Sender::send`] when the receiver is gone;
        /// carries the unsent value like `std`.
        #[derive(Debug)]
        pub struct SendError<T>(pub T);

        /// Error returned by [`Receiver::recv`] when every sender is
        /// gone and the queue is drained.
        #[derive(Debug, PartialEq, Eq)]
        pub struct RecvError;

        struct ChanState<T> {
            queue: VecDeque<T>,
            senders: usize,
            rx_alive: bool,
        }

        struct Chan<T> {
            state: StdMutex<ChanState<T>>,
            cv: StdCondvar,
        }

        impl<T> Chan<T> {
            fn addr(&self) -> usize {
                self as *const Chan<T> as usize
            }
        }

        /// Facade for [`std::sync::mpsc::Sender`].
        pub struct Sender<T> {
            chan: Arc<Chan<T>>,
        }

        /// Facade for [`std::sync::mpsc::Receiver`].
        pub struct Receiver<T> {
            chan: Arc<Chan<T>>,
        }

        /// Facade for [`std::sync::mpsc::channel`].
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let chan = Arc::new(Chan {
                state: StdMutex::new(ChanState {
                    queue: VecDeque::new(),
                    senders: 1,
                    rx_alive: true,
                }),
                cv: StdCondvar::new(),
            });
            (Sender { chan: chan.clone() }, Receiver { chan })
        }

        impl<T> Sender<T> {
            /// Queues `value`, failing if the receiver was dropped.
            pub fn send(&self, value: T) -> Result<(), SendError<T>> {
                let model = Sched::current();
                if let Some((sched, me)) = &model {
                    sched.yield_point(*me);
                }
                {
                    let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
                    if !st.rx_alive {
                        return Err(SendError(value));
                    }
                    st.queue.push_back(value);
                    self.chan.cv.notify_all();
                }
                if let Some((sched, me)) = &model {
                    sched.unblock_all(Resource::Chan(self.chan.addr()));
                    sched.yield_point(*me);
                }
                Ok(())
            }
        }

        impl<T> Clone for Sender<T> {
            fn clone(&self) -> Sender<T> {
                let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
                st.senders += 1;
                drop(st);
                Sender { chan: self.chan.clone() }
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
                st.senders -= 1;
                if st.senders == 0 {
                    self.chan.cv.notify_all();
                    drop(st);
                    if let Some((sched, _)) = Sched::current() {
                        sched.unblock_all(Resource::Chan(self.chan.addr()));
                    }
                }
            }
        }

        impl<T> Receiver<T> {
            /// Dequeues the next value, blocking until one arrives or
            /// every sender is dropped.
            pub fn recv(&self) -> Result<T, RecvError> {
                let model = Sched::current();
                if let Some((sched, me)) = &model {
                    sched.yield_point(*me);
                }
                loop {
                    let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
                    if let Some(value) = st.queue.pop_front() {
                        return Ok(value);
                    }
                    if st.senders == 0 {
                        return Err(RecvError);
                    }
                    match &model {
                        Some((sched, me)) => {
                            drop(st);
                            sched.block_on(*me, Resource::Chan(self.chan.addr()));
                        }
                        None => {
                            let _unused =
                                self.chan.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                        }
                    }
                }
            }
        }

        impl<T> Drop for Receiver<T> {
            fn drop(&mut self) {
                let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
                st.rx_alive = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Condvar, Mutex};
    use super::*;

    /// The classic lost update: two threads do read-modify-write through
    /// separate load/store. Exploration must find both the sequential
    /// outcome (2) and the interleaved one (1).
    #[test]
    fn exploration_finds_the_lost_update() {
        let outcomes = Arc::new(StdMutex::new(std::collections::BTreeSet::new()));
        let sink = outcomes.clone();
        let report =
            model_with(Options { max_preemptions: 2, max_iterations: 10_000 }, move || {
                let counter = Arc::new(AtomicUsize::new(0));
                let worker = {
                    let counter = counter.clone();
                    thread::spawn(move || {
                        let seen = counter.load(Ordering::SeqCst);
                        counter.store(seen + 1, Ordering::SeqCst);
                    })
                };
                let seen = counter.load(Ordering::SeqCst);
                counter.store(seen + 1, Ordering::SeqCst);
                worker.join().expect("worker must not panic");
                sink.lock().unwrap().insert(counter.load(Ordering::SeqCst));
            });
        assert!(!report.capped, "toy program must be fully explored");
        assert!(report.schedules > 1, "must explore more than one schedule");
        let outcomes = outcomes.lock().unwrap().clone();
        assert!(outcomes.contains(&2), "sequential outcome missing: {outcomes:?}");
        assert!(outcomes.contains(&1), "lost-update interleaving not found: {outcomes:?}");
    }

    /// Classic AB/BA lock-order inversion must be reported as a
    /// deadlock, not hang the test.
    #[test]
    fn deadlock_is_detected_and_reported() {
        let result = catch_unwind(|| {
            model(|| {
                let a = Arc::new(Mutex::new(0u32));
                let b = Arc::new(Mutex::new(0u32));
                let worker = {
                    let a = a.clone();
                    let b = b.clone();
                    thread::spawn(move || {
                        let _b = b.lock().unwrap();
                        let _a = a.lock().unwrap();
                    })
                };
                {
                    let _a = a.lock().unwrap();
                    let _b = b.lock().unwrap();
                }
                let _ = worker.join();
            });
        });
        let payload = result.expect_err("AB/BA locking must fail the model");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic>".into());
        assert!(msg.contains("deadlock"), "expected a deadlock report, got: {msg}");
    }

    /// A waiter parked before the only notify is delivered must still be
    /// woken in every schedule (condvar + mutex handshake is sound).
    #[test]
    fn condvar_handshake_completes_in_all_schedules() {
        let report = model_with(Options::default(), || {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let signaller = {
                let pair = pair.clone();
                thread::spawn(move || {
                    let (flag, cv) = &*pair;
                    *flag.lock().unwrap() = true;
                    cv.notify_all();
                })
            };
            let (flag, cv) = &*pair;
            let mut ready = flag.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
            signaller.join().expect("signaller must not panic");
        });
        assert!(!report.capped);
        assert!(report.schedules > 1);
    }

    /// mpsc facade: values arrive in send order and disconnection is
    /// observed when the sender drops, under every schedule.
    #[test]
    fn channel_preserves_order_and_reports_disconnect() {
        let report = model_with(Options::default(), || {
            let (tx, rx) = sync::mpsc::channel();
            let producer = thread::spawn(move || {
                tx.send(1u32).expect("receiver alive");
                tx.send(2u32).expect("receiver alive");
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            producer.join().expect("producer must not panic");
            assert_eq!(rx.recv(), Err(sync::mpsc::RecvError));
        });
        assert!(!report.capped);
    }

    /// A panic in a model thread must surface through join and fail the
    /// model run with schedule context.
    #[test]
    fn thread_panics_surface_through_join() {
        let result = catch_unwind(|| {
            model(|| {
                let worker = thread::spawn(|| panic!("kernel blew up"));
                let join = worker.join();
                // Re-throw like the pool's dispatcher does.
                if let Err(payload) = join {
                    resume_unwind(payload);
                }
            });
        });
        assert!(result.is_err(), "worker panic must fail the model");
    }

    /// Outside `model`, the facades are plain std primitives: the same
    /// binary must work with and without a model harness.
    #[test]
    fn facades_fall_back_to_std_outside_a_model() {
        let (tx, rx) = sync::mpsc::channel();
        let counter = Arc::new(AtomicUsize::new(0));
        let shared = Arc::new(Mutex::new(Vec::new()));
        let worker = {
            let counter = counter.clone();
            let shared = shared.clone();
            thread::Builder::new()
                .name("fallback-worker".into())
                .spawn(move || {
                    for value in 0..4u32 {
                        tx.send(value).expect("receiver alive");
                    }
                    counter.fetch_add(1, Ordering::SeqCst);
                    shared.lock().unwrap().push(99);
                })
                .expect("spawn works outside a model")
        };
        let mut got = Vec::new();
        for _ in 0..4 {
            got.push(rx.recv().expect("sender alive"));
        }
        worker.join().expect("worker must not panic");
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(counter.load(Ordering::SeqCst), 1);
        assert_eq!(*shared.lock().unwrap(), vec![99]);
        assert_eq!(rx.recv(), Err(sync::mpsc::RecvError));
    }

    /// The preemption bound is respected: with zero preemptions only
    /// forced switches happen, so the lost update is *not* observable.
    #[test]
    fn zero_preemption_bound_runs_threads_atomically() {
        let outcomes = Arc::new(StdMutex::new(std::collections::BTreeSet::new()));
        let sink = outcomes.clone();
        let report = model_with(Options { max_preemptions: 0, max_iterations: 1_000 }, move || {
            let counter = Arc::new(AtomicUsize::new(0));
            let worker = {
                let counter = counter.clone();
                thread::spawn(move || {
                    let seen = counter.load(Ordering::SeqCst);
                    counter.store(seen + 1, Ordering::SeqCst);
                })
            };
            let seen = counter.load(Ordering::SeqCst);
            counter.store(seen + 1, Ordering::SeqCst);
            worker.join().expect("worker must not panic");
            sink.lock().unwrap().insert(counter.load(Ordering::SeqCst));
        });
        assert!(!report.capped);
        let outcomes = outcomes.lock().unwrap().clone();
        assert_eq!(
            outcomes.into_iter().collect::<Vec<_>>(),
            vec![2],
            "without preemptions each RMW pair must run atomically"
        );
    }
}
