//! Sync-primitive shim: `std` normally, the model-checking facades
//! under `--cfg loom`.
//!
//! Everything in [`crate::pool`] that can block, signal, or share state
//! across threads imports its primitives from here instead of `std`
//! directly. A regular build re-exports `std::sync`/`std::thread`
//! verbatim (zero cost — these are `pub use`, not wrappers), while
//! `RUSTFLAGS="--cfg loom"` swaps in [`crate::loom`]'s
//! scheduler-instrumented facades so `tests/loom_pool.rs` can explore
//! the pool's interleavings exhaustively.
//!
//! The surface is deliberately the narrow subset the pool uses:
//! `Mutex`/`MutexGuard`/`Condvar`, `mpsc`, `atomic::AtomicUsize` +
//! `Ordering`, and `thread::{Builder, JoinHandle}`. Keeping the shim
//! minimal is what keeps the vendored checker honest — every primitive
//! re-exported here must have a model-aware implementation on the loom
//! side. To swap in upstream loom, replace the `crate::loom` paths in
//! the `#[cfg(loom)]` block with `::loom` ones.

#[cfg(not(loom))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(not(loom))]
pub use std::sync::mpsc;

#[cfg(not(loom))]
pub use std::sync::atomic;

#[cfg(not(loom))]
pub use std::thread;

#[cfg(loom)]
pub use crate::loom::sync::{mpsc, Condvar, Mutex, MutexGuard};

#[cfg(loom)]
pub use crate::loom::sync::atomic;

#[cfg(loom)]
pub use crate::loom::thread;
