//! Weight initialization schemes.
//!
//! All initializers are deterministic given the caller's RNG, which keeps
//! every experiment in the workspace reproducible from a single seed.

use crate::matrix::Matrix;
use rand::Rng;
use rand_distr::{Distribution, Normal, Uniform};

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suited to tanh/linear layers.
pub fn xavier_uniform(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let dist = Uniform::new_inclusive(-a, a).expect("valid uniform bounds");
    Matrix::from_fn(fan_in, fan_out, |_, _| dist.sample(rng))
}

/// He/Kaiming normal initialization: `N(0, sqrt(2 / fan_in))`. Suited to
/// ReLU layers, which the concept mapping function uses.
pub fn he_normal(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    let dist = Normal::new(0.0, std).expect("valid normal parameters");
    Matrix::from_fn(fan_in, fan_out, |_, _| dist.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = xavier_uniform(&mut rng, 64, 32);
        let a = (6.0f32 / 96.0).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= a));
        assert_eq!(w.shape(), (64, 32));
    }

    #[test]
    fn he_has_roughly_correct_scale() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = he_normal(&mut rng, 128, 128);
        let var: f32 =
            w.as_slice().iter().map(|v| v * v).sum::<f32>() / (w.rows() * w.cols()) as f32;
        let expect = 2.0 / 128.0;
        assert!((var - expect).abs() < expect * 0.3, "var {var} vs {expect}");
    }

    #[test]
    fn initialization_is_deterministic_per_seed() {
        let a = he_normal(&mut StdRng::seed_from_u64(1), 8, 8);
        let b = he_normal(&mut StdRng::seed_from_u64(1), 8, 8);
        let c = he_normal(&mut StdRng::seed_from_u64(2), 8, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
