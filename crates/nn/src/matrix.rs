//! Dense row-major `f32` matrix with exactly the operations the rest of the
//! workspace needs.
//!
//! Shapes follow the batch-major convention: a batch of `n` examples with
//! `d` features is an `n × d` matrix, one example per row.

use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32` values.
///
/// ```
/// use agua_nn::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a.sum_rows().as_slice(), &[4.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates an `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a closure invoked as `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix taking ownership of `data` laid out row-major.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// Creates a 1×n row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Stacks equal-length rows into a matrix.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the backing slice (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing slice (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new matrix containing the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// True per row iff every element of that row is finite. Used to
    /// decide where the sparse `a == 0.0` fast path in the matmul
    /// kernels is safe: skipping `0 × b` is only sound when `b` is
    /// finite (`0 × NaN` and `0 × ∞` must poison the output).
    pub(crate) fn rows_finite(&self) -> Vec<bool> {
        (0..self.rows).map(|r| self.row(r).iter().all(|v| v.is_finite())).collect()
    }

    /// Writes rows `row_start..` of `self × rhs` into `chunk`, which
    /// must be a zero-initialised row-major block of `rhs.cols`-wide
    /// rows. Shared by the sequential [`Matrix::matmul`] and the
    /// row-partitioned parallel path so both accumulate every output
    /// element in the same `k`-ascending order (byte-identical results).
    pub(crate) fn matmul_rows_into(
        &self,
        rhs: &Matrix,
        rhs_row_finite: &[bool],
        row_start: usize,
        chunk: &mut [f32],
    ) {
        let width = rhs.cols;
        if width == 0 || chunk.is_empty() {
            return;
        }
        debug_assert_eq!(chunk.len() % width, 0);
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // memory in both `rhs` and the output.
        for (local, out_row) in chunk.chunks_exact_mut(width).enumerate() {
            let a_row = self.row(row_start + local);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 && rhs_row_finite[k] {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// Writes rows `row_start..` of `selfᵀ × rhs` into `chunk` (rows of
    /// the output correspond to columns of `self`). Keeps the `k`-outer
    /// streaming order of the sequential kernel restricted to the given
    /// output-row range, so per-element accumulation order is unchanged.
    pub(crate) fn matmul_tn_rows_into(
        &self,
        rhs: &Matrix,
        rhs_row_finite: &[bool],
        row_start: usize,
        chunk: &mut [f32],
    ) {
        let width = rhs.cols;
        if width == 0 || chunk.is_empty() {
            return;
        }
        debug_assert_eq!(chunk.len() % width, 0);
        let rows = chunk.len() / width;
        for k in 0..self.rows {
            let a_row = &self.row(k)[row_start..row_start + rows];
            let b_row = rhs.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 && rhs_row_finite[k] {
                    continue;
                }
                let out_row = &mut chunk[i * width..(i + 1) * width];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// Writes rows `row_start..` of `self × rhsᵀ` into `chunk`
    /// (`rhs.rows`-wide rows). Plain dot products; no sparse fast path.
    pub(crate) fn matmul_nt_rows_into(&self, rhs: &Matrix, row_start: usize, chunk: &mut [f32]) {
        let width = rhs.rows;
        if width == 0 || chunk.is_empty() {
            return;
        }
        debug_assert_eq!(chunk.len() % width, 0);
        for (local, out_row) in chunk.chunks_exact_mut(width).enumerate() {
            let a_row = self.row(row_start + local);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
    }

    /// Matrix product `self × rhs`.
    ///
    /// Non-finite values propagate: a zero in `self` times a `NaN`/`∞`
    /// in `rhs` yields `NaN`, so [`Matrix::is_finite`] debugging cannot
    /// be fooled by the sparse fast path.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        let finite = rhs.rows_finite();
        self.matmul_rows_into(rhs, &finite, 0, &mut out.data);
        out
    }

    /// `selfᵀ × rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matmul_tn dimension mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        let finite = rhs.rows_finite();
        self.matmul_tn_rows_into(rhs, &finite, 0, &mut out.data);
        out
    }

    /// `self × rhsᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_nt dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_nt_rows_into(rhs, 0, &mut out.data);
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise scaling by a scalar.
    pub fn scale(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self += rhs * s` (axpy).
    pub fn add_scaled_inplace(&mut self, rhs: &Matrix, s: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b * s;
        }
    }

    /// Adds a 1×cols row vector to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast expects a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(row.data.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Sums each column into a 1×cols row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
        out
    }

    /// Mean of each column as a 1×cols row vector.
    pub fn mean_rows(&self) -> Matrix {
        assert!(self.rows > 0, "mean of an empty matrix");
        self.sum_rows().scale(1.0 / self.rows as f32)
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Index of the largest value in row `r` (ties go to the lowest index).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        let mut best_v = row[0];
        for (i, &v) in row.iter().enumerate().skip(1) {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of absolute values (entrywise L1 norm).
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn zeros_has_shape_and_zero_values() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_lays_out_row_major() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(a.get(1, 2), 12.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn add_sub_hadamard_scale_are_elementwise() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.add(&b).as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).as_slice(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[5.0, 12.0, 21.0, 32.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn broadcast_and_reductions() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = Matrix::row_vector(&[10.0, 20.0, 30.0]);
        assert_eq!(a.add_row_broadcast(&r).row(1), &[14.0, 25.0, 36.0]);
        assert_eq!(a.sum_rows().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.mean_rows().as_slice(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn argmax_row_breaks_ties_low() {
        let a = m(1, 4, &[1.0, 3.0, 3.0, 2.0]);
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    fn select_rows_orders_by_indices() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.as_slice(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn norms() {
        let a = m(1, 3, &[3.0, -4.0, 0.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((a.l1_norm() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn matmul_propagates_nan_and_inf_through_zero_entries() {
        // Regression: the sparse `a == 0.0` fast path used to turn
        // 0 × NaN and 0 × ∞ into 0, hiding non-finite activations.
        let a = m(1, 2, &[0.0, 1.0]);
        let b = m(2, 2, &[f32::NAN, f32::INFINITY, 1.0, 2.0]);
        let c = a.matmul(&b);
        assert!(c.get(0, 0).is_nan());
        // IEEE 754: 0 × ∞ is NaN, and NaN + 2 stays NaN.
        assert!(c.get(0, 1).is_nan());
        assert!(!c.is_finite());
    }

    #[test]
    fn matmul_tn_propagates_nan_through_zero_entries() {
        let a = m(2, 1, &[0.0, 1.0]);
        let b = m(2, 2, &[f32::NAN, 3.0, 1.0, 2.0]);
        let c = a.matmul_tn(&b);
        assert!(c.get(0, 0).is_nan());
        // Column 1 of `b` is finite everywhere, so c01 = 0·3 + 1·2 = 2.
        assert_eq!(c.get(0, 1), 2.0);
    }

    #[test]
    fn matmul_zero_skip_is_exact_for_finite_data() {
        // The fast path must not change results (bitwise) on finite input.
        let a = m(2, 3, &[0.0, -0.0, 2.0, 1.5, 0.0, -3.0]);
        let b = m(3, 2, &[0.25, -1.0, 4.0, 0.5, -2.0, 8.0]);
        let fast = a.matmul(&b);
        let mut naive = Matrix::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = 0.0f32;
                for k in 0..3 {
                    acc += a.get(i, k) * b.get(k, j);
                }
                naive.set(i, j, acc);
            }
        }
        let fast_bits: Vec<u32> = fast.as_slice().iter().map(|v| v.to_bits()).collect();
        let naive_bits: Vec<u32> = naive.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(fast_bits, naive_bits);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_panics_on_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 2, &[1.0, 2.0]);
        let b = m(1, 2, &[10.0, 10.0]);
        a.add_scaled_inplace(&b, 0.5);
        assert_eq!(a.as_slice(), &[6.0, 7.0]);
    }
}
