//! Dense row-major `f32` matrix with exactly the operations the rest of the
//! workspace needs.
//!
//! Shapes follow the batch-major convention: a batch of `n` examples with
//! `d` features is an `n × d` matrix, one example per row.

use serde::{Deserialize, Serialize};

/// A dense, row-major matrix of `f32` values.
///
/// ```
/// use agua_nn::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
/// assert_eq!(a.matmul(&b), a);
/// assert_eq!(a.sum_rows().as_slice(), &[4.0, 6.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Column-tile width of the dense kernels: a 32-lane accumulator tile
/// (four 8-wide SIMD registers) per output row, wide enough to amortize
/// the per-`k` zero-skip branch and slice checks. Tiling is over
/// *output columns* (`j`), so every output element still accumulates
/// its `k` products in ascending order — bitwise determinism and the
/// NaN/∞ zero-skip semantics survive.
const TILE: usize = 32;

/// Narrow-tile width used after the `TILE`-wide pass: outputs with
/// fewer than `TILE` columns remaining still get register accumulators
/// in 8-lane tiles (one SIMD register) instead of falling back to the
/// per-`k` load/store scalar loop.
const SUBTILE: usize = 8;

/// [`TILE`] / [`SUBTILE`] expressed in [`F32x8`] registers, for the
/// lane-structured tile pass.
const TILE_LANES: usize = TILE / F32x8::LANES;
const SUBTILE_LANES: usize = SUBTILE / F32x8::LANES;

//= spec: specs/determinism.toml#no-fma
//# every lane operation is plain f32 multiply-then-add in lane order,
//# so the lane kernels produce bit-for-bit the scalar kernels' results
/// An explicit 8-lane `f32` register: the fixed SIMD width the inner
/// matmul loops are written against, instead of hoping the
/// autovectorizer rediscovers the shape behind `[f32; W]` index loops.
/// Every lane op is plain `f32` arithmetic in lane order, so results
/// are bit-for-bit what the scalar kernels produce; there is
/// deliberately **no fused multiply-add** — an FMA skips the
/// intermediate rounding and would change the low bits of every
/// accumulation chain.
#[derive(Clone, Copy)]
struct F32x8([f32; 8]);

impl F32x8 {
    const LANES: usize = 8;
    const ZERO: Self = Self([0.0; 8]);

    /// Loads the first 8 elements of `src`.
    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        Self(src[..Self::LANES].try_into().expect("lane width"))
    }

    /// Stores the lanes into the first 8 elements of `dst`.
    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        dst[..Self::LANES].copy_from_slice(&self.0);
    }

    /// `self + a · b` per lane, as a rounded multiply then a rounded
    /// add (never an FMA — see the type docs).
    #[inline(always)]
    fn mul_add_scalar(self, a: f32, b: Self) -> Self {
        let mut out = self.0;
        for (o, bv) in out.iter_mut().zip(b.0) {
            *o += a * bv;
        }
        Self(out)
    }
}

thread_local! {
    /// Reusable buffer for the per-dispatch finite-rows mask — hoists
    /// the per-call `rows_finite` allocation out of the kernel path.
    static FINITE_SCRATCH: std::cell::Cell<Vec<bool>> = const { std::cell::Cell::new(Vec::new()) };
    /// Reusable gather buffer for one column of the left operand in the
    /// tiled `matmul_tn` kernel.
    static COL_SCRATCH: std::cell::Cell<Vec<f32>> = const { std::cell::Cell::new(Vec::new()) };
}

/// Runs `f` with the finite-rows mask of `m`, computed into a
/// thread-local scratch buffer (no allocation in steady state).
pub(crate) fn with_rows_finite<R>(m: &Matrix, f: impl FnOnce(&[bool]) -> R) -> R {
    FINITE_SCRATCH.with(|cell| {
        let mut buf = cell.take();
        m.rows_finite_into(&mut buf);
        let out = f(&buf);
        cell.set(buf);
        out
    })
}

/// One tile-width pass of the row kernel: consumes `L`-register
/// (`L × 8` columns) tiles starting at column `j` and returns the first
/// unconsumed column. The [`F32x8`] accumulators are *loaded from*
/// `out_row` and stored back, so each output element sees exactly the
/// same addition chain as the scalar kernel: its current value, then
/// `a[k] * b[k][j]` for `k` ascending, skipping `a[k] == 0` only when
/// row `k` of `rhs` is finite. `has_zero` must be
/// `a_row.contains(&0.0)`: dense rows take a branch-free inner loop,
/// which is bitwise-identical because the skip test can never fire on
/// them.
//= spec: specs/determinism.toml#k-ascending
//# accumulate each output element in ascending k order: the element's
//# current value, then a[k] * b[k][j] for k ascending
fn accumulate_tile_pass<const L: usize>(
    a_row: &[f32],
    rhs: &Matrix,
    rhs_row_finite: &[bool],
    has_zero: bool,
    out_row: &mut [f32],
    mut j: usize,
) -> usize {
    let width = rhs.cols;
    let tile = L * F32x8::LANES;
    while j + tile <= width {
        let mut acc = [F32x8::ZERO; L];
        for (u, lane) in acc.iter_mut().enumerate() {
            *lane = F32x8::load(&out_row[j + u * F32x8::LANES..]);
        }
        if has_zero {
            for ((b_row, &a), &fin) in rhs.data.chunks_exact(width).zip(a_row).zip(rhs_row_finite) {
                if a == 0.0 && fin {
                    continue;
                }
                let b = &b_row[j..j + tile];
                for (u, lane) in acc.iter_mut().enumerate() {
                    *lane = lane.mul_add_scalar(a, F32x8::load(&b[u * F32x8::LANES..]));
                }
            }
        } else {
            for (b_row, &a) in rhs.data.chunks_exact(width).zip(a_row) {
                let b = &b_row[j..j + tile];
                for (u, lane) in acc.iter_mut().enumerate() {
                    *lane = lane.mul_add_scalar(a, F32x8::load(&b[u * F32x8::LANES..]));
                }
            }
        }
        for (u, lane) in acc.iter().enumerate() {
            lane.store(&mut out_row[j + u * F32x8::LANES..]);
        }
        j += tile;
    }
    j
}

/// Accumulates `a_row · rhs` into `out_row` with register accumulator
/// tiles: `TILE`-wide tiles first, then `SUBTILE`-wide tiles so narrow
/// outputs still avoid per-`k` load/store traffic, then a scalar-form
/// AXPY over any final `< SUBTILE` columns. Tiling is over *output
/// columns* only, so every element's k-ascending accumulation chain —
/// and with it bitwise determinism and the NaN/∞ zero-skip semantics —
/// is untouched.
fn accumulate_row_tiled(a_row: &[f32], rhs: &Matrix, rhs_row_finite: &[bool], out_row: &mut [f32]) {
    let width = rhs.cols;
    debug_assert_eq!(out_row.len(), width);
    let has_zero = a_row.contains(&0.0);
    let j = accumulate_tile_pass::<TILE_LANES>(a_row, rhs, rhs_row_finite, has_zero, out_row, 0);
    let j = accumulate_tile_pass::<SUBTILE_LANES>(a_row, rhs, rhs_row_finite, has_zero, out_row, j);
    // Final columns (< SUBTILE): k-outer AXPY in exactly the scalar
    // kernel's loop form. Each element's addition chain is still its
    // current value plus the k-ascending products.
    if j < width {
        let tail = &mut out_row[j..];
        for (k, &a) in a_row.iter().enumerate() {
            if a == 0.0 && rhs_row_finite[k] {
                continue;
            }
            let b_row = &rhs.row(k)[j..];
            for (o, &b) in tail.iter_mut().zip(b_row.iter()) {
                *o += a * b;
            }
        }
    }
}

impl Matrix {
    /// Creates an `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates an `rows × cols` matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates a matrix from a closure invoked as `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix taking ownership of `data` laid out row-major.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Self { rows, cols, data }
    }

    /// Creates a 1×n row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Stacks equal-length rows into a matrix.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "cannot build a matrix from zero rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the backing slice (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing slice (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new matrix containing the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::default();
        self.select_rows_into(indices, &mut out);
        out
    }

    /// [`Matrix::select_rows`] into a caller-owned buffer, reusing its
    /// allocation.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.reset_zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
    }

    /// Reshapes to `rows × cols` and zero-fills, reusing the existing
    /// allocation when capacity allows.
    pub fn reset_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` an exact copy of `src`, reusing the existing
    /// allocation when capacity allows.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Writes the per-row "every element finite" mask into `out`. Used
    /// to decide where the sparse `a == 0.0` fast path in the matmul
    /// kernels is safe: skipping `0 × b` is only sound when `b` is
    /// finite (`0 × NaN` and `0 × ∞` must poison the output).
    //= spec: specs/determinism.toml#zero-skip-finite
    //# skip a zero multiplier a[k] == 0 only when row k of the
    //# right-hand side is entirely finite
    pub(crate) fn rows_finite_into(&self, out: &mut Vec<bool>) {
        out.clear();
        out.extend((0..self.rows).map(|r| self.row(r).iter().all(|v| v.is_finite())));
    }

    /// Writes rows `row_start..` of `self × rhs` into `chunk`, which
    /// must be a zero-initialised row-major block of `rhs.cols`-wide
    /// rows. Shared by the sequential [`Matrix::matmul`] and the
    /// row-partitioned parallel path so both accumulate every output
    /// element in the same `k`-ascending order (byte-identical results).
    //= spec: specs/determinism.toml#thread-invariance
    //# Outputs MUST be byte-identical at every thread count.
    pub(crate) fn matmul_rows_into(
        &self,
        rhs: &Matrix,
        rhs_row_finite: &[bool],
        row_start: usize,
        chunk: &mut [f32],
    ) {
        let width = rhs.cols;
        if width == 0 || chunk.is_empty() {
            return;
        }
        if width < SUBTILE {
            // Narrow outputs never fill even a sub-tile; the scalar
            // kernel is bitwise-identical there and optimizes better.
            return self.matmul_rows_into_scalar(rhs, rhs_row_finite, row_start, chunk);
        }
        debug_assert_eq!(chunk.len() % width, 0);
        for (local, out_row) in chunk.chunks_exact_mut(width).enumerate() {
            accumulate_row_tiled(self.row(row_start + local), rhs, rhs_row_finite, out_row);
        }
    }

    /// Writes columns `col_start..col_start + out.len()` of the single
    /// row of `self × rhs` into `out` (`self` must be a row vector).
    /// This is the parallel backend's column-chunked kernel for
    /// 1×n outputs, which cannot be split by row: each output element
    /// keeps the exact k-ascending accumulation chain (and zero-skip
    /// gating) of the full-row kernels, so any column partition
    /// reassembles to the sequential result bit-for-bit.
    pub(crate) fn matmul_row_cols_into(
        &self,
        rhs: &Matrix,
        rhs_row_finite: &[bool],
        col_start: usize,
        out: &mut [f32],
    ) {
        debug_assert_eq!(self.rows, 1);
        if out.is_empty() {
            return;
        }
        for (k, &a) in self.row(0).iter().enumerate() {
            if a == 0.0 && rhs_row_finite[k] {
                continue;
            }
            let b_row = &rhs.row(k)[col_start..col_start + out.len()];
            for (o, &b) in out.iter_mut().zip(b_row.iter()) {
                *o += a * b;
            }
        }
    }

    /// Pre-tiling scalar variant of [`Matrix::matmul_rows_into`] (i-k-j
    /// loop order, no register tiles). Kept as the bitwise oracle for
    /// the kernel-equivalence proptests and the bench baselines.
    pub(crate) fn matmul_rows_into_scalar(
        &self,
        rhs: &Matrix,
        rhs_row_finite: &[bool],
        row_start: usize,
        chunk: &mut [f32],
    ) {
        let width = rhs.cols;
        if width == 0 || chunk.is_empty() {
            return;
        }
        debug_assert_eq!(chunk.len() % width, 0);
        for (local, out_row) in chunk.chunks_exact_mut(width).enumerate() {
            let a_row = self.row(row_start + local);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 && rhs_row_finite[k] {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// Writes rows `row_start..` of `selfᵀ × rhs` into `chunk` (rows of
    /// the output correspond to columns of `self`). Keeps the `k`-outer
    /// streaming order of the sequential kernel restricted to the given
    /// output-row range, so per-element accumulation order is unchanged.
    pub(crate) fn matmul_tn_rows_into(
        &self,
        rhs: &Matrix,
        rhs_row_finite: &[bool],
        row_start: usize,
        chunk: &mut [f32],
    ) {
        let width = rhs.cols;
        if width == 0 || chunk.is_empty() {
            return;
        }
        if width < SUBTILE {
            // Narrow outputs never fill even a sub-tile; the scalar
            // kernel is bitwise-identical there and optimizes better.
            return self.matmul_tn_rows_into_scalar(rhs, rhs_row_finite, row_start, chunk);
        }
        debug_assert_eq!(chunk.len() % width, 0);
        // Gather each column of `self` into a contiguous thread-local
        // scratch row, then reuse the tiled row kernel: element (i, j)
        // still sees its `k` products in ascending order with the same
        // zero-skip test, so results stay bitwise equal to the scalar
        // k-outer kernel.
        COL_SCRATCH.with(|cell| {
            let mut a_col = cell.take();
            a_col.clear();
            a_col.resize(self.rows, 0.0);
            for (i, out_row) in chunk.chunks_exact_mut(width).enumerate() {
                let col = row_start + i;
                for (k, dst) in a_col.iter_mut().enumerate() {
                    *dst = self.data[k * self.cols + col];
                }
                accumulate_row_tiled(&a_col, rhs, rhs_row_finite, out_row);
            }
            cell.set(a_col);
        });
    }

    /// Pre-tiling scalar variant of [`Matrix::matmul_tn_rows_into`]
    /// (k-outer streaming order). Kept as the bitwise oracle for the
    /// kernel-equivalence proptests and the bench baselines.
    pub(crate) fn matmul_tn_rows_into_scalar(
        &self,
        rhs: &Matrix,
        rhs_row_finite: &[bool],
        row_start: usize,
        chunk: &mut [f32],
    ) {
        let width = rhs.cols;
        if width == 0 || chunk.is_empty() {
            return;
        }
        debug_assert_eq!(chunk.len() % width, 0);
        let rows = chunk.len() / width;
        for k in 0..self.rows {
            let a_row = &self.row(k)[row_start..row_start + rows];
            let b_row = rhs.row(k);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 && rhs_row_finite[k] {
                    continue;
                }
                let out_row = &mut chunk[i * width..(i + 1) * width];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
    }

    /// Writes rows `row_start..` of `self × rhsᵀ` into `chunk`
    /// (`rhs.rows`-wide rows). Plain dot products; no sparse fast path.
    pub(crate) fn matmul_nt_rows_into(&self, rhs: &Matrix, row_start: usize, chunk: &mut [f32]) {
        let width = rhs.rows;
        if width == 0 || chunk.is_empty() {
            return;
        }
        if width < SUBTILE {
            // Narrow outputs never fill even a sub-tile; the scalar
            // kernel is bitwise-identical there and optimizes better.
            return self.matmul_nt_rows_into_scalar(rhs, row_start, chunk);
        }
        debug_assert_eq!(chunk.len() % width, 0);
        let inner = self.cols;
        // TILE output columns (rows of `rhs`) accumulate in registers at
        // once; each dot product still starts at 0.0 and adds its `k`
        // products in ascending order, then overwrites the output slot —
        // exactly the scalar kernel's chain, so results are bitwise equal.
        for (local, out_row) in chunk.chunks_exact_mut(width).enumerate() {
            let a_row = self.row(row_start + local);
            let mut j = 0;
            while j + TILE <= width {
                let mut acc = [0.0f32; TILE];
                for (k, &a) in a_row.iter().enumerate() {
                    for u in 0..TILE {
                        acc[u] += a * rhs.data[(j + u) * inner + k];
                    }
                }
                out_row[j..j + TILE].copy_from_slice(&acc);
                j += TILE;
            }
            if j < width {
                let rem = width - j;
                let mut acc = [0.0f32; TILE];
                for (k, &a) in a_row.iter().enumerate() {
                    for u in 0..rem {
                        acc[u] += a * rhs.data[(j + u) * inner + k];
                    }
                }
                out_row[j..].copy_from_slice(&acc[..rem]);
            }
        }
    }

    /// Pre-tiling scalar variant of [`Matrix::matmul_nt_rows_into`]
    /// (plain dot products). Kept as the bitwise oracle for the
    /// kernel-equivalence proptests and the bench baselines.
    pub(crate) fn matmul_nt_rows_into_scalar(
        &self,
        rhs: &Matrix,
        row_start: usize,
        chunk: &mut [f32],
    ) {
        let width = rhs.rows;
        if width == 0 || chunk.is_empty() {
            return;
        }
        debug_assert_eq!(chunk.len() % width, 0);
        for (local, out_row) in chunk.chunks_exact_mut(width).enumerate() {
            let a_row = self.row(row_start + local);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = rhs.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
    }

    /// Matrix product `self × rhs`.
    ///
    /// Non-finite values propagate: a zero in `self` times a `NaN`/`∞`
    /// in `rhs` yields `NaN`, so [`Matrix::is_finite`] debugging cannot
    /// be fooled by the sparse fast path.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        with_rows_finite(rhs, |finite| self.matmul_rows_into(rhs, finite, 0, &mut out.data));
        out
    }

    /// `selfᵀ × rhs` without materializing the transpose.
    pub fn matmul_tn(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matmul_tn dimension mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        with_rows_finite(rhs, |finite| self.matmul_tn_rows_into(rhs, finite, 0, &mut out.data));
        out
    }

    /// `self × rhsᵀ` without materializing the transpose.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_nt dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_nt_rows_into(rhs, 0, &mut out.data);
        out
    }

    /// [`Matrix::matmul`] through the pre-tiling scalar kernel. Bitwise
    /// oracle for equivalence tests and the `bench_parallel` baselines.
    pub fn matmul_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        with_rows_finite(rhs, |finite| self.matmul_rows_into_scalar(rhs, finite, 0, &mut out.data));
        out
    }

    /// [`Matrix::matmul_tn`] through the pre-tiling scalar kernel.
    pub fn matmul_tn_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "matmul_tn dimension mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        with_rows_finite(rhs, |finite| {
            self.matmul_tn_rows_into_scalar(rhs, finite, 0, &mut out.data)
        });
        out
    }

    /// [`Matrix::matmul_nt`] through the pre-tiling scalar kernel.
    pub fn matmul_nt_reference(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_nt dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_nt_rows_into_scalar(rhs, 0, &mut out.data);
        out
    }

    /// Materialized transpose (cache-blocked copy: both the source and
    /// destination are walked in 32×32 blocks so neither side thrashes
    /// on large matrices).
    pub fn transpose(&self) -> Matrix {
        const BLOCK: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(BLOCK) {
            let r_end = (rb + BLOCK).min(self.rows);
            for cb in (0..self.cols).step_by(BLOCK) {
                let c_end = (cb + BLOCK).min(self.cols);
                for r in rb..r_end {
                    for c in cb..c_end {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Element-wise addition.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Element-wise scaling by a scalar.
    pub fn scale(&self, s: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self += rhs * s` (axpy).
    pub fn add_scaled_inplace(&mut self, rhs: &Matrix, s: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b * s;
        }
    }

    /// Adds a 1×cols row vector to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_row_broadcast_assign(row);
        out
    }

    /// In-place variant of [`Matrix::add_row_broadcast`].
    pub fn add_row_broadcast_assign(&mut self, row: &Matrix) {
        assert_eq!(row.rows, 1, "broadcast expects a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            for (o, &b) in self.row_mut(r).iter_mut().zip(row.data.iter()) {
                *o += b;
            }
        }
    }

    /// Sums each column into a 1×cols row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::default();
        self.sum_rows_into(&mut out);
        out
    }

    /// [`Matrix::sum_rows`] into a caller-owned buffer. Accumulates in
    /// the same row-ascending order, so results are bitwise equal.
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        out.reset_zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r).iter()) {
                *o += v;
            }
        }
    }

    /// Mean of each column as a 1×cols row vector.
    pub fn mean_rows(&self) -> Matrix {
        assert!(self.rows > 0, "mean of an empty matrix");
        self.sum_rows().scale(1.0 / self.rows as f32)
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Index of the largest value in row `r` (ties go to the lowest index).
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        let mut best_v = row[0];
        for (i, &v) in row.iter().enumerate().skip(1) {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sum of absolute values (entrywise L1 norm).
    pub fn l1_norm(&self) -> f32 {
        self.data.iter().map(|v| v.abs()).sum()
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn zeros_has_shape_and_zero_values() {
        let z = Matrix::zeros(3, 4);
        assert_eq!(z.shape(), (3, 4));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_lays_out_row_major() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(a.get(1, 2), 12.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 4, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(4, 3, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn add_sub_hadamard_scale_are_elementwise() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.add(&b).as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).as_slice(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[5.0, 12.0, 21.0, 32.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn broadcast_and_reductions() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = Matrix::row_vector(&[10.0, 20.0, 30.0]);
        assert_eq!(a.add_row_broadcast(&r).row(1), &[14.0, 25.0, 36.0]);
        assert_eq!(a.sum_rows().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.mean_rows().as_slice(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn argmax_row_breaks_ties_low() {
        let a = m(1, 4, &[1.0, 3.0, 3.0, 2.0]);
        assert_eq!(a.argmax_row(0), 1);
    }

    #[test]
    fn select_rows_orders_by_indices() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let s = a.select_rows(&[2, 0]);
        assert_eq!(s.as_slice(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn norms() {
        let a = m(1, 3, &[3.0, -4.0, 0.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((a.l1_norm() - 7.0).abs() < 1e-6);
    }

    #[test]
    fn matmul_propagates_nan_and_inf_through_zero_entries() {
        // Regression: the sparse `a == 0.0` fast path used to turn
        // 0 × NaN and 0 × ∞ into 0, hiding non-finite activations.
        let a = m(1, 2, &[0.0, 1.0]);
        let b = m(2, 2, &[f32::NAN, f32::INFINITY, 1.0, 2.0]);
        let c = a.matmul(&b);
        assert!(c.get(0, 0).is_nan());
        // IEEE 754: 0 × ∞ is NaN, and NaN + 2 stays NaN.
        assert!(c.get(0, 1).is_nan());
        assert!(!c.is_finite());
    }

    #[test]
    fn matmul_tn_propagates_nan_through_zero_entries() {
        let a = m(2, 1, &[0.0, 1.0]);
        let b = m(2, 2, &[f32::NAN, 3.0, 1.0, 2.0]);
        let c = a.matmul_tn(&b);
        assert!(c.get(0, 0).is_nan());
        // Column 1 of `b` is finite everywhere, so c01 = 0·3 + 1·2 = 2.
        assert_eq!(c.get(0, 1), 2.0);
    }

    #[test]
    fn matmul_zero_skip_is_exact_for_finite_data() {
        // The fast path must not change results (bitwise) on finite input.
        let a = m(2, 3, &[0.0, -0.0, 2.0, 1.5, 0.0, -3.0]);
        let b = m(3, 2, &[0.25, -1.0, 4.0, 0.5, -2.0, 8.0]);
        let fast = a.matmul(&b);
        let mut naive = Matrix::zeros(2, 2);
        for i in 0..2 {
            for j in 0..2 {
                let mut acc = 0.0f32;
                for k in 0..3 {
                    acc += a.get(i, k) * b.get(k, j);
                }
                naive.set(i, j, acc);
            }
        }
        let fast_bits: Vec<u32> = fast.as_slice().iter().map(|v| v.to_bits()).collect();
        let naive_bits: Vec<u32> = naive.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(fast_bits, naive_bits);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_panics_on_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = m(1, 2, &[1.0, 2.0]);
        let b = m(1, 2, &[10.0, 10.0]);
        a.add_scaled_inplace(&b, 0.5);
        assert_eq!(a.as_slice(), &[6.0, 7.0]);
    }

    /// Dense-ish data with exact zeros and awkward magnitudes so the
    /// zero-skip path and non-associative rounding are both exercised.
    fn pattern(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let h = (r * 131 + c * 31 + salt * 17) % 97;
            if h.is_multiple_of(7) {
                0.0
            } else {
                (h as f32 - 48.0) / 9.5
            }
        })
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn tiled_kernels_match_scalar_reference_bitwise() {
        // Shapes chosen to cover full tiles, remainder lanes, and
        // widths below one tile.
        for &(n, k, d) in &[(5usize, 7usize, 17usize), (4, 3, 8), (3, 9, 5), (6, 2, 23)] {
            let a = pattern(n, k, 1);
            let b = pattern(k, d, 2);
            assert_eq!(bits(&a.matmul(&b)), bits(&a.matmul_reference(&b)), "{n}x{k}x{d} nn");
            let at = pattern(k, n, 3);
            assert_eq!(
                bits(&at.matmul_tn(&b)),
                bits(&at.matmul_tn_reference(&b)),
                "{n}x{k}x{d} tn"
            );
            let bt = pattern(d, k, 4);
            assert_eq!(
                bits(&a.matmul_nt(&bt)),
                bits(&a.matmul_nt_reference(&bt)),
                "{n}x{k}x{d} nt"
            );
        }
    }

    #[test]
    fn tiled_kernels_preserve_nan_poisoning() {
        let mut b = pattern(6, 13, 5);
        b.set(2, 11, f32::NAN);
        b.set(4, 1, f32::INFINITY);
        let mut a = pattern(3, 6, 6);
        a.set(0, 2, 0.0);
        a.set(1, 4, 0.0);
        assert_eq!(bits(&a.matmul(&b)), bits(&a.matmul_reference(&b)));
        let at = pattern(6, 3, 7);
        assert_eq!(bits(&at.matmul_tn(&b)), bits(&at.matmul_tn_reference(&b)));
    }

    #[test]
    fn transpose_blocked_copy_matches_per_element_definition() {
        for &(r, c) in &[(1usize, 1usize), (3, 5), (33, 64), (70, 31), (128, 128)] {
            let a = pattern(r, c, 9);
            let t = a.transpose();
            assert_eq!(t.shape(), (c, r));
            for i in 0..r {
                for j in 0..c {
                    assert_eq!(t.get(j, i).to_bits(), a.get(i, j).to_bits(), "({i},{j})");
                }
            }
            assert_eq!(t.transpose(), a, "double transpose is the identity");
        }
    }

    #[test]
    fn into_variants_match_allocating_counterparts() {
        let a = pattern(5, 4, 11);
        let mut out = Matrix::default();
        a.select_rows_into(&[3, 0, 3], &mut out);
        assert_eq!(out, a.select_rows(&[3, 0, 3]));
        a.sum_rows_into(&mut out);
        assert_eq!(out, a.sum_rows());
        // Buffer reuse with a stale larger shape must not leak old data.
        let small = pattern(2, 2, 12);
        small.sum_rows_into(&mut out);
        assert_eq!(out, small.sum_rows());
        let mut inplace = a.clone();
        let row = Matrix::row_vector(&[1.0, -2.0, 0.5, 3.0]);
        inplace.add_row_broadcast_assign(&row);
        assert_eq!(inplace, a.add_row_broadcast(&row));
        let mut copy = Matrix::default();
        copy.copy_from(&a);
        assert_eq!(copy, a);
        copy.reset_zeros(2, 3);
        assert_eq!(copy, Matrix::zeros(2, 3));
    }
}
