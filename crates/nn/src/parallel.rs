//! Deterministic parallelism for the hot dense kernels, dispatched to a
//! persistent worker pool.
//!
//! ## Why determinism is non-negotiable
//!
//! Agua's whole pipeline — surrogate training, fidelity numbers,
//! explanations — is specified to be reproducible from a seed. Naive
//! parallel reductions break that: floating-point addition is not
//! associative, so letting thread scheduling decide the summation order
//! lets it decide the low bits of every weight. The backend here
//! therefore partitions work by **output row**: each row of the result
//! is owned by exactly one executor, and within a row the elements are
//! accumulated in the same `k`-ascending order the sequential kernels
//! use. The parallel and sequential paths share one kernel per op
//! (`Matrix::matmul_rows_into` and friends), so the result is
//! byte-identical for every thread count.
//!
//! ## Dispatch
//!
//! The row-partitioned leaf kernels ([`par_matmul`], [`par_matmul_tn`],
//! [`par_matmul_nt`], [`par_for_each_rows`]) hand their extra chunks to
//! the persistent worker pool in [`crate::pool`] — parked threads that
//! are spawned lazily on the first over-gate operation, instead of a
//! fresh `std::thread::scope` per op (tens of microseconds of
//! spawn/join, previously paid on every qualifying matmul).
//! [`set_global_threads`] shrinks the pool immediately; growth is lazy,
//! so a larger scoped override spawns the missing workers at its next
//! dispatch. The coarse-grained helpers ([`par_map`], [`par_map_range`],
//! [`par_jobs`]) keep scoped threads: their jobs may themselves dispatch
//! leaf kernels, which must never queue behind their own parent on a
//! pool worker.
//!
//! Pool workers deliberately do not inherit the dispatcher's scoped
//! observability subscriber: events are emitted on the dispatching
//! thread only, so metrics aggregate identically at any thread count.
//!
//! ## Thread-count resolution
//!
//! `ThreadConfig::current()` resolves, in priority order:
//!
//! 1. a scoped override installed by [`with_threads`] /
//!    [`with_thread_config`] (thread-local, panic-safe),
//! 2. a process-wide override from [`set_global_threads`] (e.g. the
//!    CLI's `--threads` flag),
//! 3. the `AGUA_THREADS` environment variable (read once per process),
//! 4. [`std::thread::available_parallelism`].
//!
//! ## Size gate
//!
//! Even a pooled handoff has a cost (channel send + latch wait), so
//! small operations run sequentially on the calling thread. Each leaf
//! kernel gates on its own measured break-even point (the [`breakeven`]
//! constants — see that module for the calibration method); the
//! per-row map additionally takes a caller-supplied per-element cost
//! hint, because `elems × 4` grossly undercounts exp-heavy closures
//! like softmax (the PR 3 estimate left `for_each_rows` sequential on
//! every one of its dispatches). Setting `AGUA_PAR_MIN_FLOPS`, or a
//! scoped [`ThreadConfig`] whose `min_flops` differs from
//! [`DEFAULT_MIN_FLOPS`], replaces every per-kernel gate with that
//! single explicit value (tests pass `min_flops: 0` to force pool
//! dispatch on tiny shapes).
//!
//! Under the calibrated gates the planner additionally caps workers at
//! the machine's detected hardware parallelism: oversubscribing a box
//! with fewer cores than the requested thread count pays the handoff
//! cost with no cores to spend it on, which is exactly the sub-1×
//! batched-explanation regression this gate retune fixes. Explicit
//! `min_flops` overrides skip the cap — forced schedules must
//! reproduce bit-for-bit *and* thread-for-thread on any machine.
//!
//! Note that a scoped override applies to the calling thread only: a
//! kernel running on a worker thread sees the defaults again. Workers
//! only ever run leaf kernels, so this cannot cause nested dispatch
//! (and the pool additionally runs any nested dispatch inline).

use crate::matrix::Matrix;
use agua_obs::scoped::emit_scoped_deferred;
use agua_obs::{Event, Kernel, KernelDispatched};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default `min_flops` value. Left untouched, it acts as the sentinel
/// selecting the calibrated per-kernel [`breakeven`] gates; any other
/// value (scoped config or `AGUA_PAR_MIN_FLOPS`) gates every kernel on
/// that single explicit threshold instead.
pub const DEFAULT_MIN_FLOPS: usize = 1_000_000;

/// Measured per-kernel break-even points: the smallest operation (in
/// multiply-accumulates, or cost-weighted elements for the row map)
/// for which a 4-way pool dispatch beats running sequentially.
///
/// Calibrated with `bench_parallel`'s gate-calibration sweep, which
/// times each kernel sequentially and pool-dispatched across a ladder
/// of doubling sizes and records the crossover (the
/// `gate_calibration` section of `BENCH_parallel.json`). The pool
/// handoff costs a few microseconds (one channel send plus a latch
/// wait per extra chunk), so the old uniform 1M-MAC gate — sized for
/// training-shaped matmuls — left over half of the *explain*-shaped
/// matmuls (430 of 814, e.g. 2000×24×4 Ω products) sequential even
/// though they clear break-even by an order of magnitude.
pub mod breakeven {
    /// `a × b` row-partitioned matmul.
    pub const MATMUL: usize = 32_768;
    /// `aᵀ × b`: the per-dispatch column gather amortizes later.
    pub const MATMUL_TN: usize = 65_536;
    /// `a × bᵀ` dot-product kernel.
    pub const MATMUL_NT: usize = 32_768;
    /// Per-row map, in cost-weighted elements (`elems × flops_per_elem`).
    pub const FOR_EACH_ROWS: usize = 65_536;
    /// Quantized `i8×i8→i32` matmul. Int8 MACs are cheaper than f32
    /// ones (widening integer multiply-adds, no finite gating), so the
    /// sequential side of the ledger runs faster and break-even lands
    /// later than [`MATMUL`] — the f32 threshold would pay the pool
    /// handoff on shapes the lane kernel finishes before the workers
    /// wake. Calibrated by `bench_parallel`'s `matmul_q8` ladder.
    pub const MATMUL_Q8: usize = 65_536;
}

/// Resolved parallelism settings for the current scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadConfig {
    /// Maximum number of worker threads an operation may use.
    pub threads: usize,
    /// Operations below this many multiply-accumulates stay sequential.
    pub min_flops: usize,
}

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
static ENV_MIN_FLOPS: OnceLock<Option<usize>> = OnceLock::new();

thread_local! {
    static SCOPED: Cell<Option<ThreadConfig>> = const { Cell::new(None) };
}

fn env_usize(lock: &OnceLock<Option<usize>>, name: &str) -> Option<usize> {
    *lock.get_or_init(|| {
        let raw = std::env::var(name).ok()?;
        let parsed = raw.trim().parse::<usize>().ok().filter(|&n| n >= 1);
        if parsed.is_none() {
            // A present-but-rejected value silently falling back to the
            // default is a misconfiguration trap; say so once.
            eprintln!(
                "agua-nn: ignoring {name}={raw:?}: expected a positive integer, \
                 falling back to the default"
            );
        }
        parsed
    })
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

impl ThreadConfig {
    /// The configuration in effect for the calling thread (see the
    /// module docs for the resolution order).
    pub fn current() -> ThreadConfig {
        if let Some(cfg) = SCOPED.with(Cell::get) {
            return cfg;
        }
        let threads = match GLOBAL_THREADS.load(Ordering::Relaxed) {
            0 => env_usize(&ENV_THREADS, "AGUA_THREADS").unwrap_or_else(default_threads),
            n => n,
        };
        let min_flops =
            env_usize(&ENV_MIN_FLOPS, "AGUA_PAR_MIN_FLOPS").unwrap_or(DEFAULT_MIN_FLOPS);
        ThreadConfig { threads: threads.max(1), min_flops }
    }
}

/// Sets the process-wide thread count (clamped to ≥ 1). Takes priority
/// over `AGUA_THREADS`; scoped overrides still win.
///
/// Also resizes the persistent worker pool: shrinking takes effect
/// immediately (surplus workers exit and are joined); growing stays
/// lazy, with new workers spawned at the next over-gate dispatch. A
/// dispatch needs `threads - 1` workers — the dispatching thread runs
/// the first chunk itself.
pub fn set_global_threads(threads: usize) {
    let threads = threads.max(1);
    GLOBAL_THREADS.store(threads, Ordering::Relaxed);
    crate::pool::resize_to(threads - 1);
}

/// Runs `f` with `config` installed as the calling thread's
/// parallelism settings, restoring the previous settings afterwards
/// (also on panic).
pub fn with_thread_config<R>(config: ThreadConfig, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<ThreadConfig>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            SCOPED.with(|c| c.set(prev));
        }
    }
    let _restore = Restore(SCOPED.with(|c| c.replace(Some(config))));
    f()
}

/// Runs `f` with the thread count pinned to `threads` (clamped to ≥ 1),
/// keeping the current size gate.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let cur = ThreadConfig::current();
    with_thread_config(ThreadConfig { threads: threads.max(1), ..cur }, f)
}

/// The effective size gate for a kernel whose calibrated break-even is
/// `calibrated`: the per-kernel default unless `min_flops` was set to
/// an explicit value (see [`DEFAULT_MIN_FLOPS`]).
fn gate_for(cfg: &ThreadConfig, calibrated: usize) -> usize {
    if cfg.min_flops == DEFAULT_MIN_FLOPS {
        calibrated
    } else {
        cfg.min_flops
    }
}

/// Detected hardware parallelism, cached once per process.
fn hardware_parallelism() -> usize {
    #[cfg(test)]
    if let Some(hw) = HW_OVERRIDE.with(Cell::get) {
        return hw;
    }
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(default_threads)
}

#[cfg(test)]
thread_local! {
    /// Test-scoped stand-in for the detected core count, so the
    /// calibrated-gate planning tests behave identically on a 1-core
    /// CI container and a many-core workstation.
    static HW_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Runs `f` pretending the machine has `hw` cores (clamped to ≥ 1),
/// restoring the real detection afterwards (also on panic).
#[cfg(test)]
fn with_hardware_parallelism<R>(hw: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            HW_OVERRIDE.with(|c| c.set(prev));
        }
    }
    let _restore = Restore(HW_OVERRIDE.with(|c| c.replace(Some(hw.max(1)))));
    f()
}

/// Worker budget for the calibrated-gate path: the configured thread
/// count, capped at [`hardware_parallelism`]. Planning more workers
/// than the machine has cores only adds pool handoff with nothing to
/// run it on — `BENCH_parallel.json` recorded the batched-explanation
/// stage at 0.93–0.95× of sequential precisely because four planned
/// workers shared one core. An explicit `min_flops` (forced `0` in the
/// equivalence suites, `AGUA_PAR_MIN_FLOPS`) keeps the raw count: those
/// callers asked for an exact schedule, and determinism does not depend
/// on the worker count anyway.
fn effective_threads(cfg: &ThreadConfig) -> usize {
    if cfg.min_flops == DEFAULT_MIN_FLOPS {
        cfg.threads.min(hardware_parallelism()).max(1)
    } else {
        cfg.threads
    }
}

/// Number of workers an op producing `out_rows` rows with `macs`
/// multiply-accumulates should use under the current config, gating on
/// the kernel's `calibrated` break-even point.
fn plan_workers(out_rows: usize, macs: usize, calibrated: usize) -> usize {
    let cfg = ThreadConfig::current();
    let threads = effective_threads(&cfg);
    if threads <= 1 || out_rows < 2 || macs < gate_for(&cfg, calibrated) {
        1
    } else {
        threads.min(out_rows)
    }
}

/// Reports a kernel dispatch to the ambient observability scope (free
/// when none is installed). Called on the dispatching thread only —
/// *after* the operation completes, so `queue_depth` can carry the
/// enqueue-time high-water of the pool handoff (sampling the queue
/// before or long after the sends always reads 0: workers drain in
/// microseconds). Event order is schedule-independent; the shape and
/// `macs` fields are identical at any thread count, while
/// `threads`/`seq_fallback`/`queue_depth` describe the scheduling that
/// actually happened.
///
/// Dispatches are kernel-frequency (tens of thousands per fit), so the
/// event is **deferred**: built here, buffered thread-locally, and
/// delivered to the subscriber in batches at span close (or when the
/// buffer fills) — one `Vec` push on the hot path instead of a
/// subscriber lock per dispatch. Delivery order within the buffer is
/// preserved and nothing is dropped, so the deterministic aggregates
/// are unchanged.
#[inline]
#[allow(clippy::too_many_arguments)] // one flat call per kernel dispatch — a shape struct would just move the noise
fn note_dispatch(
    kernel: Kernel,
    rows: usize,
    inner: usize,
    cols: usize,
    macs: usize,
    workers: usize,
    pool_dispatch: bool,
    timer: KernelTimer,
) {
    // audit:allow(wall-clock): closes the kernel_timer sample — feeds
    // KernelDispatched::seconds, telemetry only (see KernelTimer).
    let seconds = timer.map_or(0.0, |t| t.elapsed().as_secs_f64());
    emit_scoped_deferred(|| {
        KernelDispatched {
            kernel,
            rows,
            inner,
            cols,
            macs: macs as u64,
            threads: workers.max(1),
            seq_fallback: workers <= 1,
            pool_dispatch,
            queue_depth: if pool_dispatch {
                crate::pool::last_dispatch_queue_high_water()
            } else {
                0
            },
            seconds,
        }
        .into_any()
    });
}

/// A deferred wall-clock sample for the per-kernel latency histograms:
/// `Some` only while a scoped subscriber is active, so the unobserved
/// hot path never reads the clock. The sample is consumed by
/// [`note_dispatch`] and surfaces as `KernelDispatched::seconds`
/// (aggregated into `kernel.{name}.seconds` by the metrics subscriber —
/// variable scheduling state, never a deterministic counter).
// audit:allow(wall-clock): kernel latency telemetry only — the sample
// exists iff a scoped subscriber consumes it; no deterministic output
// depends on it.
type KernelTimer = Option<std::time::Instant>;

#[inline]
fn kernel_timer() -> KernelTimer {
    // audit:allow(wall-clock): kernel latency telemetry only (see
    // KernelTimer) — gated on scoped_active, one flag read when quiet.
    agua_obs::scoped::scoped_active().then(std::time::Instant::now)
}

/// Splits `out` (row-major, `width` columns) into per-worker runs of
/// whole rows and invokes `work(first_row_index, chunk)` on each — the
/// first chunk on the calling thread, the rest on persistent pool
/// workers. Each output row is written by exactly one executor, and the
/// chunk boundaries depend only on `workers`, so results are
/// byte-identical to a sequential pass.
fn run_row_partitioned(
    out: &mut [f32],
    width: usize,
    workers: usize,
    work: impl Fn(usize, &mut [f32]) + Sync,
) {
    debug_assert!(width > 0 && out.len().is_multiple_of(width));
    let rows = out.len() / width;
    let chunk_rows = rows.div_ceil(workers.max(1)).max(1);
    crate::pool::run_chunks(out, width, chunk_rows, &work);
}

/// `a × b`, byte-identical to [`Matrix::matmul`] at any thread count.
pub fn par_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    par_matmul_into(a, b, &mut out);
    out
}

/// [`par_matmul`] into a caller-owned buffer, reusing its allocation.
///
/// Row-vector shapes (`a.rows() == 1` — the CLI `explain` single-input
/// path) cannot be split by output row, so they are chunked over
/// output *columns* instead: each worker owns a contiguous column
/// range of the single output row, and every element keeps its
/// k-ascending accumulation chain, so the result stays byte-identical
/// to the sequential kernel.
pub fn par_matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
    let t0 = kernel_timer();
    let macs = a.rows().saturating_mul(a.cols()).saturating_mul(b.cols());
    let workers = if b.cols() == 0 {
        1
    } else if a.rows() == 1 {
        let cfg = ThreadConfig::current();
        let threads = effective_threads(&cfg);
        if threads <= 1 || b.cols() < 2 || macs < gate_for(&cfg, breakeven::MATMUL) {
            1
        } else {
            threads.min(b.cols())
        }
    } else {
        plan_workers(a.rows(), macs, breakeven::MATMUL)
    };
    out.reset_zeros(a.rows(), b.cols());
    crate::matrix::with_rows_finite(b, |finite| {
        if workers <= 1 {
            a.matmul_rows_into(b, finite, 0, out.as_mut_slice());
        } else if a.rows() == 1 {
            // Column chunking: treat each column of the single output
            // row as a width-1 "row" for the partitioner.
            run_row_partitioned(out.as_mut_slice(), 1, workers, |col_start, chunk| {
                a.matmul_row_cols_into(b, finite, col_start, chunk);
            });
        } else {
            run_row_partitioned(out.as_mut_slice(), b.cols(), workers, |row_start, chunk| {
                a.matmul_rows_into(b, finite, row_start, chunk);
            });
        }
    });
    note_dispatch(Kernel::Matmul, a.rows(), a.cols(), b.cols(), macs, workers, workers > 1, t0);
}

/// `aᵀ × b`, byte-identical to [`Matrix::matmul_tn`] at any thread count.
pub fn par_matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    par_matmul_tn_into(a, b, &mut out);
    out
}

/// [`par_matmul_tn`] into a caller-owned buffer, reusing its allocation.
pub fn par_matmul_tn_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.rows(), b.rows(), "matmul_tn dimension mismatch");
    let t0 = kernel_timer();
    let macs = a.rows().saturating_mul(a.cols()).saturating_mul(b.cols());
    let workers =
        if b.cols() == 0 { 1 } else { plan_workers(a.cols(), macs, breakeven::MATMUL_TN) };
    out.reset_zeros(a.cols(), b.cols());
    crate::matrix::with_rows_finite(b, |finite| {
        if workers <= 1 {
            a.matmul_tn_rows_into(b, finite, 0, out.as_mut_slice());
        } else {
            run_row_partitioned(out.as_mut_slice(), b.cols(), workers, |row_start, chunk| {
                a.matmul_tn_rows_into(b, finite, row_start, chunk);
            });
        }
    });
    note_dispatch(Kernel::MatmulTn, a.cols(), a.rows(), b.cols(), macs, workers, workers > 1, t0);
}

/// `a × bᵀ`, byte-identical to [`Matrix::matmul_nt`] at any thread count.
pub fn par_matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    par_matmul_nt_into(a, b, &mut out);
    out
}

/// [`par_matmul_nt`] into a caller-owned buffer, reusing its allocation.
pub fn par_matmul_nt_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols(), b.cols(), "matmul_nt dimension mismatch");
    let t0 = kernel_timer();
    let macs = a.rows().saturating_mul(a.cols()).saturating_mul(b.rows());
    let workers =
        if b.rows() == 0 { 1 } else { plan_workers(a.rows(), macs, breakeven::MATMUL_NT) };
    out.reset_zeros(a.rows(), b.rows());
    if workers <= 1 {
        a.matmul_nt_rows_into(b, 0, out.as_mut_slice());
    } else {
        run_row_partitioned(out.as_mut_slice(), b.rows(), workers, |row_start, chunk| {
            a.matmul_nt_rows_into(b, row_start, chunk);
        });
    }
    note_dispatch(Kernel::MatmulNt, a.rows(), a.cols(), b.rows(), macs, workers, workers > 1, t0);
}

/// Default per-element cost hint for [`par_for_each_rows`]: a cheap
/// arithmetic closure (a few flops per element).
pub const CHEAP_ELEM_FLOPS: usize = 4;

/// Per-element cost hint for closures dominated by `exp`/`ln`-class
/// calls (softmax rows, log-likelihoods): a libm call costs tens of
/// flop-equivalents, not four.
pub const EXP_ELEM_FLOPS: usize = 32;

/// Per-element cost hint for row-normalization epilogues (the fused
/// ReLU→LayerNorm pass): two reduction sweeps plus the normalize/affine
/// sweep over each row.
pub const NORM_ELEM_FLOPS: usize = 8;

/// Applies `f` to each row of `m` in parallel as `f(row_index, row)`,
/// assuming a cheap closure ([`CHEAP_ELEM_FLOPS`] per element). Rows
/// are independent, so the result is identical to the sequential loop.
pub fn par_for_each_rows(m: &mut Matrix, f: impl Fn(usize, &mut [f32]) + Sync) {
    par_for_each_rows_cost(m, CHEAP_ELEM_FLOPS, f);
}

/// [`par_for_each_rows`] with a caller-supplied estimate of the
/// closure's per-element cost in flop-equivalents. The size gate
/// compares `elems × flops_per_elem` against the kernel's break-even
/// point, so exp-heavy closures (hint: [`EXP_ELEM_FLOPS`]) parallelize
/// at the batch sizes where they actually dominate — the fixed
/// `elems × 4` estimate this replaces kept every softmax pass
/// sequential (`kernel.for_each_rows` showed `max_threads: 1` across
/// all 123 dispatches of a full bench run).
pub fn par_for_each_rows_cost(
    m: &mut Matrix,
    flops_per_elem: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    let t0 = kernel_timer();
    let cfg = ThreadConfig::current();
    let threads = effective_threads(&cfg);
    let elems = m.rows().saturating_mul(m.cols());
    let cost = elems.saturating_mul(flops_per_elem.max(1));
    let workers = if threads <= 1
        || m.rows() < 2
        || m.cols() == 0
        || cost < gate_for(&cfg, breakeven::FOR_EACH_ROWS)
    {
        1
    } else {
        threads.min(m.rows())
    };
    if workers <= 1 {
        for r in 0..m.rows() {
            f(r, m.row_mut(r));
        }
    } else {
        let width = m.cols();
        run_row_partitioned(m.as_mut_slice(), width, workers, |row_start, chunk| {
            for (local, row) in chunk.chunks_exact_mut(width).enumerate() {
                f(row_start + local, row);
            }
        });
    }
    note_dispatch(Kernel::ForEachRows, m.rows(), 0, m.cols(), cost, workers, workers > 1, t0);
}

/// Dispatches a quantized `i8×i8→i32` matmul whose row kernel is
/// supplied by the caller (`crate::quant` owns the lane arithmetic and
/// the quantized operand layout): `work(row_start, chunk)` must fill
/// `chunk` — whole rows of `out` — exactly as a sequential k-ascending
/// pass would. Gated on its own [`breakeven::MATMUL_Q8`] point: int8
/// MACs are cheaper per element than f32 ones, so reusing the f32
/// threshold would pay the pool handoff on shapes the lane kernel
/// finishes before the workers wake. Reported as [`Kernel::MatmulQ8`].
/// Integer accumulation is exact and order-free, so byte-identity
/// across worker counts holds by construction; the row partitioning is
/// still what keeps the fused f32 epilogue deterministic.
pub fn par_matmul_q8(out: &mut Matrix, inner: usize, work: impl Fn(usize, &mut [f32]) + Sync) {
    let t0 = kernel_timer();
    let (rows, cols) = (out.rows(), out.cols());
    let macs = rows.saturating_mul(inner).saturating_mul(cols);
    let workers = if cols == 0 { 1 } else { plan_workers(rows, macs, breakeven::MATMUL_Q8) };
    if workers <= 1 {
        if rows > 0 && cols > 0 {
            work(0, out.as_mut_slice());
        }
    } else {
        run_row_partitioned(out.as_mut_slice(), cols, workers, work);
    }
    note_dispatch(Kernel::MatmulQ8, rows, inner, cols, macs, workers, workers > 1, t0);
}

/// Maps `f` over `items` on the configured number of worker threads,
/// returning results in input order.
//= spec: specs/determinism.toml#thread-invariance
//# Outputs MUST be byte-identical at every thread count.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = ThreadConfig::current().threads.min(items.len()).max(1);
    note_dispatch(Kernel::Map, items.len(), 0, 0, items.len(), workers, false, None);
    if workers <= 1 {
        return items.iter().map(&f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    // audit:allow(thread-spawn): coarse-grained job fan-out above the pool;
    // results are joined in input order, so scheduling cannot reach outputs
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| s.spawn(move || chunk.iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("par_map worker panicked")).collect()
    })
}

/// Maps `f` over `0..n` on the configured number of worker threads,
/// returning results in index order.
pub fn par_map_range<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let workers = ThreadConfig::current().threads.min(n).max(1);
    note_dispatch(Kernel::Map, n, 0, 0, n, workers, false, None);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk_len = n.div_ceil(workers);
    // audit:allow(thread-spawn): coarse-grained index fan-out above the pool;
    // results are joined in index order, so scheduling cannot reach outputs
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = (w * chunk_len).min(n);
                let hi = ((w + 1) * chunk_len).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("par_map_range worker panicked")).collect()
    })
}

/// Runs independent jobs on one scoped thread each (meant for a handful
/// of heavy jobs, e.g. per-seed experiment runs), returning results in
/// job order. With one configured thread the jobs run inline.
pub fn par_jobs<R, F>(jobs: Vec<F>) -> Vec<R>
where
    R: Send,
    F: FnOnce() -> R + Send,
{
    let workers = ThreadConfig::current().threads.min(jobs.len()).max(1);
    note_dispatch(Kernel::Jobs, jobs.len(), 0, 0, jobs.len(), workers, false, None);
    if workers <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|j| j()).collect();
    }
    // audit:allow(thread-spawn): one scoped thread per independent job,
    // joined in job order; no shared float state crosses threads
    std::thread::scope(|s| {
        let handles: Vec<_> = jobs.into_iter().map(|j| s.spawn(j)).collect();
        handles.into_iter().map(|h| h.join().expect("par_jobs worker panicked")).collect()
    })
}

/// Pre-pool, pre-tiling reference paths, kept so the equivalence
/// proptests and `bench_parallel` baselines can compare the live
/// backend against exactly what PR 1 shipped: per-op
/// `std::thread::scope` spawning over the scalar kernels. These emit no
/// observability events and take an explicit worker count.
pub mod reference {
    use super::Matrix;

    /// The PR 1 dispatcher: identical row partitioning to the pool path
    /// (`rows.div_ceil(workers)`-row chunks), but a fresh scoped thread
    /// per chunk on every call.
    fn scoped_row_partitioned(
        out: &mut [f32],
        width: usize,
        workers: usize,
        work: impl Fn(usize, &mut [f32]) + Sync,
    ) {
        debug_assert!(width > 0 && out.len().is_multiple_of(width));
        let rows = out.len() / width;
        let chunk_rows = rows.div_ceil(workers.max(1)).max(1);
        // audit:allow(thread-spawn): retired PR 1 reference path, kept only so
        // the equivalence suites can compare the pool against it
        std::thread::scope(|s| {
            let work = &work;
            for (c, chunk) in out.chunks_mut(chunk_rows * width).enumerate() {
                s.spawn(move || work(c * chunk_rows, chunk));
            }
        });
    }

    /// `a × b` through scoped-spawn dispatch over the scalar kernel.
    /// Like the retired path, the finite-rows mask is a fresh per-call
    /// allocation (the thread-local scratch hoist is part of the pool
    /// backend being measured against this baseline).
    pub fn scoped_scalar_matmul(a: &Matrix, b: &Matrix, workers: usize) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
        let mut out = Matrix::zeros(a.rows(), b.cols());
        let mut finite = Vec::new();
        b.rows_finite_into(&mut finite);
        scoped_row_partitioned(out.as_mut_slice(), b.cols().max(1), workers, |rs, chunk| {
            a.matmul_rows_into_scalar(b, &finite, rs, chunk);
        });
        out
    }

    /// `aᵀ × b` through scoped-spawn dispatch over the scalar kernel
    /// (fresh per-call mask allocation, as the retired path had).
    pub fn scoped_scalar_matmul_tn(a: &Matrix, b: &Matrix, workers: usize) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "matmul_tn dimension mismatch");
        let mut out = Matrix::zeros(a.cols(), b.cols());
        let mut finite = Vec::new();
        b.rows_finite_into(&mut finite);
        scoped_row_partitioned(out.as_mut_slice(), b.cols().max(1), workers, |rs, chunk| {
            a.matmul_tn_rows_into_scalar(b, &finite, rs, chunk);
        });
        out
    }

    /// `a × bᵀ` through scoped-spawn dispatch over the scalar kernel.
    pub fn scoped_scalar_matmul_nt(a: &Matrix, b: &Matrix, workers: usize) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "matmul_nt dimension mismatch");
        let mut out = Matrix::zeros(a.rows(), b.rows());
        scoped_row_partitioned(out.as_mut_slice(), b.rows().max(1), workers, |rs, chunk| {
            a.matmul_nt_rows_into_scalar(b, rs, chunk);
        });
        out
    }

    /// `a × b` through scoped-spawn dispatch over the *tiled* kernel —
    /// isolates dispatch cost (pool vs scope) from kernel cost
    /// (tiled vs scalar) in the benches.
    pub fn scoped_tiled_matmul(a: &Matrix, b: &Matrix, workers: usize) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
        let mut out = Matrix::zeros(a.rows(), b.cols());
        crate::matrix::with_rows_finite(b, |finite| {
            scoped_row_partitioned(out.as_mut_slice(), b.cols().max(1), workers, |rs, chunk| {
                a.matmul_rows_into(b, finite, rs, chunk);
            });
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forces the parallel path regardless of operation size.
    fn forced(threads: usize) -> ThreadConfig {
        ThreadConfig { threads, min_flops: 0 }
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    fn pattern(rows: usize, cols: usize, salt: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |r, c| {
            let h = (r as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((c as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
                .wrapping_add(salt);
            // Mix in exact zeros to exercise the sparse fast path.
            if h.is_multiple_of(7) {
                0.0
            } else {
                ((h % 2001) as f32 - 1000.0) / 250.0
            }
        })
    }

    #[test]
    fn scoped_override_wins_and_restores() {
        let outer = ThreadConfig::current();
        let inner = with_threads(3, ThreadConfig::current);
        assert_eq!(inner.threads, 3);
        assert_eq!(inner.min_flops, outer.min_flops);
        assert_eq!(ThreadConfig::current(), outer);
    }

    #[test]
    fn scoped_override_restores_on_panic() {
        let outer = ThreadConfig::current();
        let caught = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(ThreadConfig::current(), outer);
    }

    #[test]
    fn par_matmul_is_bitwise_identical_across_thread_counts() {
        let a = pattern(37, 19, 1);
        let b = pattern(19, 23, 2);
        let seq = a.matmul(&b);
        for threads in [1, 2, 3, 4, 7] {
            let par = with_thread_config(forced(threads), || par_matmul(&a, &b));
            assert_eq!(bits(&seq), bits(&par), "threads={threads}");
        }
    }

    #[test]
    fn par_matmul_tn_is_bitwise_identical_across_thread_counts() {
        let a = pattern(29, 17, 3);
        let b = pattern(29, 13, 4);
        let seq = a.matmul_tn(&b);
        for threads in [1, 2, 4, 5] {
            let par = with_thread_config(forced(threads), || par_matmul_tn(&a, &b));
            assert_eq!(bits(&seq), bits(&par), "threads={threads}");
        }
    }

    #[test]
    fn par_matmul_nt_is_bitwise_identical_across_thread_counts() {
        let a = pattern(31, 11, 5);
        let b = pattern(21, 11, 6);
        let seq = a.matmul_nt(&b);
        for threads in [1, 2, 4, 6] {
            let par = with_thread_config(forced(threads), || par_matmul_nt(&a, &b));
            assert_eq!(bits(&seq), bits(&par), "threads={threads}");
        }
    }

    #[test]
    fn par_matmul_propagates_non_finite_like_sequential() {
        let a = pattern(8, 6, 7);
        let mut b = pattern(6, 5, 8);
        b.set(2, 3, f32::NAN);
        b.set(4, 0, f32::INFINITY);
        let seq = a.matmul(&b);
        let par = with_thread_config(forced(4), || par_matmul(&a, &b));
        assert_eq!(bits(&seq), bits(&par));
    }

    #[test]
    fn par_matmul_handles_more_threads_than_rows() {
        let a = pattern(3, 9, 9);
        let b = pattern(9, 4, 10);
        let par = with_thread_config(forced(16), || par_matmul(&a, &b));
        assert_eq!(bits(&a.matmul(&b)), bits(&par));
    }

    #[test]
    fn small_ops_stay_sequential_under_default_gate() {
        // 2×2 is far below the gate; this must not spawn (and must be right).
        let a = pattern(2, 2, 11);
        let b = pattern(2, 2, 12);
        let par = with_threads(8, || par_matmul(&a, &b));
        assert_eq!(bits(&a.matmul(&b)), bits(&par));
    }

    #[test]
    fn par_for_each_rows_matches_sequential() {
        let base = pattern(15, 7, 13);
        let mut seq = base.clone();
        for r in 0..seq.rows() {
            let row = seq.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v = *v * 2.0 + (r + c) as f32;
            }
        }
        let mut par = base.clone();
        with_thread_config(forced(4), || {
            par_for_each_rows(&mut par, |r, row| {
                for (c, v) in row.iter_mut().enumerate() {
                    *v = *v * 2.0 + (r + c) as f32;
                }
            });
        });
        assert_eq!(bits(&seq), bits(&par));
    }

    #[test]
    fn single_row_matmul_chunks_over_columns_bitwise() {
        // 1×k × k×n: the old `out_rows < 2` short-circuit forced this
        // fully sequential; the column-chunked path must dispatch and
        // stay byte-identical, including non-finite poisoning.
        let a = pattern(1, 48, 30);
        let mut b = pattern(48, 131, 31);
        b.set(7, 90, f32::NAN);
        b.set(11, 3, f32::INFINITY);
        let seq = a.matmul(&b);
        for threads in [1, 2, 4, 7] {
            let par = with_thread_config(forced(threads), || par_matmul(&a, &b));
            assert_eq!(bits(&seq), bits(&par), "threads={threads}");
        }
    }

    #[test]
    fn single_row_matmul_parallelizes_over_the_calibrated_gate() {
        use agua_obs::scoped::with_scoped_subscriber;
        use agua_obs::Metrics;
        use std::sync::Arc;

        // 1×256 × 256×512 = 131k MACs ≥ breakeven::MATMUL under the
        // *default* gate — no forced min_flops here.
        let a = pattern(1, 256, 32);
        let b = pattern(256, 512, 33);
        let metrics = Arc::new(Metrics::new());
        with_scoped_subscriber(metrics.clone(), || {
            // Pin the detected core count so the calibrated-gate cap
            // resolves the same way on a 1-core CI box.
            with_hardware_parallelism(4, || {
                with_threads(4, || {
                    let par = par_matmul(&a, &b);
                    assert_eq!(bits(&a.matmul(&b)), bits(&par));
                });
            });
        });
        let snap = metrics.snapshot();
        assert_eq!(snap.scheduling["kernel.matmul.max_threads"], 4);
    }

    #[test]
    fn for_each_rows_cost_hint_drives_the_gate() {
        use agua_obs::scoped::with_scoped_subscriber;
        use agua_obs::Metrics;
        use std::sync::Arc;

        // 128×32 = 4096 elements: ×4 (cheap hint) stays under the
        // break-even, ×32 (exp hint) clears it — under the default
        // min_flops, with no forced override.
        let snap = |hint: usize| {
            let metrics = Arc::new(Metrics::new());
            with_scoped_subscriber(metrics.clone(), || {
                with_hardware_parallelism(4, || {
                    with_threads(4, || {
                        let mut m = pattern(128, 32, 34);
                        par_for_each_rows_cost(&mut m, hint, |_, row| {
                            for v in row.iter_mut() {
                                *v = (*v).exp();
                            }
                        });
                    });
                });
            });
            metrics.snapshot()
        };
        assert_eq!(snap(CHEAP_ELEM_FLOPS).scheduling["kernel.for_each_rows.max_threads"], 1);
        assert_eq!(snap(EXP_ELEM_FLOPS).scheduling["kernel.for_each_rows.max_threads"], 4);
    }

    #[test]
    fn calibrated_gate_caps_workers_at_hardware_parallelism() {
        use agua_obs::scoped::with_scoped_subscriber;
        use agua_obs::Metrics;
        use std::sync::Arc;

        // 64×64×64 = 262k MACs, far over breakeven::MATMUL — only the
        // core count decides the worker budget here.
        let a = pattern(64, 64, 40);
        let b = pattern(64, 64, 41);
        let seq = a.matmul(&b);
        let max_threads = |hw: usize, cfg: ThreadConfig| {
            let metrics = Arc::new(Metrics::new());
            with_scoped_subscriber(metrics.clone(), || {
                with_hardware_parallelism(hw, || {
                    with_thread_config(cfg, || {
                        assert_eq!(bits(&seq), bits(&par_matmul(&a, &b)), "hw={hw}");
                    });
                });
            });
            metrics.snapshot().scheduling["kernel.matmul.max_threads"]
        };
        let calibrated = |threads| ThreadConfig { threads, min_flops: DEFAULT_MIN_FLOPS };
        // More requested threads than cores: capped at the core count.
        assert_eq!(max_threads(2, calibrated(8)), 2);
        // A 1-core box plans sequentially — the regression this fixes.
        assert_eq!(max_threads(1, calibrated(4)), 1);
        // More cores than requested threads: the request wins.
        assert_eq!(max_threads(16, calibrated(8)), 8);
        // Explicit min_flops is a forced schedule; the cap steps aside.
        assert_eq!(max_threads(1, forced(4)), 4);
    }

    #[test]
    fn queue_depth_high_water_is_visible_on_pool_dispatches() {
        use agua_obs::scoped::with_scoped_subscriber;
        use agua_obs::Metrics;
        use std::sync::Arc;

        let metrics = Arc::new(Metrics::new());
        with_scoped_subscriber(metrics.clone(), || {
            with_thread_config(forced(4), || {
                let a = pattern(64, 16, 35);
                let b = pattern(16, 16, 36);
                let _ = par_matmul(&a, &b);
            });
        });
        let snap = metrics.snapshot();
        // 4 workers → 3 enqueued tasks; the enqueue-time sample must
        // see at least the first of them (the old dequeue-side sample
        // pinned this gauge to 0 on every dispatch).
        let depth = snap.scheduling["kernel.matmul.max_queue_depth"];
        assert!(depth >= 1, "max_queue_depth must record the enqueue high-water, got {depth}");
    }

    #[test]
    fn par_matmul_q8_partitions_rows_and_reports_its_own_kernel() {
        use agua_obs::scoped::with_scoped_subscriber;
        use agua_obs::Metrics;
        use std::sync::Arc;

        // A stand-in row kernel: deterministic per-element function of
        // (row, col), so any mis-partitioning shows up as wrong bits.
        let fill = |row_start: usize, chunk: &mut [f32], width: usize| {
            for (local, row) in chunk.chunks_exact_mut(width).enumerate() {
                let r = row_start + local;
                for (c, v) in row.iter_mut().enumerate() {
                    *v = (r * 31 + c * 7) as f32;
                }
            }
        };
        let (rows, inner, cols) = (37, 24, 11);
        let mut seq = Matrix::zeros(rows, cols);
        fill(0, seq.as_mut_slice(), cols);
        for threads in [1, 2, 4, 7] {
            let metrics = Arc::new(Metrics::new());
            let mut out = Matrix::zeros(rows, cols);
            with_scoped_subscriber(metrics.clone(), || {
                with_thread_config(forced(threads), || {
                    par_matmul_q8(&mut out, inner, |rs, chunk| fill(rs, chunk, cols));
                });
            });
            assert_eq!(bits(&seq), bits(&out), "threads={threads}");
            let snap = metrics.snapshot();
            assert_eq!(snap.counters["kernel.matmul_q8.dispatches"], 1);
            assert_eq!(
                snap.counters["kernel.matmul_q8.macs"],
                (rows * inner * cols) as u64,
                "threads={threads}"
            );
            assert_eq!(snap.scheduling["kernel.matmul_q8.max_threads"], threads.min(rows) as u64);
        }
    }

    #[test]
    fn q8_calibrated_gate_is_independent_of_the_f32_gate() {
        use agua_obs::scoped::with_scoped_subscriber;
        use agua_obs::Metrics;
        use std::sync::Arc;

        // 48×16×48 = 36_864 MACs: over breakeven::MATMUL (32_768) but
        // under breakeven::MATMUL_Q8 (65_536) — the quant kernel must
        // stay sequential under the default gate where the f32 kernel
        // dispatches.
        let max_threads = |rows: usize, inner: usize, cols: usize| {
            let metrics = Arc::new(Metrics::new());
            with_scoped_subscriber(metrics.clone(), || {
                with_hardware_parallelism(4, || {
                    with_threads(4, || {
                        let mut out = Matrix::zeros(rows, cols);
                        par_matmul_q8(&mut out, inner, |_, chunk| chunk.fill(1.0));
                    });
                });
            });
            metrics.snapshot().scheduling["kernel.matmul_q8.max_threads"]
        };
        assert_eq!(max_threads(48, 16, 48), 1, "36k MACs stays under the q8 gate");
        assert_eq!(max_threads(64, 32, 64), 4, "131k MACs clears the q8 gate");
    }

    #[test]
    fn scoped_dispatches_record_kernel_latency_histograms() {
        use agua_obs::scoped::with_scoped_subscriber;
        use agua_obs::Metrics;
        use std::sync::Arc;

        let metrics = Arc::new(Metrics::new());
        with_scoped_subscriber(metrics.clone(), || {
            with_thread_config(forced(2), || {
                let a = pattern(16, 8, 50);
                let b = pattern(8, 8, 51);
                let _ = par_matmul(&a, &b);
            });
        });
        let snap = metrics.snapshot();
        let hist = &snap.latency_hists["kernel.matmul.seconds"];
        assert_eq!(hist.count, 1, "a scoped dispatch must record one latency sample");
        assert!(hist.max > 0.0);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = with_thread_config(forced(7), || par_map(&items, |&i| i * i));
        assert_eq!(out, items.iter().map(|&i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_range_preserves_order() {
        let out = with_thread_config(forced(3), || par_map_range(10, |i| i + 1));
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn par_jobs_returns_results_in_job_order() {
        let jobs: Vec<_> = (0..5).map(|i| move || i * 10).collect();
        let out = with_thread_config(forced(5), || par_jobs(jobs));
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn dispatches_report_to_the_scoped_subscriber_thread_invariantly() {
        use agua_obs::scoped::with_scoped_subscriber;
        use agua_obs::Metrics;
        use std::sync::Arc;

        let snap = |threads: usize| {
            let metrics = Arc::new(Metrics::new());
            with_scoped_subscriber(metrics.clone(), || {
                with_thread_config(forced(threads), || {
                    let a = pattern(12, 9, 20);
                    let b = pattern(9, 7, 21);
                    let _ = par_matmul(&a, &b);
                    let _ = par_map_range(5, |i| i);
                });
            });
            metrics.snapshot()
        };
        let one = snap(1);
        let four = snap(4);
        assert_eq!(one.counters["kernel.matmul.dispatches"], 1);
        assert_eq!(one.counters["kernel.matmul.macs"], 12 * 9 * 7);
        assert_eq!(one.counters["kernel.map.dispatches"], 1);
        // The deterministic view (dispatch counts, shapes, MACs) must not
        // depend on the thread count; only the scheduling side may.
        assert_eq!(one.deterministic(), four.deterministic());
        assert_eq!(one.scheduling["kernel.matmul.max_threads"], 1);
        assert_eq!(four.scheduling["kernel.matmul.max_threads"], 4);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let out: Vec<usize> = par_map::<usize, _, _>(&[], |&i| i);
        assert!(out.is_empty());
        assert!(par_map_range(0, |i| i).is_empty());
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 0);
        assert_eq!(with_thread_config(forced(4), || par_matmul(&a, &b)).shape(), (0, 0));
    }
}
