//! Optimizers and regularization.
//!
//! The paper trains the concept mapping function with SGD + momentum 0.25
//! and the output mapping function with SGD under ElasticNet regularization
//! (Eq. 6). Adam is provided for the controller training loops, where it
//! converges markedly faster on the behaviour-cloning objectives.

use crate::layer::Param;
use serde::{Deserialize, Serialize};

/// A gradient-descent update rule applied to a set of parameters.
pub trait Optimizer {
    /// Applies one update step to every parameter using its accumulated
    /// gradient, then leaves gradients untouched (callers clear them).
    fn step(&mut self, params: &mut [&mut Param]);
}

/// Stochastic gradient descent with classical momentum.
///
/// `v ← μ·v + g;  θ ← θ − lr·v`
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient μ (0 disables momentum).
    pub momentum: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self { lr, momentum }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            if self.momentum != 0.0 {
                let (r, c) = p.grad.shape();
                debug_assert_eq!(p.m.shape(), (r, c));
                for i in 0..r * c {
                    let g = p.grad.as_slice()[i];
                    let m = p.m.as_slice()[i] * self.momentum + g;
                    p.m.as_mut_slice()[i] = m;
                    p.value.as_mut_slice()[i] -= self.lr * m;
                }
            } else {
                // Destructure to borrow value and grad disjointly; the
                // old clone here cost one allocation per step.
                let Param { value, grad, .. } = &mut **p;
                value.add_scaled_inplace(grad, -self.lr);
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Stability epsilon.
    pub eps: f32,
    /// Number of steps taken (for bias correction).
    pub t: u64,
}

impl Adam {
    /// Creates an Adam optimizer with the conventional betas.
    pub fn new(lr: f32) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params.iter_mut() {
            let n = p.grad.rows() * p.grad.cols();
            for i in 0..n {
                let g = p.grad.as_slice()[i];
                let m = self.beta1 * p.m.as_slice()[i] + (1.0 - self.beta1) * g;
                let v = self.beta2 * p.v.as_slice()[i] + (1.0 - self.beta2) * g * g;
                p.m.as_mut_slice()[i] = m;
                p.v.as_mut_slice()[i] = v;
                let mhat = m / bc1;
                let vhat = v / bc2;
                p.value.as_mut_slice()[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// ElasticNet regularization (paper Eq. 6):
/// `l = (1−α)·‖W‖₂² + α·(‖W‖₁ + ‖b‖₁)`, scaled by a coefficient λ.
///
/// Applied by adding `λ·∂l/∂θ` to the accumulated gradients *before* the
/// optimizer step, which matches how the paper folds the penalty into the
/// output-mapping training.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ElasticNet {
    /// Mixing weight α between L1 (α) and L2 (1−α) penalties.
    pub alpha: f32,
    /// Overall regularization coefficient λ.
    pub coeff: f32,
}

impl ElasticNet {
    /// Creates an ElasticNet penalty. The paper uses α = 0.95, λ = 1e-5.
    pub fn new(alpha: f32, coeff: f32) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        Self { alpha, coeff }
    }

    /// The paper's configuration (α = 0.95, λ = 1e-5).
    pub fn paper() -> Self {
        Self::new(0.95, 1e-5)
    }

    /// Evaluates the penalty value for reporting.
    pub fn penalty(&self, params: &[&Param]) -> f32 {
        // audit:allow(fp-reduce): sequential sum in parameter declaration
        // order on one thread; reporting-only value.
        let l2: f32 =
            params.iter().map(|p| p.value.as_slice().iter().map(|v| v * v).sum::<f32>()).sum();
        let l1: f32 = params.iter().map(|p| p.value.l1_norm()).sum();
        self.coeff * ((1.0 - self.alpha) * l2 + self.alpha * l1)
    }

    /// Adds the penalty gradient `λ·(2(1−α)θ + α·sign(θ))` to each
    /// parameter's accumulated gradient.
    pub fn accumulate_grad(&self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let n = p.value.rows() * p.value.cols();
            for i in 0..n {
                let w = p.value.as_slice()[i];
                let g = self.coeff * (2.0 * (1.0 - self.alpha) * w + self.alpha * w.signum());
                p.grad.as_mut_slice()[i] += g;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn param(vals: &[f32]) -> Param {
        Param::new(Matrix::row_vector(vals))
    }

    #[test]
    fn sgd_without_momentum_is_plain_descent() {
        let mut p = param(&[1.0, -2.0]);
        p.grad = Matrix::row_vector(&[0.5, -0.5]);
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value.as_slice(), &[0.95, -1.95]);
    }

    #[test]
    fn sgd_momentum_accumulates_velocity() {
        let mut p = param(&[0.0]);
        let mut opt = Sgd::new(1.0, 0.5);
        p.grad = Matrix::row_vector(&[1.0]);
        opt.step(&mut [&mut p]); // v=1, θ=-1
        opt.step(&mut [&mut p]); // v=1.5, θ=-2.5
        assert!((p.value.get(0, 0) + 2.5).abs() < 1e-6);
    }

    #[test]
    fn adam_moves_against_gradient() {
        let mut p = param(&[1.0]);
        let mut opt = Adam::new(0.1);
        for _ in 0..10 {
            p.grad = Matrix::row_vector(&[2.0 * p.value.get(0, 0)]); // ∇(θ²)
            opt.step(&mut [&mut p]);
            p.zero_grad();
        }
        assert!(p.value.get(0, 0).abs() < 1.0, "should shrink toward 0");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = param(&[5.0]);
        let mut opt = Adam::new(0.2);
        for _ in 0..500 {
            p.grad = Matrix::row_vector(&[2.0 * (p.value.get(0, 0) - 3.0)]);
            opt.step(&mut [&mut p]);
            p.zero_grad();
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn elasticnet_penalty_value_matches_formula() {
        let p = param(&[1.0, -2.0]);
        let en = ElasticNet::new(0.5, 0.1);
        // l2 = 1+4 = 5, l1 = 3; penalty = 0.1*(0.5*5 + 0.5*3) = 0.4
        assert!((en.penalty(&[&p]) - 0.4).abs() < 1e-6);
    }

    #[test]
    fn elasticnet_gradient_drives_weights_toward_zero() {
        let mut p = param(&[1.0, -1.0]);
        let en = ElasticNet::new(0.95, 0.1);
        en.accumulate_grad(&mut [&mut p]);
        // Positive weight gets positive gradient (descent shrinks it).
        assert!(p.grad.get(0, 0) > 0.0);
        assert!(p.grad.get(0, 1) < 0.0);
    }

    #[test]
    fn elasticnet_sparsifies_under_descent() {
        // Pure-penalty descent should drive small weights to ~0 via the L1
        // term, demonstrating the sparsity the paper relies on for
        // readable explanations.
        let mut p = param(&[0.05, -0.04, 0.9]);
        let en = ElasticNet::new(1.0, 1.0);
        let mut opt = Sgd::new(0.01, 0.0);
        for _ in 0..20 {
            p.zero_grad();
            en.accumulate_grad(&mut [&mut p]);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.get(0, 0).abs() < 0.06);
        assert!(p.value.get(0, 1).abs() < 0.05);
        // Large weight shrinks linearly but stays dominant.
        assert!(p.value.get(0, 2) > 0.5);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1]")]
    fn elasticnet_rejects_bad_alpha() {
        let _ = ElasticNet::new(1.5, 0.1);
    }
}
