//! Waiting-request handoff for request coalescing.
//!
//! [`BatchQueue`] is the primitive under `agua-engine`'s coalescer: many
//! producer threads [`BatchQueue::submit`] single requests and block on
//! the returned [`Ticket`], while one flusher thread repeatedly
//! [`BatchQueue::drain`]s *everything* queued at that moment as one
//! batch, computes it, and [`Responder::complete`]s each entry. The
//! queue is bounded — an over-capacity submit fails immediately with
//! [`SubmitError::Full`] instead of blocking, which is what lets a
//! server above it answer overload with 429 instead of stalling.
//!
//! Like [`crate::pool`], every blocking primitive is imported through
//! [`crate::sync`], so the whole handoff can be model-checked under
//! `RUSTFLAGS="--cfg loom"` (see `tests/loom_pool.rs`). The drain side
//! deliberately needs no timed wait — a flush takes *all* pending
//! requests the moment the queue is nonempty, so the coalescing window
//! is "whatever arrived while the previous batch was computing", not a
//! wall-clock timer. That keeps the protocol expressible with plain
//! `Condvar::wait` (which the loom facade models) and keeps batch
//! composition a function of the admission sequence alone.

use crate::sync::{Condvar, Mutex};
use std::sync::Arc;

/// Why a [`BatchQueue::submit`] was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue already holds `capacity` waiting requests.
    Full {
        /// The configured bound that was hit.
        capacity: usize,
    },
    /// [`BatchQueue::close`] was called; no new work is admitted.
    Closed,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full { capacity } => {
                write!(f, "admission queue full ({capacity} waiting requests)")
            }
            SubmitError::Closed => write!(f, "queue closed"),
        }
    }
}

/// The batch worker dropped this request's [`Responder`] without
/// completing it (e.g. it panicked mid-batch). The request was admitted
/// but produced no value; the waiter observes this error instead of
/// hanging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Abandoned;

impl std::fmt::Display for Abandoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "request abandoned by its batch worker")
    }
}

/// One request's response slot: filled exactly once by the worker side
/// ([`Responder`]), read exactly once by the waiting client ([`Ticket`]).
struct Slot<R> {
    state: Mutex<SlotState<R>>,
    ready: Condvar,
}

enum SlotState<R> {
    Waiting,
    Done(R),
    Abandoned,
}

impl<R> Slot<R> {
    fn new() -> Self {
        Slot { state: Mutex::new(SlotState::Waiting), ready: Condvar::new() }
    }

    fn fill(&self, value: SlotState<R>) {
        let mut state = self.state.lock().expect("slot mutex poisoned");
        debug_assert!(matches!(*state, SlotState::Waiting), "slot filled twice");
        *state = value;
        // One ticket waits per slot; notify_all keeps the protocol safe
        // even if a future caller clones waiters.
        self.ready.notify_all();
    }
}

/// The client half of one submitted request: blocks until the flusher
/// completes (or abandons) it.
pub struct Ticket<R> {
    slot: Arc<Slot<R>>,
}

impl<R> std::fmt::Debug for Ticket<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl<R> Ticket<R> {
    /// Blocks until the batch worker fills the slot.
    //= spec: specs/serve-protocol.toml#exactly-one-completion
    //# Every admitted request MUST observe exactly one completion: a
    //# response value, or an error if its batch worker fails.
    pub fn wait(self) -> Result<R, Abandoned> {
        let mut state = self.slot.state.lock().expect("slot mutex poisoned");
        loop {
            match std::mem::replace(&mut *state, SlotState::Waiting) {
                SlotState::Done(r) => return Ok(r),
                SlotState::Abandoned => return Err(Abandoned),
                SlotState::Waiting => {
                    state = self.slot.ready.wait(state).expect("slot mutex poisoned");
                }
            }
        }
    }
}

/// The worker half of one drained request. Exactly one of
/// [`Responder::complete`] or `drop` runs; dropping without completing
/// marks the slot abandoned so the waiting [`Ticket`] errors instead of
/// hanging.
pub struct Responder<R> {
    slot: Arc<Slot<R>>,
    completed: bool,
}

impl<R> Responder<R> {
    /// Delivers the response and wakes the waiting client.
    pub fn complete(mut self, value: R) {
        self.completed = true;
        self.slot.fill(SlotState::Done(value));
    }
}

impl<R> Drop for Responder<R> {
    //= spec: specs/serve-protocol.toml#exactly-one-completion
    //# A waiting client MUST NOT hang on a request whose responder was
    //# dropped.
    fn drop(&mut self) {
        if !self.completed {
            self.slot.fill(SlotState::Abandoned);
        }
    }
}

struct QueueState<T, R> {
    queue: Vec<(T, Responder<R>)>,
    closed: bool,
}

struct Shared<T, R> {
    state: Mutex<QueueState<T, R>>,
    /// Signaled when the queue becomes nonempty or is closed.
    nonempty: Condvar,
    capacity: usize,
}

/// A bounded many-producer / single-drainer batch queue (see the module
/// docs for the protocol).
pub struct BatchQueue<T, R> {
    shared: Arc<Shared<T, R>>,
}

impl<T, R> Clone for BatchQueue<T, R> {
    fn clone(&self) -> Self {
        BatchQueue { shared: Arc::clone(&self.shared) }
    }
}

impl<T, R> BatchQueue<T, R> {
    /// A queue admitting at most `capacity` waiting requests
    /// (`capacity ≥ 1`).
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity >= 1, "a batch queue needs capacity for at least one request");
        BatchQueue {
            shared: Arc::new(Shared {
                state: Mutex::new(QueueState { queue: Vec::new(), closed: false }),
                nonempty: Condvar::new(),
                capacity,
            }),
        }
    }

    /// The configured admission bound.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Requests currently waiting to be drained.
    pub fn len(&self) -> usize {
        self.shared.state.lock().expect("queue mutex poisoned").queue.len()
    }

    /// Whether no requests are waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits one request, returning the [`Ticket`] its response will
    /// arrive on. Never blocks: a full queue is an immediate
    /// [`SubmitError::Full`].
    //= spec: specs/serve-protocol.toml#bounded-admission
    //# a submission that would exceed the configured capacity MUST be
    //# rejected immediately without blocking the caller and without
    //# dropping any already-admitted request
    pub fn submit(&self, item: T) -> Result<Ticket<R>, SubmitError> {
        let mut state = self.shared.state.lock().expect("queue mutex poisoned");
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(SubmitError::Full { capacity: self.shared.capacity });
        }
        let slot = Arc::new(Slot::new());
        let ticket = Ticket { slot: Arc::clone(&slot) };
        state.queue.push((item, Responder { slot, completed: false }));
        // Signal under the lock: the drainer re-checks emptiness while
        // holding the mutex, so it can never miss this wakeup (the same
        // send-under-lock argument as the pool's dispatch path).
        self.shared.nonempty.notify_one();
        drop(state);
        Ok(ticket)
    }

    /// Blocks until at least one request is waiting, then takes **all**
    /// of them as one batch. Returns `None` once the queue is closed
    /// *and* empty — already-admitted requests are still handed out
    /// after [`BatchQueue::close`], so graceful shutdown completes them.
    //= spec: specs/serve-protocol.toml#drain-order
    //# A flush MUST drain the queue in arrival order, so batch
    //# composition is a deterministic function of the admission
    //# sequence.
    pub fn drain(&self) -> Option<Vec<(T, Responder<R>)>> {
        let mut state = self.shared.state.lock().expect("queue mutex poisoned");
        loop {
            if !state.queue.is_empty() {
                // `take` preserves push order: the batch is the
                // admission sequence verbatim.
                return Some(std::mem::take(&mut state.queue));
            }
            if state.closed {
                return None;
            }
            state = self.shared.nonempty.wait(state).expect("queue mutex poisoned");
        }
    }

    /// Stops admission and wakes any blocked drainer. Requests already
    /// queued remain drainable; if the drainer exits without taking
    /// them, their responders are dropped on queue teardown and every
    /// waiting ticket observes [`Abandoned`] rather than hanging.
    pub fn close(&self) {
        let mut state = self.shared.state.lock().expect("queue mutex poisoned");
        state.closed = true;
        self.shared.nonempty.notify_all();
        drop(state);
    }

    /// Whether [`BatchQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.shared.state.lock().expect("queue mutex poisoned").closed
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn submit_drain_complete_round_trip() {
        let q: BatchQueue<u32, u32> = BatchQueue::bounded(8);
        let t1 = q.submit(1).unwrap();
        let t2 = q.submit(2).unwrap();
        assert_eq!(q.len(), 2);
        let batch = q.drain().unwrap();
        assert_eq!(batch.iter().map(|(v, _)| *v).collect::<Vec<_>>(), vec![1, 2]);
        for (v, responder) in batch {
            responder.complete(v * 10);
        }
        assert_eq!(t1.wait(), Ok(10));
        assert_eq!(t2.wait(), Ok(20));
        assert!(q.is_empty());
    }

    #[test]
    fn over_capacity_submit_fails_fast() {
        let q: BatchQueue<u32, u32> = BatchQueue::bounded(2);
        let _a = q.submit(1).unwrap();
        let _b = q.submit(2).unwrap();
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.submit(3).unwrap_err(), SubmitError::Full { capacity: 2 });
        // Draining frees the capacity again.
        let batch = q.drain().unwrap();
        assert_eq!(batch.len(), 2);
        let _c = q.submit(3).unwrap();
    }

    #[test]
    fn drain_takes_everything_in_arrival_order() {
        let q: BatchQueue<usize, usize> = BatchQueue::bounded(64);
        let tickets: Vec<_> = (0..5).map(|i| q.submit(i).unwrap()).collect();
        let batch = q.drain().unwrap();
        assert_eq!(batch.iter().map(|(v, _)| *v).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        for (v, responder) in batch {
            responder.complete(v);
        }
        for (i, t) in tickets.into_iter().enumerate() {
            assert_eq!(t.wait(), Ok(i));
        }
    }

    #[test]
    fn dropped_responder_abandons_instead_of_hanging() {
        let q: BatchQueue<u32, u32> = BatchQueue::bounded(4);
        let t = q.submit(7).unwrap();
        let batch = q.drain().unwrap();
        drop(batch); // worker "panicked" before completing
        assert_eq!(t.wait(), Err(Abandoned));
    }

    #[test]
    fn close_wakes_blocked_drainer_and_rejects_new_work() {
        let q: BatchQueue<u32, u32> = BatchQueue::bounded(4);
        let q2 = q.clone();
        let drainer = thread::spawn(move || q2.drain());
        q.close();
        assert!(drainer.join().unwrap().is_none());
        assert_eq!(q.submit(1).unwrap_err(), SubmitError::Closed);
        assert!(q.is_closed());
    }

    #[test]
    fn close_still_hands_out_admitted_requests() {
        let q: BatchQueue<u32, u32> = BatchQueue::bounded(4);
        let t = q.submit(5).unwrap();
        q.close();
        let batch = q.drain().unwrap();
        assert_eq!(batch.len(), 1);
        for (v, responder) in batch {
            responder.complete(v + 1);
        }
        assert_eq!(t.wait(), Ok(6));
        assert!(q.drain().is_none());
    }

    #[test]
    fn queue_teardown_abandons_undrained_requests() {
        let q: BatchQueue<u32, u32> = BatchQueue::bounded(4);
        let t = q.submit(9).unwrap();
        drop(q);
        assert_eq!(t.wait(), Err(Abandoned));
    }

    #[test]
    fn concurrent_producers_and_flusher_route_every_response() {
        let q: BatchQueue<usize, usize> = BatchQueue::bounded(256);
        let flusher = {
            let q = q.clone();
            thread::spawn(move || {
                let mut batches = 0usize;
                while let Some(batch) = q.drain() {
                    batches += 1;
                    for (v, responder) in batch {
                        responder.complete(v * 2);
                    }
                }
                batches
            })
        };
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..50 {
                        let v = p * 1000 + i;
                        let t = q.submit(v).unwrap();
                        assert_eq!(t.wait(), Ok(v * 2));
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let batches = flusher.join().unwrap();
        assert!(batches >= 1);
    }

    #[test]
    fn errors_render_for_humans() {
        let full = SubmitError::Full { capacity: 3 }.to_string();
        assert!(full.contains("full") && full.contains('3'), "{full}");
        assert!(SubmitError::Closed.to_string().contains("closed"));
        assert!(Abandoned.to_string().contains("abandoned"));
    }

    #[test]
    #[should_panic(expected = "capacity for at least one request")]
    fn zero_capacity_is_rejected() {
        let _: BatchQueue<u32, u32> = BatchQueue::bounded(0);
    }
}
