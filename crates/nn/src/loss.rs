//! Loss functions and their gradients with respect to logits.
//!
//! Softmax and cross-entropy are fused for numerical stability, so layers
//! output raw logits and the loss functions return `(loss, dL/dlogits)`.

use crate::matrix::Matrix;

/// Row-wise numerically stable softmax.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let (n, d) = logits.shape();
    let mut out = Matrix::zeros(n, d);
    for r in 0..n {
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (c, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            out.set(r, c, e);
            sum += e;
        }
        for c in 0..d {
            out.set(r, c, out.get(r, c) / sum);
        }
    }
    out
}

/// Mean softmax cross-entropy over a batch of logits with integer targets.
///
/// Returns `(mean_loss, dL/dlogits)`; the gradient is already divided by
/// the batch size.
///
/// # Panics
/// Panics if any target index is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[usize]) -> (f32, Matrix) {
    let weights = vec![1.0; targets.len()];
    softmax_cross_entropy_weighted(logits, targets, &weights)
}

/// Per-sample weighted softmax cross-entropy.
///
/// `loss = (1/n) Σ_i w_i · (−log p_i[t_i])`. With advantages as weights
/// this is exactly the REINFORCE policy-gradient loss used to train and
/// retrain the ABR controller.
pub fn softmax_cross_entropy_weighted(
    logits: &Matrix,
    targets: &[usize],
    weights: &[f32],
) -> (f32, Matrix) {
    let (n, d) = logits.shape();
    assert_eq!(targets.len(), n, "one target per row required");
    assert_eq!(weights.len(), n, "one weight per row required");
    let probs = softmax_rows(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0;
    let inv_n = 1.0 / n as f32;
    for r in 0..n {
        let t = targets[r];
        assert!(t < d, "target {t} out of range for {d} classes");
        let p = probs.get(r, t).max(1e-12);
        loss += -p.ln() * weights[r];
        // d/dz (−w·log softmax(z)[t]) = w · (softmax(z) − onehot(t))
        for c in 0..d {
            let g = (probs.get(r, c) - if c == t { 1.0 } else { 0.0 }) * weights[r] * inv_n;
            grad.set(r, c, g);
        }
    }
    (loss * inv_n, grad)
}

/// [`softmax_cross_entropy`] writing the gradient into a caller-owned
/// buffer — the allocation-free steady-state path of the Ω training
/// loop. Bitwise-identical to the allocating variant (unit sample
/// weights multiply out exactly).
pub fn softmax_cross_entropy_into(logits: &Matrix, targets: &[usize], grad: &mut Matrix) -> f32 {
    let (n, d) = logits.shape();
    assert_eq!(targets.len(), n, "one target per row required");
    grad.reset_zeros(n, d);
    let inv_n = 1.0 / n as f32;
    let mut loss = 0.0;
    for r in 0..n {
        // Stage the softmax numerators in the gradient row itself, then
        // normalize and shift in place — same expressions, no scratch.
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (c, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            grad.set(r, c, e);
            sum += e;
        }
        let t = targets[r];
        assert!(t < d, "target {t} out of range for {d} classes");
        let p_t = (grad.get(r, t) / sum).max(1e-12);
        loss += -p_t.ln();
        for c in 0..d {
            let p = grad.get(r, c) / sum;
            grad.set(r, c, (p - if c == t { 1.0 } else { 0.0 }) * inv_n);
        }
    }
    loss * inv_n
}

/// Grouped softmax cross-entropy for multi-label concept classification
/// (paper Eq. 4).
///
/// `logits` has shape `batch × (groups · classes)`; group `i` occupies
/// columns `[i·classes, (i+1)·classes)`. `targets[r][i]` is the class of
/// group `i` in row `r`. The loss averages the per-group cross-entropies
/// over groups and batch, matching the `1/C Σ` of Eq. 4.
pub fn grouped_softmax_cross_entropy(
    logits: &Matrix,
    targets: &[Vec<usize>],
    groups: usize,
    classes: usize,
) -> (f32, Matrix) {
    let (n, d) = logits.shape();
    assert_eq!(d, groups * classes, "logit width must equal groups·classes");
    assert_eq!(targets.len(), n, "one target vector per row required");
    let mut grad = Matrix::zeros(n, d);
    let mut loss = 0.0;
    let scale = 1.0 / (n * groups) as f32;
    for r in 0..n {
        assert_eq!(targets[r].len(), groups, "one class per group required");
        for g in 0..groups {
            let t = targets[r][g];
            assert!(t < classes, "group target {t} out of range");
            let base = g * classes;
            let slice = &logits.row(r)[base..base + classes];
            let max = slice.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let exps: Vec<f32> = slice.iter().map(|&v| (v - max).exp()).collect();
            let sum: f32 = exps.iter().sum();
            let p_t = (exps[t] / sum).max(1e-12);
            loss += -p_t.ln();
            for c in 0..classes {
                let p = exps[c] / sum;
                grad.set(r, base + c, (p - if c == t { 1.0 } else { 0.0 }) * scale);
            }
        }
    }
    (loss * scale, grad)
}

/// [`grouped_softmax_cross_entropy`] writing the gradient into a
/// caller-owned buffer — the allocation-free steady-state path of the δ
/// training loop. The softmax numerators are staged in the gradient's
/// own group slice (replacing the per-group `exps` vector), then
/// normalized and shifted in place with the same expressions, so the
/// result is bitwise-identical to the allocating variant.
pub fn grouped_softmax_cross_entropy_into(
    logits: &Matrix,
    targets: &[Vec<usize>],
    groups: usize,
    classes: usize,
    grad: &mut Matrix,
) -> f32 {
    let (n, d) = logits.shape();
    assert_eq!(d, groups * classes, "logit width must equal groups·classes");
    assert_eq!(targets.len(), n, "one target vector per row required");
    grad.reset_zeros(n, d);
    let mut loss = 0.0;
    let scale = 1.0 / (n * groups) as f32;
    for r in 0..n {
        assert_eq!(targets[r].len(), groups, "one class per group required");
        for g in 0..groups {
            let t = targets[r][g];
            assert!(t < classes, "group target {t} out of range");
            let base = g * classes;
            let slice = &logits.row(r)[base..base + classes];
            let max = slice.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for (c, &v) in slice.iter().enumerate() {
                let e = (v - max).exp();
                grad.set(r, base + c, e);
                sum += e;
            }
            let p_t = (grad.get(r, base + t) / sum).max(1e-12);
            loss += -p_t.ln();
            for c in 0..classes {
                let p = grad.get(r, base + c) / sum;
                grad.set(r, base + c, (p - if c == t { 1.0 } else { 0.0 }) * scale);
            }
        }
    }
    loss * scale
}

/// Mean squared error: `(1/(n·d)) Σ (pred − target)²`.
///
/// Returns `(loss, dL/dpred)`.
pub fn mse_loss(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = (pred.rows() * pred.cols()) as f32;
    let diff = pred.sub(target);
    // audit:allow(fp-reduce): sequential sum in fixed element order on
    // the dispatching thread — losses are never reduced in parallel.
    let loss = diff.as_slice().iter().map(|v| v * v).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Shannon entropy of each row of a probability matrix, in nats.
///
/// Used as an exploration bonus when fine-tuning controllers (the Fig. 10
/// debugging experiment "increases entropy" during retraining).
pub fn entropy_of_rows(probs: &Matrix) -> Vec<f32> {
    (0..probs.rows())
        .map(|r| probs.row(r).iter().filter(|&&p| p > 0.0).map(|&p| -p * p.ln()).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one_and_preserve_order() {
        let logits = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.get(r, 2) > p.get(r, 1) && p.get(r, 1) > p.get(r, 0));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let logits = Matrix::row_vector(&[1000.0, 1001.0]);
        let p = softmax_rows(&logits);
        assert!(p.is_finite());
        assert!((p.get(0, 0) + p.get(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_of_perfect_prediction_is_near_zero() {
        let logits = Matrix::row_vector(&[100.0, 0.0, 0.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_matches_numeric() {
        let logits = Matrix::from_rows(&[vec![0.2, -0.5, 1.0], vec![0.0, 0.3, -0.7]]);
        let targets = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let h = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                lp.set(r, c, logits.get(r, c) + h);
                let mut lm = logits.clone();
                lm.set(r, c, logits.get(r, c) - h);
                let (lossp, _) = softmax_cross_entropy(&lp, &targets);
                let (lossm, _) = softmax_cross_entropy(&lm, &targets);
                let numeric = (lossp - lossm) / (2.0 * h);
                assert!((grad.get(r, c) - numeric).abs() < 1e-3, "grad mismatch at ({r},{c})");
            }
        }
    }

    #[test]
    fn weighted_cross_entropy_scales_gradient() {
        let logits = Matrix::row_vector(&[0.1, 0.9]);
        let (_, g1) = softmax_cross_entropy_weighted(&logits, &[1], &[1.0]);
        let (_, g2) = softmax_cross_entropy_weighted(&logits, &[1], &[2.5]);
        for c in 0..2 {
            assert!((g2.get(0, c) - 2.5 * g1.get(0, c)).abs() < 1e-6);
        }
    }

    #[test]
    fn grouped_cross_entropy_gradient_matches_numeric() {
        // 2 groups × 3 classes.
        let logits = Matrix::from_rows(&[vec![0.1, -0.4, 0.8, 0.0, 0.5, -0.2]]);
        let targets = vec![vec![2usize, 1]];
        let (_, grad) = grouped_softmax_cross_entropy(&logits, &targets, 2, 3);
        let h = 1e-3f32;
        for c in 0..6 {
            let mut lp = logits.clone();
            lp.set(0, c, logits.get(0, c) + h);
            let mut lm = logits.clone();
            lm.set(0, c, logits.get(0, c) - h);
            let (lossp, _) = grouped_softmax_cross_entropy(&lp, &targets, 2, 3);
            let (lossm, _) = grouped_softmax_cross_entropy(&lm, &targets, 2, 3);
            let numeric = (lossp - lossm) / (2.0 * h);
            assert!((grad.get(0, c) - numeric).abs() < 1e-3, "col {c}");
        }
    }

    #[test]
    fn grouped_cross_entropy_groups_are_independent() {
        // Perfect prediction in group 0, uniform in group 1: the loss must
        // be entirely attributable to group 1 and its gradient must not
        // leak into group 0's columns.
        let logits = Matrix::from_rows(&[vec![50.0, 0.0, 0.0, 0.0, 0.0, 0.0]]);
        let targets = vec![vec![0usize, 0]];
        let (loss, grad) = grouped_softmax_cross_entropy(&logits, &targets, 2, 3);
        let expected = (3.0f32).ln() / 2.0; // mean over 2 groups
        assert!((loss - expected).abs() < 1e-4, "loss {loss}");
        for c in 0..3 {
            assert!(grad.get(0, c).abs() < 1e-6, "group 0 col {c} leaked");
        }
    }

    #[test]
    fn into_variants_are_bitwise_identical_to_allocating_losses() {
        let logits = Matrix::from_fn(5, 6, |r, c| ((r * 7 + c * 3) as f32 - 10.0) / 4.0);
        let targets: Vec<usize> = (0..5).map(|r| r % 6).collect();
        let (loss, grad) = softmax_cross_entropy(&logits, &targets);
        let mut grad_into = Matrix::default();
        for _ in 0..2 {
            // Twice: the second pass reuses the buffer with stale contents.
            let loss_into = softmax_cross_entropy_into(&logits, &targets, &mut grad_into);
            assert_eq!(loss.to_bits(), loss_into.to_bits());
            let a: Vec<u32> = grad.as_slice().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = grad_into.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b);
        }

        let gtargets: Vec<Vec<usize>> = (0..5).map(|r| vec![r % 3, (r + 1) % 3]).collect();
        let (gloss, ggrad) = grouped_softmax_cross_entropy(&logits, &gtargets, 2, 3);
        let mut ggrad_into = Matrix::default();
        for _ in 0..2 {
            let gloss_into =
                grouped_softmax_cross_entropy_into(&logits, &gtargets, 2, 3, &mut ggrad_into);
            assert_eq!(gloss.to_bits(), gloss_into.to_bits());
            let a: Vec<u32> = ggrad.as_slice().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = ggrad_into.as_slice().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn mse_zero_when_equal() {
        let a = Matrix::full(2, 2, 3.0);
        let (loss, grad) = mse_loss(&a, &a);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.l1_norm(), 0.0);
    }

    #[test]
    fn mse_gradient_matches_numeric() {
        let pred = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]);
        let target = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let (_, grad) = mse_loss(&pred, &target);
        let h = 1e-3f32;
        for r in 0..2 {
            for c in 0..2 {
                let mut pp = pred.clone();
                pp.set(r, c, pred.get(r, c) + h);
                let mut pm = pred.clone();
                pm.set(r, c, pred.get(r, c) - h);
                let (lp, _) = mse_loss(&pp, &target);
                let (lm, _) = mse_loss(&pm, &target);
                let numeric = (lp - lm) / (2.0 * h);
                assert!((grad.get(r, c) - numeric).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn entropy_is_maximal_for_uniform() {
        let p = Matrix::from_rows(&[vec![0.25; 4], vec![1.0, 0.0, 0.0, 0.0]]);
        let h = entropy_of_rows(&p);
        assert!((h[0] - (4.0f32).ln()).abs() < 1e-5);
        assert!(h[1].abs() < 1e-6);
    }
}
