//! Numerical gradient checking utilities.
//!
//! Central-difference verification of analytic gradients — used by this
//! crate's own layer tests and exported so downstream crates adding new
//! layers or losses can verify their backward passes the same way.

use crate::layer::Layer;
use crate::matrix::Matrix;

/// Result of a gradient check: the worst absolute/relative discrepancy
/// found and where it occurred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Largest `|analytic − numeric| / (1 + |numeric|)` discrepancy.
    pub worst_relative_error: f32,
    /// Location `(row, col)` of the worst discrepancy.
    pub worst_at: (usize, usize),
}

impl GradCheckReport {
    /// True if the worst error is within tolerance.
    pub fn passes(&self, tol: f32) -> bool {
        self.worst_relative_error < tol
    }
}

/// Checks a layer's input gradient (`dL/dx`) against central differences
/// for the scalar loss `L = Σ output ∘ seed`.
///
/// Mutates the layer's cached activations (calls `forward` repeatedly);
/// parameter gradients are cleared before the analytic backward pass.
pub fn check_input_gradient<L: Layer>(
    layer: &mut L,
    x: &Matrix,
    seed: &Matrix,
    step: f32,
) -> GradCheckReport {
    let out = layer.forward(x);
    assert_eq!(out.shape(), seed.shape(), "seed must match the layer output shape");
    layer.zero_grad();
    let analytic = layer.backward(seed);

    let loss_at = |layer: &mut L, x: &Matrix| -> f32 {
        layer.forward(x).hadamard(seed).as_slice().iter().sum()
    };

    let mut worst = GradCheckReport { worst_relative_error: 0.0, worst_at: (0, 0) };
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            let orig = x.get(r, c);
            let mut xp = x.clone();
            xp.set(r, c, orig + step);
            let mut xm = x.clone();
            xm.set(r, c, orig - step);
            let numeric = (loss_at(layer, &xp) - loss_at(layer, &xm)) / (2.0 * step);
            let err = (analytic.get(r, c) - numeric).abs() / (1.0 + numeric.abs());
            if err > worst.worst_relative_error {
                worst = GradCheckReport { worst_relative_error: err, worst_at: (r, c) };
            }
        }
    }
    worst
}

/// Checks a loss function's logit gradient against central differences.
///
/// `loss_fn` must return `(loss, dL/dlogits)`.
pub fn check_loss_gradient(
    logits: &Matrix,
    loss_fn: impl Fn(&Matrix) -> (f32, Matrix),
    step: f32,
) -> GradCheckReport {
    let (_, analytic) = loss_fn(logits);
    let mut worst = GradCheckReport { worst_relative_error: 0.0, worst_at: (0, 0) };
    for r in 0..logits.rows() {
        for c in 0..logits.cols() {
            let orig = logits.get(r, c);
            let mut lp = logits.clone();
            lp.set(r, c, orig + step);
            let mut lm = logits.clone();
            lm.set(r, c, orig - step);
            let numeric = (loss_fn(&lp).0 - loss_fn(&lm).0) / (2.0 * step);
            let err = (analytic.get(r, c) - numeric).abs() / (1.0 + numeric.abs());
            if err > worst.worst_relative_error {
                worst = GradCheckReport { worst_relative_error: err, worst_at: (r, c) };
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{LayerNorm, Linear, Tanh};
    use crate::loss::softmax_cross_entropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn input() -> Matrix {
        Matrix::from_rows(&[vec![0.4, -0.9, 1.3, 0.2], vec![-0.6, 0.5, -0.1, 0.8]])
    }

    #[test]
    fn linear_passes_gradcheck() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Linear::new(&mut rng, 4, 3);
        let seed = Matrix::from_fn(2, 3, |r, c| 0.3 * (r as f32) - 0.2 * (c as f32) + 0.1);
        let report = check_input_gradient(&mut layer, &input(), &seed, 1e-3);
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn layernorm_passes_gradcheck() {
        let mut layer = LayerNorm::new(4);
        layer.gamma.value = Matrix::row_vector(&[1.2, -0.7, 0.9, 1.5]);
        let seed = Matrix::from_fn(2, 4, |r, c| 0.2 * ((r + c) as f32) - 0.3);
        let report = check_input_gradient(&mut layer, &input(), &seed, 1e-3);
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn tanh_passes_gradcheck() {
        let mut layer = Tanh::new();
        let seed = Matrix::full(2, 4, 0.7);
        let report = check_input_gradient(&mut layer, &input(), &seed, 1e-3);
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn cross_entropy_passes_loss_gradcheck() {
        let logits = Matrix::from_rows(&[vec![0.5, -0.3, 0.8], vec![-0.2, 0.4, 0.0]]);
        let report = check_loss_gradient(&logits, |l| softmax_cross_entropy(l, &[2, 1]), 1e-3);
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn a_broken_gradient_is_caught() {
        // A "layer" whose backward returns zeros must fail the check.
        struct Broken;
        impl Layer for Broken {
            fn forward(&mut self, input: &Matrix) -> Matrix {
                input.scale(2.0)
            }
            fn backward(&mut self, grad_output: &Matrix) -> Matrix {
                Matrix::zeros(grad_output.rows(), grad_output.cols())
            }
        }
        let mut layer = Broken;
        let seed = Matrix::full(2, 4, 1.0);
        let report = check_input_gradient(&mut layer, &input(), &seed, 1e-3);
        assert!(!report.passes(1e-2), "broken gradient slipped through");
    }
}
