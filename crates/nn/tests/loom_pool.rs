//! Model-checks the worker pool's concurrency protocol under bounded
//! schedule exploration.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`, where
//! `agua_nn::sync` routes the pool's primitives through the vendored
//! checker in `agua_nn::loom` (see DESIGN.md §10). Run it with:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p agua-nn --test loom_pool --release -- --test-threads=1
//! ```
//!
//! `--test-threads=1` because the pool is process-global state: two
//! explorations interleaving their executions through the same statics
//! would not be independent models. (`model_with` also serializes
//! process-wide as a second line of defence.)
//!
//! Every test drives the *real* `pool::run_chunks` / `pool::shutdown`
//! code — not a transcription of it — so a counterexample here is a bug
//! in the shipping dispatcher. Each model execution ends by shutting the
//! pool down, leaving the statics empty for the next schedule.
#![cfg(loom)]

use agua_nn::loom::{model_with, Options};
use agua_nn::pool;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn opts(max_preemptions: usize) -> Options {
    Options { max_preemptions, max_iterations: 200_000 }
}

/// Dispatcher → worker handoff: one pool worker, one inline chunk. In
/// every interleaving the latch must count both chunks, every row must
/// be written exactly once, and shutdown must join the worker.
#[test]
fn dispatch_latch_handoff_completes_in_all_schedules() {
    let report = model_with(opts(2), || {
        let width = 2;
        let mut out = vec![0.0f32; 4 * width];
        pool::run_chunks(&mut out, width, 2, &|row_start, chunk: &mut [f32]| {
            for (local, row) in chunk.chunks_exact_mut(width).enumerate() {
                for v in row.iter_mut() {
                    *v += (row_start + local) as f32 + 1.0;
                }
            }
        });
        for (r, row) in out.chunks_exact(width).enumerate() {
            assert!(
                row.iter().all(|&v| v == (r + 1) as f32),
                "row {r} written wrongly or more than once: {row:?}"
            );
        }
        pool::shutdown();
        assert_eq!(pool::worker_count(), 0, "shutdown must join every worker");
        assert_eq!(pool::queued_tasks(), 0, "queue gauge must return to zero");
    });
    assert!(!report.capped, "exploration must be exhaustive, not capped");
    assert!(report.schedules > 1, "model must explore real interleavings");
    eprintln!("loom: dispatch/latch handoff explored {} schedules", report.schedules);
}

/// Two pool workers plus the inline chunk: chunk ranges must stay
/// pairwise disjoint and each be executed exactly once, whichever order
/// the workers pick tasks up and complete the latch.
#[test]
fn chunks_stay_disjoint_with_two_workers() {
    let report = model_with(opts(1), || {
        let width = 1;
        let mut out = vec![0.0f32; 3];
        pool::run_chunks(&mut out, width, 1, &|_row_start, chunk: &mut [f32]| {
            for v in chunk.iter_mut() {
                // `+= 1` (not `= 1`) so a double-executed or overlapping
                // chunk shows up as a value above 1.
                *v += 1.0;
            }
        });
        assert_eq!(out, vec![1.0; 3], "every row exactly once: {out:?}");
        pool::shutdown();
        assert_eq!(pool::worker_count(), 0);
    });
    assert!(!report.capped);
    assert!(report.schedules > 1);
    eprintln!("loom: two-worker disjointness explored {} schedules", report.schedules);
}

/// A panicking kernel must complete its latch slot and re-throw on the
/// dispatcher in every schedule — no interleaving may turn a panic into
/// a deadlock or a silent success — and the pool must stay usable.
#[test]
fn worker_panic_propagates_in_all_schedules() {
    let report = model_with(opts(2), || {
        let mut out = vec![0.0f32; 4];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool::run_chunks(&mut out, 1, 2, &|row_start, _chunk: &mut [f32]| {
                if row_start >= 2 {
                    panic!("kernel blew up");
                }
            });
        }));
        assert!(caught.is_err(), "worker panic must cross the pool boundary");
        // The pool survives: the next dispatch completes normally.
        let mut out2 = vec![0.0f32; 4];
        pool::run_chunks(&mut out2, 1, 2, &|row_start, chunk: &mut [f32]| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (row_start + i) as f32;
            }
        });
        assert_eq!(out2, vec![0.0, 1.0, 2.0, 3.0]);
        pool::shutdown();
        assert_eq!(pool::worker_count(), 0);
    });
    assert!(!report.capped);
    eprintln!("loom: panic propagation explored {} schedules", report.schedules);
}

/// Shutdown racing a dispatch: a worker may exit between
/// `ensure_workers` and the task send, forcing the dispatcher onto its
/// inline-fallback path. No interleaving may lose a chunk, deadlock the
/// latch, or leave threads behind.
#[test]
fn concurrent_shutdown_never_loses_chunks_or_deadlocks() {
    let report = model_with(opts(1), || {
        let shutdowns = Arc::new(AtomicUsize::new(0));
        let observed = shutdowns.clone();
        let closer = agua_nn::loom::thread::spawn(move || {
            pool::shutdown();
            observed.fetch_add(1, Ordering::SeqCst);
        });
        let mut out = vec![0.0f32; 4];
        pool::run_chunks(&mut out, 1, 2, &|row_start, chunk: &mut [f32]| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (row_start + i) as f32 + 1.0;
            }
        });
        closer.join().expect("shutdown thread must not panic");
        assert_eq!(shutdowns.load(Ordering::SeqCst), 1);
        assert_eq!(out, vec![1.0, 2.0, 3.0, 4.0], "no chunk may be lost to the race");
        pool::shutdown();
        assert_eq!(pool::worker_count(), 0);
    });
    assert!(!report.capped);
    assert!(report.schedules > 1);
    eprintln!("loom: shutdown-vs-dispatch explored {} schedules", report.schedules);
}

/// The coalescer's queue/flush handoff (`agua_nn::handoff`): two
/// producers submit concurrently with one flusher draining. In every
/// interleaving each producer's ticket must observe exactly its own
/// response, however the submissions split across flush batches, and
/// close must terminate the flusher.
#[test]
fn handoff_routes_every_response_in_all_schedules() {
    use agua_nn::handoff::BatchQueue;
    let report = model_with(opts(2), || {
        let q: BatchQueue<usize, usize> = BatchQueue::bounded(4);
        let flusher = {
            let q = q.clone();
            agua_nn::loom::thread::spawn(move || {
                let mut served = 0usize;
                while let Some(batch) = q.drain() {
                    for (v, responder) in batch {
                        responder.complete(v * 10);
                        served += 1;
                    }
                }
                served
            })
        };
        let producer = {
            let q = q.clone();
            agua_nn::loom::thread::spawn(move || {
                let t = q.submit(2).expect("capacity 4 cannot fill");
                t.wait().expect("flusher must complete, not abandon")
            })
        };
        let t = q.submit(1).expect("capacity 4 cannot fill");
        assert_eq!(t.wait(), Ok(10), "own response, not the other producer's");
        assert_eq!(producer.join().unwrap(), 20);
        q.close();
        assert_eq!(flusher.join().unwrap(), 2, "every admitted request served");
    });
    assert!(!report.capped, "exploration must be exhaustive, not capped");
    assert!(report.schedules > 1);
    eprintln!("loom: handoff queue/flush explored {} schedules", report.schedules);
}

/// A flusher that dies mid-batch (drops responders without completing)
/// must abandon — not hang — every waiting ticket, in every schedule.
#[test]
fn handoff_abandons_instead_of_hanging_when_flusher_dies() {
    use agua_nn::handoff::BatchQueue;
    let report = model_with(opts(2), || {
        let q: BatchQueue<usize, usize> = BatchQueue::bounded(2);
        let flusher = {
            let q = q.clone();
            agua_nn::loom::thread::spawn(move || {
                let batch = q.drain().expect("one request is queued");
                drop(batch); // worker failure: responders dropped uncompleted
            })
        };
        let t = q.submit(1).expect("capacity 2 cannot fill");
        assert!(t.wait().is_err(), "dropped responder must abandon the ticket");
        flusher.join().unwrap();
    });
    assert!(!report.capped);
    assert!(report.schedules > 1);
    eprintln!("loom: handoff abandonment explored {} schedules", report.schedules);
}

/// `resize_to` under load: shrinking the pool while tasks are in flight
/// must drain queued work before exiting workers (FIFO exit message),
/// and a later dispatch must lazily respawn.
#[test]
fn resize_drains_in_flight_work_then_respawns_lazily() {
    let report = model_with(opts(1), || {
        let mut out = vec![0.0f32; 2];
        pool::run_chunks(&mut out, 1, 1, &|row_start, chunk: &mut [f32]| {
            chunk[0] = row_start as f32 + 1.0;
        });
        assert_eq!(out, vec![1.0, 2.0]);
        pool::resize_to(0);
        assert_eq!(pool::worker_count(), 0, "resize_to(0) must join the worker");
        // Lazy respawn on the next over-gate dispatch.
        let mut out2 = vec![0.0f32; 2];
        pool::run_chunks(&mut out2, 1, 1, &|row_start, chunk: &mut [f32]| {
            chunk[0] = row_start as f32 + 10.0;
        });
        assert_eq!(out2, vec![10.0, 11.0]);
        pool::shutdown();
        assert_eq!(pool::worker_count(), 0);
    });
    assert!(!report.capped);
    eprintln!("loom: resize/respawn explored {} schedules", report.schedules);
}
