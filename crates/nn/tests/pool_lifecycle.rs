//! Lifecycle of the persistent worker pool: lazy spawn, growth under a
//! scoped override, shrink via `set_global_threads`, clean shutdown with
//! no leaked OS threads, and respawn after shutdown.
//!
//! Everything lives in one `#[test]` in its own integration binary: the
//! pool is process-global state, and libtest's default multi-threaded
//! runner would otherwise race resizes against dispatches.

use agua_nn::parallel::{self, set_global_threads, with_thread_config, ThreadConfig};
use agua_nn::{pool, Matrix};

/// Forces pool dispatch regardless of operation size.
fn forced(threads: usize) -> ThreadConfig {
    ThreadConfig { threads, min_flops: 0 }
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// OS-level thread count of this process, from /proc (Linux only).
/// Skipped under Miri: its isolation layer rejects the `/proc` read
/// outright rather than returning `Err`, and Miri has its own (stricter)
/// leak check — the interpreter fails the run if any thread outlives
/// `main`.
#[cfg(all(target_os = "linux", not(miri)))]
fn os_thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

#[cfg(any(not(target_os = "linux"), miri))]
fn os_thread_count() -> Option<usize> {
    None
}

/// Matmul shape exercised at every pool size; scaled down under the
/// Miri interpreter, where the full shape would dominate `--deep` time.
#[cfg(not(miri))]
const SHAPE: (usize, usize, usize) = (64, 32, 48);
#[cfg(miri)]
const SHAPE: (usize, usize, usize) = (9, 6, 10);

#[test]
fn pool_resizes_under_overrides_and_shuts_down_without_leaking_threads() {
    let (m, k, n) = SHAPE;
    let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 23) as f32 - 11.0);
    let b = Matrix::from_fn(k, n, |r, c| ((r * 13 + c * 5) % 19) as f32 - 9.0);
    let expected = bits(&a.matmul_reference(&b));

    // Lazy: nothing is spawned before the first over-gate dispatch, and
    // a resize alone must not spawn either.
    assert_eq!(pool::worker_count(), 0, "pool must start empty");
    set_global_threads(4);
    assert_eq!(pool::worker_count(), 0, "resize alone must not spawn workers");
    let baseline_threads = os_thread_count();

    // First pooled dispatch at 4 threads: the dispatcher runs one chunk
    // inline, so at most 3 workers are spawned.
    let out = with_thread_config(forced(4), || parallel::par_matmul(&a, &b));
    assert_eq!(bits(&out), expected);
    assert_eq!(pool::worker_count(), 3, "4-way dispatch spawns 3 workers");

    // A scoped override wider than the global setting grows the pool
    // while it is live; leaving the scope does not shrink it.
    let out = with_thread_config(forced(7), || parallel::par_matmul(&a, &b));
    assert_eq!(bits(&out), expected);
    assert_eq!(pool::worker_count(), 6, "7-way override grows the pool to 6 workers");

    // Shrinking mid-run joins the surplus workers and keeps answering
    // correctly with the remainder.
    set_global_threads(2);
    assert_eq!(pool::worker_count(), 1, "set_global_threads(2) keeps 1 worker");
    let out = with_thread_config(forced(2), || parallel::par_matmul(&a, &b));
    assert_eq!(bits(&out), expected);

    // Shutdown joins everything; the OS thread count returns to what it
    // was before the pool existed.
    pool::shutdown();
    assert_eq!(pool::worker_count(), 0, "shutdown must join all workers");
    assert_eq!(pool::queued_tasks(), 0, "no tasks may remain queued");
    if let (Some(before), Some(after)) = (baseline_threads, os_thread_count()) {
        assert_eq!(after, before, "pool threads must not leak past shutdown");
    }

    // The pool respawns lazily after a shutdown.
    let out = with_thread_config(forced(4), || parallel::par_matmul(&a, &b));
    assert_eq!(bits(&out), expected);
    assert_eq!(pool::worker_count(), 3, "pool respawns after shutdown");
    pool::shutdown();
}
