//! Pool-dispatched kernels are byte-identical to both the sequential
//! scalar kernels and the retired per-op scoped-spawn dispatcher.
//!
//! This is the contract that lets the persistent worker pool replace
//! `std::thread::scope` spawning without perturbing a single trained
//! weight: same row partitioning, same k-ascending accumulation order,
//! at every thread count — including the tile-remainder shapes and the
//! non-finite poisoning semantics of the zero-skip fast path.

//! Under Miri the randomized `proptest` suites are compiled out (they
//! would take hours under the interpreter); the `small_shapes` module
//! below covers the same two contracts on fixed shapes cheap enough for
//! `cargo +nightly miri test -p agua-nn` (`ci.sh --deep`).

use agua_nn::parallel::{self, with_thread_config, ThreadConfig};
use agua_nn::Matrix;

/// Forces pool dispatch regardless of operation size.
fn forced(threads: usize) -> ThreadConfig {
    ThreadConfig { threads, min_flops: 0 }
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Deterministic pseudo-random matrix with exact zeros sprinkled in so
/// the finite-gated zero-skip path is exercised.
fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add((r * 31 + c * 7) as u64);
        if h.is_multiple_of(9) {
            0.0
        } else {
            ((h % 2003) as f32 - 1001.0) / 211.0
        }
    })
}

/// Fixed-shape variants of the two property suites, sized to finish in
/// seconds under the Miri interpreter. They run under plain `cargo
/// test` too — a deterministic floor beneath the randomized coverage.
mod small_shapes {
    use super::*;
    use agua_nn::parallel::reference;

    /// Shapes that hit the interesting partitions at 2 workers: fewer
    /// rows than workers, an odd split, a tile-remainder shape, and one
    /// shape past the 32-wide vector tile with a non-multiple-of-8 k
    /// (exercises the `F32x8` lane remainder and the `TILE` → `SUBTILE`
    /// → scalar column cascade).
    const SHAPES: [(usize, usize, usize); 4] = [(1, 3, 2), (3, 2, 4), (5, 7, 3), (2, 33, 34)];

    #[test]
    fn pool_byte_identity_on_fixed_small_shapes() {
        for (i, &(m, k, n)) in SHAPES.iter().enumerate() {
            let seed = 11 + i as u64;
            let a = mat(m, k, seed);
            let b = mat(k, n, seed ^ 0xABCD);
            let at = mat(k, m, seed ^ 0x77);
            let bt = mat(n, k, seed ^ 0x1234);

            let (pm, ptn, pnt) = with_thread_config(forced(2), || {
                (
                    parallel::par_matmul(&a, &b),
                    parallel::par_matmul_tn(&at, &b),
                    parallel::par_matmul_nt(&a, &bt),
                )
            });

            assert_eq!(bits(&a.matmul_reference(&b)), bits(&pm), "matmul {m}x{k}x{n}");
            assert_eq!(bits(&at.matmul_tn_reference(&b)), bits(&ptn), "matmul_tn {m}x{k}x{n}");
            assert_eq!(bits(&a.matmul_nt_reference(&bt)), bits(&pnt), "matmul_nt {m}x{k}x{n}");

            assert_eq!(bits(&reference::scoped_scalar_matmul(&a, &b, 2)), bits(&pm));
            assert_eq!(bits(&reference::scoped_scalar_matmul_tn(&at, &b, 2)), bits(&ptn));
            assert_eq!(bits(&reference::scoped_scalar_matmul_nt(&a, &bt, 2)), bits(&pnt));
        }
        agua_nn::pool::shutdown();
    }

    #[test]
    fn zero_skip_poisoning_on_fixed_small_shapes() {
        for (i, poison) in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY].iter().enumerate() {
            let seed = 40 + i as u64;
            let a = mat(3, 4, seed);
            let mut b = mat(4, 2, seed ^ 0x55);
            b.set(i % 4, i % 2, *poison);

            let pm = with_thread_config(forced(2), || parallel::par_matmul(&a, &b));
            assert_eq!(bits(&a.matmul_reference(&b)), bits(&pm), "poison {poison}");
            assert_eq!(bits(&reference::scoped_scalar_matmul(&a, &b, 2)), bits(&pm));
        }
        agua_nn::pool::shutdown();
    }
}

/// The randomized suites; compiled out under Miri (see module docs).
#[cfg(not(miri))]
mod randomized {
    use super::*;
    use agua_nn::parallel::reference;
    use proptest::prelude::*;

    const THREADS: [usize; 4] = [1, 2, 4, 7];

    proptest! {
        /// All three kernels, pool vs sequential-scalar vs scoped-spawn, at
        /// thread counts 1/2/4/7. The k/n ranges reach past the 32-wide
        /// vector tile so the `F32x8` lanes, the `SUBTILE` pass, and the
        /// scalar column remainder are all compared against the scalar
        /// reference, not just the narrow shapes.
        #[test]
        fn pool_matches_sequential_and_scoped_spawn_bitwise(
            m in 1usize..24,
            k in 1usize..40,
            n in 1usize..40,
            tidx in 0usize..THREADS.len(),
            seed in 0u64..300,
        ) {
            let threads = THREADS[tidx];
            let a = mat(m, k, seed);
            let b = mat(k, n, seed ^ 0xABCD);
            let at = mat(k, m, seed ^ 0x77);
            let bt = mat(n, k, seed ^ 0x1234);

            let (pm, ptn, pnt) = with_thread_config(forced(threads), || {
                (
                    parallel::par_matmul(&a, &b),
                    parallel::par_matmul_tn(&at, &b),
                    parallel::par_matmul_nt(&a, &bt),
                )
            });

            // Sequential scalar kernels (the pre-tiling reference bodies).
            prop_assert_eq!(bits(&a.matmul_reference(&b)), bits(&pm));
            prop_assert_eq!(bits(&at.matmul_tn_reference(&b)), bits(&ptn));
            prop_assert_eq!(bits(&a.matmul_nt_reference(&bt)), bits(&pnt));

            // The retired scoped-spawn dispatcher with the same worker count.
            prop_assert_eq!(bits(&reference::scoped_scalar_matmul(&a, &b, threads)), bits(&pm));
            prop_assert_eq!(bits(&reference::scoped_scalar_matmul_tn(&at, &b, threads)), bits(&ptn));
            prop_assert_eq!(bits(&reference::scoped_scalar_matmul_nt(&a, &bt, threads)), bits(&pnt));
        }

        /// NaN/∞ poisoning survives the pool + tiled kernels identically:
        /// the zero-skip fast path may only skip products whose rhs row is
        /// finite, no matter which thread owns the row.
        #[test]
        fn pool_preserves_nonfinite_poisoning(
            m in 2usize..10,
            k in 1usize..40,
            n in 1usize..40,
            tidx in 0usize..THREADS.len(),
            poison in 0usize..100,
            use_inf in 0usize..2,
            seed in 0u64..200,
        ) {
            let threads = THREADS[tidx];
            let a = mat(m, k, seed);
            let mut b = mat(k, n, seed ^ 0x55);
            b.set(poison % k, poison % n, if use_inf == 1 { f32::INFINITY } else { f32::NAN });

            let pm = with_thread_config(forced(threads), || parallel::par_matmul(&a, &b));
            prop_assert_eq!(bits(&a.matmul_reference(&b)), bits(&pm));
            prop_assert_eq!(bits(&reference::scoped_scalar_matmul(&a, &b, threads)), bits(&pm));
        }
    }
}
