//! The fused inference path is byte-identical to the unfused reference.
//!
//! `Mlp::forward_into` collapses every `Linear → ReLU → LayerNorm`
//! window into one matmul plus a single row-local epilogue. These
//! suites pin the contract that makes that fusion safe to ship: the
//! fused output matches the three-pass per-layer reference **bit for
//! bit**, at thread counts 1/2/4/7, through reused (warm) workspaces,
//! and under NaN/∞ input poisoning. The int8 quantized mirror gets the
//! same thread-count-invariance treatment.
//!
//! Under Miri the randomized `proptest` suites are compiled out; the
//! `small_shapes` module covers the same contracts on fixed shapes.

use agua_nn::parallel::{with_thread_config, ThreadConfig};
use agua_nn::{
    InferWorkspace, LayerKind, LayerNorm, Linear, Matrix, Mlp, QuantInferWorkspace, QuantizedMlp,
    ReLU, Tanh,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Forces pool dispatch regardless of operation size.
fn forced(threads: usize) -> ThreadConfig {
    ThreadConfig { threads, min_flops: 0 }
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

/// Deterministic pseudo-random matrix (same pattern as the pool suite).
fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |r, c| {
        let h = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add((r * 31 + c * 7) as u64);
        ((h % 2003) as f32 - 1001.0) / 211.0
    })
}

/// A LayerNorm with non-trivial γ/β so the affine epilogue actually
/// participates in the bit comparison.
fn layernorm(dim: usize, seed: u64) -> LayerNorm {
    let mut ln = LayerNorm::new(dim);
    ln.gamma.value = Matrix::from_fn(1, dim, |_, c| 1.0 + ((seed as usize + c) % 7) as f32 * 0.05);
    ln.beta.value =
        Matrix::from_fn(1, dim, |_, c| ((seed as usize + 3 * c) % 5) as f32 * 0.1 - 0.2);
    ln
}

/// Three stack shapes: a pure fused window, a fused window with a
/// trailing head, and a stack sandwiching the fusable window between
/// non-fusable layers.
fn build_net(arch: usize, d_in: usize, hidden: usize, d_out: usize, seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    match arch % 3 {
        0 => Mlp::new()
            .push(LayerKind::Linear(Linear::new(&mut rng, d_in, hidden)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::LayerNorm(layernorm(hidden, seed))),
        1 => Mlp::new()
            .push(LayerKind::Linear(Linear::new(&mut rng, d_in, hidden)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::LayerNorm(layernorm(hidden, seed)))
            .push(LayerKind::Linear(Linear::new(&mut rng, hidden, d_out))),
        _ => Mlp::new()
            .push(LayerKind::LayerNorm(layernorm(d_in, seed ^ 0x99)))
            .push(LayerKind::Linear(Linear::new(&mut rng, d_in, hidden)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::LayerNorm(layernorm(hidden, seed)))
            .push(LayerKind::Tanh(Tanh::new()))
            .push(LayerKind::Linear(Linear::new(&mut rng, hidden, d_out))),
    }
}

/// The unfused three-pass reference: every layer applied one at a time
/// through its own `infer`, exactly as inference ran before the fusion.
fn infer_unfused(net: &Mlp, x: &Matrix) -> Matrix {
    net.layers.iter().fold(x.clone(), |acc, layer| layer.infer(&acc))
}

/// Fixed-shape floor that also runs under Miri.
mod small_shapes {
    use super::*;

    #[test]
    fn fused_matches_unfused_on_fixed_shapes() {
        for arch in 0..3 {
            let net = build_net(arch, 5, 9, 4, 21 + arch as u64);
            let x = mat(6, 5, 77);
            let reference = with_thread_config(forced(1), || infer_unfused(&net, &x));
            let mut ws = InferWorkspace::default();
            for threads in [1, 2, 4, 7] {
                let fused =
                    with_thread_config(forced(threads), || net.forward_into(&x, &mut ws).clone());
                assert_eq!(bits(&reference), bits(&fused), "arch {arch} threads {threads}");
            }
        }
        agua_nn::pool::shutdown();
    }

    #[test]
    fn fused_preserves_nonfinite_poisoning_on_fixed_shapes() {
        for (i, poison) in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY].iter().enumerate() {
            let net = build_net(1, 4, 8, 3, 31 + i as u64);
            let mut x = mat(5, 4, 13);
            x.set(i % 5, i % 4, *poison);
            let reference = with_thread_config(forced(1), || infer_unfused(&net, &x));
            let mut ws = InferWorkspace::default();
            let fused = with_thread_config(forced(2), || net.forward_into(&x, &mut ws).clone());
            assert_eq!(bits(&reference), bits(&fused), "poison {poison}");
        }
        agua_nn::pool::shutdown();
    }
}

/// The randomized suites; compiled out under Miri (see module docs).
#[cfg(not(miri))]
mod randomized {
    use super::*;
    use proptest::prelude::*;

    const THREADS: [usize; 4] = [1, 2, 4, 7];

    proptest! {
        /// Fused `forward_into` vs the unfused three-pass reference,
        /// bitwise, over stack shapes, batch sizes, hidden widths past
        /// the vector tile, thread counts, and warm-workspace reuse.
        #[test]
        fn fused_forward_matches_unfused_bitwise(
            arch in 0usize..3,
            batch in 1usize..10,
            d_in in 1usize..12,
            hidden in 1usize..40,
            d_out in 1usize..8,
            tidx in 0usize..THREADS.len(),
            seed in 0u64..300,
        ) {
            let threads = THREADS[tidx];
            let net = build_net(arch, d_in, hidden, d_out, seed);
            let x = mat(batch, d_in, seed ^ 0xF00D);
            let reference = with_thread_config(forced(1), || infer_unfused(&net, &x));
            let mut ws = InferWorkspace::default();
            // Twice through the same workspace: stale contents from the
            // first pass must not leak into the second.
            for pass in 0..2 {
                let fused = with_thread_config(forced(threads), || {
                    net.forward_into(&x, &mut ws).clone()
                });
                prop_assert_eq!(bits(&reference), bits(&fused), "pass {}", pass);
            }
        }

        /// NaN/∞ poisoning flows through the fused epilogue exactly as
        /// it does through the three-pass reference, at any thread count.
        #[test]
        fn fused_forward_preserves_nonfinite_poisoning(
            arch in 0usize..3,
            batch in 1usize..8,
            d_in in 2usize..10,
            hidden in 2usize..24,
            tidx in 0usize..THREADS.len(),
            poison in 0usize..100,
            kind in 0usize..3,
            seed in 0u64..200,
        ) {
            let threads = THREADS[tidx];
            let net = build_net(arch, d_in, hidden, 3, seed);
            let mut x = mat(batch, d_in, seed ^ 0x55);
            let value = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY][kind];
            x.set(poison % batch, poison % d_in, value);
            let reference = with_thread_config(forced(1), || infer_unfused(&net, &x));
            let mut ws = InferWorkspace::default();
            let fused = with_thread_config(forced(threads), || {
                net.forward_into(&x, &mut ws).clone()
            });
            prop_assert_eq!(bits(&reference), bits(&fused));
        }

        /// The int8 quantized mirror is byte-identical at any thread
        /// count: exact i32 accumulation plus whole-row partitioning.
        #[test]
        fn quantized_inference_is_thread_count_invariant(
            arch in 0usize..3,
            batch in 1usize..10,
            d_in in 1usize..10,
            hidden in 1usize..32,
            tidx in 1usize..THREADS.len(),
            seed in 0u64..200,
        ) {
            let threads = THREADS[tidx];
            let net = build_net(arch, d_in, hidden, 4, seed);
            let q = QuantizedMlp::from_mlp(&net);
            let x = mat(batch, d_in, seed ^ 0xBEEF);
            let base = with_thread_config(forced(1), || q.infer(&x));
            let par = with_thread_config(forced(threads), || q.infer(&x));
            prop_assert_eq!(bits(&base), bits(&par));
        }

        /// Quantized fused `forward_into` vs the unfused per-layer
        /// reference, bitwise, over stack shapes, hidden widths past
        /// the lane tile, thread counts, and warm-workspace reuse.
        #[test]
        fn quantized_fused_forward_matches_unfused_bitwise(
            arch in 0usize..3,
            batch in 1usize..10,
            d_in in 1usize..12,
            hidden in 1usize..40,
            d_out in 1usize..8,
            tidx in 0usize..THREADS.len(),
            seed in 0u64..300,
        ) {
            let threads = THREADS[tidx];
            let net = build_net(arch, d_in, hidden, d_out, seed);
            let q = QuantizedMlp::from_mlp(&net);
            let x = mat(batch, d_in, seed ^ 0xF00D);
            let reference = with_thread_config(forced(1), || q.infer_unfused(&x));
            let mut ws = QuantInferWorkspace::default();
            // Twice through the same workspace: stale contents from the
            // first pass must not leak into the second.
            for pass in 0..2 {
                let fused = with_thread_config(forced(threads), || {
                    q.forward_into(&x, &mut ws).clone()
                });
                prop_assert_eq!(bits(&reference), bits(&fused), "pass {}", pass);
            }
        }

        /// NaN/∞ input poisoning flows through the quantized fused
        /// epilogue exactly as through the unfused reference (the
        /// quantizer maps NaN → 0 and ±∞ → ±127 before the matmul, so
        /// the epilogue sees only the finite dequantized activations).
        #[test]
        fn quantized_fused_forward_preserves_poisoned_inputs(
            arch in 0usize..3,
            batch in 1usize..8,
            d_in in 2usize..10,
            hidden in 2usize..24,
            tidx in 0usize..THREADS.len(),
            poison in 0usize..100,
            kind in 0usize..3,
            seed in 0u64..200,
        ) {
            let threads = THREADS[tidx];
            let net = build_net(arch, d_in, hidden, 3, seed);
            let q = QuantizedMlp::from_mlp(&net);
            let mut x = mat(batch, d_in, seed ^ 0x55);
            let value = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY][kind];
            x.set(poison % batch, poison % d_in, value);
            let reference = with_thread_config(forced(1), || q.infer_unfused(&x));
            let mut ws = QuantInferWorkspace::default();
            let fused = with_thread_config(forced(threads), || {
                q.forward_into(&x, &mut ws).clone()
            });
            prop_assert_eq!(bits(&reference), bits(&fused));
        }
    }
}
