//! Behaviour cloning: supervised training of a policy against teacher
//! action labels (or ground-truth class labels for the DDoS detector).

use crate::policy::PolicyNet;
use agua_nn::{softmax_cross_entropy, Adam, Matrix, Optimizer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Behaviour-cloning hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct BcConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for BcConfig {
    fn default() -> Self {
        Self { epochs: 60, batch: 128, lr: 3e-3 }
    }
}

/// Trains `net` to imitate `labels` on `features` rows; returns the
/// per-epoch mean loss curve.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn fit_bc(
    net: &mut PolicyNet,
    features: &Matrix,
    labels: &[usize],
    config: BcConfig,
    rng: &mut StdRng,
) -> Vec<f32> {
    assert_eq!(features.rows(), labels.len(), "one label per row");
    assert!(features.rows() > 0, "empty training set");
    let n = features.rows();
    let mut opt = Adam::new(config.lr);
    let mut order: Vec<usize> = (0..n).collect();
    let mut curve = Vec::with_capacity(config.epochs);

    for _ in 0..config.epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(config.batch) {
            let x = features.select_rows(chunk);
            let y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
            net.zero_grad();
            let logits = net.forward_train(&x);
            let (loss, grad) = softmax_cross_entropy(&logits, &y);
            net.backward(&grad);
            opt.step(&mut net.mlp.params_mut());
            epoch_loss += loss;
            batches += 1;
        }
        curve.push(epoch_loss / batches.max(1) as f32);
    }
    curve
}

/// Fraction of rows on which the greedy policy matches `labels`.
pub fn accuracy(net: &PolicyNet, features: &Matrix, labels: &[usize]) -> f32 {
    assert_eq!(features.rows(), labels.len());
    let logits = net.logits(features);
    let hits = (0..features.rows()).filter(|&r| logits.argmax_row(r) == labels[r]).count();
    hits as f32 / features.rows().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A synthetic "teacher": class = quadrant of the first two features.
    fn quadrant_data(n: usize, seed: u64) -> (Matrix, Vec<usize>) {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let a: f32 = rng.random_range(-1.0..1.0);
            let b: f32 = rng.random_range(-1.0..1.0);
            rows.push(vec![a, b, a * b, a - b]);
            labels.push(usize::from(a > 0.0) * 2 + usize::from(b > 0.0));
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn bc_learns_the_teacher() {
        let (x, y) = quadrant_data(600, 1);
        let (xt, yt) = quadrant_data(200, 2);
        let mut net = PolicyNet::new_seeded(7, 4, 32, 16, 4);
        let mut rng = StdRng::seed_from_u64(3);
        let curve = fit_bc(&mut net, &x, &y, BcConfig::default(), &mut rng);
        assert!(curve[curve.len() - 1] < curve[0], "loss must decrease");
        let acc = accuracy(&net, &xt, &yt);
        assert!(acc > 0.9, "held-out imitation accuracy {acc}");
    }

    #[test]
    fn accuracy_is_one_on_memorized_single_batch() {
        let (x, y) = quadrant_data(32, 5);
        let mut net = PolicyNet::new_seeded(9, 4, 64, 32, 4);
        let mut rng = StdRng::seed_from_u64(5);
        fit_bc(&mut net, &x, &y, BcConfig { epochs: 300, batch: 32, lr: 5e-3 }, &mut rng);
        assert!(accuracy(&net, &x, &y) > 0.96);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn mismatched_labels_panic() {
        let mut net = PolicyNet::new_seeded(1, 4, 8, 8, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = fit_bc(&mut net, &Matrix::zeros(3, 4), &[0, 1], BcConfig::default(), &mut rng);
    }
}
