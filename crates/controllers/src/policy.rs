//! The shared policy/classifier network shape.
//!
//! All three controllers use the same stack:
//!
//! ```text
//! input → Linear(in, wide) → ReLU → Linear(wide, emb) → ReLU ┬→ Linear(emb, actions)
//!                                                            └→ h(x) (embedding)
//! ```
//!
//! The activations after the second ReLU are the controller's *embedding
//! network output* `h(x)` — the dense low-dimensional representation the
//! paper's concept mapping function δ consumes (Eq. 3). Gradients never
//! flow from Agua back into these weights; Agua reads embeddings through
//! the non-caching inference path.

use agua_nn::{LayerKind, Linear, Matrix, Mlp, ReLU};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A policy network with an exposed embedding layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyNet {
    /// The underlying network.
    pub mlp: Mlp,
    /// Input feature dimension.
    pub in_dim: usize,
    /// Embedding dimension (`H` in the paper).
    pub emb_dim: usize,
    /// Number of discrete actions / output classes.
    pub n_actions: usize,
    /// Index of the layer whose output is the embedding.
    emb_after: usize,
}

impl PolicyNet {
    /// Creates a policy with the standard two-hidden-layer shape.
    pub fn new(
        rng: &mut StdRng,
        in_dim: usize,
        wide: usize,
        emb_dim: usize,
        n_actions: usize,
    ) -> Self {
        let mlp = Mlp::new()
            .push(LayerKind::Linear(Linear::new(rng, in_dim, wide)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::Linear(Linear::new(rng, wide, emb_dim)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::Linear(Linear::new(rng, emb_dim, n_actions)));
        Self { mlp, in_dim, emb_dim, n_actions, emb_after: 3 }
    }

    /// Action logits for a batch of feature rows.
    pub fn logits(&self, features: &Matrix) -> Matrix {
        assert_eq!(features.cols(), self.in_dim, "feature dimension mismatch");
        self.mlp.infer(features)
    }

    /// Softmax action probabilities for a batch.
    pub fn probs(&self, features: &Matrix) -> Matrix {
        agua_nn::softmax_rows(&self.logits(features))
    }

    /// Embeddings `h(x)` for a batch of feature rows.
    pub fn embeddings(&self, features: &Matrix) -> Matrix {
        assert_eq!(features.cols(), self.in_dim, "feature dimension mismatch");
        let (hidden, _) = self.mlp.infer_with_hidden(features, self.emb_after);
        hidden
    }

    /// Embeddings and logits in a single pass.
    pub fn embeddings_and_logits(&self, features: &Matrix) -> (Matrix, Matrix) {
        assert_eq!(features.cols(), self.in_dim, "feature dimension mismatch");
        self.mlp.infer_with_hidden(features, self.emb_after)
    }

    /// Greedy action for a single feature vector.
    pub fn act(&self, features: &[f32]) -> usize {
        let x = Matrix::row_vector(features);
        self.logits(&x).argmax_row(0)
    }

    /// Samples an action from the softmax policy (exploration during
    /// policy-gradient training).
    pub fn sample_action(&self, features: &[f32], rng: &mut StdRng) -> usize {
        let x = Matrix::row_vector(features);
        let p = self.probs(&x);
        let mut u: f32 = rng.random_range(0.0..1.0);
        for a in 0..self.n_actions {
            u -= p.get(0, a);
            if u <= 0.0 {
                return a;
            }
        }
        self.n_actions - 1
    }

    /// Training-mode forward pass (caches activations for backprop).
    pub fn forward_train(&mut self, features: &Matrix) -> Matrix {
        self.mlp.forward(features)
    }

    /// Backpropagates a logit gradient; pair with [`Mlp::params_mut`].
    pub fn backward(&mut self, grad_logits: &Matrix) {
        self.mlp.backward(grad_logits);
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.mlp.zero_grad();
    }

    /// Index of the layer whose output is the embedding.
    pub fn emb_after(&self) -> usize {
        self.emb_after
    }

    /// Reassembles a policy from its parts — the inverse of the artifact
    /// codec in `agua-app`, which persists `emb_after` explicitly.
    pub fn from_parts(
        mlp: Mlp,
        in_dim: usize,
        emb_dim: usize,
        n_actions: usize,
        emb_after: usize,
    ) -> Self {
        assert!(emb_after < mlp.layers.len(), "embedding layer index out of range");
        Self { mlp, in_dim, emb_dim, n_actions, emb_after }
    }

    /// Convenience seeded constructor.
    pub fn new_seeded(
        seed: u64,
        in_dim: usize,
        wide: usize,
        emb_dim: usize,
        n_actions: usize,
    ) -> Self {
        Self::new(&mut StdRng::seed_from_u64(seed), in_dim, wide, emb_dim, n_actions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> PolicyNet {
        PolicyNet::new_seeded(3, 8, 32, 16, 4)
    }

    #[test]
    fn shapes_are_consistent() {
        let n = net();
        let x = Matrix::zeros(5, 8);
        assert_eq!(n.logits(&x).shape(), (5, 4));
        assert_eq!(n.embeddings(&x).shape(), (5, 16));
        let (h, y) = n.embeddings_and_logits(&x);
        assert_eq!(h.shape(), (5, 16));
        assert_eq!(y.shape(), (5, 4));
    }

    #[test]
    fn embedding_is_post_relu() {
        let n = net();
        let x = Matrix::from_fn(3, 8, |r, c| (r as f32 - 1.0) * (c as f32 + 1.0) * 0.1);
        let h = n.embeddings(&x);
        assert!(h.as_slice().iter().all(|&v| v >= 0.0), "ReLU output must be non-negative");
    }

    #[test]
    fn logits_head_is_linear_in_embedding() {
        // logits = W·h + b for the final layer: verify via direct matmul.
        let n = net();
        let x = Matrix::from_fn(2, 8, |r, c| 0.3 * (r + c) as f32);
        let (h, y) = n.embeddings_and_logits(&x);
        if let LayerKind::Linear(last) = &n.mlp.layers[4] {
            let manual = h.matmul(&last.weight.value).add_row_broadcast(&last.bias.value);
            for i in 0..y.rows() * y.cols() {
                assert!((manual.as_slice()[i] - y.as_slice()[i]).abs() < 1e-5);
            }
        } else {
            panic!("final layer must be linear");
        }
    }

    #[test]
    fn sampling_follows_probabilities() {
        let n = net();
        let x = vec![0.5; 8];
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..2000 {
            counts[n.sample_action(&x, &mut rng)] += 1;
        }
        let p = n.probs(&Matrix::row_vector(&x));
        for a in 0..4 {
            let empirical = counts[a] as f32 / 2000.0;
            assert!(
                (empirical - p.get(0, a)).abs() < 0.05,
                "action {a}: empirical {empirical} vs {p:?}"
            );
        }
    }

    #[test]
    fn act_is_argmax_of_logits() {
        let n = net();
        let x = vec![0.2, -0.4, 0.9, 0.0, 0.1, 0.3, -0.2, 0.5];
        let logits = n.logits(&Matrix::row_vector(&x));
        assert_eq!(n.act(&x), logits.argmax_row(0));
    }

    // Checkpoint round-trips live with the codec: `agua-app`'s `codec`
    // tests restore a PolicyNet from bytes and assert identical actions.
}
