//! The ABR controller (Gelato stand-in): an MPC-style teacher, behaviour
//! cloning, REINFORCE fine-tuning, and rollout/dataset helpers.

use crate::bc::{fit_bc, BcConfig};
use crate::policy::PolicyNet;
use crate::reinforce::{pg_step, PgConfig};
use abr_env::observation::FEATURE_DIM;
use abr_env::{
    AbrObservation, AbrSimulator, DatasetEra, NetworkTrace, VideoManifest, CHUNK_SECONDS, LEVELS,
    LOOKAHEAD,
};
use agua_nn::{Adam, Matrix};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Embedding width of the ABR controller (`H` in the paper).
pub const ABR_EMB_DIM: usize = 64;

/// Creates an untrained ABR policy network.
pub fn make_controller(seed: u64) -> PolicyNet {
    PolicyNet::new_seeded(seed, FEATURE_DIM, 128, ABR_EMB_DIM, LEVELS)
}

/// Robust MPC-style teacher: estimates throughput as a discounted
/// harmonic mean of recent measurements and rolls each candidate level
/// forward over the [`LOOKAHEAD`] horizon with simulated buffer
/// dynamics, picking the level that maximizes horizon QoE.
///
/// The horizon is what lets the teacher climb: a one-step scorer pays
/// the smoothness penalty for an upswitch without ever seeing the
/// quality it buys on later chunks, and gets stuck below the level the
/// link can sustain.
pub fn mpc_teacher(sim: &AbrSimulator) -> usize {
    let obs = sim.observation();
    if sim.next_chunk_sizes().is_none() {
        return 0;
    }

    // Discounted harmonic mean over the last 5 non-zero throughputs.
    let recent: Vec<f32> =
        obs.throughput_mbps.iter().rev().filter(|&&t| t > 0.0).take(5).copied().collect();
    let est = if recent.is_empty() {
        0.5 // conservative cold-start estimate
    } else {
        let hm = recent.len() as f32 / recent.iter().map(|t| 1.0 / t.max(0.05)).sum::<f32>();
        hm * 0.9 // robustness discount
    };

    let manifest = sim.manifest();
    let next = sim.next_chunk();
    let buffer = *obs.buffer_s.last().expect("history is non-empty");
    let last_q = sim.last_quality_db();
    let mut best = 0;
    let mut best_score = f32::NEG_INFINITY;
    for level in 0..LEVELS {
        let mut b = buffer;
        let mut prev_q = last_q;
        let mut score = 0.0;
        for i in 0..LOOKAHEAD {
            let idx = next + i;
            if idx >= manifest.chunks() {
                break;
            }
            let tx = manifest.sizes[idx][level] / est.max(0.05);
            let stall = (tx - b).max(0.0);
            b = (b - tx).max(0.0) + CHUNK_SECONDS;
            let q = manifest.qualities[idx][level];
            let smooth = if prev_q > 0.0 { (q - prev_q).abs() / 5.0 } else { 0.0 };
            score += q / 5.0 - 2.0 * stall - 0.5 * smooth;
            prev_q = q;
        }
        if score > best_score {
            best_score = score;
            best = level;
        }
    }
    best
}

/// One labelled sample from a teacher rollout.
#[derive(Debug, Clone)]
pub struct AbrSample {
    /// The observation at decision time.
    pub observation: AbrObservation,
    /// The teacher's action.
    pub action: usize,
    /// Trace family index within its era batch (for trace-level grouping).
    pub trace_id: usize,
}

/// Rolls the MPC teacher (with ε-greedy exploration for state coverage)
/// over `n_traces` traces of `era`, labelling every visited state with the
/// teacher action.
pub fn collect_teacher_dataset(
    era: DatasetEra,
    n_traces: usize,
    chunks_per_video: usize,
    seed: u64,
) -> Vec<AbrSample> {
    let traces = era.generate_traces(n_traces, chunks_per_video * 6, seed);
    collect_teacher_dataset_from(traces, era.mean_complexity(), seed)
}

/// Like [`collect_teacher_dataset`] but over traces of specific families —
/// used to build deliberately *stale* controllers that have never seen
/// fast volatile links (the starting point of the Fig. 8 retraining
/// experiment).
pub fn collect_teacher_dataset_families(
    families: &[abr_env::TraceFamily],
    n_traces: usize,
    chunks_per_video: usize,
    seed: u64,
) -> Vec<AbrSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let traces: Vec<NetworkTrace> = (0..n_traces)
        .map(|i| families[i % families.len()].generate(chunks_per_video * 6, &mut rng))
        .collect();
    collect_teacher_dataset_from(traces, 1.0, seed)
}

fn collect_teacher_dataset_from(
    traces: Vec<NetworkTrace>,
    mean_complexity: f32,
    seed: u64,
) -> Vec<AbrSample> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut samples = Vec::new();
    for (trace_id, trace) in traces.into_iter().enumerate() {
        let chunks_per_video = (trace.duration() as usize / 6).max(10);
        let manifest = VideoManifest::generate(chunks_per_video, mean_complexity, &mut rng);
        let mut sim = AbrSimulator::new(manifest, trace);
        while !sim.done() {
            let action = mpc_teacher(&sim);
            samples.push(AbrSample { observation: sim.observation(), action, trace_id });
            // ε-greedy exploration so off-policy states get labelled too.
            let play = if rng.random_bool(0.1) { rng.random_range(0..LEVELS) } else { action };
            sim.step(play);
        }
    }
    samples
}

/// Stacks sample observations into a feature matrix plus action labels.
pub fn to_matrix(samples: &[AbrSample]) -> (Matrix, Vec<usize>) {
    let rows: Vec<Vec<f32>> = samples.iter().map(|s| s.observation.features()).collect();
    let labels = samples.iter().map(|s| s.action).collect();
    (Matrix::from_rows(&rows), labels)
}

/// Trains the ABR controller by behaviour cloning on a teacher dataset.
pub fn train_controller(samples: &[AbrSample], seed: u64) -> PolicyNet {
    train_controller_epochs(samples, 40, seed)
}

/// Behaviour cloning with an explicit epoch budget. A small budget yields
/// a deliberately under-trained controller — the starting point of the
/// Fig. 8 retraining comparison, which needs headroom to improve into.
pub fn train_controller_epochs(samples: &[AbrSample], epochs: usize, seed: u64) -> PolicyNet {
    let (x, y) = to_matrix(samples);
    let mut net = make_controller(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5E5E);
    fit_bc(&mut net, &x, &y, BcConfig { epochs, batch: 128, lr: 3e-3 }, &mut rng);
    net
}

/// Plays one full video with the greedy policy; returns mean QoE.
pub fn evaluate_episode(net: &PolicyNet, manifest: VideoManifest, trace: NetworkTrace) -> f32 {
    let mut sim = AbrSimulator::new(manifest, trace);
    while !sim.done() {
        let a = net.act(&sim.observation().features());
        sim.step(a);
    }
    sim.mean_qoe()
}

/// Mean QoE of the greedy policy over a set of traces.
pub fn evaluate(net: &PolicyNet, traces: &[NetworkTrace], chunks: usize, seed: u64) -> f32 {
    let mut rng = StdRng::seed_from_u64(seed);
    let total: f32 = traces
        .iter()
        .map(|t| {
            let manifest = VideoManifest::generate(chunks, 1.0, &mut rng);
            evaluate_episode(net, manifest, t.clone())
        })
        .sum();
    total / traces.len().max(1) as f32
}

/// REINFORCE fine-tuning over a trace pool (the paper's retraining
/// procedure). Each iteration samples episodes, computes per-episode mean
/// QoE as the return, and takes one policy-gradient step; returns the
/// eval-QoE curve measured on `eval_traces`.
#[allow(clippy::too_many_arguments)]
pub fn reinforce_finetune(
    net: &mut PolicyNet,
    train_traces: &[NetworkTrace],
    eval_traces: &[NetworkTrace],
    iterations: usize,
    episodes_per_iter: usize,
    chunks: usize,
    lr: f32,
    seed: u64,
) -> Vec<f32> {
    assert!(!train_traces.is_empty(), "cannot fine-tune on zero traces");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut opt = Adam::new(lr);
    let mut curve = Vec::with_capacity(iterations);

    for _ in 0..iterations {
        let mut rows: Vec<Vec<f32>> = Vec::new();
        let mut actions: Vec<usize> = Vec::new();
        let mut advantages: Vec<f32> = Vec::new();
        let mut episode_returns = Vec::new();
        let mut episode_spans = Vec::new();

        for _ in 0..episodes_per_iter {
            let trace = &train_traces[rng.random_range(0..train_traces.len())];
            let manifest = VideoManifest::generate(chunks, 1.0, &mut rng);
            let mut sim = AbrSimulator::new(manifest, trace.clone());
            let start = rows.len();
            while !sim.done() {
                let f = sim.observation().features();
                let a = net.sample_action(&f, &mut rng);
                rows.push(f);
                actions.push(a);
                sim.step(a);
            }
            episode_returns.push(sim.mean_qoe());
            episode_spans.push(start..rows.len());
        }

        // Baseline: batch-mean return; every step of an episode shares its
        // episode's centered return.
        let mean_ret = episode_returns.iter().sum::<f32>() / episode_returns.len().max(1) as f32;
        for (ret, span) in episode_returns.iter().zip(&episode_spans) {
            for _ in span.clone() {
                advantages.push(ret - mean_ret);
            }
        }

        let features = Matrix::from_rows(&rows);
        pg_step(net, &features, &actions, &advantages, PgConfig { entropy_bonus: 0.002 }, &mut opt);
        curve.push(evaluate(net, eval_traces, chunks, seed ^ 0x77));
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use abr_env::TraceFamily;

    #[test]
    fn teacher_is_cautious_on_slow_links_and_greedy_on_fast() {
        let mut rng = StdRng::seed_from_u64(1);
        let manifest = VideoManifest::generate(40, 1.0, &mut rng);
        let slow = TraceFamily::ThreeG.generate(400, &mut rng);
        let fast = TraceFamily::Broadband.generate(400, &mut rng);

        let mut slow_sim = AbrSimulator::new(manifest.clone(), slow);
        let mut fast_sim = AbrSimulator::new(manifest, fast);
        // Warm both up with the teacher for a few chunks.
        for _ in 0..8 {
            let a = mpc_teacher(&slow_sim);
            slow_sim.step(a);
            let a = mpc_teacher(&fast_sim);
            fast_sim.step(a);
        }
        let slow_action = mpc_teacher(&slow_sim);
        let fast_action = mpc_teacher(&fast_sim);
        assert!(
            fast_action > slow_action,
            "fast link {fast_action} must pick higher level than slow {slow_action}"
        );
    }

    #[test]
    fn teacher_beats_constant_policies() {
        // Compare against the per-trace *oracle* constant (the best
        // constant chosen in hindsight for each trace). No estimator
        // beats that oracle on every single trace, so assert the robust
        // properties that matter: on average across traces the teacher
        // must at least match it, and it must never lose catastrophically.
        let mut gaps = Vec::new();
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let manifest = VideoManifest::generate(50, 1.0, &mut rng);
            let trace = TraceFamily::FourG.generate(500, &mut rng);

            let run_const = |level: usize| {
                let mut sim = AbrSimulator::new(manifest.clone(), trace.clone());
                while !sim.done() {
                    sim.step(level);
                }
                sim.mean_qoe()
            };
            let mut teacher_sim = AbrSimulator::new(manifest.clone(), trace.clone());
            while !teacher_sim.done() {
                let a = mpc_teacher(&teacher_sim);
                teacher_sim.step(a);
            }
            let best_const = (0..LEVELS).map(run_const).fold(f32::MIN, f32::max);
            gaps.push(teacher_sim.mean_qoe() - best_const);
        }
        let mean_gap = gaps.iter().sum::<f32>() / gaps.len() as f32;
        let worst_gap = gaps.iter().cloned().fold(f32::MAX, f32::min);
        assert!(mean_gap > -0.05, "teacher loses to oracle constants on average: {gaps:?}");
        assert!(worst_gap > -0.5, "teacher lost catastrophically on a trace: {gaps:?}");
    }

    #[test]
    fn dataset_covers_multiple_actions() {
        let samples = collect_teacher_dataset(DatasetEra::Train2021, 6, 30, 3);
        assert!(samples.len() >= 150);
        let mut seen = [false; LEVELS];
        for s in &samples {
            seen[s.action] = true;
        }
        let distinct = seen.iter().filter(|&&s| s).count();
        assert!(distinct >= 3, "teacher must use a range of levels: {seen:?}");
    }

    #[test]
    fn cloned_controller_tracks_the_teacher() {
        let samples = collect_teacher_dataset(DatasetEra::Train2021, 30, 40, 4);
        let net = train_controller(&samples, 4);
        let held_out = collect_teacher_dataset(DatasetEra::Train2021, 6, 40, 99);
        let (x, y) = to_matrix(&held_out);
        let acc = crate::bc::accuracy(&net, &x, &y);
        assert!(acc > 0.7, "held-out imitation accuracy {acc}");
    }

    #[test]
    fn history_constant_is_consistent_with_env() {
        // Guard against silent env changes breaking the controller input.
        assert_eq!(FEATURE_DIM, 7 * abr_env::HISTORY + 2 * abr_env::LOOKAHEAD);
    }
}
