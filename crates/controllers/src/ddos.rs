//! The DDoS detector (LUCID stand-in): a supervised MLP classifier over
//! flow windows.

use crate::bc::{accuracy, fit_bc, BcConfig};
use crate::policy::PolicyNet;
use agua_nn::Matrix;
use ddos_env::observation::FEATURE_DIM;
use ddos_env::{DdosObservation, FlowKind, FlowWindow, CLASSES};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Embedding width of the DDoS detector.
pub const DDOS_EMB_DIM: usize = 32;

/// Class index for benign flows.
pub const BENIGN: usize = 0;
/// Class index for attack flows.
pub const ATTACK: usize = 1;

/// Creates an untrained detector network.
pub fn make_detector(seed: u64) -> PolicyNet {
    PolicyNet::new_seeded(seed, FEATURE_DIM, 64, DDOS_EMB_DIM, CLASSES)
}

/// A labelled flow sample.
#[derive(Debug, Clone)]
pub struct DdosSample {
    /// The flow window.
    pub window: FlowWindow,
    /// Ground-truth class (`BENIGN` / `ATTACK`).
    pub label: usize,
}

/// Generates a shuffled labelled dataset following LUCID's pipeline on
/// CIC-DDoS2019: a balanced mix of benign and attack flow kinds.
pub fn generate_dataset(count: usize, seed: u64) -> Vec<DdosSample> {
    let kinds = [
        FlowKind::BenignHttp,
        FlowKind::SynFlood,
        FlowKind::BenignDns,
        FlowKind::UdpFlood,
        FlowKind::BenignHttp,
        FlowKind::LowAndSlow,
    ];
    let mut samples: Vec<DdosSample> = FlowWindow::generate_dataset(&kinds, count, seed)
        .into_iter()
        .map(|w| {
            let label = usize::from(w.is_attack());
            DdosSample { window: w, label }
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD05);
    samples.shuffle(&mut rng);
    samples
}

/// Stacks samples into features and labels.
pub fn to_matrix(samples: &[DdosSample]) -> (Matrix, Vec<usize>) {
    let rows: Vec<Vec<f32>> =
        samples.iter().map(|s| DdosObservation::new(s.window.clone()).features()).collect();
    let labels = samples.iter().map(|s| s.label).collect();
    (Matrix::from_rows(&rows), labels)
}

/// Trains the detector supervised; returns the trained network.
pub fn train_detector(samples: &[DdosSample], seed: u64) -> PolicyNet {
    let (x, y) = to_matrix(samples);
    let mut net = make_detector(seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xDD05);
    fit_bc(&mut net, &x, &y, BcConfig { epochs: 40, batch: 64, lr: 3e-3 }, &mut rng);
    net
}

/// Detection accuracy on a labelled sample set.
pub fn detection_accuracy(net: &PolicyNet, samples: &[DdosSample]) -> f32 {
    let (x, y) = to_matrix(samples);
    accuracy(net, &x, &y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_separates_attacks_from_benign() {
        let train = generate_dataset(600, 1);
        let test = generate_dataset(200, 2);
        let net = train_detector(&train, 1);
        let acc = detection_accuracy(&net, &test);
        assert!(acc > 0.95, "detection accuracy {acc}");
    }

    #[test]
    fn detector_flags_syn_floods_specifically() {
        let train = generate_dataset(600, 3);
        let net = train_detector(&train, 3);
        for seed in 0..20 {
            let w = FlowWindow::generate_seeded(FlowKind::SynFlood, 1000 + seed);
            let f = DdosObservation::new(w).features();
            assert_eq!(net.act(&f), ATTACK, "SYN flood {seed} missed");
        }
    }

    #[test]
    fn detector_passes_benign_http() {
        let train = generate_dataset(600, 4);
        let net = train_detector(&train, 4);
        let mut correct = 0;
        for seed in 0..20 {
            let w = FlowWindow::generate_seeded(FlowKind::BenignHttp, 2000 + seed);
            let f = DdosObservation::new(w).features();
            if net.act(&f) == BENIGN {
                correct += 1;
            }
        }
        assert!(correct >= 18, "benign false positives: {}", 20 - correct);
    }

    #[test]
    fn dataset_is_roughly_balanced() {
        let ds = generate_dataset(600, 5);
        let attacks = ds.iter().filter(|s| s.label == ATTACK).count();
        let frac = attacks as f32 / ds.len() as f32;
        assert!((0.4..=0.6).contains(&frac), "attack fraction {frac}");
    }
}
