//! The congestion-control controllers (Aurora stand-ins).
//!
//! Two variants reproduce the paper's Fig. 10 debugging arc:
//!
//! * [`CcVariant::Original`] — 10-MI history, no average-latency feature,
//!   cloned from a teacher with a **distorted latency perception**: it
//!   reacts to the instantaneous last-step latency gradient, so queueing
//!   noise triggers aggressive rate cuts and the controller oscillates
//!   well below capacity.
//! * [`CcVariant::Debugged`] — 15-MI history plus a window-average latency
//!   feature, cloned from a corrected teacher that tracks smoothed latency
//!   ratios and probes gently; it holds throughput near link capacity.

use crate::bc::{fit_bc, BcConfig};
use crate::policy::PolicyNet;
use agua_nn::Matrix;
use cc_env::{
    CapacityProcess, CcObservation, CcSimulator, LinkConfig, LinkPattern, ACTIONS, RATE_MULTIPLIERS,
};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Embedding width of the CC controller.
pub const CC_EMB_DIM: usize = 48;

/// Which controller build to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcVariant {
    /// The buggy original (10-MI history, instantaneous-gradient teacher).
    Original,
    /// The debugged version (15-MI history + average-latency feature,
    /// smoothed teacher, trained with a lower learning rate and a higher
    /// entropy bonus, per §5.2.3).
    Debugged,
}

impl CcVariant {
    /// Observation history length in MIs.
    pub fn history(self) -> usize {
        match self {
            CcVariant::Original => 10,
            CcVariant::Debugged => 15,
        }
    }

    /// Whether the window-average latency feature is appended.
    pub fn with_avg_latency(self) -> bool {
        matches!(self, CcVariant::Debugged)
    }

    /// Input feature dimension.
    pub fn input_dim(self) -> usize {
        CcObservation::feature_dim(self.history(), self.with_avg_latency())
    }

    /// Behaviour-cloning learning rate (the debugging fix lowers it from
    /// 1e-4 to 7.5e-5 in the paper; the same ratio is applied here on top
    /// of our Adam base rate).
    pub fn bc_lr(self) -> f32 {
        match self {
            CcVariant::Original => 4e-3,
            CcVariant::Debugged => 3e-3,
        }
    }

    /// Teacher action for an observation under this variant's perception.
    pub fn teacher(self, obs: &CcObservation) -> usize {
        match self {
            CcVariant::Original => buggy_teacher(obs),
            CcVariant::Debugged => corrected_teacher(obs),
        }
    }
}

/// Creates an untrained CC policy of the given variant.
pub fn make_controller(variant: CcVariant, seed: u64) -> PolicyNet {
    PolicyNet::new_seeded(seed, variant.input_dim(), 96, CC_EMB_DIM, ACTIONS)
}

/// Index of the multiplier closest to 1.0 (hold).
pub const HOLD: usize = 4;

/// The original controller's teacher: a latency/loss-reactive policy with
/// a **distorted latency perception** — it looks only at the last-step
/// latency gradient, so a single noisy MI triggers a deep rate cut.
pub fn buggy_teacher(obs: &CcObservation) -> usize {
    let k = obs.history_len();
    let lat = &obs.latency_ms;
    let min_lat = lat.iter().cloned().fold(f32::MAX, f32::min).max(1.0);
    // "Instantaneous" perception: the slope of just the last three
    // samples, normalized by the window minimum — noisy and myopic
    // compared to the corrected teacher's whole-window averages.
    let inst_gradient = (lat[k - 1] - lat[k - 3]) / (2.0 * min_lat);
    let ratio = lat[k - 1] / min_lat;
    let loss = obs.loss_rate[k - 1];

    // Continuous congestion score dominated by the *instantaneous*
    // gradient — the distortion Agua's Fig. 9/10 analysis exposes. The
    // desired multiplier is a smooth function of the score, so the
    // decision boundaries are diagonal in raw-feature space (ratios and
    // differences normalized by a window minimum), which axis-aligned
    // surrogates approximate poorly.
    let congestion = 6.0 * inst_gradient.max(0.0) + 0.6 * (ratio - 1.0).max(0.0) + 8.0 * loss
        - 1.5 * (-inst_gradient).max(0.0);
    let desired = (1.15 - congestion).clamp(0.45, 1.55);
    nearest_multiplier(desired)
}

/// Index of the multiplier closest to `desired` (log-scale distance).
pub fn nearest_multiplier(desired: f32) -> usize {
    let mut best = 0;
    let mut best_d = f32::MAX;
    for (i, &m) in RATE_MULTIPLIERS.iter().enumerate() {
        let d = (m.ln() - desired.ln()).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// The corrected teacher: smoothed latency ratios over the whole window
/// and gentle probing.
pub fn corrected_teacher(obs: &CcObservation) -> usize {
    let k = obs.history_len();
    let lat = &obs.latency_ms;
    let min_lat = lat.iter().cloned().fold(f32::MAX, f32::min).max(1.0);
    let avg = lat.iter().sum::<f32>() / k as f32;
    let recent = (lat[k - 1] + lat[k - 2] + lat[k - 3]) / 3.0;
    let avg_ratio = avg / min_lat;
    let recent_ratio = recent / min_lat;
    let loss: f32 = obs.loss_rate.iter().rev().take(3).sum::<f32>() / 3.0;
    // If latency is already falling the queue is draining — cutting again
    // would only undershoot.
    let draining = lat[k - 1] < lat[k - 2] - 0.5;

    // Smoothed congestion score over the whole window, with a mild
    // response curve and a drain-aware hold.
    let congestion =
        0.9 * (recent_ratio - 1.05).max(0.0) + 0.3 * (avg_ratio - 1.05).max(0.0) + 4.0 * loss;
    // Loss-free congestion never warrants more than a gentle 0.9× cut;
    // deeper cuts are reserved for actual loss.
    let floor = if loss > 0.03 { 0.6 } else { 0.87 };
    let desired = if draining && loss < 0.02 && recent_ratio > 1.05 {
        1.0 // hold while the queue drains; cutting again would undershoot
    } else {
        (1.10 - congestion).clamp(floor, 1.2)
    };
    nearest_multiplier(desired)
}

/// One labelled CC sample.
#[derive(Debug, Clone)]
pub struct CcSample {
    /// The observation at decision time.
    pub observation: CcObservation,
    /// The teacher's action.
    pub action: usize,
}

/// Range of bottleneck capacities spanned during data collection, Mbps.
pub const CAPACITY_RANGE_MBPS: (f32, f32) = (2.0, 16.0);

/// Range of base propagation RTTs spanned during data collection, ms.
/// The teachers act on latency *ratios*, so their behaviour is RTT-scale
/// invariant — a property axis-aligned feature thresholds cannot express
/// once the RTT varies continuously across paths.
pub const RTT_RANGE_MS: (f32, f32) = (15.0, 120.0);

/// Samples a random link scenario: a pattern shape around a random
/// nominal capacity, with a random base RTT.
pub fn sample_scenario(index: usize, rng: &mut StdRng) -> (LinkPattern, LinkConfig) {
    let nominal = rng.random_range(CAPACITY_RANGE_MBPS.0..CAPACITY_RANGE_MBPS.1);
    let rtt = rng.random_range(RTT_RANGE_MS.0..RTT_RANGE_MS.1);
    let patterns = training_patterns(nominal);
    let pattern = patterns[index % patterns.len()];
    let config = LinkConfig { base_rtt_ms: rtt, ..LinkConfig::with_capacity(nominal) };
    (pattern, config)
}

/// Link patterns used to cover the state space during data collection.
pub fn training_patterns(nominal: f32) -> Vec<LinkPattern> {
    vec![
        LinkPattern::Stable { mbps: nominal },
        LinkPattern::StepChange { high: nominal, low: nominal * 0.4, period_s: 4.0 },
        LinkPattern::CrossTraffic { mbps: nominal, cross_fraction: 0.5, on_s: 3.0, off_s: 4.0 },
        LinkPattern::Volatile { mbps: nominal, sigma: nominal * 0.15 },
    ]
}

/// Rolls the variant's teacher (with ε exploration) over the training
/// patterns, labelling every visited state.
pub fn collect_dataset(variant: CcVariant, mis_per_pattern: usize, seed: u64) -> Vec<CcSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    const SCENARIOS: usize = 12;
    for i in 0..SCENARIOS {
        let (pattern, config) = sample_scenario(i, &mut rng);
        let cap = CapacityProcess::generate(pattern, mis_per_pattern, &mut rng);
        let initial = rng.random_range(0.3..1.0) * config.nominal_mbps;
        let mut sim = CcSimulator::with_history(cap, config, initial, variant.history());
        // Warm the history up.
        for _ in 0..variant.history().min(sim.mis_left()) {
            sim.step_at_current_rate();
        }
        while !sim.done() {
            let obs = sim.observation();
            let action = variant.teacher(&obs);
            samples.push(CcSample { observation: obs, action });
            let play = if rng.random_bool(0.15) { rng.random_range(0..ACTIONS) } else { action };
            sim.step(play);
        }
    }
    samples
}

/// Stacks CC samples into features and labels under the variant's
/// feature-set configuration.
pub fn to_matrix(samples: &[CcSample], variant: CcVariant) -> (Matrix, Vec<usize>) {
    let rows: Vec<Vec<f32>> =
        samples.iter().map(|s| s.observation.features(variant.with_avg_latency())).collect();
    let labels = samples.iter().map(|s| s.action).collect();
    (Matrix::from_rows(&rows), labels)
}

/// Rolls an already-trained policy (with light ε exploration) and labels
/// every visited state with the variant's teacher — the DAgger data-
/// aggregation step that keeps the clone faithful on its *own* state
/// distribution.
pub fn collect_policy_dataset(
    net: &PolicyNet,
    variant: CcVariant,
    mis_per_pattern: usize,
    seed: u64,
) -> Vec<CcSample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    const SCENARIOS: usize = 12;
    for i in 0..SCENARIOS {
        let (pattern, config) = sample_scenario(i, &mut rng);
        let cap = CapacityProcess::generate(pattern, mis_per_pattern, &mut rng);
        let initial = rng.random_range(0.3..1.0) * config.nominal_mbps;
        let mut sim = CcSimulator::with_history(cap, config, initial, variant.history());
        for _ in 0..variant.history().min(sim.mis_left()) {
            sim.step_at_current_rate();
        }
        while !sim.done() {
            let obs = sim.observation();
            let action = variant.teacher(&obs);
            let play = if rng.random_bool(0.05) {
                rng.random_range(0..ACTIONS)
            } else {
                net.act(&obs.features(variant.with_avg_latency()))
            };
            samples.push(CcSample { observation: obs, action });
            sim.step(play);
        }
    }
    samples
}

/// Behaviour cloning with DAgger aggregation: clone the teacher, then
/// repeatedly roll the clone, relabel its states with the teacher, and
/// retrain on the union.
pub fn train_controller_dagger(
    variant: CcVariant,
    mis_per_pattern: usize,
    rounds: usize,
    seed: u64,
) -> PolicyNet {
    let mut samples = collect_dataset(variant, mis_per_pattern, seed);
    let mut net = train_controller(variant, &samples, seed);
    for round in 1..rounds {
        let extra = collect_policy_dataset(&net, variant, mis_per_pattern / 2, seed + round as u64);
        samples.extend(extra);
        net = train_controller(variant, &samples, seed);
    }
    net
}

/// Trains a CC controller of the given variant by behaviour cloning.
pub fn train_controller(variant: CcVariant, samples: &[CcSample], seed: u64) -> PolicyNet {
    let (x, y) = to_matrix(samples, variant);
    let mut net = make_controller(variant, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCC);
    fit_bc(&mut net, &x, &y, BcConfig { epochs: 50, batch: 128, lr: variant.bc_lr() }, &mut rng);
    net
}

/// Rolls a trained controller on a link pattern; returns per-MI
/// `(delivered_mbps, capacity_mbps)` pairs (the Fig. 10 time series).
pub fn rollout_throughput(
    net: &PolicyNet,
    variant: CcVariant,
    pattern: LinkPattern,
    mis: usize,
    seed: u64,
) -> Vec<(f32, f32)> {
    let cap = CapacityProcess::generate_seeded(pattern, mis, seed);
    let mut sim = CcSimulator::with_history(cap, LinkConfig::default(), 2.0, variant.history());
    for _ in 0..variant.history().min(sim.mis_left()) {
        sim.step_at_current_rate();
    }
    let mut out = Vec::new();
    while !sim.done() {
        let capacity = sim.current_capacity();
        let f = sim.observation().features(variant.with_avg_latency());
        let a = net.act(&f);
        let stats = sim.step(a);
        out.push((stats.delivered_mbps, capacity));
    }
    out
}

/// Utilization summary of a rollout: (mean delivered/capacity, coefficient
/// of variation of delivered throughput).
pub fn utilization_stats(series: &[(f32, f32)]) -> (f32, f32) {
    let n = series.len().max(1) as f32;
    let util: f32 = series.iter().map(|(d, c)| d / c.max(0.05)).sum::<f32>() / n;
    let mean_d: f32 = series.iter().map(|(d, _)| d).sum::<f32>() / n;
    let var: f32 = series.iter().map(|(d, _)| (d - mean_d) * (d - mean_d)).sum::<f32>() / n;
    (util, var.sqrt() / mean_d.max(1e-6))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_teacher(variant: CcVariant, pattern: LinkPattern, seed: u64) -> Vec<(f32, f32)> {
        let cap = CapacityProcess::generate_seeded(pattern, 600, seed);
        let mut sim = CcSimulator::with_history(cap, LinkConfig::default(), 2.0, variant.history());
        for _ in 0..variant.history() {
            sim.step_at_current_rate();
        }
        let mut out = Vec::new();
        while !sim.done() {
            let capacity = sim.current_capacity();
            let a = variant.teacher(&sim.observation());
            let stats = sim.step(a);
            out.push((stats.delivered_mbps, capacity));
        }
        out
    }

    #[test]
    fn corrected_teacher_reaches_high_utilization_on_stable_link() {
        let series = run_teacher(CcVariant::Debugged, LinkPattern::Stable { mbps: 8.0 }, 1);
        let (util, cv) = utilization_stats(&series[200..]);
        assert!(util > 0.8, "steady-state utilization {util}");
        assert!(cv < 0.15, "steady-state variation {cv}");
    }

    #[test]
    fn buggy_teacher_oscillates_more_than_corrected() {
        let buggy = run_teacher(CcVariant::Original, LinkPattern::Stable { mbps: 8.0 }, 2);
        let fixed = run_teacher(CcVariant::Debugged, LinkPattern::Stable { mbps: 8.0 }, 2);
        let (_, cv_buggy) = utilization_stats(&buggy[200..]);
        let (util_buggy, _) = utilization_stats(&buggy[200..]);
        let (util_fixed, cv_fixed) = utilization_stats(&fixed[200..]);
        assert!(cv_buggy > 1.5 * cv_fixed, "buggy cv {cv_buggy} must exceed fixed cv {cv_fixed}");
        assert!(util_fixed > util_buggy, "fixed {util_fixed} vs buggy {util_buggy}");
    }

    #[test]
    fn teachers_back_off_under_sustained_loss() {
        let mut obs = CcObservation {
            send_mbps: vec![16.0; 10],
            delivered_mbps: vec![8.0; 10],
            latency_ms: vec![280.0; 10],
            loss_rate: vec![0.3; 10],
        };
        assert_eq!(buggy_teacher(&obs), 0);
        obs.send_mbps = vec![16.0; 15];
        obs.delivered_mbps = vec![8.0; 15];
        obs.latency_ms = vec![280.0; 15];
        obs.loss_rate = vec![0.3; 15];
        let a = corrected_teacher(&obs);
        assert!(a <= 2, "corrected teacher must cut under loss: {a}");
    }

    #[test]
    fn buggy_teacher_overreacts_to_one_noisy_latency_sample() {
        // Flat low latency except a single noisy uptick at the end.
        let mut lat = vec![40.0; 10];
        lat[9] = 44.5; // +11% — one noisy RTT sample
        let obs = CcObservation {
            send_mbps: vec![4.0; 10],
            delivered_mbps: vec![4.0; 10],
            latency_ms: lat.clone(),
            loss_rate: vec![0.0; 10],
        };
        assert!(
            buggy_teacher(&obs) < HOLD,
            "buggy teacher must cut on noise: {}",
            buggy_teacher(&obs)
        );

        let obs15 = CcObservation {
            send_mbps: vec![4.0; 15],
            delivered_mbps: vec![4.0; 15],
            latency_ms: {
                let mut l = vec![40.0; 15];
                l[14] = 44.5;
                l
            },
            loss_rate: vec![0.0; 15],
        };
        let a = corrected_teacher(&obs15);
        assert!(a >= HOLD, "corrected teacher must not panic on noise: {a}");
    }

    #[test]
    fn dataset_covers_multiple_actions() {
        let samples = collect_dataset(CcVariant::Original, 400, 5);
        assert!(samples.len() > 1000);
        let mut seen = [false; ACTIONS];
        for s in &samples {
            seen[s.action] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() >= 3, "{seen:?}");
    }

    #[test]
    fn cloned_controller_tracks_its_teacher() {
        let samples = collect_dataset(CcVariant::Original, 500, 6);
        let net = train_controller(CcVariant::Original, &samples, 6);
        let held = collect_dataset(CcVariant::Original, 150, 77);
        let (x, y) = to_matrix(&held, CcVariant::Original);
        let acc = crate::bc::accuracy(&net, &x, &y);
        assert!(acc > 0.7, "held-out imitation accuracy {acc}");
    }
}
