//! # agua-controllers — the learning-enabled controllers Agua explains
//!
//! The paper explains three deployed deep-learning controllers: the Gelato
//! ABR policy, the Aurora congestion-control policy, and the LUCID DDoS
//! detector. This crate reconstructs all three as small MLP policies over
//! the corresponding `*-env` simulators:
//!
//! * [`policy::PolicyNet`] — a shared network shape exposing the
//!   *embedding network* `h(x)` (penultimate activations) that Agua's
//!   concept mapping function consumes;
//! * [`bc`] — behaviour-cloning training against heuristic *teachers*
//!   (an MPC-style ABR planner, latency/loss-reactive CC policies, and
//!   ground-truth DDoS labels), yielding genuine neural controllers whose
//!   embeddings encode the temporal patterns the paper's concepts name;
//! * [`reinforce`] — REINFORCE policy-gradient fine-tuning on QoE, used by
//!   the Fig. 8 retraining experiments;
//! * [`abr`], [`cc`], [`ddos`] — per-application controllers, teachers,
//!   dataset collection, and rollout helpers.
//!
//! The CC module intentionally ships **two** controllers: the *original*
//! one with a distorted latency perception (it over-reacts to
//! instantaneous latency gradients) and the *debugged* one with a longer
//! history and an average-latency feature — the before/after pair of the
//! paper's Fig. 10 debugging story.

#![forbid(unsafe_code)]

pub mod abr;
pub mod bc;
pub mod cc;
pub mod ddos;
pub mod policy;
pub mod reinforce;

pub use policy::PolicyNet;
