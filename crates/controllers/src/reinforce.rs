//! REINFORCE policy-gradient updates with an optional entropy bonus.
//!
//! Used by the ABR retraining experiments (paper Fig. 8) and available
//! for the debugged CC controller, whose fix "increases entropy" during
//! retraining (paper §5.2.3).

use crate::policy::PolicyNet;
use agua_nn::{
    entropy_of_rows, softmax_cross_entropy_weighted, softmax_rows, Adam, Matrix, Optimizer,
};

/// Policy-gradient step configuration.
#[derive(Debug, Clone, Copy)]
pub struct PgConfig {
    /// Entropy-bonus coefficient β (0 disables the bonus).
    pub entropy_bonus: f32,
}

impl Default for PgConfig {
    fn default() -> Self {
        Self { entropy_bonus: 0.01 }
    }
}

/// Applies one REINFORCE update:
/// `∇ E[−A·log π(a|x) − β·H(π(·|x))]` over the batch. Returns the
/// surrogate loss value.
///
/// Advantages should already be baselined (e.g. return minus batch mean);
/// the function damps only large-scale advantage batches (divide by
/// `max(std, 1)`).
pub fn pg_step(
    net: &mut PolicyNet,
    features: &Matrix,
    actions: &[usize],
    advantages: &[f32],
    config: PgConfig,
    opt: &mut Adam,
) -> f32 {
    assert_eq!(features.rows(), actions.len(), "one action per row");
    assert_eq!(features.rows(), advantages.len(), "one advantage per row");
    let n = features.rows();
    assert!(n > 0, "empty policy-gradient batch");

    // Center the advantages, and shrink them only when their scale is
    // large: dividing by max(std, 1) tames high-variance batches without
    // amplifying near-converged ones into a noise-driven random walk.
    let mean = advantages.iter().sum::<f32>() / n as f32;
    let var = advantages.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / n as f32;
    let std = var.sqrt().max(1.0);
    let norm_adv: Vec<f32> = advantages.iter().map(|a| (a - mean) / std).collect();

    net.zero_grad();
    let logits = net.forward_train(features);
    let (pg_loss, mut grad) = softmax_cross_entropy_weighted(&logits, actions, &norm_adv);

    let mut loss = pg_loss;
    if config.entropy_bonus > 0.0 {
        // Loss −β·H; dH/dz_j = −p_j(ln p_j + H) per row.
        let probs = softmax_rows(&logits);
        let entropies = entropy_of_rows(&probs);
        let beta = config.entropy_bonus / n as f32;
        for r in 0..n {
            loss -= config.entropy_bonus * entropies[r] / n as f32;
            for c in 0..net.n_actions {
                let p = probs.get(r, c).max(1e-12);
                let dh = -p * (p.ln() + entropies[r]);
                grad.set(r, c, grad.get(r, c) - beta * dh);
            }
        }
    }

    net.backward(&grad);
    opt.step(&mut net.mlp.params_mut());
    loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// A 2-armed bandit whose reward depends on the context sign: action 0
    /// pays on negative contexts, action 1 on positive ones.
    #[test]
    fn reinforce_solves_a_contextual_bandit() {
        let mut net = PolicyNet::new_seeded(2, 2, 16, 8, 2);
        let mut opt = Adam::new(5e-3);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..300 {
            let mut rows = Vec::new();
            let mut actions = Vec::new();
            let mut advantages = Vec::new();
            for _ in 0..64 {
                let ctx: f32 = rng.random_range(-1.0..1.0);
                let x = vec![ctx, ctx * 0.5];
                let a = net.sample_action(&x, &mut rng);
                let reward = if (ctx > 0.0) == (a == 1) { 1.0 } else { 0.0 };
                rows.push(x);
                actions.push(a);
                advantages.push(reward);
            }
            let features = Matrix::from_rows(&rows);
            pg_step(&mut net, &features, &actions, &advantages, PgConfig::default(), &mut opt);
        }
        // Greedy policy must now pick the paying arm.
        assert_eq!(net.act(&[0.8, 0.4]), 1);
        assert_eq!(net.act(&[-0.8, -0.4]), 0);
    }

    #[test]
    fn entropy_bonus_pushes_toward_uniform_when_advantages_are_flat() {
        // With zero advantages the policy-gradient term vanishes and only
        // the entropy bonus acts: repeated steps must raise the policy
        // entropy of a moderately peaked network.
        let mut net = PolicyNet::new_seeded(9, 1, 8, 8, 3);
        let mut opt = Adam::new(5e-3);
        let x = Matrix::from_rows(&vec![vec![1.0]; 16]);
        let actions = vec![0usize; 16];
        let adv = vec![0.0f32; 16];
        let entropy_of = |net: &PolicyNet| {
            let p = net.probs(&Matrix::row_vector(&[1.0]));
            entropy_of_rows(&p)[0]
        };
        let before = entropy_of(&net);
        for _ in 0..100 {
            pg_step(&mut net, &x, &actions, &adv, PgConfig { entropy_bonus: 1.0 }, &mut opt);
        }
        let after = entropy_of(&net);
        assert!(
            after > before || after > 0.99 * (3.0f32).ln(),
            "entropy must rise toward ln(3): before {before}, after {after}"
        );
    }

    #[test]
    #[should_panic(expected = "one advantage per row")]
    fn mismatched_advantages_panic() {
        let mut net = PolicyNet::new_seeded(1, 2, 4, 4, 2);
        let mut opt = Adam::new(1e-3);
        let _ =
            pg_step(&mut net, &Matrix::zeros(2, 2), &[0, 1], &[1.0], PgConfig::default(), &mut opt);
    }
}
