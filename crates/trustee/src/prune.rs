//! Weakest-link (cost-complexity) pruning.
//!
//! Trustee presents both the full distilled tree and a pruned "top-k"
//! view. Pruning repeatedly collapses the *effective* split whose removal
//! costs the least training purity — the split with the smallest
//! mass-weighted Gini decrease among splits whose children are both
//! leaves — until the tree is within the requested leaf budget.

use crate::tree::{DecisionTree, Node};

/// Returns a copy of `tree` pruned to at most `max_leaves` leaves.
///
/// # Panics
/// Panics if `max_leaves == 0`.
pub fn prune_to_leaves(tree: &DecisionTree, max_leaves: usize) -> DecisionTree {
    assert!(max_leaves > 0, "a tree needs at least one leaf");
    let mut pruned = tree.clone();
    while reachable_leaves(&pruned, 0) > max_leaves {
        let Some(victim) = weakest_collapsible_split(&pruned, 0) else {
            break; // only the root remains
        };
        collapse(&mut pruned, victim);
    }
    compact(&pruned)
}

/// Leaves reachable from `node` (collapsed subtrees leave garbage in the
/// arena, so the raw leaf count over-reports).
fn reachable_leaves(tree: &DecisionTree, node: usize) -> usize {
    match &tree.nodes[node] {
        Node::Leaf { .. } => 1,
        Node::Split { left, right, .. } => {
            reachable_leaves(tree, *left) + reachable_leaves(tree, *right)
        }
    }
}

/// Finds the *reachable* collapsible split (both children are leaves) with
/// the lowest goodness.
fn weakest_collapsible_split(tree: &DecisionTree, node: usize) -> Option<usize> {
    match &tree.nodes[node] {
        Node::Leaf { .. } => None,
        Node::Split { left, right, goodness, .. } => {
            let candidates =
                [weakest_collapsible_split(tree, *left), weakest_collapsible_split(tree, *right)];
            let mut best: Option<(usize, f32)> = None;
            for idx in candidates.into_iter().flatten() {
                if let Node::Split { goodness: g, .. } = &tree.nodes[idx] {
                    if best.is_none_or(|(_, bg)| *g < bg) {
                        best = Some((idx, *g));
                    }
                }
            }
            let both_leaves = matches!(tree.nodes[*left], Node::Leaf { .. })
                && matches!(tree.nodes[*right], Node::Leaf { .. });
            if both_leaves && best.is_none_or(|(_, bg)| *goodness < bg) {
                best = Some((node, *goodness));
            }
            best.map(|(idx, _)| idx)
        }
    }
}

/// Replaces the split at `idx` with a majority leaf. Children become
/// unreachable; [`compact`] garbage-collects them.
fn collapse(tree: &mut DecisionTree, idx: usize) {
    if let Node::Split { majority, samples, .. } = tree.nodes[idx] {
        tree.nodes[idx] = Node::Leaf { class: majority, samples };
    }
}

/// Rebuilds the arena containing only nodes reachable from the root.
fn compact(tree: &DecisionTree) -> DecisionTree {
    let mut out =
        DecisionTree { nodes: Vec::new(), n_classes: tree.n_classes, n_features: tree.n_features };
    copy_subtree(tree, 0, &mut out);
    out
}

fn copy_subtree(src: &DecisionTree, node: usize, dst: &mut DecisionTree) -> usize {
    match &src.nodes[node] {
        Node::Leaf { class, samples } => {
            dst.nodes.push(Node::Leaf { class: *class, samples: *samples });
            dst.nodes.len() - 1
        }
        Node::Split { feature, threshold, left, right, majority, samples, goodness } => {
            let me = dst.nodes.len();
            dst.nodes.push(Node::Leaf { class: *majority, samples: *samples });
            let l = copy_subtree(src, *left, dst);
            let r = copy_subtree(src, *right, dst);
            dst.nodes[me] = Node::Split {
                feature: *feature,
                threshold: *threshold,
                left: l,
                right: r,
                majority: *majority,
                samples: *samples,
                goodness: *goodness,
            };
            me
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeConfig;

    /// Staircase data: label increases every 10 units of x; deeper splits
    /// matter progressively less because classes 2 and 3 are rare.
    fn staircase() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let sizes = [60usize, 40, 8, 4];
        for (class, &size) in sizes.iter().enumerate() {
            for i in 0..size {
                xs.push(vec![class as f32 * 10.0 + (i % 10) as f32]);
                ys.push(class);
            }
        }
        (xs, ys)
    }

    #[test]
    fn pruning_reduces_leaves_to_budget() {
        let (xs, ys) = staircase();
        let tree = DecisionTree::fit(&xs, &ys, 4, TreeConfig::default());
        assert!(tree.leaf_count() >= 4);
        let pruned = prune_to_leaves(&tree, 2);
        assert!(pruned.leaf_count() <= 2);
    }

    #[test]
    fn pruning_keeps_the_dominant_structure() {
        let (xs, ys) = staircase();
        let tree = DecisionTree::fit(&xs, &ys, 4, TreeConfig::default());
        let pruned = prune_to_leaves(&tree, 2);
        // The dominant class-0 vs class-1 boundary must survive; the rare
        // class 2/3 distinctions are sacrificed first.
        assert_eq!(pruned.predict(&[5.0]), 0);
        assert_eq!(pruned.predict(&[15.0]), 1);
    }

    #[test]
    fn pruned_fidelity_degrades_gracefully() {
        let (xs, ys) = staircase();
        let tree = DecisionTree::fit(&xs, &ys, 4, TreeConfig::default());
        let full_fid = tree.fidelity(&xs, &ys);
        let pruned = prune_to_leaves(&tree, 3);
        let pruned_fid = pruned.fidelity(&xs, &ys);
        assert!(full_fid >= pruned_fid);
        // Dropping only the 4-sample class costs ≤ 4/112 fidelity.
        assert!(pruned_fid > full_fid - 0.08, "pruned {pruned_fid} vs full {full_fid}");
    }

    #[test]
    fn pruning_below_one_leaf_is_rejected() {
        let (xs, ys) = staircase();
        let tree = DecisionTree::fit(&xs, &ys, 4, TreeConfig::default());
        let single = prune_to_leaves(&tree, 1);
        assert_eq!(single.node_count(), 1);
    }

    #[test]
    fn compaction_removes_unreachable_nodes() {
        let (xs, ys) = staircase();
        let tree = DecisionTree::fit(&xs, &ys, 4, TreeConfig::default());
        let pruned = prune_to_leaves(&tree, 2);
        // node_count = leaves + internal; with ≤2 leaves ⇒ ≤3 nodes.
        assert!(pruned.node_count() <= 3, "arena kept garbage: {}", pruned.node_count());
    }

    #[test]
    fn pruning_is_idempotent_at_budget() {
        let (xs, ys) = staircase();
        let tree = DecisionTree::fit(&xs, &ys, 4, TreeConfig::default());
        let once = prune_to_leaves(&tree, 3);
        let twice = prune_to_leaves(&once, 3);
        assert_eq!(once.node_count(), twice.node_count());
    }
}
