//! Trust reports: full-vs-pruned fidelity/complexity summaries and
//! decision-path explanations.

use crate::prune::prune_to_leaves;
use crate::tree::{DecisionTree, Node, TreeConfig};
use serde::{Deserialize, Serialize};

/// One step of a root-to-leaf decision path — the feature-level
/// explanation Trustee presents (paper Fig. 1c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionStep {
    /// Feature index tested.
    pub feature: usize,
    /// Human-readable feature name.
    pub feature_name: String,
    /// Split threshold.
    pub threshold: f32,
    /// Sample's value of the feature.
    pub value: f32,
    /// Whether the sample satisfied `value <= threshold`.
    pub went_left: bool,
}

impl DecisionStep {
    /// Renders the step as "name <= thr" / "name > thr".
    pub fn render(&self) -> String {
        if self.went_left {
            format!("{} <= {:.3}", self.feature_name, self.threshold)
        } else {
            format!("{} > {:.3}", self.feature_name, self.threshold)
        }
    }
}

/// Trustee's distillation product: the full tree, the pruned view, and
/// their fidelity/complexity statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrusteeReport {
    /// The fully grown surrogate tree.
    pub full: DecisionTree,
    /// The pruned, presentation-sized tree.
    pub pruned: DecisionTree,
    /// Fidelity of the full tree on the held-out set.
    pub full_fidelity: f32,
    /// Fidelity of the pruned tree on the held-out set.
    pub pruned_fidelity: f32,
    /// Names of the input features, used to render decision paths.
    pub feature_names: Vec<String>,
}

impl TrusteeReport {
    /// Distills a controller (represented by its input/output pairs) into
    /// a report: trains on `(train_x, train_y)`, prunes to `max_leaves`,
    /// and evaluates fidelity on `(test_x, test_y)`.
    #[allow(clippy::too_many_arguments)]
    pub fn distill(
        train_x: &[Vec<f32>],
        train_y: &[usize],
        test_x: &[Vec<f32>],
        test_y: &[usize],
        n_classes: usize,
        config: TreeConfig,
        max_leaves: usize,
        feature_names: Vec<String>,
    ) -> Self {
        let full = DecisionTree::fit(train_x, train_y, n_classes, config);
        let pruned = prune_to_leaves(&full, max_leaves);
        let full_fidelity = full.fidelity(test_x, test_y);
        let pruned_fidelity = pruned.fidelity(test_x, test_y);
        assert!(
            feature_names.is_empty() || feature_names.len() == full.n_features,
            "feature names must match the feature dimension"
        );
        Self { full, pruned, full_fidelity, pruned_fidelity, feature_names }
    }

    /// The decision path the pruned tree takes for `x` — Trustee's
    /// explanation for a single input.
    pub fn decision_path(&self, x: &[f32]) -> Vec<DecisionStep> {
        Self::path_in(&self.pruned, x, &self.feature_names)
    }

    /// The decision path in the full tree.
    pub fn decision_path_full(&self, x: &[f32]) -> Vec<DecisionStep> {
        Self::path_in(&self.full, x, &self.feature_names)
    }

    fn path_in(tree: &DecisionTree, x: &[f32], names: &[String]) -> Vec<DecisionStep> {
        let mut steps = Vec::new();
        let mut node = 0usize;
        loop {
            match &tree.nodes[node] {
                Node::Leaf { .. } => return steps,
                Node::Split { feature, threshold, left, right, .. } => {
                    let went_left = x[*feature] <= *threshold;
                    steps.push(DecisionStep {
                        feature: *feature,
                        feature_name: names
                            .get(*feature)
                            .cloned()
                            .unwrap_or_else(|| format!("f{feature}")),
                        threshold: *threshold,
                        value: x[*feature],
                        went_left,
                    });
                    node = if went_left { *left } else { *right };
                }
            }
        }
    }

    /// The `top_n` most important features of the full tree by Gini
    /// importance, as `(name, importance)` pairs.
    pub fn top_features(&self, top_n: usize) -> Vec<(String, f32)> {
        let imp = self.full.feature_importance();
        let mut order: Vec<usize> = (0..imp.len()).collect();
        order.sort_by(|&a, &b| imp[b].partial_cmp(&imp[a]).expect("finite importance"));
        order
            .into_iter()
            .take(top_n)
            .map(|i| {
                (self.feature_names.get(i).cloned().unwrap_or_else(|| format!("f{i}")), imp[i])
            })
            .collect()
    }

    /// One-line complexity summary, as in the paper's Fig. 1 caption.
    pub fn complexity_summary(&self) -> String {
        format!(
            "full: {} nodes, depth {}; pruned: {} nodes, depth {}",
            self.full.node_count(),
            self.full.depth(),
            self.pruned.node_count(),
            self.pruned.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A controller whose decision depends on two thresholds.
    fn synth() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..300 {
            let a = (i % 30) as f32 / 30.0;
            let b = ((i * 7) % 30) as f32 / 30.0;
            let y = usize::from(a > 0.5) + usize::from(b > 0.7);
            xs.push(vec![a, b]);
            ys.push(y);
        }
        (xs, ys)
    }

    fn report() -> TrusteeReport {
        let (xs, ys) = synth();
        let (train_x, test_x) = xs.split_at(200);
        let (train_y, test_y) = ys.split_at(200);
        TrusteeReport::distill(
            train_x,
            train_y,
            test_x,
            test_y,
            3,
            TreeConfig::default(),
            4,
            vec!["alpha".into(), "beta".into()],
        )
    }

    #[test]
    fn full_tree_achieves_high_fidelity_on_axis_aligned_logic() {
        let r = report();
        assert!(r.full_fidelity > 0.95, "fidelity {}", r.full_fidelity);
    }

    #[test]
    fn pruned_tree_is_smaller() {
        let r = report();
        assert!(r.pruned.node_count() <= r.full.node_count());
        assert!(r.pruned.leaf_count() <= 4);
    }

    #[test]
    fn decision_path_names_features_and_is_consistent() {
        let r = report();
        let x = vec![0.9, 0.9];
        let path = r.decision_path(&x);
        assert!(!path.is_empty());
        for step in &path {
            assert!(step.feature_name == "alpha" || step.feature_name == "beta");
            assert_eq!(step.went_left, step.value <= step.threshold);
        }
        let rendered = path[0].render();
        assert!(rendered.contains("alpha") || rendered.contains("beta"));
    }

    #[test]
    fn full_path_is_at_least_as_long_as_pruned_path() {
        let r = report();
        let x = vec![0.2, 0.8];
        assert!(r.decision_path_full(&x).len() >= r.decision_path(&x).len());
    }

    #[test]
    fn complexity_summary_mentions_both_trees() {
        let s = report().complexity_summary();
        assert!(s.contains("full:") && s.contains("pruned:"));
    }

    #[test]
    fn top_features_name_the_decisive_inputs() {
        let r = report();
        let top = r.top_features(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].1 >= top[1].1);
        assert!(top[0].0 == "alpha" || top[0].0 == "beta");
    }
}
