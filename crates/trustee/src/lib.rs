//! # trustee — decision-tree surrogate explainer baseline
//!
//! A reimplementation of the surrogate mechanics of Trustee (Jacobs et
//! al., CCS '22), the feature-level baseline the paper compares Agua
//! against: distill an opaque controller into a CART decision tree over
//! its raw input features, optionally prune the tree for readability, and
//! explain individual decisions by their root-to-leaf path.
//!
//! The crate provides:
//!
//! * [`tree::DecisionTree`] — greedy Gini CART induction with depth and
//!   leaf-size limits;
//! * [`prune`] — weakest-link (cost-complexity) pruning to a target leaf
//!   count, Trustee's "top-k pruned" view;
//! * [`report::TrusteeReport`] — the full-vs-pruned fidelity/complexity
//!   summary the paper's Fig. 1 and Table 2 are drawn from, plus
//!   decision-path explanations for single inputs.

#![forbid(unsafe_code)]

pub mod prune;
pub mod report;
pub mod tree;

pub use report::{DecisionStep, TrusteeReport};
pub use tree::{DecisionTree, TreeConfig};
