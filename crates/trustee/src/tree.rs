//! CART decision-tree induction with Gini impurity.

use serde::{Deserialize, Serialize};

/// Tree-growth limits.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain.
    pub min_samples_leaf: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self { max_depth: 13, min_samples_split: 8, min_samples_leaf: 4 }
    }
}

/// Tree nodes stored in an arena; `0` is the root.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Node {
    /// Internal split: `x[feature] <= threshold` goes left.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold.
        threshold: f32,
        /// Left child index (condition true).
        left: usize,
        /// Right child index (condition false).
        right: usize,
        /// Majority class at this node (used when the subtree is pruned).
        majority: usize,
        /// Training samples that reached this node.
        samples: usize,
        /// Weighted impurity decrease of this split (for weakest-link
        /// pruning).
        goodness: f32,
    },
    /// Leaf predicting a class.
    Leaf {
        /// Predicted class.
        class: usize,
        /// Training samples that reached this leaf.
        samples: usize,
    },
}

/// A trained classification tree.
///
/// ```
/// use trustee::{DecisionTree, TreeConfig};
///
/// // label = whether x > 4.5
/// let xs: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
/// let ys: Vec<usize> = (0..10).map(|i| usize::from(i > 4)).collect();
/// let tree = DecisionTree::fit(&xs, &ys, 2, TreeConfig::default());
/// assert_eq!(tree.predict(&[1.0]), 0);
/// assert_eq!(tree.predict(&[8.0]), 1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    /// Node arena; index 0 is the root.
    pub nodes: Vec<Node>,
    /// Number of classes.
    pub n_classes: usize,
    /// Number of input features.
    pub n_features: usize,
}

impl DecisionTree {
    /// Fits a tree to `(features, labels)` under `config`.
    ///
    /// # Panics
    /// Panics on an empty dataset, ragged feature rows, or labels outside
    /// `0..n_classes`.
    pub fn fit(
        features: &[Vec<f32>],
        labels: &[usize],
        n_classes: usize,
        config: TreeConfig,
    ) -> Self {
        assert!(!features.is_empty(), "cannot fit a tree to an empty dataset");
        assert_eq!(features.len(), labels.len(), "one label per sample required");
        let n_features = features[0].len();
        assert!(features.iter().all(|f| f.len() == n_features), "ragged feature rows");
        assert!(labels.iter().all(|&l| l < n_classes), "label out of range");

        let mut tree = Self { nodes: Vec::new(), n_classes, n_features };
        let indices: Vec<usize> = (0..features.len()).collect();
        tree.build(features, labels, indices, 0, config);
        tree
    }

    fn build(
        &mut self,
        features: &[Vec<f32>],
        labels: &[usize],
        indices: Vec<usize>,
        depth: usize,
        config: TreeConfig,
    ) -> usize {
        let counts = class_counts(labels, &indices, self.n_classes);
        let majority = argmax(&counts);
        let node_impurity = gini(&counts, indices.len());

        let make_leaf = |tree: &mut Self| {
            tree.nodes.push(Node::Leaf { class: majority, samples: indices.len() });
            tree.nodes.len() - 1
        };

        if depth >= config.max_depth
            || indices.len() < config.min_samples_split
            || node_impurity == 0.0
        {
            return make_leaf(self);
        }

        let Some(split) = best_split(features, labels, &indices, self.n_classes, config) else {
            return make_leaf(self);
        };

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| features[i][split.feature] <= split.threshold);

        // Reserve the split slot before recursing so child indices are
        // known relative to it.
        let me = self.nodes.len();
        self.nodes.push(Node::Leaf { class: majority, samples: indices.len() });
        let samples = indices.len();
        let left = self.build(features, labels, left_idx, depth + 1, config);
        let right = self.build(features, labels, right_idx, depth + 1, config);
        self.nodes[me] = Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left,
            right,
            majority,
            samples,
            goodness: split.goodness,
        };
        me
    }

    /// Predicts the class of one sample.
    pub fn predict(&self, x: &[f32]) -> usize {
        assert_eq!(x.len(), self.n_features, "feature dimension mismatch");
        let mut node = 0;
        loop {
            match &self.nodes[node] {
                Node::Leaf { class, .. } => return *class,
                Node::Split { feature, threshold, left, right, .. } => {
                    node = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Fraction of samples on which the tree matches `labels` — the
    /// fidelity metric when labels are a controller's outputs (Eq. 11).
    pub fn fidelity(&self, features: &[Vec<f32>], labels: &[usize]) -> f32 {
        assert_eq!(features.len(), labels.len());
        let hits = features.iter().zip(labels).filter(|(x, &y)| self.predict(x) == y).count();
        hits as f32 / labels.len().max(1) as f32
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Leaf count.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// Maximum root-to-leaf depth (root = 0).
    pub fn depth(&self) -> usize {
        self.depth_of(0)
    }

    /// Gini feature importance: for each feature, the total mass-weighted
    /// impurity decrease of the splits testing it, normalized to sum to 1.
    /// The ranking Trustee's trust reports lead with.
    pub fn feature_importance(&self) -> Vec<f32> {
        let mut importance = vec![0.0f32; self.n_features];
        for node in &self.nodes {
            if let Node::Split { feature, goodness, .. } = node {
                importance[*feature] += goodness.max(0.0);
            }
        }
        let total: f32 = importance.iter().sum();
        if total > 0.0 {
            for v in &mut importance {
                *v /= total;
            }
        }
        importance
    }

    fn depth_of(&self, node: usize) -> usize {
        match &self.nodes[node] {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + self.depth_of(*left).max(self.depth_of(*right)),
        }
    }
}

struct SplitCandidate {
    feature: usize,
    threshold: f32,
    goodness: f32,
}

fn class_counts(labels: &[usize], indices: &[usize], n_classes: usize) -> Vec<usize> {
    let mut counts = vec![0usize; n_classes];
    for &i in indices {
        counts[labels[i]] += 1;
    }
    counts
}

fn argmax(counts: &[usize]) -> usize {
    let mut best = 0;
    for (i, &c) in counts.iter().enumerate().skip(1) {
        if c > counts[best] {
            best = i;
        }
    }
    best
}

fn gini(counts: &[usize], total: usize) -> f32 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f32;
    1.0 - counts.iter().map(|&c| (c as f32 / t).powi(2)).sum::<f32>()
}

/// Finds the (feature, threshold) with the greatest weighted Gini decrease.
fn best_split(
    features: &[Vec<f32>],
    labels: &[usize],
    indices: &[usize],
    n_classes: usize,
    config: TreeConfig,
) -> Option<SplitCandidate> {
    let n = indices.len();
    let parent_counts = class_counts(labels, indices, n_classes);
    let parent_gini = gini(&parent_counts, n);
    let n_features = features[indices[0]].len();

    let mut best: Option<SplitCandidate> = None;
    let mut order: Vec<usize> = indices.to_vec();

    for f in 0..n_features {
        order.sort_by(|&a, &b| {
            features[a][f].partial_cmp(&features[b][f]).expect("finite features")
        });
        let mut left_counts = vec![0usize; n_classes];
        let mut right_counts = parent_counts.clone();
        for k in 0..n - 1 {
            let i = order[k];
            left_counts[labels[i]] += 1;
            right_counts[labels[i]] -= 1;
            let v = features[i][f];
            let v_next = features[order[k + 1]][f];
            if v == v_next {
                continue; // no threshold separates equal values
            }
            let left_n = k + 1;
            let right_n = n - left_n;
            if left_n < config.min_samples_leaf || right_n < config.min_samples_leaf {
                continue;
            }
            let weighted = (left_n as f32 * gini(&left_counts, left_n)
                + right_n as f32 * gini(&right_counts, right_n))
                / n as f32;
            let decrease = parent_gini - weighted;
            // Goodness weighted by node mass: pruning removes the split
            // whose removal costs the least total purity. Zero-gain splits
            // are admitted (classic CART): interaction effects such as XOR
            // have no immediately-informative split, yet splitting lets
            // deeper levels separate the classes; the depth and leaf-size
            // limits bound the recursion.
            let goodness = decrease.max(0.0) * n as f32;
            if decrease > -1e-7 && best.as_ref().is_none_or(|b| goodness > b.goodness) {
                best = Some(SplitCandidate { feature: f, threshold: (v + v_next) * 0.5, goodness });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data() -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..10 {
                    xs.push(vec![a as f32, b as f32]);
                    ys.push((a ^ b) as usize);
                }
            }
        }
        (xs, ys)
    }

    #[test]
    fn fits_xor_exactly() {
        let (xs, ys) = xor_data();
        let tree = DecisionTree::fit(&xs, &ys, 2, TreeConfig::default());
        assert_eq!(tree.fidelity(&xs, &ys), 1.0);
        assert!(tree.depth() >= 2, "XOR needs at least two levels");
    }

    #[test]
    fn respects_max_depth() {
        let (xs, ys) = xor_data();
        let cfg = TreeConfig { max_depth: 1, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&xs, &ys, 2, cfg);
        assert!(tree.depth() <= 1);
        // Depth-1 tree cannot represent XOR.
        assert!(tree.fidelity(&xs, &ys) < 0.8);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
        let ys = vec![1, 1, 1];
        let tree = DecisionTree::fit(&xs, &ys, 2, TreeConfig::default());
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict(&[5.0]), 1);
    }

    #[test]
    fn axis_aligned_threshold_is_found() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..50 {
            let v = i as f32 / 10.0;
            xs.push(vec![v, 7.0]);
            ys.push(usize::from(v > 2.5));
        }
        let tree = DecisionTree::fit(&xs, &ys, 2, TreeConfig::default());
        assert_eq!(tree.fidelity(&xs, &ys), 1.0);
        // A single split suffices.
        assert_eq!(tree.leaf_count(), 2);
        match &tree.nodes[0] {
            Node::Split { feature, threshold, .. } => {
                assert_eq!(*feature, 0);
                assert!((threshold - 2.55).abs() < 0.1, "threshold {threshold}");
            }
            _ => panic!("root must split"),
        }
    }

    #[test]
    fn min_samples_leaf_is_respected_by_every_leaf() {
        // 1 positive among 50: the positive cannot be isolated into a
        // leaf smaller than 5 samples.
        let mut xs: Vec<Vec<f32>> = (0..50).map(|i| vec![i as f32]).collect();
        let mut ys = vec![0usize; 50];
        ys[49] = 1;
        xs[49] = vec![100.0];
        let cfg = TreeConfig { min_samples_leaf: 5, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&xs, &ys, 2, cfg);
        for node in &tree.nodes {
            if let Node::Leaf { samples, .. } = node {
                assert!(*samples >= 5, "leaf with {samples} < 5 samples");
            }
        }
        // The lone positive therefore cannot be perfectly separated.
        assert!(tree.fidelity(&xs, &ys) < 1.0);
    }

    #[test]
    fn multiclass_prediction_works() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for c in 0..4usize {
            for _ in 0..20 {
                xs.push(vec![c as f32, (3 - c) as f32]);
                ys.push(c);
            }
        }
        let tree = DecisionTree::fit(&xs, &ys, 4, TreeConfig::default());
        assert_eq!(tree.fidelity(&xs, &ys), 1.0);
        assert_eq!(tree.predict(&[2.0, 1.0]), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        let _ = DecisionTree::fit(&[vec![0.0]], &[3], 2, TreeConfig::default());
    }

    #[test]
    fn fidelity_counts_matches() {
        let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let ys = vec![0, 0, 1, 1];
        let tree = DecisionTree::fit(&xs, &ys, 2, TreeConfig::default());
        assert_eq!(tree.fidelity(&xs, &[0, 0, 1, 0]), 0.75);
    }

    #[test]
    fn feature_importance_ranks_the_used_feature() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..100 {
            let v = i as f32 / 10.0;
            xs.push(vec![v, (i % 7) as f32]); // feature 1 is noise
            ys.push(usize::from(v > 5.0));
        }
        let tree = DecisionTree::fit(&xs, &ys, 2, TreeConfig::default());
        let imp = tree.feature_importance();
        assert!((imp.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(imp[0] > 0.9, "decisive feature importance {imp:?}");
    }

    #[test]
    fn feature_importance_of_a_stump_is_zero_vector_normalized() {
        let tree = DecisionTree::fit(&[vec![1.0]], &[0], 2, TreeConfig::default());
        let imp = tree.feature_importance();
        assert_eq!(imp, vec![0.0]);
    }
}
