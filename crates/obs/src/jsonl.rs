//! The [`JsonlWriter`] subscriber: appends one JSON object per event to
//! a trace file (conventionally under `results/logs/*.jsonl`).
//!
//! Lines are buffered and flushed on [`JsonlWriter::flush`] or drop.
//! Kernel-dispatch events are skipped by default — a single training
//! run dispatches tens of thousands of kernels, which would drown the
//! stage/epoch trace — and can be enabled with
//! [`JsonlWriter::with_kernel_events`]; their aggregate counts are
//! always available through the `Metrics` subscriber.

use crate::event::AnyEvent;
use crate::subscriber::Subscriber;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Appends events as JSON Lines to a file.
#[derive(Debug)]
pub struct JsonlWriter {
    writer: Mutex<BufWriter<File>>,
    path: PathBuf,
    kernel_events: bool,
}

impl JsonlWriter {
    /// Creates (truncating) the trace file at `path`, creating parent
    /// directories as needed.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(&path)?;
        Ok(Self { writer: Mutex::new(BufWriter::new(file)), path, kernel_events: false })
    }

    /// Enables or disables per-dispatch kernel trace lines.
    pub fn with_kernel_events(mut self, enabled: bool) -> Self {
        self.kernel_events = enabled;
        self
    }

    /// Where the trace is being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) -> io::Result<()> {
        self.writer.lock().expect("jsonl mutex poisoned").flush()
    }
}

impl Subscriber for JsonlWriter {
    fn on_event(&self, event: &AnyEvent) {
        if matches!(event, AnyEvent::KernelDispatched(_)) && !self.kernel_events {
            return;
        }
        // Events are observation-only; a failed trace write must not
        // abort the pipeline, so IO errors are swallowed here and
        // surface via `flush` at the end of the run.
        let line = serde_json::to_string(event).expect("events always serialize");
        let mut writer = self.writer.lock().expect("jsonl mutex poisoned");
        let _ = writeln!(writer, "{line}");
    }
}

impl Drop for JsonlWriter {
    fn drop(&mut self) {
        if let Ok(writer) = self.writer.get_mut() {
            let _ = writer.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::*;
    use crate::subscriber::emit;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("agua-obs-{}-{name}", std::process::id()))
    }

    #[test]
    fn writes_one_valid_json_object_per_event() {
        let path = temp_path("basic.jsonl");
        let w = JsonlWriter::create(&path).unwrap();
        emit(&w, StageStarted { stage: Stage::Labeling, id: 1, parent: 0 });
        emit(&w, EpochCompleted { stage: Stage::DeltaFit, epoch: 0, loss: 2.5 });
        emit(&w, FitCompleted { fidelity: 0.8 });
        w.flush().unwrap();

        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let value: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(value["event"].is_string(), "line missing event tag: {line}");
        }
        let first: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["event"], "stage_started");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn kernel_events_are_skipped_unless_enabled() {
        let dispatch = KernelDispatched {
            kernel: Kernel::Matmul,
            rows: 1,
            inner: 1,
            cols: 1,
            macs: 1,
            threads: 1,
            seq_fallback: true,
            pool_dispatch: false,
            queue_depth: 0,
            seconds: 0.0,
        };

        let quiet_path = temp_path("quiet.jsonl");
        let quiet = JsonlWriter::create(&quiet_path).unwrap();
        emit(&quiet, dispatch);
        quiet.flush().unwrap();
        assert_eq!(fs::read_to_string(&quiet_path).unwrap().lines().count(), 0);

        let verbose_path = temp_path("verbose.jsonl");
        let verbose = JsonlWriter::create(&verbose_path).unwrap().with_kernel_events(true);
        emit(&verbose, dispatch);
        verbose.flush().unwrap();
        assert_eq!(fs::read_to_string(&verbose_path).unwrap().lines().count(), 1);

        fs::remove_file(&quiet_path).ok();
        fs::remove_file(&verbose_path).ok();
    }

    #[test]
    fn drop_flushes_buffered_lines() {
        let path = temp_path("drop.jsonl");
        {
            let w = JsonlWriter::create(&path).unwrap();
            emit(&w, FitCompleted { fidelity: 0.5 });
        }
        assert_eq!(fs::read_to_string(&path).unwrap().lines().count(), 1);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn create_makes_parent_directories() {
        let dir = temp_path("nested-dir");
        let path = dir.join("deep/trace.jsonl");
        let w = JsonlWriter::create(&path).unwrap();
        assert_eq!(w.path(), path.as_path());
        fs::remove_dir_all(&dir).ok();
    }
}
