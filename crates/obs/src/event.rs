//! The event taxonomy: concrete event structs, the [`Event`] trait, and
//! the [`AnyEvent`] enum subscribers consume.
//!
//! Each event is a plain data struct carrying observations only.
//! [`Event::into_any`] wraps a concrete event into [`AnyEvent`] for
//! dynamic dispatch through `&dyn Subscriber`.
//!
//! [`AnyEvent`]'s `Serialize` impl is written by hand rather than
//! derived: the JSONL trace format is a public contract (consumed by
//! `jq` in `ci.sh` and by downstream tooling), so the `"event"` tag and
//! the field order are pinned here explicitly —
//! `{"event":"epoch_completed","stage":"delta_fit","epoch":7,...}`.

use serde::ser::SerializeStruct;
use serde::{Serialize, Serializer};

/// A named pipeline stage, used by timing spans and per-epoch events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The describe → embed → cosine → quantize labelling pipeline.
    Labeling,
    /// Training the concept mapping function δ.
    DeltaFit,
    /// Training the output mapping function Ω.
    OmegaFit,
    /// Explanation generation.
    Explain,
    /// A caller-named stage (controller training, rollouts, bench
    /// phases, …).
    Custom(&'static str),
}

impl Stage {
    /// Stable snake_case name, used as metrics key and serialized form.
    pub fn as_str(&self) -> &'static str {
        match self {
            Stage::Labeling => "labeling",
            Stage::DeltaFit => "delta_fit",
            Stage::OmegaFit => "omega_fit",
            Stage::Explain => "explain",
            Stage::Custom(name) => name,
        }
    }
}

impl Serialize for Stage {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

/// Which dense kernel of the `agua-nn` parallel backend dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// `a × b`.
    Matmul,
    /// `aᵀ × b`.
    MatmulTn,
    /// `a × bᵀ`.
    MatmulNt,
    /// int8 × int8 → i32 quantized matmul (transposed weights).
    MatmulQ8,
    /// Independent per-row map over a matrix.
    ForEachRows,
    /// Generic ordered map over items or an index range.
    Map,
    /// A batch of independent heavyweight jobs.
    Jobs,
}

impl Kernel {
    /// Stable snake_case name, used as metrics key and serialized form.
    pub fn as_str(&self) -> &'static str {
        match self {
            Kernel::Matmul => "matmul",
            Kernel::MatmulTn => "matmul_tn",
            Kernel::MatmulNt => "matmul_nt",
            Kernel::MatmulQ8 => "matmul_q8",
            Kernel::ForEachRows => "for_each_rows",
            Kernel::Map => "map",
            Kernel::Jobs => "jobs",
        }
    }
}

impl Serialize for Kernel {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

/// The flavour of a produced explanation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplanationKind {
    /// Why the surrogate's chosen class was chosen (Eq. 9).
    Factual,
    /// What would drive a non-chosen class (§3.6).
    Counterfactual,
    /// Contributions averaged over a batch of inputs (§3.6).
    Batched,
}

impl ExplanationKind {
    /// Stable snake_case name, used as metrics key and serialized form.
    pub fn as_str(&self) -> &'static str {
        match self {
            ExplanationKind::Factual => "factual",
            ExplanationKind::Counterfactual => "counterfactual",
            ExplanationKind::Batched => "batched",
        }
    }
}

impl Serialize for ExplanationKind {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

/// A typed pipeline event.
///
/// Implementors are plain data structs; [`Event::into_any`] lifts them
/// into [`AnyEvent`] for dynamic dispatch.
pub trait Event: std::fmt::Debug {
    /// Stable snake_case event name (matches the JSONL `"event"` tag).
    const NAME: &'static str;

    /// Wraps the event for `&dyn Subscriber` consumption.
    fn into_any(self) -> AnyEvent;
}

/// A timing span opened (see `span_start`).
///
/// Spans are hierarchical: `id` is a process-unique span id and
/// `parent` is the id of the span enclosing this one on the emitting
/// thread (0 for a root span). Subscribers can rebuild the full
/// `fit → epoch → kernel` tree — the `TraceWriter` turns it into a
/// Chrome `trace_event` flamegraph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageStarted {
    /// The stage that started.
    pub stage: Stage,
    /// Process-unique span id (monotone, never 0).
    pub id: u64,
    /// Id of the enclosing span on this thread, or 0 for a root span.
    pub parent: u64,
}

/// A timing span closed; `seconds` is measured on a monotonic clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageFinished {
    /// The stage that finished.
    pub stage: Stage,
    /// The span id handed out by the matching [`StageStarted`].
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Wall-clock duration of the span in seconds.
    pub seconds: f64,
}

/// One training epoch of δ or Ω finished.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochCompleted {
    /// Which mapping was training ([`Stage::DeltaFit`] or
    /// [`Stage::OmegaFit`]).
    pub stage: Stage,
    /// Zero-based epoch index.
    pub epoch: usize,
    /// Mean batch loss of the epoch.
    pub loss: f32,
}

/// A dense kernel of the parallel backend dispatched.
///
/// `rows`/`inner`/`cols` describe the operation shape (`inner` is 0 for
/// shapeless kernels such as maps); `macs` is the multiply-accumulate
/// count the size gate was judged on. `threads` and `seq_fallback`
/// depend on the configured thread count and are therefore aggregated
/// separately from the deterministic counters (see
/// `MetricsSnapshot::deterministic`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelDispatched {
    /// Which kernel ran.
    pub kernel: Kernel,
    /// Output rows (or items for maps/jobs).
    pub rows: usize,
    /// Contraction length (0 when not applicable).
    pub inner: usize,
    /// Output columns (0 when not applicable).
    pub cols: usize,
    /// Multiply-accumulate (or element) count of the operation.
    pub macs: u64,
    /// Worker threads the dispatch actually used.
    pub threads: usize,
    /// True when the op ran sequentially (size gate or 1-thread config).
    pub seq_fallback: bool,
    /// True when the extra chunks were handed to the persistent worker
    /// pool (leaf kernels only; scheduling observation like `threads`).
    pub pool_dispatch: bool,
    /// Pool tasks already queued when this dispatch was emitted
    /// (scheduling observation; varies with timing and thread count).
    pub queue_depth: usize,
    /// Wall-clock duration of the kernel in seconds, measured only when
    /// a scoped subscriber is active (0.0 otherwise — the unobserved
    /// hot path never touches the clock). Feeds the per-kernel
    /// `kernel.{name}.seconds` latency histograms.
    pub seconds: f64,
}

/// The concept-labelling stage finished over a batch of inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelingStageFinished {
    /// Number of inputs labelled.
    pub inputs: usize,
    /// Number of concepts per input.
    pub concepts: usize,
    /// Similarity classes per concept (`k`).
    pub classes: usize,
}

/// One explanation was produced; `seconds` is measured on a monotonic
/// clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExplanationProduced {
    /// Factual, counterfactual, or batched.
    pub kind: ExplanationKind,
    /// The output class that was explained.
    pub output_class: usize,
    /// Wall-clock latency of producing the explanation, in seconds.
    pub seconds: f64,
}

/// A full surrogate fit finished with the given training fidelity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitCompleted {
    /// Fidelity (Eq. 11) of the fitted surrogate on its training data.
    pub fidelity: f32,
}

/// Utilization of one persistent pool worker, reported when a run
/// drains the pool's profiling state (`pool::emit_worker_utilization`).
///
/// All fields are scheduling observations — they vary with the thread
/// count, machine load, and wall clock, so the `Metrics` subscriber
/// folds them into the variable `scheduling` section, never the
/// deterministic counters. Workers are reported in index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolWorkerUtilization {
    /// Worker index (stable for the worker's lifetime).
    pub worker: usize,
    /// Nanoseconds spent running chunks.
    pub busy_ns: u64,
    /// Nanoseconds spent parked waiting for work.
    pub parked_ns: u64,
    /// Times the worker woke from park to handle a message.
    pub wakeups: u64,
    /// Chunks executed.
    pub chunks: u64,
    /// Profiling samples dropped because the worker's ring was full.
    pub ring_dropped: u64,
}

/// The artifact store served a request from cache (memo or disk).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactHit {
    /// Artifact kind (`"controller"`, `"rollout"`, `"surrogate"`, …).
    pub kind: &'static str,
    /// FNV-1a key of the artifact's canonical spec.
    pub key: u64,
}

/// The artifact store found no cached artifact and will compute one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactMiss {
    /// Artifact kind (`"controller"`, `"rollout"`, `"surrogate"`, …).
    pub kind: &'static str,
    /// FNV-1a key of the artifact's canonical spec.
    pub key: u64,
}

/// The artifact store persisted a freshly computed artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactWrite {
    /// Artifact kind (`"controller"`, `"rollout"`, `"surrogate"`, …).
    pub kind: &'static str,
    /// FNV-1a key of the artifact's canonical spec.
    pub key: u64,
    /// Size of the persisted envelope in bytes.
    pub bytes: u64,
}

/// The engine's coalescer flushed one batch of explain requests.
///
/// `size` and `seconds` are scheduling observations — batch composition
/// depends on request timing — so the `Metrics` subscriber keeps them
/// out of the deterministic counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineBatchFlushed {
    /// Registry name of the app the batch was grouped under.
    pub app: &'static str,
    /// Requests coalesced into this batch.
    pub size: usize,
    /// Wall-clock seconds spent computing the batch.
    pub seconds: f64,
}

/// The serve layer finished (or refused) one HTTP explain request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeRequestHandled {
    /// FNV-1a hash of the tenant id the request carried.
    pub tenant: u64,
    /// HTTP status code of the response.
    pub status: u16,
    /// Wall-clock seconds from parse to response write.
    pub seconds: f64,
}

/// Admission control rejected a request because the engine's bounded
/// queue was full (HTTP 429 at the serve layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeRequestRejected {
    /// FNV-1a hash of the tenant id the request carried.
    pub tenant: u64,
    /// The admission queue's configured capacity.
    pub capacity: usize,
}

/// The engine atomically swapped in a reloaded checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReloaded {
    /// Registry name of the reloaded app.
    pub app: &'static str,
    /// The session generation after the swap (monotone per app).
    pub generation: u64,
}

/// Dynamically-dispatchable union of every event type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnyEvent {
    /// See [`StageStarted`].
    StageStarted(StageStarted),
    /// See [`StageFinished`].
    StageFinished(StageFinished),
    /// See [`EpochCompleted`].
    EpochCompleted(EpochCompleted),
    /// See [`KernelDispatched`].
    KernelDispatched(KernelDispatched),
    /// See [`LabelingStageFinished`].
    LabelingStageFinished(LabelingStageFinished),
    /// See [`ExplanationProduced`].
    ExplanationProduced(ExplanationProduced),
    /// See [`FitCompleted`].
    FitCompleted(FitCompleted),
    /// See [`PoolWorkerUtilization`].
    PoolWorkerUtilization(PoolWorkerUtilization),
    /// See [`ArtifactHit`].
    ArtifactHit(ArtifactHit),
    /// See [`ArtifactMiss`].
    ArtifactMiss(ArtifactMiss),
    /// See [`ArtifactWrite`].
    ArtifactWrite(ArtifactWrite),
    /// See [`EngineBatchFlushed`].
    EngineBatchFlushed(EngineBatchFlushed),
    /// See [`ServeRequestHandled`].
    ServeRequestHandled(ServeRequestHandled),
    /// See [`ServeRequestRejected`].
    ServeRequestRejected(ServeRequestRejected),
    /// See [`CheckpointReloaded`].
    CheckpointReloaded(CheckpointReloaded),
}

impl AnyEvent {
    /// The snake_case name of the wrapped event.
    pub fn name(&self) -> &'static str {
        match self {
            AnyEvent::StageStarted(_) => StageStarted::NAME,
            AnyEvent::StageFinished(_) => StageFinished::NAME,
            AnyEvent::EpochCompleted(_) => EpochCompleted::NAME,
            AnyEvent::KernelDispatched(_) => KernelDispatched::NAME,
            AnyEvent::LabelingStageFinished(_) => LabelingStageFinished::NAME,
            AnyEvent::ExplanationProduced(_) => ExplanationProduced::NAME,
            AnyEvent::FitCompleted(_) => FitCompleted::NAME,
            AnyEvent::PoolWorkerUtilization(_) => PoolWorkerUtilization::NAME,
            AnyEvent::ArtifactHit(_) => ArtifactHit::NAME,
            AnyEvent::ArtifactMiss(_) => ArtifactMiss::NAME,
            AnyEvent::ArtifactWrite(_) => ArtifactWrite::NAME,
            AnyEvent::EngineBatchFlushed(_) => EngineBatchFlushed::NAME,
            AnyEvent::ServeRequestHandled(_) => ServeRequestHandled::NAME,
            AnyEvent::ServeRequestRejected(_) => ServeRequestRejected::NAME,
            AnyEvent::CheckpointReloaded(_) => CheckpointReloaded::NAME,
        }
    }
}

impl Serialize for AnyEvent {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            AnyEvent::StageStarted(e) => {
                let mut s = serializer.serialize_struct("StageStarted", 4)?;
                s.serialize_field("event", StageStarted::NAME)?;
                s.serialize_field("stage", &e.stage)?;
                s.serialize_field("id", &e.id)?;
                s.serialize_field("parent", &e.parent)?;
                s.end()
            }
            AnyEvent::StageFinished(e) => {
                let mut s = serializer.serialize_struct("StageFinished", 5)?;
                s.serialize_field("event", StageFinished::NAME)?;
                s.serialize_field("stage", &e.stage)?;
                s.serialize_field("id", &e.id)?;
                s.serialize_field("parent", &e.parent)?;
                s.serialize_field("seconds", &e.seconds)?;
                s.end()
            }
            AnyEvent::EpochCompleted(e) => {
                let mut s = serializer.serialize_struct("EpochCompleted", 4)?;
                s.serialize_field("event", EpochCompleted::NAME)?;
                s.serialize_field("stage", &e.stage)?;
                s.serialize_field("epoch", &e.epoch)?;
                s.serialize_field("loss", &e.loss)?;
                s.end()
            }
            AnyEvent::KernelDispatched(e) => {
                let mut s = serializer.serialize_struct("KernelDispatched", 11)?;
                s.serialize_field("event", KernelDispatched::NAME)?;
                s.serialize_field("kernel", &e.kernel)?;
                s.serialize_field("rows", &e.rows)?;
                s.serialize_field("inner", &e.inner)?;
                s.serialize_field("cols", &e.cols)?;
                s.serialize_field("macs", &e.macs)?;
                s.serialize_field("threads", &e.threads)?;
                s.serialize_field("seq_fallback", &e.seq_fallback)?;
                s.serialize_field("pool_dispatch", &e.pool_dispatch)?;
                s.serialize_field("queue_depth", &e.queue_depth)?;
                s.serialize_field("seconds", &e.seconds)?;
                s.end()
            }
            AnyEvent::LabelingStageFinished(e) => {
                let mut s = serializer.serialize_struct("LabelingStageFinished", 4)?;
                s.serialize_field("event", LabelingStageFinished::NAME)?;
                s.serialize_field("inputs", &e.inputs)?;
                s.serialize_field("concepts", &e.concepts)?;
                s.serialize_field("classes", &e.classes)?;
                s.end()
            }
            AnyEvent::ExplanationProduced(e) => {
                let mut s = serializer.serialize_struct("ExplanationProduced", 4)?;
                s.serialize_field("event", ExplanationProduced::NAME)?;
                s.serialize_field("kind", &e.kind)?;
                s.serialize_field("output_class", &e.output_class)?;
                s.serialize_field("seconds", &e.seconds)?;
                s.end()
            }
            AnyEvent::FitCompleted(e) => {
                let mut s = serializer.serialize_struct("FitCompleted", 2)?;
                s.serialize_field("event", FitCompleted::NAME)?;
                s.serialize_field("fidelity", &e.fidelity)?;
                s.end()
            }
            AnyEvent::PoolWorkerUtilization(e) => {
                let mut s = serializer.serialize_struct("PoolWorkerUtilization", 7)?;
                s.serialize_field("event", PoolWorkerUtilization::NAME)?;
                s.serialize_field("worker", &e.worker)?;
                s.serialize_field("busy_ns", &e.busy_ns)?;
                s.serialize_field("parked_ns", &e.parked_ns)?;
                s.serialize_field("wakeups", &e.wakeups)?;
                s.serialize_field("chunks", &e.chunks)?;
                s.serialize_field("ring_dropped", &e.ring_dropped)?;
                s.end()
            }
            // Artifact keys are serialized as zero-padded hex so the
            // JSONL value matches the `<kind>-<key>.json` file names
            // under `results/cache/`.
            AnyEvent::ArtifactHit(e) => {
                let mut s = serializer.serialize_struct("ArtifactHit", 3)?;
                s.serialize_field("event", ArtifactHit::NAME)?;
                s.serialize_field("kind", &e.kind)?;
                s.serialize_field("key", &format!("{:016x}", e.key))?;
                s.end()
            }
            AnyEvent::ArtifactMiss(e) => {
                let mut s = serializer.serialize_struct("ArtifactMiss", 3)?;
                s.serialize_field("event", ArtifactMiss::NAME)?;
                s.serialize_field("kind", &e.kind)?;
                s.serialize_field("key", &format!("{:016x}", e.key))?;
                s.end()
            }
            AnyEvent::ArtifactWrite(e) => {
                let mut s = serializer.serialize_struct("ArtifactWrite", 4)?;
                s.serialize_field("event", ArtifactWrite::NAME)?;
                s.serialize_field("kind", &e.kind)?;
                s.serialize_field("key", &format!("{:016x}", e.key))?;
                s.serialize_field("bytes", &e.bytes)?;
                s.end()
            }
            AnyEvent::EngineBatchFlushed(e) => {
                let mut s = serializer.serialize_struct("EngineBatchFlushed", 4)?;
                s.serialize_field("event", EngineBatchFlushed::NAME)?;
                s.serialize_field("app", &e.app)?;
                s.serialize_field("size", &e.size)?;
                s.serialize_field("seconds", &e.seconds)?;
                s.end()
            }
            // Tenant hashes use the same zero-padded hex convention as
            // artifact keys.
            AnyEvent::ServeRequestHandled(e) => {
                let mut s = serializer.serialize_struct("ServeRequestHandled", 4)?;
                s.serialize_field("event", ServeRequestHandled::NAME)?;
                s.serialize_field("tenant", &format!("{:016x}", e.tenant))?;
                s.serialize_field("status", &e.status)?;
                s.serialize_field("seconds", &e.seconds)?;
                s.end()
            }
            AnyEvent::ServeRequestRejected(e) => {
                let mut s = serializer.serialize_struct("ServeRequestRejected", 3)?;
                s.serialize_field("event", ServeRequestRejected::NAME)?;
                s.serialize_field("tenant", &format!("{:016x}", e.tenant))?;
                s.serialize_field("capacity", &e.capacity)?;
                s.end()
            }
            AnyEvent::CheckpointReloaded(e) => {
                let mut s = serializer.serialize_struct("CheckpointReloaded", 3)?;
                s.serialize_field("event", CheckpointReloaded::NAME)?;
                s.serialize_field("app", &e.app)?;
                s.serialize_field("generation", &e.generation)?;
                s.end()
            }
        }
    }
}

macro_rules! impl_event {
    ($ty:ident, $name:literal) => {
        impl Event for $ty {
            const NAME: &'static str = $name;

            fn into_any(self) -> AnyEvent {
                AnyEvent::$ty(self)
            }
        }
    };
}

impl_event!(StageStarted, "stage_started");
impl_event!(StageFinished, "stage_finished");
impl_event!(EpochCompleted, "epoch_completed");
impl_event!(KernelDispatched, "kernel_dispatched");
impl_event!(LabelingStageFinished, "labeling_stage_finished");
impl_event!(ExplanationProduced, "explanation_produced");
impl_event!(FitCompleted, "fit_completed");
impl_event!(PoolWorkerUtilization, "pool_worker_utilization");
impl_event!(ArtifactHit, "artifact_hit");
impl_event!(ArtifactMiss, "artifact_miss");
impl_event!(ArtifactWrite, "artifact_write");
impl_event!(EngineBatchFlushed, "engine_batch_flushed");
impl_event!(ServeRequestHandled, "serve_request_handled");
impl_event!(ServeRequestRejected, "serve_request_rejected");
impl_event!(CheckpointReloaded, "checkpoint_reloaded");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_event_names_match_trait_names() {
        let e = EpochCompleted { stage: Stage::DeltaFit, epoch: 3, loss: 0.5 }.into_any();
        assert_eq!(e.name(), "epoch_completed");
        let e = FitCompleted { fidelity: 0.9 }.into_any();
        assert_eq!(e.name(), "fit_completed");
    }

    #[test]
    fn events_serialize_with_an_event_tag_and_string_enums() {
        let e = EpochCompleted { stage: Stage::OmegaFit, epoch: 7, loss: 1.25 }.into_any();
        let json = serde_json::to_value(&e).unwrap();
        assert_eq!(json["event"], "epoch_completed");
        assert_eq!(json["stage"], "omega_fit");
        assert_eq!(json["epoch"], 7);

        let k = KernelDispatched {
            kernel: Kernel::MatmulTn,
            rows: 4,
            inner: 8,
            cols: 2,
            macs: 64,
            threads: 2,
            seq_fallback: false,
            pool_dispatch: true,
            queue_depth: 1,
            seconds: 0.25,
        }
        .into_any();
        let json = serde_json::to_value(&k).unwrap();
        assert_eq!(json["event"], "kernel_dispatched");
        assert_eq!(json["kernel"], "matmul_tn");
        assert_eq!(json["seq_fallback"], false);
        assert_eq!(json["pool_dispatch"], true);
        assert_eq!(json["queue_depth"], 1);
        assert_eq!(json["seconds"], 0.25);
    }

    #[test]
    fn artifact_events_serialize_with_hex_keys() {
        let e = ArtifactHit { kind: "rollout", key: 0xABC }.into_any();
        let json = serde_json::to_value(&e).unwrap();
        assert_eq!(json["event"], "artifact_hit");
        assert_eq!(json["kind"], "rollout");
        assert_eq!(json["key"], "0000000000000abc");

        let e = ArtifactWrite { kind: "surrogate", key: u64::MAX, bytes: 42 }.into_any();
        let json = serde_json::to_value(&e).unwrap();
        assert_eq!(json["event"], "artifact_write");
        assert_eq!(json["key"], "ffffffffffffffff");
        assert_eq!(json["bytes"], 42);
        assert_eq!(ArtifactMiss { kind: "controller", key: 1 }.into_any().name(), "artifact_miss");
    }

    #[test]
    fn stage_events_carry_span_ids() {
        let e = StageStarted { stage: Stage::DeltaFit, id: 7, parent: 3 }.into_any();
        let json = serde_json::to_value(&e).unwrap();
        assert_eq!(json["event"], "stage_started");
        assert_eq!(json["id"], 7);
        assert_eq!(json["parent"], 3);
        let e = StageFinished { stage: Stage::DeltaFit, id: 7, parent: 3, seconds: 0.5 }.into_any();
        let json = serde_json::to_value(&e).unwrap();
        assert_eq!(json["event"], "stage_finished");
        assert_eq!(json["id"], 7);
        assert_eq!(json["seconds"], 0.5);
    }

    #[test]
    fn pool_worker_utilization_serializes_all_counters() {
        let e = PoolWorkerUtilization {
            worker: 2,
            busy_ns: 1_000,
            parked_ns: 9_000,
            wakeups: 3,
            chunks: 5,
            ring_dropped: 1,
        }
        .into_any();
        assert_eq!(e.name(), "pool_worker_utilization");
        let json = serde_json::to_value(&e).unwrap();
        assert_eq!(json["worker"], 2);
        assert_eq!(json["busy_ns"], 1000);
        assert_eq!(json["parked_ns"], 9000);
        assert_eq!(json["wakeups"], 3);
        assert_eq!(json["chunks"], 5);
        assert_eq!(json["ring_dropped"], 1);
    }

    #[test]
    fn serve_events_serialize_with_hex_tenants_and_stable_names() {
        let e = EngineBatchFlushed { app: "ddos", size: 6, seconds: 0.01 }.into_any();
        let json = serde_json::to_value(&e).unwrap();
        assert_eq!(json["event"], "engine_batch_flushed");
        assert_eq!(json["app"], "ddos");
        assert_eq!(json["size"], 6);

        let e = ServeRequestHandled { tenant: 0xBEEF, status: 200, seconds: 0.002 }.into_any();
        let json = serde_json::to_value(&e).unwrap();
        assert_eq!(json["event"], "serve_request_handled");
        assert_eq!(json["tenant"], "000000000000beef");
        assert_eq!(json["status"], 200);

        let e = ServeRequestRejected { tenant: 1, capacity: 64 }.into_any();
        let json = serde_json::to_value(&e).unwrap();
        assert_eq!(json["event"], "serve_request_rejected");
        assert_eq!(json["capacity"], 64);

        let e = CheckpointReloaded { app: "cc", generation: 3 }.into_any();
        let json = serde_json::to_value(&e).unwrap();
        assert_eq!(json["event"], "checkpoint_reloaded");
        assert_eq!(json["app"], "cc");
        assert_eq!(json["generation"], 3);
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(Stage::Labeling.as_str(), "labeling");
        assert_eq!(Stage::DeltaFit.as_str(), "delta_fit");
        assert_eq!(Stage::OmegaFit.as_str(), "omega_fit");
        assert_eq!(Stage::Custom("rollout").as_str(), "rollout");
        assert_eq!(ExplanationKind::Batched.as_str(), "batched");
        assert_eq!(Kernel::ForEachRows.as_str(), "for_each_rows");
        assert_eq!(Kernel::MatmulQ8.as_str(), "matmul_q8");
    }
}
