//! # agua-obs — typed event/subscriber instrumentation for the Agua pipeline
//!
//! The explainer pipeline is specified to be reproducible from a seed,
//! so its instrumentation must be *observational only*: events describe
//! what happened (an epoch finished, a kernel dispatched, an explanation
//! was produced) and subscribers aggregate or persist them, but nothing
//! in this crate may feed back into the numerics. The design follows the
//! event framework of s2n-quic: concrete event structs implementing an
//! [`Event`] trait, a [`Subscriber`] trait consuming them, and stock
//! subscribers that cost (almost) nothing when unused.
//!
//! ## Event flow
//!
//! ```text
//!   ConceptMapping::fit ──EpochCompleted──►┐
//!   OutputMapping::fit  ──EpochCompleted──►│
//!   ConceptLabeler      ──LabelingStage──► ├──► &dyn Subscriber
//!   explain::*          ──ExplanationProduced──►│   (threaded by reference)
//!   span_start/span_end ──Stage{Started,Finished}┘
//!
//!   agua_nn::parallel   ──KernelDispatched──► scoped subscriber
//!                                             (thread-local ambient scope)
//! ```
//!
//! High-level code threads a `&dyn Subscriber` through its call chain
//! (`AguaModel::fit_observed`, `explain::factual_observed`, …). The
//! dense kernels in `agua-nn::parallel` sit below dozens of call sites,
//! so they instead emit through the ambient [`scoped`] subscriber — a
//! thread-local installed with [`scoped::with_scoped_subscriber`] around
//! a region of work. When no scope is installed, emission is a single
//! thread-local flag check.
//!
//! ## Determinism contract
//!
//! Subscribers must never perturb the numerics or the byte-identical
//! parallel guarantee of `agua-nn`:
//!
//! * events carry observations only — no subscriber output is read back
//!   by the pipeline;
//! * the ambient scope is thread-local and deliberately **not**
//!   propagated to worker threads, so events are emitted only from the
//!   dispatching thread, in a schedule-independent order;
//! * the [`Metrics`] subscriber separates deterministic aggregates
//!   (counters, loss curves, gauges) from wall-clock and
//!   thread-scheduling observations, and
//!   [`MetricsSnapshot::deterministic`] returns only the former — which
//!   is identical at any `AGUA_THREADS` value.
//!
//! ## Spans, histograms, and profiling hooks
//!
//! Spans are **hierarchical**: every [`span_start`] draws a
//! process-unique id and records the enclosing span from the calling
//! thread's span stack, so subscribers can rebuild the whole
//! `fit → epoch → kernel` tree. The [`TraceWriter`] subscriber turns it
//! into Chrome `trace_event` JSON, openable in `chrome://tracing` or
//! Perfetto as a flamegraph.
//!
//! Distributions are captured by the log-bucketed [`Histogram`]
//! (HDR-style, fixed bucket boundaries): bucket counts are pure `u64`
//! state, so merging — across pool workers, in worker-index order — is
//! exactly associative and thread-count-invariant. Value histograms
//! (losses, MAC counts) live in the deterministic `dists` snapshot
//! section; wall-clock histograms (span/explain/chunk latency) live in
//! the variable `latency_hists` section.
//!
//! Hot paths never block on telemetry: kernel-frequency events go
//! through [`scoped::emit_scoped_deferred`] (a thread-local buffer
//! drained at span close), and pool workers record chunk samples into
//! per-worker lock-free [`SpscRing`]s drained by the dispatching
//! thread. The [`Metrics`] subscriber measures its own cost and reports
//! it in the `self_overhead` snapshot section.
//!
//! ## Stock subscribers
//!
//! * [`Noop`] — the default; every hook is an empty inlineable body.
//! * [`Stderr`] — human-readable `[obs]` log lines on standard error.
//! * [`Metrics`] — counters, per-epoch loss curves, gauges, value and
//!   latency [`Histogram`]s, and p50/p90/p99/p999 timing statistics;
//!   snapshot as a serde struct.
//! * [`JsonlWriter`] — appends one JSON object per event to a
//!   `results/logs/*.jsonl` trace file.
//! * [`TraceWriter`] — buffers the span tree and writes Chrome
//!   `trace_event` JSON.
//! * [`Fanout`] — broadcasts each event to several subscribers.

#![forbid(unsafe_code)]

pub mod event;
pub mod hist;
pub mod jsonl;
pub mod metrics;
pub mod ring;
pub mod scoped;
pub mod subscriber;
pub mod trace;

pub use event::{
    AnyEvent, ArtifactHit, ArtifactMiss, ArtifactWrite, CheckpointReloaded, EngineBatchFlushed,
    EpochCompleted, Event, ExplanationKind, ExplanationProduced, FitCompleted, Kernel,
    KernelDispatched, LabelingStageFinished, PoolWorkerUtilization, ServeRequestHandled,
    ServeRequestRejected, Stage, StageFinished, StageStarted,
};
pub use hist::{Histogram, HistogramSnapshot};
pub use jsonl::JsonlWriter;
pub use metrics::{Metrics, MetricsSnapshot, TimingStats};
pub use ring::SpscRing;
pub use subscriber::{emit, span_end, span_start, Fanout, Noop, Span, Stderr, Subscriber};
pub use trace::TraceWriter;
