//! The [`Subscriber`] contract, the timing-span helpers, and the
//! lightweight stock subscribers ([`Noop`], [`Stderr`], [`Fanout`]).
//!
//! Subscribers take `&self` so one instance can be shared by reference
//! across the pipeline; stateful subscribers use interior mutability.
//! The contract: a subscriber observes, it never influences — it must
//! not panic on well-formed events and nothing in the pipeline reads a
//! subscriber's state mid-run.

use crate::event::{AnyEvent, Event, Stage, StageFinished, StageStarted};
use std::rc::Rc;
use std::time::Instant;

/// Consumes pipeline events.
pub trait Subscriber {
    /// Handles one event. Called synchronously from the emitting thread.
    fn on_event(&self, event: &AnyEvent);
}

/// Emits a concrete event to a subscriber.
pub fn emit<E: Event>(obs: &dyn Subscriber, event: E) {
    obs.on_event(&event.into_any());
}

/// An open timing span, created by [`span_start`] and closed by
/// [`span_end`]. Backed by the monotonic [`Instant`] clock.
#[derive(Debug)]
pub struct Span {
    stage: Stage,
    start: Instant,
}

impl Span {
    /// The stage this span measures.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// Seconds elapsed since the span opened.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Opens a timing span for `stage`, emitting [`StageStarted`].
pub fn span_start(obs: &dyn Subscriber, stage: Stage) -> Span {
    emit(obs, StageStarted { stage });
    Span { stage, start: Instant::now() }
}

/// Closes a span, emitting [`StageFinished`] with the monotonic elapsed
/// time; returns the measured seconds so callers (e.g. benches) can use
/// the same reading they reported.
pub fn span_end(obs: &dyn Subscriber, span: Span) -> f64 {
    let seconds = span.elapsed_seconds();
    emit(obs, StageFinished { stage: span.stage, seconds });
    seconds
}

/// The default subscriber: drops every event. Each hook is an empty
/// `#[inline]` body, so observed code paths cost nothing beyond the
/// virtual call when a `Noop` is threaded through explicitly.
#[derive(Debug, Clone, Copy, Default)]
pub struct Noop;

impl Subscriber for Noop {
    #[inline]
    fn on_event(&self, _event: &AnyEvent) {}
}

/// Human-readable log lines on standard error.
///
/// Kernel-dispatch events are suppressed by default (a single training
/// run dispatches tens of thousands of kernels); enable them with
/// [`Stderr::with_kernel_events`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Stderr {
    kernel_events: bool,
}

impl Stderr {
    /// A stderr logger with kernel-dispatch events suppressed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables per-dispatch kernel log lines.
    pub fn with_kernel_events(mut self, enabled: bool) -> Self {
        self.kernel_events = enabled;
        self
    }
}

impl Subscriber for Stderr {
    fn on_event(&self, event: &AnyEvent) {
        match event {
            AnyEvent::StageStarted(e) => eprintln!("[obs] {} started", e.stage.as_str()),
            AnyEvent::StageFinished(e) => {
                eprintln!("[obs] {} finished in {:.3}s", e.stage.as_str(), e.seconds)
            }
            AnyEvent::EpochCompleted(e) => {
                eprintln!("[obs] {} epoch {:>4} loss {:.6}", e.stage.as_str(), e.epoch, e.loss)
            }
            AnyEvent::KernelDispatched(e) => {
                if self.kernel_events {
                    eprintln!(
                        "[obs] kernel {} {}x{}x{} macs={} threads={}{}",
                        e.kernel.as_str(),
                        e.rows,
                        e.inner,
                        e.cols,
                        e.macs,
                        e.threads,
                        if e.seq_fallback { " (sequential)" } else { "" }
                    )
                }
            }
            AnyEvent::LabelingStageFinished(e) => eprintln!(
                "[obs] labelled {} inputs x {} concepts ({} classes)",
                e.inputs, e.concepts, e.classes
            ),
            AnyEvent::ExplanationProduced(e) => eprintln!(
                "[obs] {} explanation of class {} in {:.1}us",
                e.kind.as_str(),
                e.output_class,
                e.seconds * 1e6
            ),
            AnyEvent::FitCompleted(e) => {
                eprintln!("[obs] fit completed, train fidelity {:.3}", e.fidelity)
            }
            AnyEvent::ArtifactHit(e) => {
                eprintln!("[obs] artifact {} {:016x} hit", e.kind, e.key)
            }
            AnyEvent::ArtifactMiss(e) => {
                eprintln!("[obs] artifact {} {:016x} miss", e.kind, e.key)
            }
            AnyEvent::ArtifactWrite(e) => {
                eprintln!("[obs] artifact {} {:016x} written ({} bytes)", e.kind, e.key, e.bytes)
            }
        }
    }
}

/// Broadcasts each event to several subscribers, in order.
#[derive(Default)]
pub struct Fanout {
    subscribers: Vec<Rc<dyn Subscriber>>,
}

impl Fanout {
    /// An empty fanout (equivalent to [`Noop`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a subscriber to the broadcast list.
    pub fn push(mut self, subscriber: Rc<dyn Subscriber>) -> Self {
        self.subscribers.push(subscriber);
        self
    }

    /// Number of attached subscribers.
    pub fn len(&self) -> usize {
        self.subscribers.len()
    }

    /// True when no subscriber is attached.
    pub fn is_empty(&self) -> bool {
        self.subscribers.is_empty()
    }
}

impl Subscriber for Fanout {
    fn on_event(&self, event: &AnyEvent) {
        for sub in &self.subscribers {
            sub.on_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// Test subscriber recording event names.
    #[derive(Default)]
    pub(crate) struct Recorder {
        pub(crate) names: RefCell<Vec<&'static str>>,
    }

    impl Subscriber for Recorder {
        fn on_event(&self, event: &AnyEvent) {
            self.names.borrow_mut().push(event.name());
        }
    }

    #[test]
    fn spans_emit_started_and_finished_with_nonnegative_seconds() {
        let rec = Recorder::default();
        let span = span_start(&rec, Stage::DeltaFit);
        assert_eq!(span.stage(), Stage::DeltaFit);
        let seconds = span_end(&rec, span);
        assert!(seconds >= 0.0);
        assert_eq!(*rec.names.borrow(), vec!["stage_started", "stage_finished"]);
    }

    #[test]
    fn fanout_broadcasts_in_order() {
        let a = Rc::new(Recorder::default());
        let b = Rc::new(Recorder::default());
        let fan = Fanout::new().push(a.clone()).push(b.clone());
        assert_eq!(fan.len(), 2);
        emit(&fan, crate::event::FitCompleted { fidelity: 1.0 });
        assert_eq!(*a.names.borrow(), vec!["fit_completed"]);
        assert_eq!(*b.names.borrow(), vec!["fit_completed"]);
    }

    #[test]
    fn noop_accepts_everything() {
        let noop = Noop;
        emit(&noop, crate::event::FitCompleted { fidelity: 0.5 });
        let span = span_start(&noop, Stage::Custom("bench"));
        let _ = span_end(&noop, span);
    }
}
