//! The [`Subscriber`] contract, the timing-span helpers, and the
//! lightweight stock subscribers ([`Noop`], [`Stderr`], [`Fanout`]).
//!
//! Subscribers take `&self` so one instance can be shared by reference
//! across the pipeline; stateful subscribers use interior mutability.
//! The contract: a subscriber observes, it never influences — it must
//! not panic on well-formed events and nothing in the pipeline reads a
//! subscriber's state mid-run.
//!
//! Spans are hierarchical: every [`span_start`] draws a process-unique
//! id from a global counter and records its parent from the calling
//! thread's span stack (`scoped::current_span`), so subscribers can
//! rebuild the `fit → epoch → kernel` tree without any side channel.
//! [`span_end`] also drains the thread's deferred-event buffer before
//! emitting [`StageFinished`], guaranteeing that hot-path events
//! emitted inside a span are delivered no later than the span's close.

use crate::event::{AnyEvent, Event, Stage, StageFinished, StageStarted};
use crate::scoped;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Process-unique span ids, starting at 1 (0 means "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Consumes pipeline events.
pub trait Subscriber {
    /// Handles one event. Called synchronously from the emitting thread.
    fn on_event(&self, event: &AnyEvent);
}

/// Emits a concrete event to a subscriber.
pub fn emit<E: Event>(obs: &dyn Subscriber, event: E) {
    obs.on_event(&event.into_any());
}

/// An open timing span, created by [`span_start`] and closed by
/// [`span_end`]. Backed by the monotonic [`Instant`] clock.
#[derive(Debug)]
pub struct Span {
    stage: Stage,
    id: u64,
    parent: u64,
    start: Instant,
}

impl Span {
    /// The stage this span measures.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// This span's process-unique id (never 0).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The id of the span enclosing this one, or 0 for a root span.
    pub fn parent(&self) -> u64 {
        self.parent
    }

    /// Seconds elapsed since the span opened.
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

/// Opens a timing span for `stage`, emitting [`StageStarted`].
///
/// The span is pushed onto the calling thread's span stack, so spans
/// opened below it (on the same thread) record it as their parent.
pub fn span_start(obs: &dyn Subscriber, stage: Stage) -> Span {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = scoped::current_span();
    emit(obs, StageStarted { stage, id, parent });
    scoped::push_span(id);
    Span { stage, id, parent, start: Instant::now() }
}

/// Closes a span, emitting [`StageFinished`] with the monotonic elapsed
/// time; returns the measured seconds so callers (e.g. benches) can use
/// the same reading they reported.
///
/// Deferred hot-path events buffered on this thread are flushed first,
/// so every event emitted inside the span is delivered before its
/// `StageFinished`.
pub fn span_end(obs: &dyn Subscriber, span: Span) -> f64 {
    let seconds = span.elapsed_seconds();
    scoped::flush_deferred();
    scoped::pop_span(span.id);
    emit(obs, StageFinished { stage: span.stage, id: span.id, parent: span.parent, seconds });
    seconds
}

/// The default subscriber: drops every event. Each hook is an empty
/// `#[inline]` body, so observed code paths cost nothing beyond the
/// virtual call when a `Noop` is threaded through explicitly.
#[derive(Debug, Clone, Copy, Default)]
pub struct Noop;

impl Subscriber for Noop {
    #[inline]
    fn on_event(&self, _event: &AnyEvent) {}
}

/// Human-readable log lines on standard error.
///
/// Kernel-dispatch events are suppressed by default (a single training
/// run dispatches tens of thousands of kernels); enable them with
/// [`Stderr::with_kernel_events`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Stderr {
    kernel_events: bool,
}

impl Stderr {
    /// A stderr logger with kernel-dispatch events suppressed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables or disables per-dispatch kernel log lines.
    pub fn with_kernel_events(mut self, enabled: bool) -> Self {
        self.kernel_events = enabled;
        self
    }
}

impl Subscriber for Stderr {
    fn on_event(&self, event: &AnyEvent) {
        match event {
            AnyEvent::StageStarted(e) => eprintln!("[obs] {} started", e.stage.as_str()),
            AnyEvent::StageFinished(e) => {
                eprintln!("[obs] {} finished in {:.3}s", e.stage.as_str(), e.seconds)
            }
            AnyEvent::EpochCompleted(e) => {
                eprintln!("[obs] {} epoch {:>4} loss {:.6}", e.stage.as_str(), e.epoch, e.loss)
            }
            AnyEvent::KernelDispatched(e) => {
                if self.kernel_events {
                    eprintln!(
                        "[obs] kernel {} {}x{}x{} macs={} threads={}{}",
                        e.kernel.as_str(),
                        e.rows,
                        e.inner,
                        e.cols,
                        e.macs,
                        e.threads,
                        if e.seq_fallback { " (sequential)" } else { "" }
                    )
                }
            }
            AnyEvent::LabelingStageFinished(e) => eprintln!(
                "[obs] labelled {} inputs x {} concepts ({} classes)",
                e.inputs, e.concepts, e.classes
            ),
            AnyEvent::ExplanationProduced(e) => eprintln!(
                "[obs] {} explanation of class {} in {:.1}us",
                e.kind.as_str(),
                e.output_class,
                e.seconds * 1e6
            ),
            AnyEvent::FitCompleted(e) => {
                eprintln!("[obs] fit completed, train fidelity {:.3}", e.fidelity)
            }
            AnyEvent::PoolWorkerUtilization(e) => eprintln!(
                "[obs] pool worker {} busy {:.1}ms parked {:.1}ms ({} wakeups, {} chunks{})",
                e.worker,
                e.busy_ns as f64 / 1e6,
                e.parked_ns as f64 / 1e6,
                e.wakeups,
                e.chunks,
                if e.ring_dropped > 0 {
                    format!(", {} samples dropped", e.ring_dropped)
                } else {
                    String::new()
                }
            ),
            AnyEvent::ArtifactHit(e) => {
                eprintln!("[obs] artifact {} {:016x} hit", e.kind, e.key)
            }
            AnyEvent::ArtifactMiss(e) => {
                eprintln!("[obs] artifact {} {:016x} miss", e.kind, e.key)
            }
            AnyEvent::ArtifactWrite(e) => {
                eprintln!("[obs] artifact {} {:016x} written ({} bytes)", e.kind, e.key, e.bytes)
            }
            AnyEvent::EngineBatchFlushed(e) => eprintln!(
                "[obs] engine {} flushed batch of {} in {:.1}us",
                e.app,
                e.size,
                e.seconds * 1e6
            ),
            AnyEvent::ServeRequestHandled(e) => eprintln!(
                "[obs] serve tenant {:016x} -> {} in {:.1}us",
                e.tenant,
                e.status,
                e.seconds * 1e6
            ),
            AnyEvent::ServeRequestRejected(e) => eprintln!(
                "[obs] serve tenant {:016x} rejected: queue full ({})",
                e.tenant, e.capacity
            ),
            AnyEvent::CheckpointReloaded(e) => {
                eprintln!("[obs] engine {} reloaded -> generation {}", e.app, e.generation)
            }
        }
    }
}

/// Broadcasts each event to several subscribers, in order.
///
/// Holds `Arc` handles so a fanout (and its members) can itself be
/// installed as the ambient scoped subscriber while callers keep their
/// own handles for snapshotting afterwards.
#[derive(Default)]
pub struct Fanout {
    subscribers: Vec<Arc<dyn Subscriber>>,
}

impl Fanout {
    /// An empty fanout (equivalent to [`Noop`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a subscriber to the broadcast list.
    pub fn push(mut self, subscriber: Arc<dyn Subscriber>) -> Self {
        self.subscribers.push(subscriber);
        self
    }

    /// Number of attached subscribers.
    pub fn len(&self) -> usize {
        self.subscribers.len()
    }

    /// True when no subscriber is attached.
    pub fn is_empty(&self) -> bool {
        self.subscribers.is_empty()
    }

    /// Erases the fanout into a shared subscriber handle, ready for
    /// [`crate::scoped::with_scoped_subscriber`].
    // `dyn Subscriber` carries no Send/Sync bound — the trait admits
    // cheap RefCell-based single-thread subscribers, and scoped installs
    // are thread-local (workers never inherit them) — so this Arc is
    // shared ownership within a thread, not a cross-thread handle.
    #[allow(clippy::arc_with_non_send_sync)]
    pub fn shared(self) -> Arc<dyn Subscriber> {
        Arc::new(self)
    }
}

impl Subscriber for Fanout {
    fn on_event(&self, event: &AnyEvent) {
        for sub in &self.subscribers {
            sub.on_event(event);
        }
    }
}

#[cfg(test)]
// Tests share a `RefCell`-based recorder within one thread; the `Arc` is
// shared ownership, not a cross-thread handle (see `Fanout::shared`).
#[allow(clippy::arc_with_non_send_sync)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// Test subscriber recording event names.
    #[derive(Default)]
    pub(crate) struct Recorder {
        pub(crate) names: RefCell<Vec<&'static str>>,
        pub(crate) events: RefCell<Vec<AnyEvent>>,
    }

    impl Subscriber for Recorder {
        fn on_event(&self, event: &AnyEvent) {
            self.names.borrow_mut().push(event.name());
            self.events.borrow_mut().push(*event);
        }
    }

    #[test]
    fn spans_emit_started_and_finished_with_nonnegative_seconds() {
        let rec = Recorder::default();
        let span = span_start(&rec, Stage::DeltaFit);
        assert_eq!(span.stage(), Stage::DeltaFit);
        let seconds = span_end(&rec, span);
        assert!(seconds >= 0.0);
        assert_eq!(*rec.names.borrow(), vec!["stage_started", "stage_finished"]);
    }

    #[test]
    fn nested_spans_record_their_parent() {
        let rec = Recorder::default();
        let outer = span_start(&rec, Stage::Custom("outer"));
        assert!(outer.id() > 0);
        assert_eq!(outer.parent(), 0, "top-level span is a root");
        let inner = span_start(&rec, Stage::Custom("inner"));
        assert_eq!(inner.parent(), outer.id());
        assert_ne!(inner.id(), outer.id());
        span_end(&rec, inner);
        span_end(&rec, outer);
        // The stack unwound completely.
        assert_eq!(scoped::current_span(), 0);
        let events = rec.events.borrow();
        match (&events[0], &events[3]) {
            (AnyEvent::StageStarted(s), AnyEvent::StageFinished(f)) => {
                assert_eq!(s.id, f.id);
                assert_eq!(f.parent, 0);
            }
            other => panic!("unexpected event order: {other:?}"),
        }
    }

    #[test]
    fn span_ids_are_unique_across_threads() {
        let mut handles = Vec::new();
        for _ in 0..4 {
            handles.push(std::thread::spawn(|| {
                let rec = Recorder::default();
                let span = span_start(&rec, Stage::Explain);
                let id = span.id();
                span_end(&rec, span);
                id
            }));
        }
        let mut ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "span ids collided across threads");
    }

    #[test]
    fn fanout_broadcasts_in_order() {
        let a = Arc::new(Recorder::default());
        let b = Arc::new(Recorder::default());
        let fan = Fanout::new().push(a.clone()).push(b.clone());
        assert_eq!(fan.len(), 2);
        emit(&fan, crate::event::FitCompleted { fidelity: 1.0 });
        assert_eq!(*a.names.borrow(), vec!["fit_completed"]);
        assert_eq!(*b.names.borrow(), vec!["fit_completed"]);
    }

    #[test]
    fn noop_accepts_everything() {
        let noop = Noop;
        emit(&noop, crate::event::FitCompleted { fidelity: 0.5 });
        let span = span_start(&noop, Stage::Custom("bench"));
        let _ = span_end(&noop, span);
    }
}
