//! Log-bucketed latency/size histograms with **deterministic merges**.
//!
//! The ROADMAP's serving and lifecycle work both need percentile-capable
//! distributions (p50/p90/p99/p999) that are cheap to record on hot
//! paths and safe to merge across the worker pool. The classic trap is
//! histogram state that depends on arrival order or on floating-point
//! summation (a running mean, adaptive bucket boundaries): merging such
//! state across threads reintroduces exactly the schedule-dependence the
//! rest of the workspace is built to exclude.
//!
//! [`Histogram`] therefore keeps **integer state only**:
//!
//! * fixed log-linear bucket boundaries — HDR-style, 8 sub-buckets per
//!   power of two, derived from the *bit pattern* of the sample (no
//!   `log2` float math), so every process on every machine buckets a
//!   given value identically;
//! * `u64` bucket counts in a sparse map, plus a `max` tracked as the
//!   sample's bit pattern;
//! * non-finite samples (NaN/±∞) counted separately, never bucketed —
//!   a poisoned input must not corrupt the percentile walk.
//!
//! Merging is element-wise `u64` addition plus a max — exactly
//! associative *and* commutative, so a merge over pool workers in any
//! grouping produces byte-identical snapshots (the pool still merges in
//! worker-index order by convention). Histograms over deterministic
//! quantities (per-dispatch MACs, per-epoch losses) live in the
//! deterministic `dists` section of a metrics snapshot; histograms over
//! wall-clock live in the variable `latency_hists` section — see
//! `crate::metrics`.

use serde::ser::SerializeStruct;
use serde::{Serialize, Serializer};
use std::collections::BTreeMap;

/// Sub-buckets per power of two (bucket width ≈ 12.5% of the value).
const SUB_BUCKETS: u16 = 8;
/// Smallest bucketed exponent: values below `2^MIN_EXP` (≈ 9.1e-13,
/// sub-picosecond as seconds) land in the underflow bucket.
const MIN_EXP: i32 = -40;
/// Largest bucketed exponent: values of `2^64` and above (no realistic
/// latency or MAC count) land in the overflow bucket.
const MAX_EXP: i32 = 63;
/// Bucket index of the overflow bucket (underflow is index 0).
const OVERFLOW: u16 = (MAX_EXP - MIN_EXP + 1) as u16 * SUB_BUCKETS + 1;

/// A log-bucketed histogram with fixed boundaries and `u64`-only state.
///
/// Recording is two map operations; merging is exact (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Histogram {
    count: u64,
    nonfinite: u64,
    max_bits: u64,
    buckets: BTreeMap<u16, u64>,
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The fixed bucket index of a finite sample, or `None` for NaN/±∞.
    ///
    /// Derived from the IEEE-754 bit pattern (biased exponent + top 3
    /// mantissa bits), so no float operation is involved and the mapping
    /// is identical on every platform.
    fn index_of(v: f64) -> Option<u16> {
        if !v.is_finite() {
            return None;
        }
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        // Non-positive values, subnormals (biased exponent 0), and
        // anything below the smallest boundary: underflow bucket.
        if v <= 0.0 || exp < MIN_EXP {
            return Some(0);
        }
        if exp > MAX_EXP {
            return Some(OVERFLOW);
        }
        let sub = ((bits >> 49) & 0x7) as u16;
        Some(1 + (exp - MIN_EXP) as u16 * SUB_BUCKETS + sub)
    }

    /// Upper boundary of a bucket, used as the percentile representative
    /// (conservative: a reported percentile is ≥ the true one, within
    /// one bucket width ≈ 12.5%).
    fn upper_bound(index: u16) -> f64 {
        if index == 0 {
            return (MIN_EXP as f64).exp2();
        }
        if index >= OVERFLOW {
            return f64::MAX;
        }
        let i = index - 1;
        let exp = MIN_EXP + (i / SUB_BUCKETS) as i32;
        let sub = (i % SUB_BUCKETS) as f64;
        // Exact: a power of two times a value with 3 fractional bits.
        (exp as f64).exp2() * (1.0 + (sub + 1.0) / SUB_BUCKETS as f64)
    }

    /// Records one sample. NaN/±∞ increment the `nonfinite` count and
    /// leave the buckets untouched.
    pub fn record(&mut self, v: f64) {
        match Self::index_of(v) {
            None => self.nonfinite += 1,
            Some(index) => {
                if self.count == 0 || v > f64::from_bits(self.max_bits) {
                    self.max_bits = v.to_bits();
                }
                self.count += 1;
                *self.buckets.entry(index).or_insert(0) += 1;
            }
        }
    }

    /// Records an integer sample (MAC counts, byte sizes). Values above
    /// 2^53 lose low bits in the conversion, which cannot move them
    /// across a bucket boundary (buckets are keyed on the top bits).
    pub fn record_u64(&mut self, v: u64) {
        self.record(v as f64);
    }

    /// Total finite samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// NaN/±∞ samples recorded.
    pub fn nonfinite(&self) -> u64 {
        self.nonfinite
    }

    /// True when nothing (finite or not) has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0 && self.nonfinite == 0
    }

    /// Largest finite sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            f64::from_bits(self.max_bits)
        }
    }

    /// Folds `other` into `self`: element-wise `u64` addition plus a
    /// max. Exactly associative and commutative — merge grouping and
    /// order cannot change the resulting state.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count > 0 && (self.count == 0 || other.max() > self.max()) {
            self.max_bits = other.max_bits;
        }
        self.count += other.count;
        self.nonfinite += other.nonfinite;
        for (&index, &n) in &other.buckets {
            *self.buckets.entry(index).or_insert(0) += n;
        }
    }

    /// Nearest-rank quantile over the bucket boundaries: the upper bound
    /// of the bucket holding the `⌈q·count⌉`-th finite sample, capped at
    /// the recorded max. Returns 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&index, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Self::upper_bound(index).min(self.max());
            }
        }
        self.max()
    }

    /// Point-in-time export with the standard percentile ladder.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            nonfinite: self.nonfinite,
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
            buckets: self.buckets.iter().map(|(&k, &v)| (k, v)).collect(),
        }
    }
}

/// Serialized view of a [`Histogram`]: the percentile ladder plus the
/// sparse `[bucket_index, count]` pairs (ascending index). Like every
/// persisted structure in this crate the field order is pinned by a
/// hand-written `Serialize` — snapshots are a public contract, and for
/// the deterministic `dists` section they must be *byte-identical*
/// across thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite samples recorded.
    pub count: u64,
    /// NaN/±∞ samples recorded (never bucketed).
    pub nonfinite: u64,
    /// Largest finite sample (0.0 when empty).
    pub max: f64,
    /// Median (bucket upper bound, nearest-rank).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Sparse `(bucket_index, count)` pairs, ascending by index.
    pub buckets: Vec<(u16, u64)>,
}

impl Serialize for HistogramSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("HistogramSnapshot", 8)?;
        s.serialize_field("count", &self.count)?;
        s.serialize_field("nonfinite", &self.nonfinite)?;
        s.serialize_field("max", &self.max)?;
        s.serialize_field("p50", &self.p50)?;
        s.serialize_field("p90", &self.p90)?;
        s.serialize_field("p99", &self.p99)?;
        s.serialize_field("p999", &self.p999)?;
        s.serialize_field("buckets", &self.buckets)?;
        s.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(values: &[f64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn buckets_are_log_spaced_and_deterministic() {
        // Same value → same bucket; ~12.5% apart → distinct buckets.
        assert_eq!(Histogram::index_of(1.0), Histogram::index_of(1.0));
        assert_ne!(Histogram::index_of(1.0), Histogram::index_of(1.2));
        assert_ne!(Histogram::index_of(1.0), Histogram::index_of(2.0));
        // Within a sub-bucket (<12.5% apart) values share an index.
        assert_eq!(Histogram::index_of(1.0), Histogram::index_of(1.05));
        // Bucket upper bounds are monotone over the whole range.
        let mut prev = 0.0;
        for index in 0..=OVERFLOW {
            let b = Histogram::upper_bound(index);
            assert!(b > prev, "bound {index} not monotone: {b} <= {prev}");
            prev = b;
        }
    }

    #[test]
    fn underflow_overflow_and_zero_land_in_edge_buckets() {
        assert_eq!(Histogram::index_of(0.0), Some(0));
        assert_eq!(Histogram::index_of(-3.0), Some(0));
        assert_eq!(Histogram::index_of(1e-300), Some(0));
        assert_eq!(Histogram::index_of(1e300), Some(OVERFLOW));
        assert_eq!(Histogram::index_of(f64::NAN), None);
        assert_eq!(Histogram::index_of(f64::INFINITY), None);
    }

    #[test]
    fn nonfinite_samples_never_touch_the_buckets() {
        let h = filled(&[1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 2.0]);
        assert_eq!(h.count(), 2);
        assert_eq!(h.nonfinite(), 3);
        assert_eq!(h.snapshot().buckets.iter().map(|&(_, n)| n).sum::<u64>(), 2);
        assert!((h.max() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_within_one_bucket_width() {
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 / 1000.0).collect();
        let h = filled(&values);
        let s = h.snapshot();
        // Bucket width is 12.5%; upper-bound representatives overshoot
        // by at most that (and never past the recorded max).
        for (q, truth) in [(s.p50, 0.5), (s.p90, 0.9), (s.p99, 0.99), (s.p999, 0.999)] {
            assert!(q >= truth * 0.99 && q <= truth * 1.13, "quantile {q} vs true {truth}");
        }
        assert!((s.max - 1.0).abs() < 1e-12);
        assert_eq!(h.quantile(1.0), 1.0, "p100 capped at the recorded max");
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let a = filled(&[0.001, 0.002, f64::NAN, 5.0]);
        let b = filled(&[0.5, 0.0015, 1e-300]);
        let c = filled(&[100.0, f64::INFINITY, 0.25]);

        let left = {
            let mut ab = a.clone();
            ab.merge(&b);
            ab.merge(&c);
            ab
        };
        let right = {
            let mut bc = b.clone();
            bc.merge(&c);
            let mut abc = a.clone();
            abc.merge(&bc);
            abc
        };
        let swapped = {
            let mut cb = c.clone();
            cb.merge(&b);
            cb.merge(&a);
            cb
        };
        assert_eq!(left, right, "merge must be associative");
        assert_eq!(left, swapped, "merge must be commutative");
        let json = serde_json::to_string(&left.snapshot()).unwrap();
        assert_eq!(json, serde_json::to_string(&right.snapshot()).unwrap());
        assert_eq!(json, serde_json::to_string(&swapped.snapshot()).unwrap());
    }

    #[test]
    fn merge_into_empty_equals_the_source() {
        let a = filled(&[0.25, 0.5, f64::NAN]);
        let mut e = Histogram::new();
        e.merge(&a);
        assert_eq!(e, a);
        assert_eq!(e.snapshot(), a.snapshot());
        let empty = Histogram::new().snapshot();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0.0);
        assert_eq!(empty.p999, 0.0);
    }

    #[test]
    fn snapshot_serializes_sparse_buckets() {
        let h = filled(&[1.0, 1.0, 64.0]);
        let json = serde_json::to_value(&h.snapshot()).unwrap();
        assert_eq!(json["count"], 2 + 1);
        assert_eq!(json["nonfinite"], 0);
        let buckets = json["buckets"].as_array().unwrap();
        assert_eq!(buckets.len(), 2, "sparse: only touched buckets serialize");
        assert_eq!(buckets[0][1], 2, "two samples share the 1.0 bucket");
        assert_eq!(buckets[1][1], 1);
    }

    #[test]
    fn record_u64_matches_the_float_path() {
        let mut a = Histogram::new();
        a.record_u64(6000);
        let mut b = Histogram::new();
        b.record(6000.0);
        assert_eq!(a, b);
    }
}
