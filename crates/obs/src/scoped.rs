//! The ambient (thread-local) subscriber scope, the span-hierarchy
//! stack, and the deferred delivery buffer for hot-path events.
//!
//! The dense kernels in `agua-nn::parallel` sit below dozens of call
//! sites; threading a `&dyn Subscriber` through every matrix operation
//! would contaminate the whole numeric API. Instead, a subscriber is
//! installed for a region of work with [`with_scoped_subscriber`] and
//! the kernels emit through [`emit_scoped`] / [`emit_scoped_deferred`].
//!
//! Three properties keep this deterministic and near-free:
//!
//! * The scope is **thread-local and not inherited by worker threads**:
//!   kernels running on `agua-nn`'s pool workers see no subscriber, so
//!   events are emitted only from the dispatching thread and their
//!   order never depends on thread scheduling (mirroring how
//!   `ThreadConfig`'s scoped override behaves).
//! * When no scope is installed, [`emit_scoped`] is one thread-local
//!   flag read; the event itself is built lazily inside a closure, so
//!   the disabled hot path does no allocation or formatting.
//! * High-frequency events (kernel dispatches — tens of thousands per
//!   fit) go through [`emit_scoped_deferred`], which appends to a
//!   fixed-capacity thread-local buffer instead of taking the
//!   subscriber's lock per event. The buffer drains to the subscriber
//!   at span close ([`flush_deferred`], called by `span_end`), at scope
//!   exit, or inline when full — the deterministic aggregates are
//!   additive, so late delivery cannot change them, and no event is
//!   ever dropped.
//!
//! The module also owns the **span stack**: `span_start`/`span_end`
//! push and pop process-unique span ids here, giving every
//! `StageStarted`/`StageFinished` event a `parent` id and subscribers
//! (notably `TraceWriter`) the full stage hierarchy.

use crate::event::AnyEvent;
use crate::subscriber::Subscriber;
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Deferred events per thread before an inline forced drain. Sized so a
/// full δ+Ω fit (a few thousand dispatches per epoch) drains a handful
/// of times, while the buffer stays well under a megabyte.
const DEFER_CAPACITY: usize = 1024;

thread_local! {
    static CURRENT: RefCell<Option<Arc<dyn Subscriber>>> = const { RefCell::new(None) };
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    /// Open span ids on this thread, innermost last (see `span_start`).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Hot-path events awaiting delivery to the ambient subscriber.
    static DEFERRED: RefCell<Vec<AnyEvent>> = const { RefCell::new(Vec::new()) };
    /// Times the deferral buffer filled and drained inline mid-kernel.
    static FORCED_DRAINS: Cell<u64> = const { Cell::new(0) };
}

/// True when the calling thread has an ambient subscriber installed.
#[inline]
pub fn scoped_active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Runs `f` with `subscriber` installed as the calling thread's ambient
/// subscriber, restoring the previous one afterwards (also on panic).
/// Deferred events are flushed to `subscriber` before it is uninstalled,
/// so a scope never leaks buffered events to its successor.
//= spec: specs/pool-protocol.toml#obs-non-inheritance
//# the ambient subscriber is thread-local, so kernels running on pool
//# workers observe no subscriber unless one is explicitly installed
pub fn with_scoped_subscriber<R>(subscriber: Arc<dyn Subscriber>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<dyn Subscriber>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            // Deliver this scope's buffered events while its subscriber
            // is still the ambient one (runs on panic unwind too).
            flush_deferred();
            let prev = self.0.take();
            ACTIVE.with(|a| a.set(prev.is_some()));
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    // A fresh scope must not inherit (or later deliver) events buffered
    // under the previous subscriber.
    flush_deferred();
    let _restore = Restore(CURRENT.with(|c| c.borrow_mut().replace(subscriber)));
    ACTIVE.with(|a| a.set(true));
    f()
}

/// Emits the event built by `build` to the ambient subscriber, if one
/// is installed; otherwise returns after a single flag check without
/// invoking `build`. Synchronous — use [`emit_scoped_deferred`] for
/// events emitted at kernel frequency.
#[inline]
pub fn emit_scoped(build: impl FnOnce() -> AnyEvent) {
    if !scoped_active() {
        return;
    }
    // Clone the handle out of the cell so a subscriber that itself
    // emits (or installs a nested scope) cannot hit a double borrow.
    let subscriber = CURRENT.with(|c| c.borrow().clone());
    if let Some(subscriber) = subscriber {
        subscriber.on_event(&build());
    }
}

/// Like [`emit_scoped`], but appends the event to the thread-local
/// deferral buffer instead of delivering it synchronously — one `Vec`
/// push on the hot path, no subscriber lock. The buffer drains at span
/// close, at scope exit, or inline when full (counted by
/// [`deferred_stats`]); delivery order within the buffer is preserved.
#[inline]
pub fn emit_scoped_deferred(build: impl FnOnce() -> AnyEvent) {
    if !scoped_active() {
        return;
    }
    let full = DEFERRED.with(|d| {
        let mut d = d.borrow_mut();
        d.push(build());
        d.len() >= DEFER_CAPACITY
    });
    if full {
        FORCED_DRAINS.with(|c| c.set(c.get() + 1));
        flush_deferred();
    }
}

/// Delivers every buffered event to the ambient subscriber, in emission
/// order. A no-op without a scope or with an empty buffer. Called
/// automatically by `span_end` and at scope exit; public for callers
/// that snapshot a `Metrics` subscriber mid-scope.
pub fn flush_deferred() {
    let pending: Vec<AnyEvent> = DEFERRED.with(|d| {
        let mut d = d.borrow_mut();
        if d.is_empty() {
            Vec::new()
        } else {
            std::mem::take(&mut *d)
        }
    });
    if pending.is_empty() {
        return;
    }
    let subscriber = CURRENT.with(|c| c.borrow().clone());
    if let Some(subscriber) = subscriber {
        for event in &pending {
            subscriber.on_event(event);
        }
    }
    // Without a subscriber (scope already torn down) the events are
    // observations with nowhere to go; dropping them is correct.
}

/// `(buffered_now, forced_drains)` for the calling thread: how many
/// events currently await delivery and how many times the buffer filled
/// and drained inline. Feeds overhead accounting in callers.
pub fn deferred_stats() -> (usize, u64) {
    (DEFERRED.with(|d| d.borrow().len()), FORCED_DRAINS.with(Cell::get))
}

/// The innermost open span id on this thread, or 0 at the root.
pub fn current_span() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// Pushes a span id; called by `span_start`.
pub(crate) fn push_span(id: u64) {
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
}

/// Pops a span id; called by `span_end`. Removes the topmost occurrence
/// of `id`, tolerating out-of-order closes of overlapping spans.
pub(crate) fn pop_span(id: u64) {
    SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&v| v == id) {
            stack.remove(pos);
        }
    });
}

#[cfg(test)]
// Tests share a `RefCell`-based recorder within one thread; the `Arc` is
// shared ownership, not a cross-thread handle (see `Fanout::shared`).
#[allow(clippy::arc_with_non_send_sync)]
mod tests {
    use super::*;
    use crate::event::{Event, FitCompleted, Kernel, KernelDispatched};
    use std::cell::RefCell;

    #[derive(Default)]
    struct Recorder {
        names: RefCell<Vec<&'static str>>,
    }

    impl Subscriber for Recorder {
        fn on_event(&self, event: &AnyEvent) {
            self.names.borrow_mut().push(event.name());
        }
    }

    fn dispatch(macs: u64) -> AnyEvent {
        KernelDispatched {
            kernel: Kernel::Matmul,
            rows: 1,
            inner: 1,
            cols: 1,
            macs,
            threads: 1,
            seq_fallback: true,
            pool_dispatch: false,
            queue_depth: 0,
            seconds: 0.0,
        }
        .into_any()
    }

    #[test]
    fn emit_scoped_is_silent_without_a_scope() {
        assert!(!scoped_active());
        let mut built = false;
        emit_scoped(|| {
            built = true;
            FitCompleted { fidelity: 1.0 }.into_any()
        });
        assert!(!built, "event must not even be built without a scope");
        emit_scoped_deferred(|| {
            built = true;
            FitCompleted { fidelity: 1.0 }.into_any()
        });
        assert!(!built, "deferred emission must also be gated on the scope flag");
    }

    #[test]
    fn scope_delivers_events_and_restores() {
        let rec = Arc::new(Recorder::default());
        with_scoped_subscriber(rec.clone(), || {
            assert!(scoped_active());
            emit_scoped(|| FitCompleted { fidelity: 0.5 }.into_any());
        });
        assert!(!scoped_active());
        assert_eq!(*rec.names.borrow(), vec!["fit_completed"]);
    }

    #[test]
    fn deferred_events_arrive_by_scope_exit_in_order() {
        let rec = Arc::new(Recorder::default());
        with_scoped_subscriber(rec.clone(), || {
            emit_scoped_deferred(|| dispatch(1));
            emit_scoped(|| FitCompleted { fidelity: 0.5 }.into_any());
            // The deferred event has not been delivered yet…
            assert_eq!(*rec.names.borrow(), vec!["fit_completed"]);
            emit_scoped_deferred(|| dispatch(2));
        });
        // …but arrives (in emission order) before the scope closes.
        assert_eq!(
            *rec.names.borrow(),
            vec!["fit_completed", "kernel_dispatched", "kernel_dispatched"]
        );
    }

    #[test]
    fn full_buffer_forces_an_inline_drain() {
        let rec = Arc::new(Recorder::default());
        let (_, forced_before) = deferred_stats();
        with_scoped_subscriber(rec.clone(), || {
            for i in 0..(DEFER_CAPACITY + 10) {
                emit_scoped_deferred(|| dispatch(i as u64));
            }
            // Capacity events were force-drained; the overflow waits.
            assert_eq!(rec.names.borrow().len(), DEFER_CAPACITY);
            assert_eq!(deferred_stats().0, 10);
        });
        assert_eq!(rec.names.borrow().len(), DEFER_CAPACITY + 10, "nothing dropped");
        assert_eq!(deferred_stats().1, forced_before + 1);
    }

    #[test]
    fn explicit_flush_delivers_mid_scope() {
        let rec = Arc::new(Recorder::default());
        with_scoped_subscriber(rec.clone(), || {
            emit_scoped_deferred(|| dispatch(3));
            assert!(rec.names.borrow().is_empty());
            flush_deferred();
            assert_eq!(rec.names.borrow().len(), 1);
            assert_eq!(deferred_stats().0, 0);
        });
    }

    #[test]
    fn scopes_nest_and_restore_the_outer_subscriber() {
        let outer = Arc::new(Recorder::default());
        let inner = Arc::new(Recorder::default());
        with_scoped_subscriber(outer.clone(), || {
            // Buffered before the nested scope: must go to `outer`.
            emit_scoped_deferred(|| dispatch(1));
            with_scoped_subscriber(inner.clone(), || {
                emit_scoped(|| FitCompleted { fidelity: 0.1 }.into_any());
            });
            emit_scoped(|| FitCompleted { fidelity: 0.2 }.into_any());
        });
        assert_eq!(*inner.names.borrow(), vec!["fit_completed"]);
        assert_eq!(*outer.names.borrow(), vec!["kernel_dispatched", "fit_completed"]);
    }

    #[test]
    fn scope_restores_on_panic() {
        let rec = Arc::new(Recorder::default());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_scoped_subscriber(rec.clone(), || {
                emit_scoped_deferred(|| dispatch(9));
                panic!("boom")
            })
        }));
        assert!(caught.is_err());
        assert!(!scoped_active());
        // The unwind still delivered the buffered event.
        assert_eq!(*rec.names.borrow(), vec!["kernel_dispatched"]);
    }

    #[test]
    fn worker_threads_do_not_inherit_the_scope() {
        let rec = Arc::new(Recorder::default());
        with_scoped_subscriber(rec, || {
            std::thread::scope(|s| {
                s.spawn(|| {
                    assert!(!scoped_active(), "scope must not leak to workers");
                });
            });
        });
    }

    #[test]
    fn span_stack_tracks_nesting_per_thread() {
        assert_eq!(current_span(), 0);
        push_span(10);
        push_span(11);
        assert_eq!(current_span(), 11);
        // Out-of-order close of an outer span leaves the inner intact.
        pop_span(10);
        assert_eq!(current_span(), 11);
        pop_span(11);
        assert_eq!(current_span(), 0);
        std::thread::scope(|s| {
            s.spawn(|| assert_eq!(current_span(), 0, "span stack is thread-local"));
        });
    }
}
