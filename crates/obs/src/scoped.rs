//! The ambient (thread-local) subscriber scope.
//!
//! The dense kernels in `agua-nn::parallel` sit below dozens of call
//! sites; threading a `&dyn Subscriber` through every matrix operation
//! would contaminate the whole numeric API. Instead, a subscriber is
//! installed for a region of work with [`with_scoped_subscriber`] and
//! the kernels emit through [`emit_scoped`].
//!
//! Two properties keep this deterministic and near-free:
//!
//! * The scope is **thread-local and not inherited by worker threads**:
//!   kernels running on `agua-nn`'s scoped workers see no subscriber,
//!   so events are emitted only from the dispatching thread and their
//!   order never depends on thread scheduling (mirroring how
//!   `ThreadConfig`'s scoped override behaves).
//! * When no scope is installed, [`emit_scoped`] is one thread-local
//!   flag read; the event itself is built lazily inside a closure, so
//!   the disabled hot path does no allocation or formatting.

use crate::event::AnyEvent;
use crate::subscriber::Subscriber;
use std::cell::{Cell, RefCell};
use std::rc::Rc;

thread_local! {
    static CURRENT: RefCell<Option<Rc<dyn Subscriber>>> = const { RefCell::new(None) };
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// True when the calling thread has an ambient subscriber installed.
#[inline]
pub fn scoped_active() -> bool {
    ACTIVE.with(Cell::get)
}

/// Runs `f` with `subscriber` installed as the calling thread's ambient
/// subscriber, restoring the previous one afterwards (also on panic).
pub fn with_scoped_subscriber<R>(subscriber: Rc<dyn Subscriber>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Rc<dyn Subscriber>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            ACTIVE.with(|a| a.set(prev.is_some()));
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let _restore = Restore(CURRENT.with(|c| c.borrow_mut().replace(subscriber)));
    ACTIVE.with(|a| a.set(true));
    f()
}

/// Emits the event built by `build` to the ambient subscriber, if one
/// is installed; otherwise returns after a single flag check without
/// invoking `build`.
#[inline]
pub fn emit_scoped(build: impl FnOnce() -> AnyEvent) {
    if !scoped_active() {
        return;
    }
    // Clone the handle out of the cell so a subscriber that itself
    // emits (or installs a nested scope) cannot hit a double borrow.
    let subscriber = CURRENT.with(|c| c.borrow().clone());
    if let Some(subscriber) = subscriber {
        subscriber.on_event(&build());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, FitCompleted};
    use std::cell::RefCell;

    #[derive(Default)]
    struct Recorder {
        names: RefCell<Vec<&'static str>>,
    }

    impl Subscriber for Recorder {
        fn on_event(&self, event: &AnyEvent) {
            self.names.borrow_mut().push(event.name());
        }
    }

    #[test]
    fn emit_scoped_is_silent_without_a_scope() {
        assert!(!scoped_active());
        let mut built = false;
        emit_scoped(|| {
            built = true;
            FitCompleted { fidelity: 1.0 }.into_any()
        });
        assert!(!built, "event must not even be built without a scope");
    }

    #[test]
    fn scope_delivers_events_and_restores() {
        let rec = Rc::new(Recorder::default());
        with_scoped_subscriber(rec.clone(), || {
            assert!(scoped_active());
            emit_scoped(|| FitCompleted { fidelity: 0.5 }.into_any());
        });
        assert!(!scoped_active());
        assert_eq!(*rec.names.borrow(), vec!["fit_completed"]);
    }

    #[test]
    fn scopes_nest_and_restore_the_outer_subscriber() {
        let outer = Rc::new(Recorder::default());
        let inner = Rc::new(Recorder::default());
        with_scoped_subscriber(outer.clone(), || {
            with_scoped_subscriber(inner.clone(), || {
                emit_scoped(|| FitCompleted { fidelity: 0.1 }.into_any());
            });
            emit_scoped(|| FitCompleted { fidelity: 0.2 }.into_any());
        });
        assert_eq!(inner.names.borrow().len(), 1);
        assert_eq!(outer.names.borrow().len(), 1);
    }

    #[test]
    fn scope_restores_on_panic() {
        let rec = Rc::new(Recorder::default());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_scoped_subscriber(rec, || panic!("boom"))
        }));
        assert!(caught.is_err());
        assert!(!scoped_active());
    }

    #[test]
    fn worker_threads_do_not_inherit_the_scope() {
        let rec = Rc::new(Recorder::default());
        with_scoped_subscriber(rec, || {
            std::thread::scope(|s| {
                s.spawn(|| {
                    assert!(!scoped_active(), "scope must not leak to workers");
                });
            });
        });
    }
}
