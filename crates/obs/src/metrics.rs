//! The [`Metrics`] subscriber: in-memory aggregation of pipeline events
//! into counters, gauges, loss curves, value histograms, and timing
//! statistics, exported as a serde-serializable [`MetricsSnapshot`].
//!
//! ## Determinism
//!
//! The snapshot keeps two kinds of state apart:
//!
//! * **Deterministic aggregates** — `counters`, `gauges`, `curves`, and
//!   `dists` (log-bucketed [`Histogram`]s of *values*: per-epoch losses,
//!   per-dispatch MAC counts). These derive only from seeded computation
//!   and are identical at any `AGUA_THREADS` value — histogram merges
//!   are exact integer additions, so bucket counts are byte-identical
//!   across thread counts.
//! * **Environment-dependent observations** — `spans` and `latencies`
//!   (wall-clock order statistics), `latency_hists` (log-bucketed
//!   histograms of wall-clock seconds: span durations, per-explanation
//!   latency, pool chunk times), `scheduling` (how many dispatches
//!   actually went parallel, per-worker busy/parked time), and
//!   `self_overhead` (what the telemetry itself cost). These
//!   legitimately vary run to run.
//!
//! [`MetricsSnapshot::deterministic`] strips the latter, giving the
//! exact structure the `tests/obs_determinism.rs` and
//! `tests/hist_determinism.rs` integration tests compare across thread
//! counts.
//!
//! ## Self-overhead accounting
//!
//! Every `on_event` call is timed on the monotonic clock and folded
//! into the `self_overhead` section (`events`, `aggregation_ns`).
//! Callers compare `aggregation_ns` against a span's wall-clock time to
//! get a direct measurement of observability cost — the quickstart
//! example prints this ratio and `ci.sh` gates on it.

use crate::event::AnyEvent;
use crate::hist::{Histogram, HistogramSnapshot};
use crate::subscriber::Subscriber;
use serde::ser::SerializeStruct;
use serde::{Serialize, Serializer};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Order statistics of a set of timing samples, in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub total_s: f64,
    /// Minimum sample.
    pub min_s: f64,
    /// Mean sample.
    pub mean_s: f64,
    /// Maximum sample.
    pub max_s: f64,
    /// Median (nearest-rank on the sorted samples).
    pub p50_s: f64,
    /// 90th percentile (nearest-rank on the sorted samples).
    pub p90_s: f64,
    /// 99th percentile (nearest-rank on the sorted samples).
    pub p99_s: f64,
    /// 99.9th percentile (nearest-rank on the sorted samples).
    pub p999_s: f64,
}

impl TimingStats {
    /// Computes the stats of a non-empty sample set.
    fn from_samples(samples: &[f64]) -> Self {
        debug_assert!(!samples.is_empty());
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timing samples"));
        let total: f64 = sorted.iter().sum();
        let rank = |q: f64| {
            let idx = (q * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        Self {
            count: sorted.len() as u64,
            total_s: total,
            min_s: sorted[0],
            mean_s: total / sorted.len() as f64,
            max_s: sorted[sorted.len() - 1],
            p50_s: rank(0.5),
            p90_s: rank(0.9),
            p99_s: rank(0.99),
            p999_s: rank(0.999),
        }
    }
}

// Like `AnyEvent`, the snapshot's JSON layout is a public contract
// (persisted next to model artifacts, read by `jq`/tooling), so the
// impls are written by hand to pin field names and order.
impl Serialize for TimingStats {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("TimingStats", 9)?;
        s.serialize_field("count", &self.count)?;
        s.serialize_field("total_s", &self.total_s)?;
        s.serialize_field("min_s", &self.min_s)?;
        s.serialize_field("mean_s", &self.mean_s)?;
        s.serialize_field("max_s", &self.max_s)?;
        s.serialize_field("p50_s", &self.p50_s)?;
        s.serialize_field("p90_s", &self.p90_s)?;
        s.serialize_field("p99_s", &self.p99_s)?;
        s.serialize_field("p999_s", &self.p999_s)?;
        s.end()
    }
}

/// A point-in-time export of a [`Metrics`] subscriber.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters (epoch counts, kernel dispatches, MAC totals).
    /// Deterministic for a fixed seed, at any thread count.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins scalar observations (final losses, fidelity).
    /// Deterministic for a fixed seed, at any thread count.
    pub gauges: BTreeMap<String, f32>,
    /// Append-ordered series (the per-epoch δ and Ω loss curves).
    /// Deterministic for a fixed seed, at any thread count.
    pub curves: BTreeMap<String, Vec<f32>>,
    /// Log-bucketed histograms of *values* (losses, MAC counts). Bucket
    /// counts are deterministic for a fixed seed, at any thread count.
    pub dists: BTreeMap<String, HistogramSnapshot>,
    /// Wall-clock span statistics per stage. Varies run to run.
    pub spans: BTreeMap<String, TimingStats>,
    /// Wall-clock latency statistics (per-explanation). Varies run to run.
    pub latencies: BTreeMap<String, TimingStats>,
    /// Log-bucketed histograms of wall-clock *seconds* (span durations,
    /// explanation latency, pool chunk times). Varies run to run.
    pub latency_hists: BTreeMap<String, HistogramSnapshot>,
    /// Thread-scheduling counters (parallel vs sequential dispatches,
    /// peak worker counts, per-worker utilization). Varies with the
    /// configured thread count.
    pub scheduling: BTreeMap<String, u64>,
    /// What the telemetry itself cost: `events` handled and total
    /// `aggregation_ns` spent inside `on_event`. Varies run to run.
    pub self_overhead: BTreeMap<String, u64>,
}

impl Serialize for MetricsSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("MetricsSnapshot", 9)?;
        s.serialize_field("counters", &self.counters)?;
        s.serialize_field("gauges", &self.gauges)?;
        s.serialize_field("curves", &self.curves)?;
        s.serialize_field("dists", &self.dists)?;
        s.serialize_field("spans", &self.spans)?;
        s.serialize_field("latencies", &self.latencies)?;
        s.serialize_field("latency_hists", &self.latency_hists)?;
        s.serialize_field("scheduling", &self.scheduling)?;
        s.serialize_field("self_overhead", &self.self_overhead)?;
        s.end()
    }
}

impl MetricsSnapshot {
    /// The thread-count-invariant portion of the snapshot: counters,
    /// gauges, curves, and value histograms, with wall-clock and
    /// scheduling state cleared. Two runs of the same seeded workload
    /// produce equal deterministic views regardless of `AGUA_THREADS`.
    pub fn deterministic(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            curves: self.curves.clone(),
            dists: self.dists.clone(),
            spans: BTreeMap::new(),
            latencies: BTreeMap::new(),
            latency_hists: BTreeMap::new(),
            scheduling: BTreeMap::new(),
            self_overhead: BTreeMap::new(),
        }
    }

    /// Kernel-dispatch counters only (`kernel.*`), the slice of the
    /// snapshot the parallel-backend bench persists.
    pub fn kernel_counters(&self) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with("kernel."))
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f32>,
    curves: BTreeMap<String, Vec<f32>>,
    dists: BTreeMap<String, Histogram>,
    span_samples: BTreeMap<String, Vec<f64>>,
    latency_samples: BTreeMap<String, Vec<f64>>,
    latency_hists: BTreeMap<String, Histogram>,
    scheduling: BTreeMap<String, u64>,
    self_events: u64,
    self_ns: u64,
}

/// Aggregating subscriber: counters + histograms behind a mutex, safe to
/// share by reference. All aggregation happens on the emitting thread;
/// the events themselves arrive in a deterministic order because the
/// pipeline emits only from the dispatching thread (see the crate docs).
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<MetricsInner>,
}

impl Metrics {
    /// A fresh, empty metrics aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges an externally recorded latency histogram (e.g. the pool's
    /// per-worker chunk durations, merged in worker-index order) into
    /// the variable `latency_hists` section under `key`.
    pub fn merge_latency_hist(&self, key: &str, hist: &Histogram) {
        if hist.is_empty() && hist.nonfinite() == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("metrics mutex poisoned");
        inner.latency_hists.entry(key.to_string()).or_default().merge(hist);
    }

    /// Exports the current aggregate state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics mutex poisoned");
        let stats = |samples: &BTreeMap<String, Vec<f64>>| {
            samples
                .iter()
                .map(|(k, v)| (k.clone(), TimingStats::from_samples(v)))
                .collect::<BTreeMap<_, _>>()
        };
        let hists = |hists: &BTreeMap<String, Histogram>| {
            hists.iter().map(|(k, h)| (k.clone(), h.snapshot())).collect::<BTreeMap<_, _>>()
        };
        let mut self_overhead = BTreeMap::new();
        self_overhead.insert("events".to_string(), inner.self_events);
        self_overhead.insert("aggregation_ns".to_string(), inner.self_ns);
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            curves: inner.curves.clone(),
            dists: hists(&inner.dists),
            spans: stats(&inner.span_samples),
            latencies: stats(&inner.latency_samples),
            latency_hists: hists(&inner.latency_hists),
            scheduling: inner.scheduling.clone(),
            self_overhead,
        }
    }
}

impl Subscriber for Metrics {
    fn on_event(&self, event: &AnyEvent) {
        // Self-overhead measurement: the clock reads bracket the lock
        // acquisition and the aggregation body, so `aggregation_ns` is
        // the full cost this subscriber imposes on the emitting thread.
        let t0 = Instant::now();
        let mut inner = self.inner.lock().expect("metrics mutex poisoned");
        match event {
            AnyEvent::StageStarted(_) => {}
            AnyEvent::StageFinished(e) => {
                let stage = e.stage.as_str();
                inner.span_samples.entry(stage.to_string()).or_default().push(e.seconds);
                inner.latency_hists.entry(format!("span.{stage}")).or_default().record(e.seconds);
            }
            AnyEvent::EpochCompleted(e) => {
                let stage = e.stage.as_str();
                *inner.counters.entry(format!("{stage}.epochs")).or_insert(0) += 1;
                inner.curves.entry(format!("{stage}.loss")).or_default().push(e.loss);
                inner.gauges.insert(format!("{stage}.final_loss"), e.loss);
                inner.dists.entry(format!("{stage}.loss")).or_default().record(e.loss as f64);
            }
            AnyEvent::KernelDispatched(e) => {
                let kernel = e.kernel.as_str();
                *inner.counters.entry(format!("kernel.{kernel}.dispatches")).or_insert(0) += 1;
                *inner.counters.entry(format!("kernel.{kernel}.macs")).or_insert(0) += e.macs;
                inner.dists.entry(format!("kernel.{kernel}.macs")).or_default().record_u64(e.macs);
                let mode = if e.seq_fallback { "seq_fallback" } else { "parallel" };
                *inner.scheduling.entry(format!("kernel.{kernel}.{mode}")).or_insert(0) += 1;
                let peak =
                    inner.scheduling.entry(format!("kernel.{kernel}.max_threads")).or_insert(0);
                *peak = (*peak).max(e.threads as u64);
                // Pool usage depends on the configured thread count, so
                // these live in `scheduling`, not the deterministic
                // counters.
                if e.pool_dispatch {
                    *inner
                        .scheduling
                        .entry(format!("kernel.{kernel}.pool_dispatches"))
                        .or_insert(0) += 1;
                }
                let depth =
                    inner.scheduling.entry(format!("kernel.{kernel}.max_queue_depth")).or_insert(0);
                *depth = (*depth).max(e.queue_depth as u64);
                // Kernel wall-clock is only measured when a scoped
                // subscriber was active at dispatch time (0.0 means
                // "not timed"); like the span histograms it is
                // variable state, never a deterministic counter.
                if e.seconds > 0.0 {
                    inner
                        .latency_hists
                        .entry(format!("kernel.{kernel}.seconds"))
                        .or_default()
                        .record(e.seconds);
                }
            }
            AnyEvent::LabelingStageFinished(e) => {
                *inner.counters.entry("labeling.runs".to_string()).or_insert(0) += 1;
                *inner.counters.entry("labeling.inputs".to_string()).or_insert(0) +=
                    e.inputs as u64;
                inner.gauges.insert("labeling.concepts".to_string(), e.concepts as f32);
                inner.gauges.insert("labeling.classes".to_string(), e.classes as f32);
            }
            AnyEvent::ExplanationProduced(e) => {
                let kind = e.kind.as_str();
                *inner.counters.entry(format!("explain.{kind}.count")).or_insert(0) += 1;
                inner.latency_samples.entry(format!("explain.{kind}")).or_default().push(e.seconds);
                inner.latency_hists.entry(format!("explain.{kind}")).or_default().record(e.seconds);
            }
            AnyEvent::FitCompleted(e) => {
                *inner.counters.entry("fit.completed".to_string()).or_insert(0) += 1;
                inner.gauges.insert("fit.fidelity".to_string(), e.fidelity);
            }
            // Per-worker utilization is pure scheduling state: wall
            // clock and thread count shape every field.
            AnyEvent::PoolWorkerUtilization(e) => {
                let w = format!("pool.worker{:02}", e.worker);
                inner.scheduling.insert(format!("{w}.busy_us"), e.busy_ns / 1_000);
                inner.scheduling.insert(format!("{w}.parked_us"), e.parked_ns / 1_000);
                inner.scheduling.insert(format!("{w}.wakeups"), e.wakeups);
                inner.scheduling.insert(format!("{w}.chunks"), e.chunks);
                *inner.scheduling.entry("pool.ring_dropped".to_string()).or_insert(0) +=
                    e.ring_dropped;
            }
            // Whether the store hits or misses depends on what earlier
            // runs left under `results/cache/`, so like pool usage these
            // live in `scheduling`, not the deterministic counters.
            AnyEvent::ArtifactHit(e) => {
                *inner.scheduling.entry(format!("artifact.{}.hits", e.kind)).or_insert(0) += 1;
            }
            AnyEvent::ArtifactMiss(e) => {
                *inner.scheduling.entry(format!("artifact.{}.misses", e.kind)).or_insert(0) += 1;
            }
            AnyEvent::ArtifactWrite(e) => {
                *inner.scheduling.entry(format!("artifact.{}.writes", e.kind)).or_insert(0) += 1;
                *inner
                    .scheduling
                    .entry(format!("artifact.{}.bytes_written", e.kind))
                    .or_insert(0) += e.bytes;
            }
            // Batch composition depends on request arrival timing, so
            // every field is scheduling/latency state.
            AnyEvent::EngineBatchFlushed(e) => {
                *inner.scheduling.entry(format!("engine.{}.batches", e.app)).or_insert(0) += 1;
                *inner.scheduling.entry(format!("engine.{}.coalesced", e.app)).or_insert(0) +=
                    e.size as u64;
                let peak =
                    inner.scheduling.entry(format!("engine.{}.max_batch", e.app)).or_insert(0);
                *peak = (*peak).max(e.size as u64);
                inner
                    .latency_hists
                    .entry(format!("engine.{}.batch_seconds", e.app))
                    .or_default()
                    .record(e.seconds);
            }
            AnyEvent::ServeRequestHandled(e) => {
                let class = (e.status / 100).clamp(1, 5);
                *inner.scheduling.entry(format!("serve.status.{class}xx")).or_insert(0) += 1;
                inner
                    .latency_hists
                    .entry("serve.request_seconds".to_string())
                    .or_default()
                    .record(e.seconds);
                inner
                    .latency_hists
                    .entry(format!("serve.tenant.{:016x}.seconds", e.tenant))
                    .or_default()
                    .record(e.seconds);
            }
            AnyEvent::ServeRequestRejected(e) => {
                *inner.scheduling.entry("serve.rejected_429".to_string()).or_insert(0) += 1;
                *inner
                    .scheduling
                    .entry(format!("serve.tenant.{:016x}.rejected", e.tenant))
                    .or_insert(0) += 1;
            }
            AnyEvent::CheckpointReloaded(e) => {
                *inner.scheduling.entry(format!("engine.{}.reloads", e.app)).or_insert(0) += 1;
                inner.scheduling.insert(format!("engine.{}.generation", e.app), e.generation);
            }
        }
        inner.self_events += 1;
        inner.self_ns += t0.elapsed().as_nanos() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::*;
    use crate::subscriber::emit;

    #[test]
    fn serve_events_aggregate_into_scheduling_and_histograms() {
        let m = Metrics::new();
        emit(&m, EngineBatchFlushed { app: "ddos", size: 3, seconds: 0.004 });
        emit(&m, EngineBatchFlushed { app: "ddos", size: 7, seconds: 0.008 });
        emit(&m, ServeRequestHandled { tenant: 0xA, status: 200, seconds: 0.002 });
        emit(&m, ServeRequestHandled { tenant: 0xA, status: 200, seconds: 0.003 });
        emit(&m, ServeRequestHandled { tenant: 0xB, status: 400, seconds: 0.001 });
        emit(&m, ServeRequestRejected { tenant: 0xB, capacity: 64 });
        emit(&m, CheckpointReloaded { app: "ddos", generation: 2 });
        let snap = m.snapshot();
        assert_eq!(snap.scheduling["engine.ddos.batches"], 2);
        assert_eq!(snap.scheduling["engine.ddos.coalesced"], 10);
        assert_eq!(snap.scheduling["engine.ddos.max_batch"], 7);
        assert_eq!(snap.scheduling["serve.status.2xx"], 2);
        assert_eq!(snap.scheduling["serve.status.4xx"], 1);
        assert_eq!(snap.scheduling["serve.rejected_429"], 1);
        assert_eq!(snap.scheduling["serve.tenant.000000000000000b.rejected"], 1);
        assert_eq!(snap.scheduling["engine.ddos.reloads"], 1);
        assert_eq!(snap.scheduling["engine.ddos.generation"], 2);
        assert_eq!(snap.latency_hists["serve.request_seconds"].count, 3);
        assert_eq!(snap.latency_hists["serve.tenant.000000000000000a.seconds"].count, 2);
        assert_eq!(snap.latency_hists["engine.ddos.batch_seconds"].count, 2);
        // None of the serve events may touch the deterministic section.
        assert!(snap
            .counters
            .keys()
            .all(|k| !k.starts_with("serve.") && !k.starts_with("engine.")));
    }

    fn sample_metrics() -> Metrics {
        let m = Metrics::new();
        for epoch in 0..4 {
            emit(
                &m,
                EpochCompleted { stage: Stage::DeltaFit, epoch, loss: 1.0 / (epoch + 1) as f32 },
            );
        }
        emit(&m, StageFinished { stage: Stage::DeltaFit, id: 1, parent: 0, seconds: 0.25 });
        emit(
            &m,
            KernelDispatched {
                kernel: Kernel::Matmul,
                rows: 10,
                inner: 20,
                cols: 30,
                macs: 6000,
                threads: 4,
                seq_fallback: false,
                pool_dispatch: true,
                queue_depth: 2,
                seconds: 2e-5,
            },
        );
        emit(
            &m,
            KernelDispatched {
                kernel: Kernel::Matmul,
                rows: 2,
                inner: 2,
                cols: 2,
                macs: 8,
                threads: 1,
                seq_fallback: true,
                pool_dispatch: false,
                queue_depth: 0,
                seconds: 0.0,
            },
        );
        emit(
            &m,
            ExplanationProduced { kind: ExplanationKind::Factual, output_class: 1, seconds: 1e-4 },
        );
        emit(&m, FitCompleted { fidelity: 0.93 });
        m
    }

    #[test]
    fn aggregates_epochs_into_counters_curves_and_gauges() {
        let snap = sample_metrics().snapshot();
        assert_eq!(snap.counters["delta_fit.epochs"], 4);
        assert_eq!(snap.curves["delta_fit.loss"].len(), 4);
        assert!((snap.gauges["delta_fit.final_loss"] - 0.25).abs() < 1e-6);
        assert!((snap.gauges["fit.fidelity"] - 0.93).abs() < 1e-6);
    }

    #[test]
    fn kernel_dispatches_split_deterministic_and_scheduling_state() {
        let snap = sample_metrics().snapshot();
        assert_eq!(snap.counters["kernel.matmul.dispatches"], 2);
        assert_eq!(snap.counters["kernel.matmul.macs"], 6008);
        assert_eq!(snap.scheduling["kernel.matmul.parallel"], 1);
        assert_eq!(snap.scheduling["kernel.matmul.seq_fallback"], 1);
        assert_eq!(snap.scheduling["kernel.matmul.max_threads"], 4);
        assert_eq!(snap.scheduling["kernel.matmul.pool_dispatches"], 1);
        assert_eq!(snap.scheduling["kernel.matmul.max_queue_depth"], 2);
        assert_eq!(snap.kernel_counters().len(), 2);
    }

    #[test]
    fn value_histograms_land_in_the_deterministic_dists() {
        let snap = sample_metrics().snapshot();
        assert_eq!(snap.dists["delta_fit.loss"].count, 4);
        assert_eq!(snap.dists["kernel.matmul.macs"].count, 2);
        assert!((snap.dists["kernel.matmul.macs"].max - 6000.0).abs() < 1e-9);
        // Wall-clock histograms stay out of `dists`.
        assert_eq!(snap.latency_hists["span.delta_fit"].count, 1);
        assert_eq!(snap.latency_hists["explain.factual"].count, 1);
        assert!(!snap.dists.contains_key("span.delta_fit"));
        // Only the timed dispatch (seconds > 0) lands in the kernel
        // latency histogram; the untimed one is not a zero sample.
        assert_eq!(snap.latency_hists["kernel.matmul.seconds"].count, 1);
    }

    #[test]
    fn deterministic_view_strips_wall_clock_and_scheduling() {
        let snap = sample_metrics().snapshot();
        assert!(!snap.spans.is_empty());
        assert!(!snap.latencies.is_empty());
        assert!(!snap.latency_hists.is_empty());
        assert!(!snap.scheduling.is_empty());
        assert!(!snap.self_overhead.is_empty());
        let det = snap.deterministic();
        assert!(det.spans.is_empty());
        assert!(det.latencies.is_empty());
        assert!(det.latency_hists.is_empty());
        assert!(det.scheduling.is_empty());
        assert!(det.self_overhead.is_empty());
        assert_eq!(det.counters, snap.counters);
        assert_eq!(det.curves, snap.curves);
        assert_eq!(det.dists, snap.dists, "value histograms are part of the deterministic view");
    }

    #[test]
    fn timing_stats_order_statistics() {
        let m = Metrics::new();
        for i in 1..=100 {
            emit(&m, StageFinished { stage: Stage::OmegaFit, id: 1, parent: 0, seconds: i as f64 });
        }
        let stats = &m.snapshot().spans["omega_fit"];
        assert_eq!(stats.count, 100);
        assert!((stats.min_s - 1.0).abs() < 1e-9);
        assert!((stats.max_s - 100.0).abs() < 1e-9);
        assert!((stats.mean_s - 50.5).abs() < 1e-9);
        assert!((stats.p50_s - 51.0).abs() < 1e-9);
        assert!((stats.p90_s - 90.0).abs() < 1e-9);
        assert!((stats.p99_s - 99.0).abs() < 1e-9);
        assert!((stats.p999_s - 100.0).abs() < 1e-9);
    }

    #[test]
    fn pool_worker_utilization_folds_into_scheduling() {
        let m = Metrics::new();
        for worker in 0..2usize {
            emit(
                &m,
                PoolWorkerUtilization {
                    worker,
                    busy_ns: 5_000_000 * (worker as u64 + 1),
                    parked_ns: 1_000_000,
                    wakeups: 10,
                    chunks: 4,
                    ring_dropped: worker as u64,
                },
            );
        }
        let snap = m.snapshot();
        assert_eq!(snap.scheduling["pool.worker00.busy_us"], 5_000);
        assert_eq!(snap.scheduling["pool.worker01.busy_us"], 10_000);
        assert_eq!(snap.scheduling["pool.worker00.parked_us"], 1_000);
        assert_eq!(snap.scheduling["pool.worker01.wakeups"], 10);
        assert_eq!(snap.scheduling["pool.worker01.chunks"], 4);
        assert_eq!(snap.scheduling["pool.ring_dropped"], 1);
        // None of it leaks into the deterministic view.
        assert!(snap.deterministic().scheduling.is_empty());
    }

    #[test]
    fn merge_latency_hist_lands_in_the_variable_section() {
        let m = Metrics::new();
        let mut h = Histogram::new();
        h.record(1e-3);
        h.record(2e-3);
        m.merge_latency_hist("pool.chunk_seconds", &h);
        m.merge_latency_hist("pool.chunk_seconds", &h);
        m.merge_latency_hist("ignored.empty", &Histogram::new());
        let snap = m.snapshot();
        assert_eq!(snap.latency_hists["pool.chunk_seconds"].count, 4);
        assert!(!snap.latency_hists.contains_key("ignored.empty"));
        assert!(snap.deterministic().latency_hists.is_empty());
    }

    #[test]
    fn self_overhead_counts_events_and_time() {
        let m = sample_metrics();
        let snap = m.snapshot();
        assert_eq!(snap.self_overhead["events"], 9);
        // Aggregation took *some* time; exact value is wall-clock.
        assert!(snap.self_overhead.contains_key("aggregation_ns"));
    }

    #[test]
    fn snapshot_serializes_to_structured_json() {
        let snap = sample_metrics().snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["counters"]["delta_fit.epochs"], 4);
        assert_eq!(value["counters"]["kernel.matmul.macs"], 6008);
        assert_eq!(value["curves"]["delta_fit.loss"].as_array().unwrap().len(), 4);
        assert_eq!(value["dists"]["kernel.matmul.macs"]["count"], 2);
        assert_eq!(value["spans"]["delta_fit"]["count"], 1);
        assert_eq!(value["spans"]["delta_fit"]["p999_s"], 0.25);
        assert_eq!(value["latency_hists"]["span.delta_fit"]["count"], 1);
        assert_eq!(value["scheduling"]["kernel.matmul.max_threads"], 4);
        assert_eq!(value["self_overhead"]["events"], 9);
    }
}
