//! The [`Metrics`] subscriber: in-memory aggregation of pipeline events
//! into counters, gauges, loss curves, and timing histograms, exported
//! as a serde-serializable [`MetricsSnapshot`].
//!
//! ## Determinism
//!
//! The snapshot keeps two kinds of state apart:
//!
//! * **Deterministic aggregates** — `counters`, `gauges`, `curves`.
//!   These derive only from seeded computation (epoch counts, losses,
//!   kernel shapes/MAC totals, fidelity) and are identical at any
//!   `AGUA_THREADS` value.
//! * **Environment-dependent observations** — `spans` and `latencies`
//!   (wall-clock time) and `scheduling` (how many dispatches actually
//!   went parallel, worker counts). These legitimately vary run to run.
//!
//! [`MetricsSnapshot::deterministic`] strips the latter, giving the
//! exact structure the `tests/obs_determinism.rs` integration test
//! compares across thread counts.

use crate::event::AnyEvent;
use crate::subscriber::Subscriber;
use serde::ser::SerializeStruct;
use serde::{Serialize, Serializer};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Order statistics of a set of timing samples, in seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub total_s: f64,
    /// Minimum sample.
    pub min_s: f64,
    /// Mean sample.
    pub mean_s: f64,
    /// Maximum sample.
    pub max_s: f64,
    /// Median (nearest-rank on the sorted samples).
    pub p50_s: f64,
    /// 99th percentile (nearest-rank on the sorted samples).
    pub p99_s: f64,
}

impl TimingStats {
    /// Computes the stats of a non-empty sample set.
    fn from_samples(samples: &[f64]) -> Self {
        debug_assert!(!samples.is_empty());
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timing samples"));
        let total: f64 = sorted.iter().sum();
        let rank = |q: f64| {
            let idx = (q * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        Self {
            count: sorted.len() as u64,
            total_s: total,
            min_s: sorted[0],
            mean_s: total / sorted.len() as f64,
            max_s: sorted[sorted.len() - 1],
            p50_s: rank(0.5),
            p99_s: rank(0.99),
        }
    }
}

// Like `AnyEvent`, the snapshot's JSON layout is a public contract
// (persisted next to model artifacts, read by `jq`/tooling), so the
// impls are written by hand to pin field names and order.
impl Serialize for TimingStats {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("TimingStats", 7)?;
        s.serialize_field("count", &self.count)?;
        s.serialize_field("total_s", &self.total_s)?;
        s.serialize_field("min_s", &self.min_s)?;
        s.serialize_field("mean_s", &self.mean_s)?;
        s.serialize_field("max_s", &self.max_s)?;
        s.serialize_field("p50_s", &self.p50_s)?;
        s.serialize_field("p99_s", &self.p99_s)?;
        s.end()
    }
}

/// A point-in-time export of a [`Metrics`] subscriber.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Monotone counters (epoch counts, kernel dispatches, MAC totals).
    /// Deterministic for a fixed seed, at any thread count.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins scalar observations (final losses, fidelity).
    /// Deterministic for a fixed seed, at any thread count.
    pub gauges: BTreeMap<String, f32>,
    /// Append-ordered series (the per-epoch δ and Ω loss curves).
    /// Deterministic for a fixed seed, at any thread count.
    pub curves: BTreeMap<String, Vec<f32>>,
    /// Wall-clock span statistics per stage. Varies run to run.
    pub spans: BTreeMap<String, TimingStats>,
    /// Wall-clock latency statistics (per-explanation). Varies run to run.
    pub latencies: BTreeMap<String, TimingStats>,
    /// Thread-scheduling counters (parallel vs sequential dispatches,
    /// peak worker counts). Varies with the configured thread count.
    pub scheduling: BTreeMap<String, u64>,
}

impl Serialize for MetricsSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut s = serializer.serialize_struct("MetricsSnapshot", 6)?;
        s.serialize_field("counters", &self.counters)?;
        s.serialize_field("gauges", &self.gauges)?;
        s.serialize_field("curves", &self.curves)?;
        s.serialize_field("spans", &self.spans)?;
        s.serialize_field("latencies", &self.latencies)?;
        s.serialize_field("scheduling", &self.scheduling)?;
        s.end()
    }
}

impl MetricsSnapshot {
    /// The thread-count-invariant portion of the snapshot: counters,
    /// gauges, and curves, with wall-clock and scheduling state cleared.
    /// Two runs of the same seeded workload produce equal deterministic
    /// views regardless of `AGUA_THREADS`.
    pub fn deterministic(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            curves: self.curves.clone(),
            spans: BTreeMap::new(),
            latencies: BTreeMap::new(),
            scheduling: BTreeMap::new(),
        }
    }

    /// Kernel-dispatch counters only (`kernel.*`), the slice of the
    /// snapshot the parallel-backend bench persists.
    pub fn kernel_counters(&self) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with("kernel."))
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }
}

#[derive(Debug, Default)]
struct MetricsInner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f32>,
    curves: BTreeMap<String, Vec<f32>>,
    span_samples: BTreeMap<String, Vec<f64>>,
    latency_samples: BTreeMap<String, Vec<f64>>,
    scheduling: BTreeMap<String, u64>,
}

/// Aggregating subscriber: counters + histograms behind a mutex, safe to
/// share by reference. All aggregation happens on the emitting thread;
/// the events themselves arrive in a deterministic order because the
/// pipeline emits only from the dispatching thread (see the crate docs).
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<MetricsInner>,
}

impl Metrics {
    /// A fresh, empty metrics aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Exports the current aggregate state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().expect("metrics mutex poisoned");
        let stats = |samples: &BTreeMap<String, Vec<f64>>| {
            samples
                .iter()
                .map(|(k, v)| (k.clone(), TimingStats::from_samples(v)))
                .collect::<BTreeMap<_, _>>()
        };
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            curves: inner.curves.clone(),
            spans: stats(&inner.span_samples),
            latencies: stats(&inner.latency_samples),
            scheduling: inner.scheduling.clone(),
        }
    }
}

impl Subscriber for Metrics {
    fn on_event(&self, event: &AnyEvent) {
        let mut inner = self.inner.lock().expect("metrics mutex poisoned");
        match event {
            AnyEvent::StageStarted(_) => {}
            AnyEvent::StageFinished(e) => {
                inner.span_samples.entry(e.stage.as_str().to_string()).or_default().push(e.seconds);
            }
            AnyEvent::EpochCompleted(e) => {
                let stage = e.stage.as_str();
                *inner.counters.entry(format!("{stage}.epochs")).or_insert(0) += 1;
                inner.curves.entry(format!("{stage}.loss")).or_default().push(e.loss);
                inner.gauges.insert(format!("{stage}.final_loss"), e.loss);
            }
            AnyEvent::KernelDispatched(e) => {
                let kernel = e.kernel.as_str();
                *inner.counters.entry(format!("kernel.{kernel}.dispatches")).or_insert(0) += 1;
                *inner.counters.entry(format!("kernel.{kernel}.macs")).or_insert(0) += e.macs;
                let mode = if e.seq_fallback { "seq_fallback" } else { "parallel" };
                *inner.scheduling.entry(format!("kernel.{kernel}.{mode}")).or_insert(0) += 1;
                let peak =
                    inner.scheduling.entry(format!("kernel.{kernel}.max_threads")).or_insert(0);
                *peak = (*peak).max(e.threads as u64);
                // Pool usage depends on the configured thread count, so
                // these live in `scheduling`, not the deterministic
                // counters.
                if e.pool_dispatch {
                    *inner
                        .scheduling
                        .entry(format!("kernel.{kernel}.pool_dispatches"))
                        .or_insert(0) += 1;
                }
                let depth =
                    inner.scheduling.entry(format!("kernel.{kernel}.max_queue_depth")).or_insert(0);
                *depth = (*depth).max(e.queue_depth as u64);
            }
            AnyEvent::LabelingStageFinished(e) => {
                *inner.counters.entry("labeling.runs".to_string()).or_insert(0) += 1;
                *inner.counters.entry("labeling.inputs".to_string()).or_insert(0) +=
                    e.inputs as u64;
                inner.gauges.insert("labeling.concepts".to_string(), e.concepts as f32);
                inner.gauges.insert("labeling.classes".to_string(), e.classes as f32);
            }
            AnyEvent::ExplanationProduced(e) => {
                let kind = e.kind.as_str();
                *inner.counters.entry(format!("explain.{kind}.count")).or_insert(0) += 1;
                inner.latency_samples.entry(format!("explain.{kind}")).or_default().push(e.seconds);
            }
            AnyEvent::FitCompleted(e) => {
                *inner.counters.entry("fit.completed".to_string()).or_insert(0) += 1;
                inner.gauges.insert("fit.fidelity".to_string(), e.fidelity);
            }
            // Whether the store hits or misses depends on what earlier
            // runs left under `results/cache/`, so like pool usage these
            // live in `scheduling`, not the deterministic counters.
            AnyEvent::ArtifactHit(e) => {
                *inner.scheduling.entry(format!("artifact.{}.hits", e.kind)).or_insert(0) += 1;
            }
            AnyEvent::ArtifactMiss(e) => {
                *inner.scheduling.entry(format!("artifact.{}.misses", e.kind)).or_insert(0) += 1;
            }
            AnyEvent::ArtifactWrite(e) => {
                *inner.scheduling.entry(format!("artifact.{}.writes", e.kind)).or_insert(0) += 1;
                *inner
                    .scheduling
                    .entry(format!("artifact.{}.bytes_written", e.kind))
                    .or_insert(0) += e.bytes;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::*;
    use crate::subscriber::emit;

    fn sample_metrics() -> Metrics {
        let m = Metrics::new();
        for epoch in 0..4 {
            emit(
                &m,
                EpochCompleted { stage: Stage::DeltaFit, epoch, loss: 1.0 / (epoch + 1) as f32 },
            );
        }
        emit(&m, StageFinished { stage: Stage::DeltaFit, seconds: 0.25 });
        emit(
            &m,
            KernelDispatched {
                kernel: Kernel::Matmul,
                rows: 10,
                inner: 20,
                cols: 30,
                macs: 6000,
                threads: 4,
                seq_fallback: false,
                pool_dispatch: true,
                queue_depth: 2,
            },
        );
        emit(
            &m,
            KernelDispatched {
                kernel: Kernel::Matmul,
                rows: 2,
                inner: 2,
                cols: 2,
                macs: 8,
                threads: 1,
                seq_fallback: true,
                pool_dispatch: false,
                queue_depth: 0,
            },
        );
        emit(
            &m,
            ExplanationProduced { kind: ExplanationKind::Factual, output_class: 1, seconds: 1e-4 },
        );
        emit(&m, FitCompleted { fidelity: 0.93 });
        m
    }

    #[test]
    fn aggregates_epochs_into_counters_curves_and_gauges() {
        let snap = sample_metrics().snapshot();
        assert_eq!(snap.counters["delta_fit.epochs"], 4);
        assert_eq!(snap.curves["delta_fit.loss"].len(), 4);
        assert!((snap.gauges["delta_fit.final_loss"] - 0.25).abs() < 1e-6);
        assert!((snap.gauges["fit.fidelity"] - 0.93).abs() < 1e-6);
    }

    #[test]
    fn kernel_dispatches_split_deterministic_and_scheduling_state() {
        let snap = sample_metrics().snapshot();
        assert_eq!(snap.counters["kernel.matmul.dispatches"], 2);
        assert_eq!(snap.counters["kernel.matmul.macs"], 6008);
        assert_eq!(snap.scheduling["kernel.matmul.parallel"], 1);
        assert_eq!(snap.scheduling["kernel.matmul.seq_fallback"], 1);
        assert_eq!(snap.scheduling["kernel.matmul.max_threads"], 4);
        assert_eq!(snap.scheduling["kernel.matmul.pool_dispatches"], 1);
        assert_eq!(snap.scheduling["kernel.matmul.max_queue_depth"], 2);
        assert_eq!(snap.kernel_counters().len(), 2);
    }

    #[test]
    fn deterministic_view_strips_wall_clock_and_scheduling() {
        let snap = sample_metrics().snapshot();
        assert!(!snap.spans.is_empty());
        assert!(!snap.latencies.is_empty());
        assert!(!snap.scheduling.is_empty());
        let det = snap.deterministic();
        assert!(det.spans.is_empty());
        assert!(det.latencies.is_empty());
        assert!(det.scheduling.is_empty());
        assert_eq!(det.counters, snap.counters);
        assert_eq!(det.curves, snap.curves);
    }

    #[test]
    fn timing_stats_order_statistics() {
        let m = Metrics::new();
        for i in 1..=100 {
            emit(&m, StageFinished { stage: Stage::OmegaFit, seconds: i as f64 });
        }
        let stats = &m.snapshot().spans["omega_fit"];
        assert_eq!(stats.count, 100);
        assert!((stats.min_s - 1.0).abs() < 1e-9);
        assert!((stats.max_s - 100.0).abs() < 1e-9);
        assert!((stats.mean_s - 50.5).abs() < 1e-9);
        assert!((stats.p50_s - 51.0).abs() < 1e-9);
        assert!((stats.p99_s - 99.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_serializes_to_structured_json() {
        let snap = sample_metrics().snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["counters"]["delta_fit.epochs"], 4);
        assert_eq!(value["counters"]["kernel.matmul.macs"], 6008);
        assert_eq!(value["curves"]["delta_fit.loss"].as_array().unwrap().len(), 4);
        assert_eq!(value["spans"]["delta_fit"]["count"], 1);
        assert_eq!(value["scheduling"]["kernel.matmul.max_threads"], 4);
    }
}
