//! The [`TraceWriter`] subscriber: exports the span hierarchy as Chrome
//! `trace_event` JSON, openable in `chrome://tracing`, Perfetto
//! (<https://ui.perfetto.dev>), or `speedscope` as a flamegraph.
//!
//! The format is the JSON Object Format of the Trace Event spec: a
//! top-level `{"traceEvents":[...]}` envelope whose entries carry a
//! phase tag `ph` —
//!
//! * `"B"`/`"E"` duration pairs for stage spans (nested by emission
//!   order per thread, which matches the span stack in `scoped.rs`);
//! * `"C"` counter samples for per-epoch training loss, plotted by the
//!   viewers as a time series;
//! * `"X"` complete events for explanations, whose latency arrives
//!   already measured in the event;
//! * `"i"` instant events for kernel dispatches (off by default — a fit
//!   dispatches tens of thousands; enable with
//!   [`TraceWriter::with_kernel_events`]).
//!
//! Timestamps (`ts`) are microseconds on the monotonic clock since the
//! writer was created; `pid` is fixed at 1 and `tid` is a small
//! per-thread ordinal so multi-threaded bench sweeps lay out one track
//! per emitting thread. Everything is buffered in memory and written on
//! [`TraceWriter::flush`] or drop — trace files are a few thousand
//! events, not a streaming log (that is `JsonlWriter`'s job).
//!
//! Zero new dependencies: the serializer is the same hand-written
//! `serde` impl style as the JSONL contract, emitting only the spec's
//! required fields.

use crate::event::AnyEvent;
use crate::subscriber::Subscriber;
use serde::ser::SerializeStruct;
use serde::{Serialize, Serializer};
use std::fs::{self, File};
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Next per-thread track ordinal (Chrome's `tid`).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Values a trace event's `args` object can carry.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ArgValue {
    U64(u64),
    F64(f64),
}

impl Serialize for ArgValue {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            ArgValue::U64(v) => serializer.serialize_u64(*v),
            ArgValue::F64(v) => serializer.serialize_f64(*v),
        }
    }
}

/// Ordered `args` object (serialized as a JSON map).
#[derive(Debug, Clone, Default, PartialEq)]
struct Args(Vec<(&'static str, ArgValue)>);

impl Serialize for Args {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeMap;
        let mut m = serializer.serialize_map(Some(self.0.len()))?;
        for (k, v) in &self.0 {
            m.serialize_entry(*k, v)?;
        }
        m.end()
    }
}

/// One entry of the `traceEvents` array.
#[derive(Debug, Clone, PartialEq)]
struct TraceEvent {
    name: String,
    cat: &'static str,
    ph: &'static str,
    /// Microseconds since the writer's origin (monotonic).
    ts: u64,
    /// Duration in microseconds; `"X"` events only.
    dur: Option<u64>,
    tid: u64,
    args: Args,
}

impl Serialize for TraceEvent {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let n = 6 + usize::from(self.dur.is_some()) + usize::from(!self.args.0.is_empty());
        let mut s = serializer.serialize_struct("TraceEvent", n)?;
        s.serialize_field("name", &self.name)?;
        s.serialize_field("cat", self.cat)?;
        s.serialize_field("ph", self.ph)?;
        s.serialize_field("ts", &self.ts)?;
        if let Some(dur) = self.dur {
            s.serialize_field("dur", &dur)?;
        }
        s.serialize_field("pid", &1u32)?;
        s.serialize_field("tid", &self.tid)?;
        if !self.args.0.is_empty() {
            s.serialize_field("args", &self.args)?;
        }
        s.end()
    }
}

/// Buffers trace events in memory and writes a Chrome `trace_event`
/// JSON file on [`flush`](TraceWriter::flush) (or drop).
#[derive(Debug)]
pub struct TraceWriter {
    inner: Mutex<Vec<TraceEvent>>,
    origin: Instant,
    path: PathBuf,
    kernel_events: bool,
}

impl TraceWriter {
    /// A trace writer that will (on flush) create the file at `path`,
    /// creating parent directories as needed. The monotonic origin of
    /// all timestamps is the moment of this call.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        // Fail now (permissions, bad path) rather than at flush time.
        File::create(&path)?;
        Ok(Self {
            inner: Mutex::new(Vec::new()),
            origin: Instant::now(),
            path,
            kernel_events: false,
        })
    }

    /// Enables or disables per-dispatch kernel instant events.
    pub fn with_kernel_events(mut self, enabled: bool) -> Self {
        self.kernel_events = enabled;
        self
    }

    /// Where the trace will be written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Buffered event count.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace mutex poisoned").len()
    }

    /// True when no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Microseconds elapsed since the writer's origin.
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn push(&self, event: TraceEvent) {
        self.inner.lock().expect("trace mutex poisoned").push(event);
    }

    /// Writes the `{"traceEvents":[...]}` envelope to the target path,
    /// replacing any previous flush. Buffered events are retained, so a
    /// later flush (or the drop flush) rewrites a superset.
    pub fn flush(&self) -> io::Result<()> {
        let inner = self.inner.lock().expect("trace mutex poisoned");
        let mut w = BufWriter::new(File::create(&self.path)?);
        w.write_all(b"{\"traceEvents\":[\n")?;
        for (i, event) in inner.iter().enumerate() {
            let line = serde_json::to_string(event).expect("trace events always serialize");
            if i + 1 < inner.len() {
                writeln!(w, "{line},")?;
            } else {
                writeln!(w, "{line}")?;
            }
        }
        w.write_all(b"]}\n")?;
        w.flush()
    }
}

impl Subscriber for TraceWriter {
    fn on_event(&self, event: &AnyEvent) {
        let tid = TID.with(|t| *t);
        match event {
            AnyEvent::StageStarted(e) => self.push(TraceEvent {
                name: e.stage.as_str().to_string(),
                cat: "stage",
                ph: "B",
                ts: self.now_us(),
                dur: None,
                tid,
                args: Args(vec![("id", ArgValue::U64(e.id)), ("parent", ArgValue::U64(e.parent))]),
            }),
            AnyEvent::StageFinished(e) => self.push(TraceEvent {
                name: e.stage.as_str().to_string(),
                cat: "stage",
                ph: "E",
                ts: self.now_us(),
                dur: None,
                tid,
                args: Args(vec![("id", ArgValue::U64(e.id))]),
            }),
            AnyEvent::EpochCompleted(e) => self.push(TraceEvent {
                name: format!("{}.loss", e.stage.as_str()),
                cat: "training",
                ph: "C",
                ts: self.now_us(),
                dur: None,
                tid,
                args: Args(vec![("loss", ArgValue::F64(e.loss as f64))]),
            }),
            AnyEvent::ExplanationProduced(e) => {
                // The latency arrives already measured: emit a complete
                // event ending now, starting `dur` ago.
                let dur = (e.seconds * 1e6).max(0.0) as u64;
                let now = self.now_us();
                self.push(TraceEvent {
                    name: format!("explain.{}", e.kind.as_str()),
                    cat: "explain",
                    ph: "X",
                    ts: now.saturating_sub(dur),
                    dur: Some(dur),
                    tid,
                    args: Args(vec![("output_class", ArgValue::U64(e.output_class as u64))]),
                });
            }
            AnyEvent::KernelDispatched(e) => {
                if self.kernel_events {
                    self.push(TraceEvent {
                        name: format!("kernel.{}", e.kernel.as_str()),
                        cat: "kernel",
                        ph: "i",
                        ts: self.now_us(),
                        dur: None,
                        tid,
                        args: Args(vec![
                            ("macs", ArgValue::U64(e.macs)),
                            ("threads", ArgValue::U64(e.threads as u64)),
                        ]),
                    });
                }
            }
            AnyEvent::PoolWorkerUtilization(e) => self.push(TraceEvent {
                name: format!("pool.worker{:02}", e.worker),
                cat: "pool",
                ph: "C",
                ts: self.now_us(),
                dur: None,
                tid,
                args: Args(vec![
                    ("busy_ms", ArgValue::F64(e.busy_ns as f64 / 1e6)),
                    ("parked_ms", ArgValue::F64(e.parked_ns as f64 / 1e6)),
                ]),
            }),
            // Aggregate-only events carry no useful timeline geometry.
            AnyEvent::LabelingStageFinished(_)
            | AnyEvent::FitCompleted(_)
            | AnyEvent::ArtifactHit(_)
            | AnyEvent::ArtifactMiss(_)
            | AnyEvent::ArtifactWrite(_)
            | AnyEvent::EngineBatchFlushed(_)
            | AnyEvent::ServeRequestHandled(_)
            | AnyEvent::ServeRequestRejected(_)
            | AnyEvent::CheckpointReloaded(_) => {}
        }
    }
}

impl Drop for TraceWriter {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::*;
    use crate::subscriber::{emit, span_end, span_start};

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("agua-trace-{}-{name}", std::process::id()))
    }

    /// Parses a flushed trace back and checks the Chrome `trace_event`
    /// invariants the viewers rely on.
    fn parse_and_validate(path: &Path) -> serde_json::Value {
        let text = fs::read_to_string(path).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).expect("trace must be JSON");
        let events = value["traceEvents"].as_array().expect("traceEvents array");
        let mut open = 0i64;
        for e in events {
            let ph = e["ph"].as_str().expect("ph tag");
            assert!(e["name"].is_string());
            assert!(e["ts"].as_u64().is_some(), "ts must be a nonnegative integer");
            assert!(e["pid"].as_u64().is_some() && e["tid"].as_u64().is_some());
            match ph {
                "B" => open += 1,
                "E" => {
                    open -= 1;
                    assert!(open >= 0, "E without matching B");
                }
                "X" => assert!(e["dur"].as_u64().is_some(), "X event missing dur"),
                "C" | "i" => {}
                other => panic!("unexpected phase {other}"),
            }
        }
        assert_eq!(open, 0, "unbalanced B/E pairs");
        value
    }

    #[test]
    fn spans_export_as_balanced_duration_pairs() {
        let path = temp_path("spans.json");
        let w = TraceWriter::create(&path).unwrap();
        let outer = span_start(&w, Stage::Custom("fit"));
        let inner = span_start(&w, Stage::DeltaFit);
        emit(&w, EpochCompleted { stage: Stage::DeltaFit, epoch: 0, loss: 1.5 });
        span_end(&w, inner);
        span_end(&w, outer);
        w.flush().unwrap();

        let value = parse_and_validate(&path);
        let events = value["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0]["ph"], "B");
        assert_eq!(events[0]["name"], "fit");
        assert_eq!(events[1]["name"], "delta_fit");
        assert_eq!(
            events[1]["args"]["parent"], events[0]["args"]["id"],
            "child span must point at its parent"
        );
        assert_eq!(events[2]["ph"], "C");
        assert_eq!(events[2]["args"]["loss"], 1.5);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn explanations_export_as_complete_events() {
        let path = temp_path("explain.json");
        let w = TraceWriter::create(&path).unwrap();
        emit(
            &w,
            ExplanationProduced { kind: ExplanationKind::Factual, output_class: 2, seconds: 0.001 },
        );
        w.flush().unwrap();
        let value = parse_and_validate(&path);
        let e = &value["traceEvents"][0];
        assert_eq!(e["ph"], "X");
        assert_eq!(e["name"], "explain.factual");
        assert_eq!(e["dur"], 1000);
        assert_eq!(e["args"]["output_class"], 2);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn kernel_instants_are_gated() {
        let dispatch = KernelDispatched {
            kernel: Kernel::Matmul,
            rows: 1,
            inner: 1,
            cols: 1,
            macs: 7,
            threads: 2,
            seq_fallback: false,
            pool_dispatch: false,
            queue_depth: 0,
            seconds: 0.0,
        };
        let quiet_path = temp_path("quiet.json");
        let quiet = TraceWriter::create(&quiet_path).unwrap();
        emit(&quiet, dispatch);
        assert!(quiet.is_empty());

        let verbose_path = temp_path("verbose.json");
        let verbose = TraceWriter::create(&verbose_path).unwrap().with_kernel_events(true);
        emit(&verbose, dispatch);
        assert_eq!(verbose.len(), 1);
        verbose.flush().unwrap();
        let value = parse_and_validate(&verbose_path);
        assert_eq!(value["traceEvents"][0]["ph"], "i");
        assert_eq!(value["traceEvents"][0]["args"]["macs"], 7);
        fs::remove_file(&quiet_path).ok();
        fs::remove_file(&verbose_path).ok();
    }

    #[test]
    fn empty_trace_is_still_valid_json() {
        let path = temp_path("empty.json");
        let w = TraceWriter::create(&path).unwrap();
        w.flush().unwrap();
        let value = parse_and_validate(&path);
        assert_eq!(value["traceEvents"].as_array().unwrap().len(), 0);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn drop_flushes_the_envelope() {
        let path = temp_path("drop.json");
        {
            let w = TraceWriter::create(&path).unwrap();
            emit(
                &w,
                PoolWorkerUtilization {
                    worker: 0,
                    busy_ns: 2_000_000,
                    parked_ns: 500_000,
                    wakeups: 1,
                    chunks: 3,
                    ring_dropped: 0,
                },
            );
        }
        let value = parse_and_validate(&path);
        let e = &value["traceEvents"][0];
        assert_eq!(e["name"], "pool.worker00");
        assert_eq!(e["args"]["busy_ms"], 2.0);
        fs::remove_file(&path).ok();
    }
}
