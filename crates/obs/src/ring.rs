//! Fixed-capacity, lock-free single-producer/single-consumer sample
//! ring — the profiling hook pool workers write into.
//!
//! A pool worker must never block on observability: taking a mutex (or
//! even contending an atomic CAS loop) inside the chunk path would let
//! the telemetry layer perturb exactly the scheduling it is supposed to
//! observe. [`SpscRing`] therefore gives each worker a private bounded
//! ring of `u64` samples (chunk durations in nanoseconds):
//!
//! * `push` is two relaxed loads, one relaxed store, one release store —
//!   wait-free, no branch can park the worker;
//! * a full ring **drops** the sample and counts the drop (surfaced via
//!   `pool_worker_utilization` events) instead of waiting;
//! * `drain` on the consumer side pairs acquire loads with the
//!   producer's release stores, so every drained sample was fully
//!   written.
//!
//! Built from atomics only — this crate is `#![forbid(unsafe_code)]`, so
//! there is no `UnsafeCell` slot trickery here; an `AtomicU64` per slot
//! is exactly as fast for 8-byte samples.
//!
//! The SPSC contract is per-ring: exactly one pusher (the owning worker)
//! and at most one drainer at a time (the pool serializes drains behind
//! its registry lock). Concurrent push *during* a drain is fine — that
//! is the normal case.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A bounded SPSC ring of `u64` samples with drop-counting overflow.
#[derive(Debug)]
pub struct SpscRing {
    slots: Vec<AtomicU64>,
    mask: usize,
    /// Next slot the consumer will read. Written by the consumer only.
    head: AtomicUsize,
    /// Next slot the producer will write. Written by the producer only.
    tail: AtomicUsize,
    dropped: AtomicU64,
}

impl SpscRing {
    /// A ring holding at least `capacity` samples (rounded up to a power
    /// of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        Self {
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Producer side: appends `value`, or counts a drop when full.
    /// Never blocks. Returns whether the sample was stored.
    pub fn push(&self, value: u64) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.capacity() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.slots[tail & self.mask].store(value, Ordering::Relaxed);
        // Publish: the consumer's acquire load of `tail` makes the slot
        // store above visible before the sample is considered present.
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: pops every published sample into `f`, oldest
    /// first, and frees the slots for reuse.
    pub fn drain(&self, mut f: impl FnMut(u64)) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let mut i = head;
        while i != tail {
            f(self.slots[i & self.mask].load(Ordering::Relaxed));
            i = i.wrapping_add(1);
        }
        // Release: the producer's acquire load of `head` sees the slots
        // as free only after every read above completed.
        self.head.store(tail, Ordering::Release);
    }

    /// Samples dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Published samples not yet drained.
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True when no published sample awaits draining.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_then_drain_preserves_order() {
        let ring = SpscRing::with_capacity(8);
        for v in 1..=5u64 {
            assert!(ring.push(v));
        }
        assert_eq!(ring.len(), 5);
        let mut seen = Vec::new();
        ring.drain(|v| seen.push(v));
        assert_eq!(seen, vec![1, 2, 3, 4, 5]);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts_instead_of_blocking() {
        let ring = SpscRing::with_capacity(4);
        for v in 0..4u64 {
            assert!(ring.push(v));
        }
        assert!(!ring.push(99));
        assert!(!ring.push(100));
        assert_eq!(ring.dropped(), 2);
        let mut seen = Vec::new();
        ring.drain(|v| seen.push(v));
        assert_eq!(seen, vec![0, 1, 2, 3], "dropped samples never overwrite stored ones");
        // Slots freed by the drain are reusable.
        assert!(ring.push(7));
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(SpscRing::with_capacity(5).capacity(), 8);
        assert_eq!(SpscRing::with_capacity(0).capacity(), 2);
        assert_eq!(SpscRing::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn concurrent_producer_and_consumer_lose_nothing_but_drops() {
        let ring = Arc::new(SpscRing::with_capacity(64));
        let n = 10_000u64;
        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                for v in 1..=n {
                    if ring.push(v) {
                        pushed += 1;
                    }
                }
                pushed
            })
        };
        let mut drained = Vec::new();
        while !producer.is_finished() || !ring.is_empty() {
            ring.drain(|v| drained.push(v));
        }
        ring.drain(|v| drained.push(v));
        let pushed = producer.join().unwrap();
        assert_eq!(drained.len() as u64, pushed);
        assert_eq!(pushed + ring.dropped(), n);
        // Samples arrive in production order (SPSC FIFO).
        assert!(drained.windows(2).all(|w| w[0] < w[1]), "drained out of order");
    }
}
