//! # agua-app — application registry and artifact store
//!
//! The pipeline spine shared by the CLI, the experiment bins, and the
//! benchmarks:
//!
//! - [`Application`] + [`registry`]/[`lookup`]: the paper's three
//!   learning-enabled systems (ABR/Gelato, CC/Aurora in two variants,
//!   DDoS/LUCID) behind one trait — concept sets, controllers,
//!   rollouts, and scenario states, with no string dispatch anywhere
//!   else (enforced by `cargo xtask audit`'s `stringly-app` lint).
//! - [`Store`]: a content-addressed artifact cache under
//!   `results/cache/`, keyed by FNV-1a over canonical spec JSON and
//!   controlled by `AGUA_CACHE={on,off,refresh}`.
//! - [`Checkpoint`]: the on-disk format `agua-cli train` writes and
//!   every consumer reloads.
//! - [`AppData`], [`LlmVariant`], [`fit_agua`] and friends: the rollout
//!   dataset and surrogate-fitting entry points (moved here from
//!   `agua_bench::apps`, which re-exports them for compatibility).

#![forbid(unsafe_code)]

pub mod abr_app;
pub mod application;
pub mod cc_app;
pub mod checkpoint;
pub mod codec;
pub mod data;
pub mod ddos_app;
pub mod store;

pub use application::{
    lookup, registered_names, registry, AbrApp, Application, CcApp, DdosApp, RolloutSpec, ABR, CC,
    CC_DEBUGGED, DDOS,
};
pub use checkpoint::{Checkpoint, CheckpointMeta};
pub use codec::{Artifact, CodecError};
pub use data::{
    fit_agua, fit_agua_jobs, fit_agua_observed, labeler_for, AppData, FitJob, LlmVariant,
};
pub use store::{
    fnv1a, q8_gate_evaluations, train_params_value, CacheMode, Keyed, Store, StoreWatch,
    SCHEMA_VERSION,
};
