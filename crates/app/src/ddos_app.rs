//! DDoS application plumbing (moved here from `agua_bench::apps`).

use agua_controllers::ddos;
use agua_controllers::policy::PolicyNet;
use agua_nn::Matrix;
use ddos_env::DdosObservation;

use crate::data::AppData;

/// Trains the LUCID-style detector on generated flows.
pub fn build_controller(seed: u64) -> PolicyNet {
    let train = ddos::generate_dataset(1000, seed);
    ddos::train_detector(&train, seed)
}

/// Generates flows and records the *detector's* outputs (fidelity is
/// measured against the controller, not the ground truth).
pub fn rollout(controller: &PolicyNet, n_samples: usize, seed: u64) -> AppData {
    let samples = ddos::generate_dataset(n_samples, seed);
    let mut features = Vec::new();
    let mut sections = Vec::new();
    let mut emb_rows: Vec<Vec<f32>> = Vec::new();
    let mut outputs = Vec::new();
    let mut trace_ids = Vec::new();
    for (i, s) in samples.iter().enumerate() {
        let obs = DdosObservation::new(s.window.clone());
        let f = obs.features();
        let x = Matrix::row_vector(&f);
        let (h, logits) = controller.embeddings_and_logits(&x);
        features.push(f);
        sections.push(obs.sections());
        emb_rows.push(h.row(0).to_vec());
        outputs.push(logits.argmax_row(0));
        trace_ids.push(i);
    }
    AppData { features, sections, embeddings: Matrix::from_rows(&emb_rows), outputs, trace_ids }
}

/// Generates flows of one kind only and records detector outputs.
pub fn rollout_kind(
    controller: &PolicyNet,
    kind: ddos_env::FlowKind,
    n_samples: usize,
    seed: u64,
) -> AppData {
    let windows = ddos_env::FlowWindow::generate_dataset(&[kind], n_samples, seed);
    let mut features = Vec::new();
    let mut sections = Vec::new();
    let mut emb_rows: Vec<Vec<f32>> = Vec::new();
    let mut outputs = Vec::new();
    let mut trace_ids = Vec::new();
    for (i, w) in windows.into_iter().enumerate() {
        let obs = DdosObservation::new(w);
        let f = obs.features();
        let x = Matrix::row_vector(&f);
        let (h, logits) = controller.embeddings_and_logits(&x);
        features.push(f);
        sections.push(obs.sections());
        emb_rows.push(h.row(0).to_vec());
        outputs.push(logits.argmax_row(0));
        trace_ids.push(i);
    }
    AppData { features, sections, embeddings: Matrix::from_rows(&emb_rows), outputs, trace_ids }
}

/// Feature names for the flow feature matrix.
pub fn feature_names() -> Vec<String> {
    let mut names = Vec::new();
    for base in ["iat", "size", "outbound", "syn", "ack", "udp", "entropy", "src_consistency"] {
        for p in 0..ddos_env::WINDOW {
            names.push(format!("{base}[pkt{p}]"));
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{fit_agua, LlmVariant};
    use agua::concepts::ddos_concepts;
    use agua::surrogate::TrainParams;

    #[test]
    fn ddos_rollout_and_fidelity() {
        let controller = build_controller(7);
        let train = rollout(&controller, 300, 8);
        let test = rollout(&controller, 150, 9);
        let concepts = ddos_concepts();
        let (model, _) =
            fit_agua(&concepts, 2, &train, LlmVariant::HighQuality, &TrainParams::fast(), 10);
        let fid = model.fidelity(&test.embeddings, &test.outputs);
        assert!(fid > 0.85, "small-sample DDoS fidelity {fid}");
    }
}
