//! Content-addressed artifact store for pipeline stages.
//!
//! Every expensive pipeline product — trained controllers, rollout
//! datasets, fitted surrogates — is addressable by the *specification*
//! that produced it: application name, seeds, sample budgets, LLM
//! variant, training hyper-parameters, and a schema version. The spec
//! is rendered to canonical JSON (BTreeMap-ordered keys, no wall-clock,
//! no HashMap iteration) and hashed with FNV-1a; the artifact lands in
//! `results/cache/<kind>-<key:016x>.json` together with the spec it was
//! computed from, so a hash collision or a stale file degrades to a
//! recompute, never to a wrong answer.
//!
//! Cache behaviour is controlled by `AGUA_CACHE`:
//!
//! - `on` (default): read hits, write misses.
//! - `off`: bypass the store entirely — compute everything in-process.
//! - `refresh`: recompute everything and overwrite the cached files.
//!
//! Because every artifact is deterministic in its spec (see DESIGN.md
//! §3), a cached run and a cold run produce byte-identical results; the
//! store only changes *when* the work happens. Each store event is
//! reported on the [`agua_obs`] fabric as [`ArtifactHit`] /
//! [`ArtifactMiss`] / [`ArtifactWrite`].

use std::collections::BTreeMap;
use std::fs;
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use agua::labeling::ConceptLabeler;
use agua::quantized::{QuantFidelityReport, QuantizedAguaModel};
use agua::surrogate::{AguaModel, TrainParams};
use agua_controllers::policy::PolicyNet;
use agua_obs::{emit, ArtifactHit, ArtifactMiss, ArtifactWrite, Subscriber};
use serde_json::Value;

use crate::application::{Application, RolloutSpec};
use crate::codec::{f32s_value, object, u64_value, Artifact};
use crate::data::{fit_agua_observed, labeler_for, AppData, LlmVariant};

/// Artifact schema version; bump to invalidate every cached artifact.
pub const SCHEMA_VERSION: u64 = 1;

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// What the store does on a lookup, from the `AGUA_CACHE` variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Read cached artifacts, write missing ones (the default).
    On,
    /// Bypass the store: always compute, never touch disk.
    Off,
    /// Always compute, overwriting the cached artifacts.
    Refresh,
}

impl CacheMode {
    /// Reads the mode from `AGUA_CACHE` (unset means [`CacheMode::On`]).
    pub fn from_env() -> Self {
        match std::env::var("AGUA_CACHE").as_deref() {
            Err(_) | Ok("") | Ok("on") => CacheMode::On,
            Ok("off") => CacheMode::Off,
            Ok("refresh") => CacheMode::Refresh,
            Ok(other) => panic!("AGUA_CACHE must be `on`, `off` or `refresh`, got `{other}`"),
        }
    }
}

/// A store-produced value together with the content key it lives under,
/// so downstream specs can chain on it (a rollout's spec names the
/// controller key it was rolled from).
#[derive(Debug, Clone)]
pub struct Keyed<T> {
    /// The artifact itself.
    pub value: T,
    /// FNV-1a content key of the producing spec.
    pub key: u64,
}

impl<T> Deref for Keyed<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

/// The content-addressed artifact store.
///
/// Thread-safe: the in-process memo layer is behind a mutex, so one
/// store can be shared across `par_jobs` workers.
pub struct Store {
    root: PathBuf,
    mode: CacheMode,
    /// In-process memo of encoded artifacts, keyed by file stem. Holds
    /// the *encoded* form so heterogeneous artifact types share one map.
    memo: Mutex<BTreeMap<String, Value>>,
    /// Invalidation generation, bumped on every artifact write and on
    /// [`Store::invalidate`]; [`StoreWatch`] handles observe it.
    generation: Arc<AtomicU64>,
}

/// A cheap handle observing a [`Store`]'s invalidation generation —
/// the hot-reload hook: a serving engine polls
/// [`StoreWatch::changed_since`] and swaps its sessions when the store's
/// contents may have moved under it (an artifact write, a refresh run,
/// or an explicit [`Store::invalidate`]).
#[derive(Debug, Clone)]
pub struct StoreWatch {
    generation: Arc<AtomicU64>,
}

impl StoreWatch {
    /// The current invalidation generation (monotone).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Whether the store changed since `seen` (a value previously
    /// returned by [`StoreWatch::generation`]).
    pub fn changed_since(&self, seen: u64) -> bool {
        self.generation() != seen
    }
}

impl Store {
    /// Opens a store rooted at `root` with the mode from `AGUA_CACHE`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self::with_mode(root, CacheMode::from_env())
    }

    /// Opens a store with an explicit mode (tests; `AGUA_CACHE` wins
    /// in production entry points via [`Store::new`]).
    pub fn with_mode(root: impl Into<PathBuf>, mode: CacheMode) -> Self {
        Self {
            root: root.into(),
            mode,
            memo: Mutex::new(BTreeMap::new()),
            generation: Arc::new(AtomicU64::new(0)),
        }
    }

    /// An invalidation watch on this store (see [`StoreWatch`]).
    pub fn watch(&self) -> StoreWatch {
        StoreWatch { generation: Arc::clone(&self.generation) }
    }

    /// Explicitly bumps the invalidation generation, telling watchers
    /// that artifacts may have changed outside the store's own writes
    /// (e.g. an operator replaced cache files on disk).
    pub fn invalidate(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
    }

    /// The store's cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The store's cache mode.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    /// The content key `kind` + `spec` resolve to.
    //= spec: specs/applications.toml#store-content-addressed
    //# addressed by the canonical-JSON hash of the specification that
    //# produced it
    pub fn key_for(&self, kind: &str, spec: &Value) -> u64 {
        let canonical = serde_json::to_string(&object(vec![
            ("kind", Value::String(kind.to_string())),
            ("schema", u64_value(SCHEMA_VERSION)),
            ("spec", spec.clone()),
        ]))
        .expect("canonical spec serializes");
        fnv1a(canonical.as_bytes())
    }

    /// Looks up `kind` + `spec`, computing (and caching) on a miss.
    ///
    /// The artifact returned is identical whether it was computed or
    /// decoded from cache; a corrupt or colliding cache file is treated
    /// as a miss and overwritten.
    pub fn get_or_compute<T: Artifact>(
        &self,
        kind: &'static str,
        spec: &Value,
        obs: &dyn Subscriber,
        compute: impl FnOnce() -> T,
    ) -> Keyed<T> {
        let key = self.key_for(kind, spec);
        if self.mode == CacheMode::Off {
            return Keyed { value: compute(), key };
        }
        let stem = format!("{kind}-{key:016x}");
        if self.mode == CacheMode::On {
            if let Some(value) = self.load_cached(&stem, spec) {
                emit(obs, ArtifactHit { kind, key });
                return Keyed { value, key };
            }
        }
        emit(obs, ArtifactMiss { kind, key });
        let value = compute();
        let encoded = value.encode();
        let wrapper = object(vec![
            ("key", Value::String(format!("{key:016x}"))),
            ("kind", Value::String(kind.to_string())),
            ("schema", u64_value(SCHEMA_VERSION)),
            ("spec", spec.clone()),
            ("value", encoded.clone()),
        ]);
        let json = serde_json::to_string(&wrapper).expect("artifact serializes");
        fs::create_dir_all(&self.root).expect("create cache directory");
        let path = self.root.join(format!("{stem}.json"));
        fs::write(&path, &json).expect("write cache file");
        emit(obs, ArtifactWrite { kind, key, bytes: json.len() as u64 });
        self.memo.lock().expect("memo lock").insert(stem, encoded);
        // A write changes what later loads may see: tell the watchers.
        self.generation.fetch_add(1, Ordering::AcqRel);
        Keyed { value, key }
    }

    /// Tries memo, then disk. Returns `None` (a miss) unless the cached
    /// entry exists, carries the same spec, and decodes cleanly.
    fn load_cached<T: Artifact>(&self, stem: &str, spec: &Value) -> Option<T> {
        if let Some(encoded) = self.memo.lock().expect("memo lock").get(stem) {
            if let Ok(value) = T::decode(encoded) {
                return Some(value);
            }
        }
        let path = self.root.join(format!("{stem}.json"));
        let text = fs::read_to_string(path).ok()?;
        let wrapper: Value = serde_json::from_str(&text).ok()?;
        // Spec verification: a colliding or hand-edited file must not
        // masquerade as the requested artifact.
        if wrapper.get("spec")? != spec {
            return None;
        }
        let encoded = wrapper.get("value")?;
        let value = T::decode(encoded).ok()?;
        self.memo.lock().expect("memo lock").insert(stem.to_string(), encoded.clone());
        Some(value)
    }

    // ---- typed pipeline stages ------------------------------------------

    /// A trained controller for `app`, keyed by `(app, seed)`.
    pub fn controller(
        &self,
        app: &dyn Application,
        seed: u64,
        obs: &dyn Subscriber,
    ) -> Keyed<PolicyNet> {
        let spec =
            object(vec![("app", Value::String(app.name().to_string())), ("seed", u64_value(seed))]);
        self.get_or_compute("controller", &spec, obs, || app.build_controller(seed))
    }

    /// A rollout of a stored controller, keyed by `(app, controller
    /// key, workload, samples, seed)`. A spec naming no workload is
    /// keyed under the application's default workload name, so explicit
    /// and implicit defaults share one cache entry.
    pub fn rollout(
        &self,
        app: &dyn Application,
        controller: &Keyed<PolicyNet>,
        spec: &RolloutSpec,
        obs: &dyn Subscriber,
    ) -> Keyed<AppData> {
        let workload = spec.workload.as_deref().unwrap_or(app.workloads()[0]);
        let spec_value = object(vec![
            ("app", Value::String(app.name().to_string())),
            ("controller", Value::String(format!("{:016x}", controller.key))),
            ("samples", u64_value(spec.samples as u64)),
            ("seed", u64_value(spec.seed)),
            ("workload", Value::String(workload.to_string())),
        ]);
        self.get_or_compute("rollout", &spec_value, obs, || app.rollout(controller, spec))
    }

    /// A fitted Agua surrogate over a stored rollout, keyed by `(app,
    /// LLM variant, training params, label seed, rollout key)`. The
    /// labeler is rebuilt deterministically from `(concepts, variant)`
    /// on hit and miss alike, so only the model is persisted.
    pub fn surrogate(
        &self,
        app: &dyn Application,
        variant: LlmVariant,
        params: &TrainParams,
        label_seed: u64,
        train: &Keyed<AppData>,
        obs: &dyn Subscriber,
    ) -> (Keyed<AguaModel>, ConceptLabeler) {
        let spec = object(vec![
            ("app", Value::String(app.name().to_string())),
            ("label_seed", u64_value(label_seed)),
            ("params", train_params_value(params)),
            ("train", Value::String(format!("{:016x}", train.key))),
            ("variant", Value::String(variant.tag().to_string())),
        ]);
        let concepts = app.concepts();
        let model = self.get_or_compute("surrogate", &spec, obs, || {
            fit_agua_observed(&concepts, app.n_outputs(), train, variant, params, label_seed, obs).0
        });
        (model, labeler_for(&concepts, variant))
    }

    /// An int8 quantized mirror of a stored surrogate, cached under its
    /// own `surrogate_q8` kind. The quantized weights are deterministic
    /// in the `f32` model alone, so the spec names only the surrogate
    /// key; `epsilon` and the calibration batch affect the *gate*, not
    /// the artifact — a cached quantized model is still withheld when
    /// its fidelity drop on `calibration` exceeds `epsilon`. The gate
    /// verdict is memoized process-wide per `(quantized key,
    /// calibration key, epsilon)` triple, so a long-lived engine
    /// re-loading the same artifact re-verifies exactly once instead of
    /// on every load; the verdict is deterministic in the triple, so the
    /// memoized report is the one a fresh evaluation would produce.
    //= spec: specs/quantization.toml#fidelity-gate
    //# The gate MUST be evaluated when a cached quantized artifact is
    //# first loaded, since epsilon and the calibration batch are not
    //# part of the cache key. Within one process the verdict MUST be
    //# memoized per (quantized artifact, calibration batch, epsilon)
    //# triple
    pub fn surrogate_q8(
        &self,
        model: &Keyed<AguaModel>,
        calibration: &Keyed<AppData>,
        epsilon: f32,
        obs: &dyn Subscriber,
    ) -> Result<(Keyed<QuantizedAguaModel>, QuantFidelityReport), QuantFidelityReport> {
        let spec = object(vec![("surrogate", Value::String(format!("{:016x}", model.key)))]);
        let quantized = self
            .get_or_compute("surrogate_q8", &spec, obs, || QuantizedAguaModel::from_model(model));
        let memo_key = (quantized.key, calibration.key, epsilon.to_bits());
        let mut memo = q8_gate_memo().lock().expect("q8 gate memo lock");
        let report = match memo.get(&memo_key) {
            Some(report) => report.clone(),
            None => {
                let report = quantized.fidelity_report(
                    model,
                    &calibration.embeddings,
                    &calibration.outputs,
                    epsilon,
                );
                Q8_GATE_EVALUATIONS.fetch_add(1, Ordering::AcqRel);
                memo.insert(memo_key, report.clone());
                report
            }
        };
        drop(memo);
        if report.passes {
            Ok((quantized, report))
        } else {
            Err(report)
        }
    }
}

/// Process-global memo of q8 fidelity-gate verdicts, keyed by
/// `(quantized artifact key, calibration rollout key, epsilon bits)`.
/// Global rather than per-[`Store`] because the verdict depends only on
/// content-addressed inputs: two stores loading the same artifacts
/// would recompute the same report.
type Q8GateMemo = Mutex<BTreeMap<(u64, u64, u32), QuantFidelityReport>>;

fn q8_gate_memo() -> &'static Q8GateMemo {
    static MEMO: OnceLock<Q8GateMemo> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Times the q8 fidelity gate actually ran (not counting memo hits) in
/// this process — observability for the once-per-process contract.
static Q8_GATE_EVALUATIONS: AtomicU64 = AtomicU64::new(0);

/// How many times this process has evaluated (not memo-served) the q8
/// fidelity gate.
pub fn q8_gate_evaluations() -> u64 {
    Q8_GATE_EVALUATIONS.load(Ordering::Acquire)
}

/// Canonical spec encoding of [`TrainParams`] — every field, by name.
pub fn train_params_value(p: &TrainParams) -> Value {
    object(vec![
        ("cm_batch", u64_value(p.cm_batch as u64)),
        ("cm_epochs", u64_value(p.cm_epochs as u64)),
        ("cm_hidden", u64_value(p.cm_hidden as u64)),
        ("cm_lr", f32s_value(&[p.cm_lr])),
        ("cm_momentum", f32s_value(&[p.cm_momentum])),
        ("elastic_alpha", f32s_value(&[p.elastic_alpha])),
        ("elastic_coeff", f32s_value(&[p.elastic_coeff])),
        ("om_batch", u64_value(p.om_batch as u64)),
        ("om_epochs", u64_value(p.om_epochs as u64)),
        ("om_lr", f32s_value(&[p.om_lr])),
        ("om_momentum", f32s_value(&[p.om_momentum])),
        ("seed", u64_value(p.seed)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::DDOS;

    fn temp_store(mode: CacheMode) -> Store {
        // Unique per test to keep parallel test runs independent.
        let dir = std::env::temp_dir().join(format!(
            "agua-store-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        Store::with_mode(dir, mode)
    }

    #[test]
    fn same_spec_hits_and_perturbed_spec_misses() {
        let store = temp_store(CacheMode::On);
        let metrics = agua_obs::Metrics::new();

        let c1 = store.controller(&DDOS, 5, &metrics);
        let c2 = store.controller(&DDOS, 5, &metrics);
        assert_eq!(c1.key, c2.key);
        let x = agua_nn::Matrix::from_rows(&[vec![0.25; DDOS.feature_names().len()]]);
        assert_eq!(c1.logits(&x).as_slice(), c2.logits(&x).as_slice());

        // Perturbed seed → different key → another miss.
        let c3 = store.controller(&DDOS, 6, &metrics);
        assert_ne!(c1.key, c3.key);

        let sched = metrics.snapshot().scheduling;
        assert_eq!(sched.get("artifact.controller.hits"), Some(&1));
        assert_eq!(sched.get("artifact.controller.misses"), Some(&2));
        assert_eq!(sched.get("artifact.controller.writes"), Some(&2));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn disk_survives_a_fresh_store_and_off_bypasses_it() {
        let store = temp_store(CacheMode::On);
        let root = store.root().to_path_buf();
        let metrics = agua_obs::Metrics::new();
        let spec = RolloutSpec::new(20, 9);
        let c = store.controller(&DDOS, 7, &metrics);
        let r = store.rollout(&DDOS, &c, &spec, &metrics);

        // A fresh store over the same directory (new memo) hits disk.
        let fresh = Store::with_mode(&root, CacheMode::On);
        let metrics2 = agua_obs::Metrics::new();
        let c2 = fresh.controller(&DDOS, 7, &metrics2);
        let r2 = fresh.rollout(&DDOS, &c2, &spec, &metrics2);
        assert_eq!(r.outputs, r2.outputs);
        assert_eq!(r.embeddings, r2.embeddings);
        let sched = metrics2.snapshot().scheduling;
        assert_eq!(sched.get("artifact.controller.hits"), Some(&1));
        assert_eq!(sched.get("artifact.rollout.hits"), Some(&1));
        assert_eq!(sched.get("artifact.rollout.misses"), None);

        // Off: identical values, no store traffic at all.
        let off = Store::with_mode(&root, CacheMode::Off);
        let metrics3 = agua_obs::Metrics::new();
        let c3 = off.controller(&DDOS, 7, &metrics3);
        let r3 = off.rollout(&DDOS, &c3, &spec, &metrics3);
        assert_eq!(r.outputs, r3.outputs);
        assert_eq!(r.embeddings, r3.embeddings);
        assert!(metrics3.snapshot().scheduling.is_empty());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn params_and_variant_perturbations_change_the_surrogate_key() {
        let store = temp_store(CacheMode::On);
        let metrics = agua_obs::Metrics::new();
        let base = TrainParams::fast();
        let c = store.controller(&DDOS, 11, &metrics);
        let train = store.rollout(&DDOS, &c, &RolloutSpec::new(30, 12), &metrics);

        let (m1, _) = store.surrogate(&DDOS, LlmVariant::HighQuality, &base, 13, &train, &metrics);
        let (m2, _) = store.surrogate(&DDOS, LlmVariant::HighQuality, &base, 13, &train, &metrics);
        assert_eq!(m1.key, m2.key);
        assert_eq!(
            m1.predict_logits(&train.embeddings).as_slice(),
            m2.predict_logits(&train.embeddings).as_slice()
        );

        let mut tweaked = base;
        tweaked.om_epochs += 1;
        let (m3, _) =
            store.surrogate(&DDOS, LlmVariant::HighQuality, &tweaked, 13, &train, &metrics);
        assert_ne!(m1.key, m3.key);
        let (m4, _) = store.surrogate(&DDOS, LlmVariant::OpenSource, &base, 13, &train, &metrics);
        assert_ne!(m1.key, m4.key);

        let sched = metrics.snapshot().scheduling;
        assert_eq!(sched.get("artifact.surrogate.hits"), Some(&1));
        assert_eq!(sched.get("artifact.surrogate.misses"), Some(&3));
        let _ = fs::remove_dir_all(store.root());
    }

    /// The only test in this binary exercising `surrogate_q8`, so the
    /// process-global `q8_gate_evaluations()` deltas below are exact —
    /// keep it that way (or move new q8 coverage in here) to avoid
    /// counter races across parallel test threads.
    #[test]
    fn quantized_surrogate_lives_under_its_own_spec_key() {
        let store = temp_store(CacheMode::On);
        let metrics = agua_obs::Metrics::new();
        let base = TrainParams::fast();
        let c = store.controller(&DDOS, 31, &metrics);
        let train = store.rollout(&DDOS, &c, &RolloutSpec::new(30, 32), &metrics);
        let (model, _) = store.surrogate(
            &DDOS,
            crate::data::LlmVariant::HighQuality,
            &base,
            33,
            &train,
            &metrics,
        );

        // ε = 1.0 always passes (fidelity drop cannot exceed 1).
        let evals0 = q8_gate_evaluations();
        let (q1, r1) = store.surrogate_q8(&model, &train, 1.0, &metrics).expect("gate passes");
        assert_ne!(q1.key, model.key, "quantized artifact must have its own key");
        assert_eq!(q8_gate_evaluations(), evals0 + 1, "first load evaluates the gate");

        // A fresh store over the same directory decodes from disk and
        // reproduces the quantized predictions bit-for-bit. The gate
        // verdict for the same (artifact, calibration, ε) triple is
        // memo-served: evaluated exactly once per process.
        let fresh = Store::with_mode(store.root(), CacheMode::On);
        let (q2, r2) = fresh.surrogate_q8(&model, &train, 1.0, &metrics).expect("gate on hit");
        assert_eq!(q1.key, q2.key);
        assert_eq!(
            q1.predict_logits(&train.embeddings).as_slice(),
            q2.predict_logits(&train.embeddings).as_slice()
        );
        assert_eq!(r1, r2, "the memoized gate report is the evaluated one");
        assert_eq!(q8_gate_evaluations(), evals0 + 1, "same triple must not re-evaluate");
        let sched = metrics.snapshot().scheduling;
        assert_eq!(sched.get("artifact.surrogate_q8.misses"), Some(&1));
        assert_eq!(sched.get("artifact.surrogate_q8.hits"), Some(&1));

        // An impossible ε withholds even a cached quantized model — a
        // changed ε is a new triple, so the gate runs again.
        let err = store.surrogate_q8(&model, &train, -2.0, &metrics).expect_err("impossible ε");
        assert!(!err.passes);
        assert_eq!(err.epsilon, -2.0);
        assert_eq!(q8_gate_evaluations(), evals0 + 2, "changed ε re-runs the gate");
        let again = store.surrogate_q8(&model, &train, -2.0, &metrics).expect_err("still fails");
        assert_eq!(again, err, "failing verdicts are memoized too");
        assert_eq!(q8_gate_evaluations(), evals0 + 2);

        // A different calibration batch is likewise a new triple.
        let other = store.rollout(&DDOS, &c, &RolloutSpec::new(25, 77), &metrics);
        let _ = store.surrogate_q8(&model, &other, 1.0, &metrics).expect("gate passes");
        assert_eq!(q8_gate_evaluations(), evals0 + 3, "changed calibration re-runs the gate");
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn watch_observes_writes_and_explicit_invalidation() {
        let store = temp_store(CacheMode::On);
        let watch = store.watch();
        let seen = watch.generation();
        assert!(!watch.changed_since(seen));

        // A computed-and-written artifact bumps the generation.
        let metrics = agua_obs::Metrics::new();
        let c = store.controller(&DDOS, 41, &metrics);
        assert!(watch.changed_since(seen), "an artifact write must wake watchers");

        // A pure hit does not.
        let seen = watch.generation();
        let _ = store.controller(&DDOS, 41, &metrics);
        assert!(!watch.changed_since(seen), "a cache hit changes nothing");

        // Explicit invalidation does, and the handle survives the store.
        store.invalidate();
        assert!(watch.changed_since(seen));
        let seen = watch.generation();
        drop(c);
        drop(store);
        assert!(!watch.changed_since(seen));
    }

    #[test]
    fn corrupt_cache_files_degrade_to_recompute() {
        let store = temp_store(CacheMode::On);
        let metrics = agua_obs::Metrics::new();
        let c = store.controller(&DDOS, 21, &metrics);
        let stem = format!("controller-{:016x}", c.key);
        fs::write(store.root().join(format!("{stem}.json")), "{not json").unwrap();

        let fresh = Store::with_mode(store.root(), CacheMode::On);
        let c2 = fresh.controller(&DDOS, 21, &metrics);
        let x = agua_nn::Matrix::from_rows(&[vec![0.5; DDOS.feature_names().len()]]);
        assert_eq!(c.logits(&x).as_slice(), c2.logits(&x).as_slice());
        let sched = metrics.snapshot().scheduling;
        assert_eq!(sched.get("artifact.controller.misses"), Some(&2));
        let _ = fs::remove_dir_all(store.root());
    }
}
