//! Congestion-control application plumbing (moved here from
//! `agua_bench::apps`).

use agua_controllers::cc::{self, CcVariant};
use agua_controllers::policy::PolicyNet;
use agua_nn::Matrix;
use cc_env::{CapacityProcess, CcSimulator};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::data::AppData;

/// Trains a CC controller of the given variant (behaviour cloning
/// with two DAgger aggregation rounds).
pub fn build_controller(variant: CcVariant, seed: u64) -> PolicyNet {
    cc::train_controller_dagger(variant, 700, 3, seed)
}

/// Rolls the trained controller greedily over the training link
/// patterns, recording `n_samples` decisions.
pub fn rollout(controller: &PolicyNet, variant: CcVariant, n_samples: usize, seed: u64) -> AppData {
    let mut rng = StdRng::seed_from_u64(seed);
    const SCENARIOS: usize = 12;
    let per_pattern = n_samples / SCENARIOS + 1;
    let mut features = Vec::new();
    let mut sections = Vec::new();
    let mut emb_rows: Vec<Vec<f32>> = Vec::new();
    let mut outputs = Vec::new();
    let mut trace_ids = Vec::new();
    for trace_id in 0..SCENARIOS {
        let (pattern, config) = cc::sample_scenario(trace_id, &mut rng);
        let cap = CapacityProcess::generate(pattern, per_pattern + variant.history(), &mut rng);
        let initial = rng.random_range(0.3..1.0) * config.nominal_mbps;
        let mut sim = CcSimulator::with_history(cap, config, initial, variant.history());
        for _ in 0..variant.history().min(sim.mis_left()) {
            sim.step_at_current_rate();
        }
        while !sim.done() && features.len() < (trace_id + 1) * per_pattern {
            let obs = sim.observation();
            let f = obs.features(variant.with_avg_latency());
            let x = Matrix::row_vector(&f);
            let (h, logits) = controller.embeddings_and_logits(&x);
            let action = logits.argmax_row(0);
            features.push(f);
            sections.push(obs.sections());
            emb_rows.push(h.row(0).to_vec());
            outputs.push(action);
            trace_ids.push(trace_id);
            sim.step(action);
        }
    }
    features.truncate(n_samples);
    sections.truncate(n_samples);
    emb_rows.truncate(n_samples);
    outputs.truncate(n_samples);
    trace_ids.truncate(n_samples);
    AppData { features, sections, embeddings: Matrix::from_rows(&emb_rows), outputs, trace_ids }
}

/// Feature names for the CC feature vector.
pub fn feature_names(variant: CcVariant) -> Vec<String> {
    let h = variant.history();
    let mut names = Vec::new();
    for base in ["send_rate", "delivered", "latency", "loss"] {
        for t in 0..h {
            let lag = h - t;
            names.push(format!("{base}[t-{lag}]"));
        }
    }
    if variant.with_avg_latency() {
        names.push("avg_latency".to_string());
    }
    names
}
