//! Shared checkpoint format for trained pipelines.
//!
//! `agua-cli train` persists its outputs here and `fidelity` /
//! `explain` / `report` reload them; experiment bins can do the same.
//! A checkpoint directory holds four files, each in the portable codec
//! format of [`crate::codec`]:
//!
//! - `controller.json` — the trained [`PolicyNet`],
//! - `agua.json` — the fitted [`AguaModel`] surrogate,
//! - `quantizer.json` — the labelling [`Quantizer`] ψ,
//! - `meta.json` — the [`CheckpointMeta`] provenance record.

use std::fs;
use std::path::Path;

use agua::labeling::Quantizer;
use agua::surrogate::AguaModel;
use agua_controllers::policy::PolicyNet;
use serde_json::Value;

use crate::codec::{
    f32_of, get, object, str_of, u64_of, u64_value, usize_of, Artifact, CodecError,
};

/// Provenance of a checkpoint: what was trained, on which seed.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointMeta {
    /// Registry name of the application (see [`crate::lookup`]).
    pub app: String,
    /// LLM variant tag (`"hq"` / `"os"`).
    pub llm: String,
    /// Training seed.
    pub seed: u64,
    /// Controller output dimensionality.
    pub n_outputs: usize,
    /// Surrogate fidelity on the training rollout.
    pub train_fidelity: f32,
}

impl Artifact for CheckpointMeta {
    fn encode(&self) -> Value {
        object(vec![
            ("app", Value::String(self.app.clone())),
            ("llm", Value::String(self.llm.clone())),
            ("n_outputs", Value::Number(self.n_outputs as f64)),
            ("seed", u64_value(self.seed)),
            ("train_fidelity", Value::Number(f64::from(self.train_fidelity))),
        ])
    }

    fn decode(value: &Value) -> Result<Self, CodecError> {
        Ok(Self {
            app: str_of(get(value, "app", "CheckpointMeta")?, "CheckpointMeta.app")?.to_string(),
            llm: str_of(get(value, "llm", "CheckpointMeta")?, "CheckpointMeta.llm")?.to_string(),
            seed: u64_of(get(value, "seed", "CheckpointMeta")?, "CheckpointMeta.seed")?,
            n_outputs: usize_of(
                get(value, "n_outputs", "CheckpointMeta")?,
                "CheckpointMeta.n_outputs",
            )?,
            train_fidelity: f32_of(
                get(value, "train_fidelity", "CheckpointMeta")?,
                "CheckpointMeta.train_fidelity",
            )?,
        })
    }
}

/// A trained pipeline on disk: controller, surrogate, quantizer, meta.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The trained controller.
    pub controller: PolicyNet,
    /// The fitted Agua surrogate.
    pub model: AguaModel,
    /// The quantizer the labelling pipeline used.
    pub quantizer: Quantizer,
    /// Provenance record.
    pub meta: CheckpointMeta,
}

impl Checkpoint {
    /// Writes the checkpoint files into `dir` (created if missing).
    //= spec: specs/applications.toml#checkpoint-format
    //# four files in the portable codec format: controller.json,
    //# agua.json, quantizer.json, and meta.json
    pub fn save(&self, dir: &Path) -> Result<(), String> {
        fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        write_artifact(dir, "controller.json", &self.controller)?;
        write_artifact(dir, "agua.json", &self.model)?;
        write_artifact(dir, "quantizer.json", &self.quantizer)?;
        write_artifact(dir, "meta.json", &self.meta)
    }

    /// Reads a checkpoint previously written by [`Checkpoint::save`].
    pub fn load(dir: &Path) -> Result<Self, String> {
        Ok(Self {
            controller: read_artifact(dir, "controller.json")?,
            model: read_artifact(dir, "agua.json")?,
            quantizer: read_artifact(dir, "quantizer.json")?,
            meta: read_artifact(dir, "meta.json")?,
        })
    }
}

fn write_artifact<T: Artifact>(dir: &Path, name: &str, value: &T) -> Result<(), String> {
    let path = dir.join(name);
    let json = serde_json::to_string(&value.encode())
        .map_err(|e| format!("cannot serialize {name}: {e}"))?;
    fs::write(&path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

fn read_artifact<T: Artifact>(dir: &Path, name: &str) -> Result<T, String> {
    let path = dir.join(name);
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let value: Value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    T::decode(&value).map_err(|e| format!("cannot decode {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::{Application, RolloutSpec, DDOS};
    use crate::data::{fit_agua, LlmVariant};
    use agua::surrogate::TrainParams;

    #[test]
    fn checkpoint_round_trips_through_disk() {
        let controller = DDOS.build_controller(31);
        let train = DDOS.rollout(&controller, &RolloutSpec::new(40, 32));
        let (model, labeler) = fit_agua(
            &DDOS.concepts(),
            DDOS.n_outputs(),
            &train,
            LlmVariant::HighQuality,
            &TrainParams::fast(),
            33,
        );
        let ckpt = Checkpoint {
            controller,
            model,
            quantizer: labeler.quantizer().clone(),
            meta: CheckpointMeta {
                app: "ddos".to_string(),
                llm: "hq".to_string(),
                seed: 31,
                n_outputs: DDOS.n_outputs(),
                train_fidelity: 0.5,
            },
        };
        let dir = std::env::temp_dir().join(format!("agua-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ckpt.save(&dir).unwrap();
        let restored = Checkpoint::load(&dir).unwrap();
        assert_eq!(restored.meta, ckpt.meta);
        assert_eq!(restored.quantizer.boundaries, ckpt.quantizer.boundaries);
        assert_eq!(
            ckpt.model.predict_logits(&train.embeddings).as_slice(),
            restored.model.predict_logits(&train.embeddings).as_slice()
        );
        let x = agua_nn::Matrix::from_rows(&train.features);
        assert_eq!(
            ckpt.controller.logits(&x).as_slice(),
            restored.controller.logits(&x).as_slice()
        );
        let _ = fs::remove_dir_all(&dir);

        let err = Checkpoint::load(Path::new("/nonexistent/ckpt")).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }
}
