//! Portable JSON codec for persisted artifacts.
//!
//! The store and checkpoint layers never round-trip artifacts through
//! `serde` derives. Instead every artifact is encoded field-by-field
//! into a [`serde_json::Value`] tree and decoded back through explicit
//! public constructors ([`Matrix::from_fn`], [`PolicyNet::from_parts`],
//! …). That buys three properties the content-addressed store needs:
//!
//! - **Canonical bytes.** Objects are `BTreeMap`-backed, so keys
//!   serialize in sorted order and the same artifact always produces
//!   the same bytes — safe to hash and to compare across runs.
//! - **Exact numerics.** `f32` values pass through `f64` (lossless) and
//!   print in shortest-round-trip form, so decode(encode(x)) is
//!   bit-identical for finite values. `u64` values (seeds, keys) are
//!   encoded as decimal strings because JSON numbers are doubles.
//! - **Version independence.** The format is what this module says it
//!   is, not what a derive happens to emit.

use std::fmt;

use agua::labeling::Quantizer;
use agua::quantized::QuantizedAguaModel;
use agua::surrogate::{AguaModel, ConceptMapping, OutputMapping};
use agua_controllers::policy::PolicyNet;
use agua_nn::{
    LayerKind, LayerNorm, Linear, Matrix, Mlp, Param, QuantLayer, QuantizedLinear, QuantizedMlp,
    ReLU, Tanh,
};
use agua_text::describer::DescribedSection;
use agua_text::stats::SignalSeries;
use serde_json::Value;

use crate::data::AppData;

/// A decode failure: what was being decoded and why it failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn fail<T>(what: &str, why: &str) -> Result<T, CodecError> {
    Err(CodecError(format!("{what}: {why}")))
}

/// An artifact the store and checkpoints can persist.
pub trait Artifact: Sized {
    /// Encodes the artifact as a JSON value.
    fn encode(&self) -> Value;

    /// Decodes an artifact previously produced by [`Artifact::encode`].
    fn decode(value: &Value) -> Result<Self, CodecError>;
}

// ---- value helpers ------------------------------------------------------

/// Builds an object value; keys end up sorted (BTreeMap-backed map).
pub fn object(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

pub fn get<'a>(v: &'a Value, field: &str, what: &str) -> Result<&'a Value, CodecError> {
    match v {
        Value::Object(m) => match m.get(field) {
            Some(inner) => Ok(inner),
            None => fail(what, &format!("missing field `{field}`")),
        },
        _ => fail(what, "expected an object"),
    }
}

pub fn f64_of(v: &Value, what: &str) -> Result<f64, CodecError> {
    match v {
        Value::Number(n) => Ok(*n),
        _ => fail(what, "expected a number"),
    }
}

pub fn f32_of(v: &Value, what: &str) -> Result<f32, CodecError> {
    Ok(f64_of(v, what)? as f32)
}

pub fn usize_of(v: &Value, what: &str) -> Result<usize, CodecError> {
    let n = f64_of(v, what)?;
    if n < 0.0 || n.fract() != 0.0 {
        return fail(what, "expected a non-negative integer");
    }
    Ok(n as usize)
}

pub fn str_of<'a>(v: &'a Value, what: &str) -> Result<&'a str, CodecError> {
    match v {
        Value::String(s) => Ok(s),
        _ => fail(what, "expected a string"),
    }
}

pub fn arr_of<'a>(v: &'a Value, what: &str) -> Result<&'a [Value], CodecError> {
    match v {
        Value::Array(items) => Ok(items),
        _ => fail(what, "expected an array"),
    }
}

/// Encodes a `u64` as a decimal string (JSON numbers are doubles and
/// cannot carry all 64 bits).
pub fn u64_value(n: u64) -> Value {
    Value::String(n.to_string())
}

pub fn u64_of(v: &Value, what: &str) -> Result<u64, CodecError> {
    match str_of(v, what)?.parse() {
        Ok(n) => Ok(n),
        Err(_) => fail(what, "expected a decimal u64 string"),
    }
}

pub fn f32s_value(values: &[f32]) -> Value {
    Value::Array(values.iter().map(|&v| Value::Number(f64::from(v))).collect())
}

pub fn f32s_of(v: &Value, what: &str) -> Result<Vec<f32>, CodecError> {
    arr_of(v, what)?.iter().map(|item| f32_of(item, what)).collect()
}

/// Encodes int8 weights as a plain JSON number array — every `i8` is
/// exactly representable as an `f64`, so the round trip is lossless.
pub fn i8s_value(values: &[i8]) -> Value {
    Value::Array(values.iter().map(|&v| Value::Number(f64::from(v))).collect())
}

pub fn i8s_of(v: &Value, what: &str) -> Result<Vec<i8>, CodecError> {
    arr_of(v, what)?
        .iter()
        .map(|item| {
            let n = f64_of(item, what)?;
            if n.fract() != 0.0 || !(-128.0..=127.0).contains(&n) {
                return fail(what, "expected an int8 integer");
            }
            Ok(n as i8)
        })
        .collect()
}

pub fn usizes_value(values: &[usize]) -> Value {
    Value::Array(values.iter().map(|&v| Value::Number(v as f64)).collect())
}

pub fn usizes_of(v: &Value, what: &str) -> Result<Vec<usize>, CodecError> {
    arr_of(v, what)?.iter().map(|item| usize_of(item, what)).collect()
}

// ---- tensors and layers -------------------------------------------------

impl Artifact for Matrix {
    fn encode(&self) -> Value {
        object(vec![
            ("cols", Value::Number(self.cols() as f64)),
            ("data", f32s_value(self.as_slice())),
            ("rows", Value::Number(self.rows() as f64)),
        ])
    }

    fn decode(value: &Value) -> Result<Self, CodecError> {
        let rows = usize_of(get(value, "rows", "Matrix")?, "Matrix.rows")?;
        let cols = usize_of(get(value, "cols", "Matrix")?, "Matrix.cols")?;
        let data = f32s_of(get(value, "data", "Matrix")?, "Matrix.data")?;
        if data.len() != rows * cols {
            return fail("Matrix", "data length does not match rows × cols");
        }
        Ok(Matrix::from_fn(rows, cols, |r, c| data[r * cols + c]))
    }
}

/// Parameters persist their optimizer state (`m`/`v`) alongside the
/// value so that resuming training from a cached artifact is
/// byte-identical to never having saved it.
fn encode_param(p: &Param) -> Value {
    object(vec![
        ("grad", p.grad.encode()),
        ("m", p.m.encode()),
        ("v", p.v.encode()),
        ("value", p.value.encode()),
    ])
}

fn decode_param(v: &Value, what: &str) -> Result<Param, CodecError> {
    Ok(Param {
        value: Matrix::decode(get(v, "value", what)?)?,
        grad: Matrix::decode(get(v, "grad", what)?)?,
        m: Matrix::decode(get(v, "m", what)?)?,
        v: Matrix::decode(get(v, "v", what)?)?,
    })
}

fn encode_linear(l: &Linear) -> Value {
    object(vec![("bias", encode_param(&l.bias)), ("weight", encode_param(&l.weight))])
}

fn decode_linear(v: &Value) -> Result<Linear, CodecError> {
    let weight = decode_param(get(v, "weight", "Linear")?, "Linear.weight")?;
    let bias = decode_param(get(v, "bias", "Linear")?, "Linear.bias")?;
    Ok(Linear::from_params(weight, bias))
}

fn encode_layer(layer: &LayerKind) -> Value {
    match layer {
        LayerKind::Linear(l) => object(vec![("Linear", encode_linear(l))]),
        LayerKind::ReLU(_) => object(vec![("ReLU", object(Vec::new()))]),
        LayerKind::Tanh(_) => object(vec![("Tanh", object(Vec::new()))]),
        LayerKind::LayerNorm(l) => object(vec![(
            "LayerNorm",
            object(vec![
                ("beta", encode_param(&l.beta)),
                ("eps", Value::Number(f64::from(l.eps))),
                ("gamma", encode_param(&l.gamma)),
            ]),
        )]),
    }
}

fn decode_layer(v: &Value) -> Result<LayerKind, CodecError> {
    let m = match v {
        Value::Object(m) if m.len() == 1 => m,
        _ => return fail("LayerKind", "expected a single-variant object"),
    };
    let (tag, body) = m.iter().next().expect("len checked");
    match tag.as_str() {
        "Linear" => Ok(LayerKind::Linear(decode_linear(body)?)),
        "ReLU" => Ok(LayerKind::ReLU(ReLU::new())),
        "Tanh" => Ok(LayerKind::Tanh(Tanh::new())),
        "LayerNorm" => {
            let gamma = decode_param(get(body, "gamma", "LayerNorm")?, "LayerNorm.gamma")?;
            let beta = decode_param(get(body, "beta", "LayerNorm")?, "LayerNorm.beta")?;
            let eps = f32_of(get(body, "eps", "LayerNorm")?, "LayerNorm.eps")?;
            Ok(LayerKind::LayerNorm(LayerNorm::from_params(gamma, beta, eps)))
        }
        other => fail("LayerKind", &format!("unknown layer `{other}`")),
    }
}

impl Artifact for Mlp {
    fn encode(&self) -> Value {
        object(vec![("layers", Value::Array(self.layers.iter().map(encode_layer).collect()))])
    }

    fn decode(value: &Value) -> Result<Self, CodecError> {
        let layers = arr_of(get(value, "layers", "Mlp")?, "Mlp.layers")?
            .iter()
            .map(decode_layer)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Mlp { layers })
    }
}

// ---- quantized tensors and layers ---------------------------------------

fn encode_qlinear(l: &QuantizedLinear) -> Value {
    object(vec![
        ("bias", f32s_value(&l.bias)),
        ("in_dim", Value::Number(l.in_dim as f64)),
        ("out_dim", Value::Number(l.out_dim as f64)),
        ("scale", Value::Number(f64::from(l.scale))),
        ("weight_t", i8s_value(&l.weight_t)),
    ])
}

fn decode_qlinear(v: &Value) -> Result<QuantizedLinear, CodecError> {
    let in_dim = usize_of(get(v, "in_dim", "QuantizedLinear")?, "QuantizedLinear.in_dim")?;
    let out_dim = usize_of(get(v, "out_dim", "QuantizedLinear")?, "QuantizedLinear.out_dim")?;
    let scale = f32_of(get(v, "scale", "QuantizedLinear")?, "QuantizedLinear.scale")?;
    let weight_t = i8s_of(get(v, "weight_t", "QuantizedLinear")?, "QuantizedLinear.weight_t")?;
    let bias = f32s_of(get(v, "bias", "QuantizedLinear")?, "QuantizedLinear.bias")?;
    // Validate here so a corrupt cache file degrades to a decode error
    // (a store miss), never to a `from_parts` panic.
    if weight_t.len() != in_dim * out_dim || bias.len() != out_dim {
        return fail("QuantizedLinear", "buffer lengths do not match the declared shape");
    }
    if !(scale > 0.0 && scale.is_finite()) {
        return fail("QuantizedLinear", "scale must be positive and finite");
    }
    Ok(QuantizedLinear::from_parts(in_dim, out_dim, scale, weight_t, bias))
}

fn encode_qlayer(layer: &QuantLayer) -> Value {
    match layer {
        QuantLayer::Linear(l) => object(vec![("Linear", encode_qlinear(l))]),
        QuantLayer::ReLU => object(vec![("ReLU", object(Vec::new()))]),
        QuantLayer::Tanh => object(vec![("Tanh", object(Vec::new()))]),
        QuantLayer::LayerNorm { gamma, beta, eps } => object(vec![(
            "LayerNorm",
            object(vec![
                ("beta", f32s_value(beta)),
                ("eps", Value::Number(f64::from(*eps))),
                ("gamma", f32s_value(gamma)),
            ]),
        )]),
    }
}

fn decode_qlayer(v: &Value) -> Result<QuantLayer, CodecError> {
    let m = match v {
        Value::Object(m) if m.len() == 1 => m,
        _ => return fail("QuantLayer", "expected a single-variant object"),
    };
    let (tag, body) = m.iter().next().expect("len checked");
    match tag.as_str() {
        "Linear" => Ok(QuantLayer::Linear(decode_qlinear(body)?)),
        "ReLU" => Ok(QuantLayer::ReLU),
        "Tanh" => Ok(QuantLayer::Tanh),
        "LayerNorm" => {
            let gamma = f32s_of(get(body, "gamma", "QuantLayer")?, "QuantLayer.gamma")?;
            let beta = f32s_of(get(body, "beta", "QuantLayer")?, "QuantLayer.beta")?;
            let eps = f32_of(get(body, "eps", "QuantLayer")?, "QuantLayer.eps")?;
            if gamma.len() != beta.len() {
                return fail("QuantLayer", "γ/β lengths disagree");
            }
            Ok(QuantLayer::LayerNorm { gamma, beta, eps })
        }
        other => fail("QuantLayer", &format!("unknown layer `{other}`")),
    }
}

impl Artifact for QuantizedAguaModel {
    fn encode(&self) -> Value {
        object(vec![
            (
                "concept_names",
                Value::Array(self.concept_names.iter().map(|n| Value::String(n.clone())).collect()),
            ),
            ("concepts", Value::Number(self.concepts as f64)),
            (
                "delta",
                object(vec![(
                    "layers",
                    Value::Array(self.delta.layers.iter().map(encode_qlayer).collect()),
                )]),
            ),
            ("k", Value::Number(self.k as f64)),
            ("n_outputs", Value::Number(self.n_outputs as f64)),
            ("omega", encode_qlinear(&self.omega)),
        ])
    }

    fn decode(value: &Value) -> Result<Self, CodecError> {
        let what = "QuantizedAguaModel";
        let delta_v = get(value, "delta", what)?;
        let layers = arr_of(get(delta_v, "layers", "QuantizedMlp")?, "QuantizedMlp.layers")?
            .iter()
            .map(decode_qlayer)
            .collect::<Result<Vec<_>, _>>()?;
        let omega = decode_qlinear(get(value, "omega", what)?)?;
        let concepts = usize_of(get(value, "concepts", what)?, "QuantizedAguaModel.concepts")?;
        let k = usize_of(get(value, "k", what)?, "QuantizedAguaModel.k")?;
        let n_outputs = usize_of(get(value, "n_outputs", what)?, "QuantizedAguaModel.n_outputs")?;
        let concept_names = arr_of(get(value, "concept_names", what)?, what)?
            .iter()
            .map(|n| str_of(n, "QuantizedAguaModel.concept_names").map(str::to_string))
            .collect::<Result<Vec<_>, _>>()?;
        if concept_names.len() != concepts {
            return fail(what, "one concept name per concept required");
        }
        if omega.in_dim != concepts * k || omega.out_dim != n_outputs {
            return fail(what, "Ω shape disagrees with C·k inputs / n_outputs");
        }
        Ok(QuantizedAguaModel {
            delta: QuantizedMlp { layers },
            omega,
            concepts,
            k,
            n_outputs,
            concept_names,
        })
    }
}

// ---- pipeline artifacts -------------------------------------------------

impl Artifact for PolicyNet {
    fn encode(&self) -> Value {
        object(vec![
            ("emb_after", Value::Number(self.emb_after() as f64)),
            ("emb_dim", Value::Number(self.emb_dim as f64)),
            ("in_dim", Value::Number(self.in_dim as f64)),
            ("mlp", self.mlp.encode()),
            ("n_actions", Value::Number(self.n_actions as f64)),
        ])
    }

    fn decode(value: &Value) -> Result<Self, CodecError> {
        let mlp = Mlp::decode(get(value, "mlp", "PolicyNet")?)?;
        let in_dim = usize_of(get(value, "in_dim", "PolicyNet")?, "PolicyNet.in_dim")?;
        let emb_dim = usize_of(get(value, "emb_dim", "PolicyNet")?, "PolicyNet.emb_dim")?;
        let n_actions = usize_of(get(value, "n_actions", "PolicyNet")?, "PolicyNet.n_actions")?;
        let emb_after = usize_of(get(value, "emb_after", "PolicyNet")?, "PolicyNet.emb_after")?;
        if emb_after >= mlp.layers.len() {
            return fail("PolicyNet", "emb_after out of range");
        }
        Ok(PolicyNet::from_parts(mlp, in_dim, emb_dim, n_actions, emb_after))
    }
}

impl Artifact for Quantizer {
    fn encode(&self) -> Value {
        object(vec![("boundaries", f32s_value(&self.boundaries))])
    }

    fn decode(value: &Value) -> Result<Self, CodecError> {
        let boundaries = f32s_of(get(value, "boundaries", "Quantizer")?, "Quantizer.boundaries")?;
        Ok(Quantizer { boundaries })
    }
}

impl Artifact for AguaModel {
    fn encode(&self) -> Value {
        let delta = object(vec![
            ("concepts", Value::Number(self.concept_mapping.concepts as f64)),
            ("k", Value::Number(self.concept_mapping.k as f64)),
            ("mlp", self.concept_mapping.mlp().encode()),
        ]);
        let omega = object(vec![
            ("linear", encode_linear(self.output_mapping.linear())),
            ("n_outputs", Value::Number(self.output_mapping.n_outputs as f64)),
        ]);
        object(vec![
            ("concept_mapping", delta),
            (
                "concept_names",
                Value::Array(self.concept_names.iter().map(|n| Value::String(n.clone())).collect()),
            ),
            ("output_mapping", omega),
        ])
    }

    fn decode(value: &Value) -> Result<Self, CodecError> {
        let delta = get(value, "concept_mapping", "AguaModel")?;
        let concept_mapping = ConceptMapping::from_parts(
            Mlp::decode(get(delta, "mlp", "ConceptMapping")?)?,
            usize_of(get(delta, "concepts", "ConceptMapping")?, "ConceptMapping.concepts")?,
            usize_of(get(delta, "k", "ConceptMapping")?, "ConceptMapping.k")?,
        );
        let omega = get(value, "output_mapping", "AguaModel")?;
        let output_mapping = OutputMapping::from_parts(
            decode_linear(get(omega, "linear", "OutputMapping")?)?,
            usize_of(get(omega, "n_outputs", "OutputMapping")?, "OutputMapping.n_outputs")?,
        );
        let concept_names = arr_of(get(value, "concept_names", "AguaModel")?, "AguaModel")?
            .iter()
            .map(|n| str_of(n, "AguaModel.concept_names").map(str::to_string))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(AguaModel { concept_mapping, output_mapping, concept_names })
    }
}

fn encode_section(s: &DescribedSection) -> Value {
    let signals = s
        .signals
        .iter()
        .map(|sig| {
            object(vec![
                ("max", Value::Number(f64::from(sig.max))),
                ("name", Value::String(sig.name.clone())),
                ("unit", Value::String(sig.unit.clone())),
                ("values", f32s_value(&sig.values)),
            ])
        })
        .collect();
    object(vec![("signals", Value::Array(signals)), ("title", Value::String(s.title.clone()))])
}

fn decode_section(v: &Value) -> Result<DescribedSection, CodecError> {
    let signals = arr_of(get(v, "signals", "DescribedSection")?, "DescribedSection.signals")?
        .iter()
        .map(|sig| {
            Ok(SignalSeries {
                name: str_of(get(sig, "name", "SignalSeries")?, "SignalSeries.name")?.to_string(),
                unit: str_of(get(sig, "unit", "SignalSeries")?, "SignalSeries.unit")?.to_string(),
                values: f32s_of(get(sig, "values", "SignalSeries")?, "SignalSeries.values")?,
                max: f32_of(get(sig, "max", "SignalSeries")?, "SignalSeries.max")?,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    let title = str_of(get(v, "title", "DescribedSection")?, "DescribedSection.title")?;
    Ok(DescribedSection { title: title.to_string(), signals })
}

impl Artifact for AppData {
    fn encode(&self) -> Value {
        object(vec![
            ("embeddings", self.embeddings.encode()),
            ("features", Value::Array(self.features.iter().map(|row| f32s_value(row)).collect())),
            ("outputs", usizes_value(&self.outputs)),
            (
                "sections",
                Value::Array(
                    self.sections
                        .iter()
                        .map(|per_input| {
                            Value::Array(per_input.iter().map(encode_section).collect())
                        })
                        .collect(),
                ),
            ),
            ("trace_ids", usizes_value(&self.trace_ids)),
        ])
    }

    fn decode(value: &Value) -> Result<Self, CodecError> {
        let features = arr_of(get(value, "features", "AppData")?, "AppData.features")?
            .iter()
            .map(|row| f32s_of(row, "AppData.features"))
            .collect::<Result<Vec<_>, _>>()?;
        let sections = arr_of(get(value, "sections", "AppData")?, "AppData.sections")?
            .iter()
            .map(|per_input| {
                arr_of(per_input, "AppData.sections")?
                    .iter()
                    .map(decode_section)
                    .collect::<Result<Vec<_>, _>>()
            })
            .collect::<Result<Vec<_>, _>>()?;
        let embeddings = Matrix::decode(get(value, "embeddings", "AppData")?)?;
        let outputs = usizes_of(get(value, "outputs", "AppData")?, "AppData.outputs")?;
        let trace_ids = usizes_of(get(value, "trace_ids", "AppData")?, "AppData.trace_ids")?;
        if features.len() != outputs.len()
            || sections.len() != outputs.len()
            || trace_ids.len() != outputs.len()
            || embeddings.rows() != outputs.len()
        {
            return fail("AppData", "field lengths disagree");
        }
        Ok(AppData { features, sections, embeddings, outputs, trace_ids })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::{Application, RolloutSpec, DDOS};
    use crate::data::{fit_agua, LlmVariant};
    use agua::surrogate::TrainParams;

    #[test]
    fn matrix_round_trips_exactly() {
        let m = Matrix::from_fn(3, 4, |r, c| (r as f32 + 0.1) * (c as f32 - 1.7));
        let restored = Matrix::decode(&m.encode()).unwrap();
        assert_eq!(m, restored);
        // Through actual bytes, not just the value tree.
        let bytes = serde_json::to_string(&m.encode()).unwrap();
        let reparsed: Value = serde_json::from_str(&bytes).unwrap();
        assert_eq!(Matrix::decode(&reparsed).unwrap(), m);
    }

    #[test]
    fn pipeline_artifacts_round_trip_through_bytes() {
        let controller = DDOS.build_controller(3);
        let data = DDOS.rollout(&controller, &RolloutSpec::new(30, 4));
        let (model, labeler) = fit_agua(
            &DDOS.concepts(),
            DDOS.n_outputs(),
            &data,
            LlmVariant::HighQuality,
            &TrainParams::fast(),
            5,
        );

        let reparse = |v: &Value| -> Value {
            serde_json::from_str(&serde_json::to_string(v).unwrap()).unwrap()
        };

        let c2 = PolicyNet::decode(&reparse(&controller.encode())).unwrap();
        let x = Matrix::from_rows(&data.features);
        assert_eq!(controller.logits(&x).as_slice(), c2.logits(&x).as_slice());
        assert_eq!(controller.emb_after(), c2.emb_after());

        let d2 = AppData::decode(&reparse(&data.encode())).unwrap();
        assert_eq!(data.features, d2.features);
        assert_eq!(data.outputs, d2.outputs);
        assert_eq!(data.trace_ids, d2.trace_ids);
        assert_eq!(data.embeddings, d2.embeddings);
        assert_eq!(data.sections.len(), d2.sections.len());
        assert_eq!(data.sections[0][0].title, d2.sections[0][0].title);

        let m2 = AguaModel::decode(&reparse(&model.encode())).unwrap();
        assert_eq!(
            model.predict_logits(&data.embeddings).as_slice(),
            m2.predict_logits(&data.embeddings).as_slice()
        );
        assert_eq!(model.concept_names, m2.concept_names);

        let q2 = Quantizer::decode(&reparse(&labeler.quantizer().encode())).unwrap();
        assert_eq!(labeler.quantizer().boundaries, q2.boundaries);
    }

    #[test]
    fn mlp_with_every_layer_kind_round_trips_bit_identically() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        let mlp = Mlp::new()
            .push(LayerKind::Linear(Linear::new(&mut rng, 6, 12)))
            .push(LayerKind::ReLU(ReLU::new()))
            .push(LayerKind::LayerNorm(LayerNorm::new(12)))
            .push(LayerKind::Tanh(Tanh::new()))
            .push(LayerKind::Linear(Linear::new(&mut rng, 12, 3)));

        let bytes = serde_json::to_string(&mlp.encode()).unwrap();
        let restored = Mlp::decode(&serde_json::from_str(&bytes).unwrap()).unwrap();

        let x = Matrix::from_fn(4, 6, |r, c| (r as f32 - 1.5) * (c as f32 + 0.3) * 0.2);
        assert_eq!(mlp.infer(&x).as_slice(), restored.infer(&x).as_slice());
    }

    #[test]
    fn quantized_model_round_trips_bit_identically() {
        let controller = DDOS.build_controller(7);
        let data = DDOS.rollout(&controller, &RolloutSpec::new(30, 8));
        let (model, _) = fit_agua(
            &DDOS.concepts(),
            DDOS.n_outputs(),
            &data,
            LlmVariant::HighQuality,
            &TrainParams::fast(),
            9,
        );
        let q = QuantizedAguaModel::from_model(&model);

        let bytes = serde_json::to_string(&q.encode()).unwrap();
        let q2 = QuantizedAguaModel::decode(&serde_json::from_str(&bytes).unwrap()).unwrap();
        assert_eq!(
            q.predict_logits(&data.embeddings).as_slice(),
            q2.predict_logits(&data.embeddings).as_slice()
        );
        assert_eq!(q.weight_bytes(), q2.weight_bytes());
        assert_eq!(q.concept_names, q2.concept_names);
        // Canonical bytes: re-encoding the decoded model is stable.
        assert_eq!(bytes, serde_json::to_string(&q2.encode()).unwrap());
    }

    #[test]
    fn quantized_decode_rejects_bad_shapes_and_ranges() {
        // Weight buffer shorter than in_dim × out_dim: an error, not a
        // `from_parts` panic.
        let bad = object(vec![
            ("bias", f32s_value(&[0.0, 0.0])),
            ("in_dim", Value::Number(3.0)),
            ("out_dim", Value::Number(2.0)),
            ("scale", Value::Number(0.5)),
            ("weight_t", i8s_value(&[1, 2, 3])),
        ]);
        assert!(decode_qlinear(&bad).unwrap_err().to_string().contains("QuantizedLinear"));
        // Out-of-range or fractional entries are not int8.
        assert!(i8s_of(&Value::Array(vec![Value::Number(200.0)]), "w").is_err());
        assert!(i8s_of(&Value::Array(vec![Value::Number(0.5)]), "w").is_err());
        assert_eq!(i8s_of(&i8s_value(&[-128, -1, 0, 127]), "w").unwrap(), vec![-128, -1, 0, 127]);
    }

    #[test]
    fn decode_reports_what_failed() {
        let err = Matrix::decode(&Value::Null).unwrap_err();
        assert!(err.to_string().contains("Matrix"), "{err}");
        let err = PolicyNet::decode(&object(vec![("mlp", Value::Null)])).unwrap_err();
        assert!(err.to_string().contains("Mlp"), "{err}");
    }
}
