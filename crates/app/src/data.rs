//! Rollout datasets ([`AppData`]), the simulated LLM variants, and the
//! shared surrogate-fitting entry points (moved here from
//! `agua_bench::apps`).

use agua::concepts::ConceptSet;
use agua::labeling::{ConceptLabeler, Quantizer};
use agua::surrogate::{AguaModel, SurrogateDataset, TrainParams};
use agua_nn::Matrix;
use agua_text::describer::{DescribedSection, Describer, DescriberConfig};
use agua_text::embedding::Embedder;
use serde::{Deserialize, Serialize};

/// A rollout dataset ready for the full Agua/Trustee pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppData {
    /// Raw controller input features (Trustee distills over these).
    pub features: Vec<Vec<f32>>,
    /// Describer sections per input (Agua's labelling pipeline input).
    pub sections: Vec<Vec<DescribedSection>>,
    /// Controller embeddings `h(x)`, one row per input.
    pub embeddings: Matrix,
    /// Controller outputs (greedy argmax), one per input.
    pub outputs: Vec<usize>,
    /// Which trace/episode each input came from (for trace-level
    /// aggregation in the drift experiments).
    pub trace_ids: Vec<usize>,
}

impl AppData {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.outputs.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.outputs.is_empty()
    }

    /// Embedding rows belonging to one trace.
    pub fn trace_embeddings(&self, trace: usize) -> Matrix {
        let idx: Vec<usize> = self
            .trace_ids
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == trace)
            .map(|(i, _)| i)
            .collect();
        self.embeddings.select_rows(&idx)
    }

    /// Distinct trace ids present. Ids need not be dense: a dataset
    /// filtered down to traces `{0, 7}` has a trace count of 2.
    pub fn trace_count(&self) -> usize {
        let mut ids = self.trace_ids.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

/// Which simulated LLM + embedding stack labels the training data,
/// mirroring Table 2's GPT-4o vs Llama-3.3 columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LlmVariant {
    /// GPT-4o-class describer + large (512-d) embeddings.
    HighQuality,
    /// Llama-3.3-class describer + BGE-M3-class (384-d) embeddings.
    OpenSource,
}

impl LlmVariant {
    /// The describer configuration of this variant.
    pub fn describer_config(self) -> DescriberConfig {
        match self {
            LlmVariant::HighQuality => DescriberConfig::high_quality(),
            LlmVariant::OpenSource => DescriberConfig::open_source(),
        }
    }

    /// The embedding model of this variant.
    pub fn embedder(self) -> Embedder {
        match self {
            LlmVariant::HighQuality => Embedder::with_seed(512, 0x0A1),
            LlmVariant::OpenSource => Embedder::with_seed(384, 0xB6E),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            LlmVariant::HighQuality => "GPT-4o-class",
            LlmVariant::OpenSource => "Llama-3.3-class",
        }
    }

    /// Stable short tag, used in CLI flags and artifact-store specs.
    pub fn tag(self) -> &'static str {
        match self {
            LlmVariant::HighQuality => "hq",
            LlmVariant::OpenSource => "os",
        }
    }
}

/// Builds a labeler for a concept set under an LLM variant.
pub fn labeler_for(concepts: &ConceptSet, variant: LlmVariant) -> ConceptLabeler {
    ConceptLabeler::new(
        concepts,
        Describer::new(variant.describer_config()),
        variant.embedder(),
        Quantizer::calibrated(),
    )
}

/// Runs the labelling pipeline on `train` and fits an Agua surrogate.
pub fn fit_agua(
    concepts: &ConceptSet,
    n_outputs: usize,
    train: &AppData,
    variant: LlmVariant,
    params: &TrainParams,
    label_seed: u64,
) -> (AguaModel, ConceptLabeler) {
    fit_agua_observed(concepts, n_outputs, train, variant, params, label_seed, &agua_obs::Noop)
}

/// [`fit_agua`] reporting pipeline progress (labelling span, per-epoch
/// losses, fit completion) to `obs`. Subscribers observe only: the model
/// is byte-identical for any `obs`.
#[allow(clippy::too_many_arguments)]
pub fn fit_agua_observed(
    concepts: &ConceptSet,
    n_outputs: usize,
    train: &AppData,
    variant: LlmVariant,
    params: &TrainParams,
    label_seed: u64,
    obs: &dyn agua_obs::Subscriber,
) -> (AguaModel, ConceptLabeler) {
    let labeler = labeler_for(concepts, variant);
    let concept_labels = labeler.label_batch_observed(&train.sections, label_seed, 4, obs);
    let dataset = SurrogateDataset {
        embeddings: train.embeddings.clone(),
        concept_labels,
        outputs: train.outputs.clone(),
    };
    let model = AguaModel::fit_observed(
        concepts,
        labeler.quantizer().classes(),
        n_outputs,
        &dataset,
        params,
        obs,
    );
    (model, labeler)
}

/// One self-contained surrogate-fitting job for [`fit_agua_jobs`].
pub struct FitJob<'a> {
    /// Concept set of the application.
    pub concepts: &'a ConceptSet,
    /// Controller output dimensionality.
    pub n_outputs: usize,
    /// Training rollouts.
    pub train: &'a AppData,
    /// Simulated LLM variant.
    pub variant: LlmVariant,
    /// Training hyper-parameters (carry the seed).
    pub params: &'a TrainParams,
    /// Labelling seed.
    pub label_seed: u64,
}

/// Runs independent [`fit_agua`] jobs on scoped worker threads — the
/// embarrassingly-parallel outer loop of the multi-app experiments.
/// Every job is fully seeded and self-contained, so the results are
/// identical to running the jobs sequentially, in job order.
pub fn fit_agua_jobs(jobs: &[FitJob<'_>]) -> Vec<(AguaModel, ConceptLabeler)> {
    agua_nn::parallel::par_map(jobs, |j| {
        fit_agua(j.concepts, j.n_outputs, j.train, j.variant, j.params, j.label_seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_with_trace_ids(trace_ids: Vec<usize>) -> AppData {
        let n = trace_ids.len();
        AppData {
            features: vec![vec![0.0]; n],
            sections: vec![Vec::new(); n],
            embeddings: Matrix::zeros(n, 1),
            outputs: vec![0; n],
            trace_ids,
        }
    }

    #[test]
    fn trace_count_counts_distinct_ids_even_when_sparse() {
        // Dense ids: count == max + 1.
        assert_eq!(data_with_trace_ids(vec![0, 0, 1, 1, 2]).trace_count(), 3);
        // Sparse ids (e.g. after filtering traces out): distinct count,
        // not max(id) + 1.
        assert_eq!(data_with_trace_ids(vec![0, 7, 7, 7]).trace_count(), 2);
        assert_eq!(data_with_trace_ids(vec![42]).trace_count(), 1);
        assert_eq!(data_with_trace_ids(Vec::new()).trace_count(), 0);
    }

    #[test]
    fn llm_variant_tags_are_stable() {
        assert_eq!(LlmVariant::HighQuality.tag(), "hq");
        assert_eq!(LlmVariant::OpenSource.tag(), "os");
        assert_eq!(LlmVariant::HighQuality.name(), "GPT-4o-class");
    }
}
