//! ABR application plumbing (moved here from `agua_bench::apps`).

use abr_env::{AbrSimulator, DatasetEra, VideoManifest};
use agua_controllers::abr;
use agua_controllers::policy::PolicyNet;
use agua_nn::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::data::AppData;

/// Chunks per video in rollouts.
pub const CHUNKS: usize = 50;

/// Trains the Gelato-style ABR controller by behaviour cloning the
/// MPC teacher on 2021-era traces.
pub fn build_controller(seed: u64) -> PolicyNet {
    let samples = abr::collect_teacher_dataset(DatasetEra::Train2021, 60, CHUNKS, seed);
    abr::train_controller(&samples, seed)
}

/// Rolls the trained controller greedily over `n_traces` traces of
/// `era`, recording every decision.
pub fn rollout(controller: &PolicyNet, era: DatasetEra, n_traces: usize, seed: u64) -> AppData {
    let traces = era.generate_traces(n_traces, CHUNKS * 6, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0AB);
    let mut features = Vec::new();
    let mut sections = Vec::new();
    let mut emb_rows: Vec<Vec<f32>> = Vec::new();
    let mut outputs = Vec::new();
    let mut trace_ids = Vec::new();
    for (trace_id, trace) in traces.into_iter().enumerate() {
        let manifest = VideoManifest::generate(CHUNKS, era.mean_complexity(), &mut rng);
        let mut sim = AbrSimulator::new(manifest, trace);
        while !sim.done() {
            let obs = sim.observation();
            let f = obs.features();
            let x = Matrix::row_vector(&f);
            let (h, logits) = controller.embeddings_and_logits(&x);
            let action = logits.argmax_row(0);
            features.push(f);
            sections.push(obs.sections());
            emb_rows.push(h.row(0).to_vec());
            outputs.push(action);
            trace_ids.push(trace_id);
            sim.step(action);
        }
    }
    AppData { features, sections, embeddings: Matrix::from_rows(&emb_rows), outputs, trace_ids }
}

/// The motivating state of paper Fig. 1a / §2.2: transmission times
/// ballooned from ~1 s to ~3 s (collapsing throughput), improved
/// slightly in the last step, and the buffer is recovering from a
/// dip — yet the controller still picks a low bitrate.
pub fn motivating_observation() -> abr_env::AbrObservation {
    abr_env::AbrObservation {
        quality_db: vec![16.0, 15.8, 15.5, 14.9, 13.9, 12.8, 12.0, 11.4, 11.2, 11.3],
        chunk_size_mb: vec![2.2, 2.1, 2.0, 1.8, 1.4, 1.0, 0.8, 0.7, 0.65, 0.7],
        tx_time_s: vec![1.0, 1.1, 1.2, 1.5, 1.9, 2.4, 2.8, 3.0, 3.1, 2.0],
        throughput_mbps: vec![2.2, 1.9, 1.7, 1.2, 0.75, 0.45, 0.3, 0.25, 0.21, 0.35],
        buffer_s: vec![9.0, 8.4, 7.5, 6.2, 4.8, 3.6, 2.9, 2.6, 2.8, 3.4],
        qoe: vec![3.2, 3.1, 3.0, 2.7, 2.3, 1.9, 1.7, 1.6, 1.6, 1.8],
        stall_s: vec![0.0, 0.0, 0.0, 0.0, 0.0, 0.2, 0.4, 0.3, 0.1, 0.0],
        upcoming_quality_db: vec![14.8, 14.5, 14.2, 14.6, 14.4],
        upcoming_size_mb: vec![2.8, 3.1, 3.4, 3.2, 3.0],
    }
}

/// Human-readable names of the ABR feature vector entries (for
/// Trustee decision paths).
pub fn feature_names() -> Vec<String> {
    let mut names = Vec::new();
    let histories = [
        ("quality", abr_env::HISTORY),
        ("chunk_size", abr_env::HISTORY),
        ("tx_time", abr_env::HISTORY),
        ("throughput", abr_env::HISTORY),
        ("buffer", abr_env::HISTORY),
        ("qoe", abr_env::HISTORY),
        ("stall", abr_env::HISTORY),
        ("upcoming_quality", abr_env::LOOKAHEAD),
        ("upcoming_size", abr_env::LOOKAHEAD),
    ];
    for (base, len) in histories {
        for t in 0..len {
            let lag = len - t;
            names.push(format!("{base}[t-{lag}]"));
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{fit_agua, LlmVariant};
    use agua::concepts::abr_concepts;
    use agua::surrogate::TrainParams;

    #[test]
    fn abr_rollout_produces_consistent_data() {
        let controller = build_controller(1);
        let data = rollout(&controller, DatasetEra::Train2021, 4, 2);
        assert_eq!(data.len(), 4 * CHUNKS);
        assert_eq!(data.embeddings.rows(), data.len());
        assert_eq!(data.embeddings.cols(), abr::ABR_EMB_DIM);
        assert_eq!(data.features[0].len(), abr_env::observation::FEATURE_DIM);
        assert_eq!(feature_names().len(), abr_env::observation::FEATURE_DIM);
        assert_eq!(data.trace_count(), 4);
    }

    #[test]
    fn abr_agua_pipeline_fits_end_to_end_on_a_small_sample() {
        let controller = build_controller(3);
        let train = rollout(&controller, DatasetEra::Train2021, 6, 4);
        let test = rollout(&controller, DatasetEra::Train2021, 3, 5);
        let concepts = abr_concepts();
        let params = TrainParams::fast();
        let (model, _) =
            fit_agua(&concepts, abr_env::LEVELS, &train, LlmVariant::HighQuality, &params, 9);
        let fid = model.fidelity(&test.embeddings, &test.outputs);
        assert!(fid > 0.6, "small-sample ABR fidelity {fid}");
    }
}
