//! The [`Application`] trait and the registry of the paper's three
//! learning-enabled systems.
//!
//! Everything app-specific that the CLI and the experiment bins used to
//! dispatch on with `match app { "abr" => …, _ => … }` lives behind this
//! trait: concept sets, output arity, controller training, rollouts,
//! section rendering, and the `--scenario` states of `agua-cli explain`.
//! `cargo xtask audit`'s `stringly-app` lint forbids reintroducing
//! string dispatch outside this crate.

use abr_env::{AbrObservation, DatasetEra};
use agua::concepts::{abr_concepts, cc_concepts, ddos_concepts, ConceptSet};
use agua_controllers::cc::CcVariant;
use agua_controllers::policy::PolicyNet;
use agua_text::describer::DescribedSection;
use cc_env::CcObservation;
use ddos_env::{DdosObservation, FlowKind, FlowWindow, WINDOW};
use serde::{Deserialize, Serialize};

use crate::data::AppData;
use crate::{abr_app, cc_app, ddos_app};

/// What to roll out: a sample budget, a seed, and optionally a named
/// workload the application understands (see [`Application::workloads`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RolloutSpec {
    /// Decision-sample budget. Trace-structured applications round this
    /// to whole traces (ABR: `samples / CHUNKS` traces, min 1).
    pub samples: usize,
    /// Rollout seed.
    pub seed: u64,
    /// Workload name, or `None` for the application default.
    pub workload: Option<String>,
}

impl RolloutSpec {
    /// A rollout of the application's default workload.
    pub fn new(samples: usize, seed: u64) -> RolloutSpec {
        RolloutSpec { samples, seed, workload: None }
    }

    /// A rollout of a named workload.
    pub fn on(workload: &str, samples: usize, seed: u64) -> RolloutSpec {
        RolloutSpec { samples, seed, workload: Some(workload.to_string()) }
    }
}

/// One learning-enabled system under explanation: its concept set, its
/// controller, and how to roll that controller out into [`AppData`].
///
/// Implementations are zero-sized (or tiny) and registered as statics;
/// use [`registry`] to enumerate them and [`lookup`] to resolve a name.
pub trait Application: Sync {
    /// Registry name — the `--app` value (`"abr"`, `"cc"`, …).
    fn name(&self) -> &'static str;

    /// Paper-style display name (`"ABR"`, `"CC"`, `"DDoS"`).
    fn display_name(&self) -> &'static str;

    /// The curated base concept set (paper Table 1).
    fn concepts(&self) -> ConceptSet;

    /// Controller output dimensionality.
    fn n_outputs(&self) -> usize;

    /// Human-readable names of the raw feature-vector entries.
    fn feature_names(&self) -> Vec<String>;

    /// Workload names accepted in [`RolloutSpec::workload`]; the first
    /// entry is the default used when the spec names none.
    fn workloads(&self) -> &'static [&'static str];

    /// Trains the application's controller from a seed.
    fn build_controller(&self, seed: u64) -> PolicyNet;

    /// Rolls the trained controller out per `spec`.
    ///
    /// Panics on a workload name not listed in
    /// [`Application::workloads`] — specs are produced by code, not
    /// user input, so an unknown name is a programming error.
    fn rollout(&self, controller: &PolicyNet, spec: &RolloutSpec) -> AppData;

    /// Describer sections for a raw feature vector (the inverse of
    /// `AppData::features` rows, used by the robustness experiments to
    /// re-describe perturbed inputs).
    fn sections_of(&self, features: &[f32]) -> Vec<DescribedSection>;

    /// The feature vector of the state `agua-cli explain` should
    /// explain for `--scenario` (or the application default).
    fn scenario_features(
        &self,
        controller: &PolicyNet,
        scenario: Option<&str>,
        seed: u64,
    ) -> Result<Vec<f32>, String>;
}

/// ABR / Gelato: adaptive bitrate selection over video traces.
#[derive(Debug, Clone, Copy)]
pub struct AbrApp;

impl Application for AbrApp {
    fn name(&self) -> &'static str {
        "abr"
    }

    fn display_name(&self) -> &'static str {
        "ABR"
    }

    fn concepts(&self) -> ConceptSet {
        abr_concepts()
    }

    fn n_outputs(&self) -> usize {
        abr_env::LEVELS
    }

    fn feature_names(&self) -> Vec<String> {
        abr_app::feature_names()
    }

    fn workloads(&self) -> &'static [&'static str] {
        &["train2021", "deploy2024"]
    }

    fn build_controller(&self, seed: u64) -> PolicyNet {
        abr_app::build_controller(seed)
    }

    fn rollout(&self, controller: &PolicyNet, spec: &RolloutSpec) -> AppData {
        let era = match spec.workload.as_deref() {
            None | Some("train2021") => DatasetEra::Train2021,
            Some("deploy2024") => DatasetEra::Deploy2024,
            Some(other) => panic!("unknown ABR workload `{other}` (expected train2021|deploy2024)"),
        };
        let n_traces = (spec.samples / abr_app::CHUNKS).max(1);
        abr_app::rollout(controller, era, n_traces, spec.seed)
    }

    fn sections_of(&self, features: &[f32]) -> Vec<DescribedSection> {
        AbrObservation::from_features(features).sections()
    }

    fn scenario_features(
        &self,
        _controller: &PolicyNet,
        _scenario: Option<&str>,
        _seed: u64,
    ) -> Result<Vec<f32>, String> {
        // The ABR scenario is always the paper's motivating state.
        Ok(abr_app::motivating_observation().features())
    }
}

/// CC / Aurora: congestion control, in the paper's original or
/// debugged controller variant.
#[derive(Debug, Clone, Copy)]
pub struct CcApp(pub CcVariant);

impl CcApp {
    /// The controller variant of this registry entry.
    pub fn variant(&self) -> CcVariant {
        self.0
    }
}

impl Application for CcApp {
    fn name(&self) -> &'static str {
        match self.0 {
            CcVariant::Original => "cc",
            CcVariant::Debugged => "cc-debugged",
        }
    }

    fn display_name(&self) -> &'static str {
        match self.0 {
            CcVariant::Original => "CC",
            CcVariant::Debugged => "CC (debugged)",
        }
    }

    fn concepts(&self) -> ConceptSet {
        cc_concepts()
    }

    fn n_outputs(&self) -> usize {
        cc_env::ACTIONS
    }

    fn feature_names(&self) -> Vec<String> {
        cc_app::feature_names(self.0)
    }

    fn workloads(&self) -> &'static [&'static str] {
        &["training-mix"]
    }

    fn build_controller(&self, seed: u64) -> PolicyNet {
        cc_app::build_controller(self.0, seed)
    }

    fn rollout(&self, controller: &PolicyNet, spec: &RolloutSpec) -> AppData {
        match spec.workload.as_deref() {
            None | Some("training-mix") => {}
            Some(other) => panic!("unknown CC workload `{other}` (expected training-mix)"),
        }
        cc_app::rollout(controller, self.0, spec.samples, spec.seed)
    }

    fn sections_of(&self, features: &[f32]) -> Vec<DescribedSection> {
        CcObservation::from_features(features, self.0.history()).sections()
    }

    fn scenario_features(
        &self,
        controller: &PolicyNet,
        _scenario: Option<&str>,
        seed: u64,
    ) -> Result<Vec<f32>, String> {
        // A representative state: a fresh rollout's final observation.
        let data = cc_app::rollout(controller, self.0, 50, seed + 7);
        Ok(data.features.last().expect("non-empty rollout").clone())
    }
}

/// DDoS / LUCID: per-flow attack detection.
#[derive(Debug, Clone, Copy)]
pub struct DdosApp;

impl DdosApp {
    /// Maps a workload/scenario name to the flow kind it generates.
    fn flow_kind(name: &str) -> Option<FlowKind> {
        match name {
            "benign-http" => Some(FlowKind::BenignHttp),
            "benign-dns" => Some(FlowKind::BenignDns),
            "syn-flood" => Some(FlowKind::SynFlood),
            "udp-flood" => Some(FlowKind::UdpFlood),
            "low-and-slow" => Some(FlowKind::LowAndSlow),
            _ => None,
        }
    }
}

impl Application for DdosApp {
    fn name(&self) -> &'static str {
        "ddos"
    }

    fn display_name(&self) -> &'static str {
        "DDoS"
    }

    fn concepts(&self) -> ConceptSet {
        ddos_concepts()
    }

    fn n_outputs(&self) -> usize {
        ddos_env::CLASSES
    }

    fn feature_names(&self) -> Vec<String> {
        ddos_app::feature_names()
    }

    fn workloads(&self) -> &'static [&'static str] {
        &["mixed", "benign-http", "benign-dns", "syn-flood", "udp-flood", "low-and-slow"]
    }

    fn build_controller(&self, seed: u64) -> PolicyNet {
        ddos_app::build_controller(seed)
    }

    fn rollout(&self, controller: &PolicyNet, spec: &RolloutSpec) -> AppData {
        match spec.workload.as_deref() {
            None | Some("mixed") => ddos_app::rollout(controller, spec.samples, spec.seed),
            Some(name) => {
                let kind = Self::flow_kind(name)
                    .unwrap_or_else(|| panic!("unknown DDoS workload `{name}`"));
                ddos_app::rollout_kind(controller, kind, spec.samples, spec.seed)
            }
        }
    }

    fn sections_of(&self, features: &[f32]) -> Vec<DescribedSection> {
        // Rebuild a flow window view from the attribute-major layout.
        let take = |a: usize| features[a * WINDOW..(a + 1) * WINDOW].to_vec();
        let w = FlowWindow {
            kind: FlowKind::BenignHttp, // placeholder tag; features carry the data
            iat_s: take(0).iter().map(|v| v * ddos_env::observation::IAT_MAX).collect(),
            size_bytes: take(1).iter().map(|v| v * ddos_env::observation::SIZE_MAX).collect(),
            outbound: take(2),
            syn: take(3),
            ack: take(4),
            udp: take(5),
            payload_entropy: take(6),
            source_consistency: take(7),
        };
        DdosObservation::new(w).sections()
    }

    fn scenario_features(
        &self,
        _controller: &PolicyNet,
        scenario: Option<&str>,
        seed: u64,
    ) -> Result<Vec<f32>, String> {
        let name = scenario.unwrap_or("syn-flood");
        let kind =
            Self::flow_kind(name).ok_or_else(|| format!("unknown DDoS scenario `{name}`"))?;
        Ok(DdosObservation::new(FlowWindow::generate_seeded(kind, seed)).features())
    }
}

/// The ABR/Gelato registry entry.
pub static ABR: AbrApp = AbrApp;
/// The CC/Aurora registry entry (original controller).
pub static CC: CcApp = CcApp(CcVariant::Original);
/// The CC/Aurora registry entry (debugged controller, paper Fig. 10).
pub static CC_DEBUGGED: CcApp = CcApp(CcVariant::Debugged);
/// The DDoS/LUCID registry entry.
pub static DDOS: DdosApp = DdosApp;

/// Every registered application, in stable name order.
pub fn registry() -> [&'static dyn Application; 4] {
    [&ABR, &CC, &CC_DEBUGGED, &DDOS]
}

/// The registered application names, in registry order.
pub fn registered_names() -> Vec<&'static str> {
    registry().iter().map(|a| a.name()).collect()
}

/// Resolves an application by registry name; unknown names fail with
/// the list of registered applications.
//= spec: specs/applications.toml#registry-dispatch
//# resolve a name through the agua-app registry exactly once; an
//# unknown name fails with the list of registered applications
pub fn lookup(name: &str) -> Result<&'static dyn Application, String> {
    registry().into_iter().find(|a| a.name() == name).ok_or_else(|| {
        format!("unknown application `{name}` (registered: {})", registered_names().join(", "))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_stable_and_resolvable() {
        assert_eq!(registered_names(), vec!["abr", "cc", "cc-debugged", "ddos"]);
        for app in registry() {
            assert_eq!(lookup(app.name()).unwrap().name(), app.name());
            assert!(!app.workloads().is_empty());
            assert!(app.n_outputs() > 1);
            assert!(!app.concepts().concepts.is_empty());
            assert!(!app.feature_names().is_empty());
        }
    }

    #[test]
    fn lookup_rejects_unknown_names_with_the_registered_list() {
        let err = lookup("dns").map(|a| a.name()).unwrap_err();
        assert!(err.contains("unknown application `dns`"), "{err}");
        for name in registered_names() {
            assert!(err.contains(name), "error should list `{name}`: {err}");
        }
    }

    #[test]
    fn ddos_rollout_spec_matches_the_free_functions() {
        use crate::codec::Artifact;
        let controller = DDOS.build_controller(5);
        let via_trait = DDOS.rollout(&controller, &RolloutSpec::new(40, 6));
        let direct = ddos_app::rollout(&controller, 40, 6);
        assert_eq!(via_trait.encode(), direct.encode());
        let via_kind = DDOS.rollout(&controller, &RolloutSpec::on("syn-flood", 10, 7));
        let direct_kind = ddos_app::rollout_kind(&controller, FlowKind::SynFlood, 10, 7);
        assert_eq!(via_kind.encode(), direct_kind.encode());
    }

    #[test]
    fn scenario_features_cover_the_apps() {
        let controller = DDOS.build_controller(5);
        let f = DDOS.scenario_features(&controller, None, 11).unwrap();
        assert_eq!(f.len(), DDOS.feature_names().len());
        assert!(DDOS.scenario_features(&controller, Some("nope"), 11).is_err());
        // ABR's scenario is controller-independent (motivating state).
        let f = ABR.scenario_features(&controller, None, 11).unwrap();
        assert_eq!(f.len(), ABR.feature_names().len());
    }
}
