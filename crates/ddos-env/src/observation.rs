//! Classifier features and describer sections for flow windows.

use crate::flow::FlowWindow;
use crate::WINDOW;
use agua_text::describer::DescribedSection;
use agua_text::stats::SignalSeries;
use serde::{Deserialize, Serialize};

/// Inter-arrival normalization cap, seconds.
pub const IAT_MAX: f32 = 30.0;
/// Packet size normalization cap, bytes.
pub const SIZE_MAX: f32 = 1500.0;
/// Per-packet request-rate cap used for the describable rate signal, pps.
pub const RATE_MAX: f32 = 2000.0;

/// Per-packet attribute count in the feature matrix.
pub const ATTRIBUTES: usize = 8;
/// Dimensionality of [`DdosObservation::features`].
pub const FEATURE_DIM: usize = WINDOW * ATTRIBUTES;

/// A featurized view of one [`FlowWindow`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdosObservation {
    /// The underlying window.
    pub window: FlowWindow,
}

impl DdosObservation {
    /// Wraps a flow window.
    pub fn new(window: FlowWindow) -> Self {
        Self { window }
    }

    /// Flattens the window into a `[0,1]`-normalized feature vector laid
    /// out attribute-major: all IATs, then all sizes, then flags, etc.
    //= spec: specs/applications.toml#ddos-features
    //# flatten a flow window attribute-major into a [0,1]-normalized
    //# feature vector: all inter-arrival times, then all packet sizes,
    //# then the remaining per-packet attributes
    pub fn features(&self) -> Vec<f32> {
        let w = &self.window;
        let mut f = Vec::with_capacity(FEATURE_DIM);
        f.extend(w.iat_s.iter().map(|v| (v / IAT_MAX).clamp(0.0, 1.0)));
        f.extend(w.size_bytes.iter().map(|v| (v / SIZE_MAX).clamp(0.0, 1.0)));
        f.extend(w.outbound.iter().copied());
        f.extend(w.syn.iter().copied());
        f.extend(w.ack.iter().copied());
        f.extend(w.udp.iter().copied());
        f.extend(w.payload_entropy.iter().copied());
        f.extend(w.source_consistency.iter().copied());
        debug_assert_eq!(f.len(), FEATURE_DIM);
        f
    }

    /// Per-packet instantaneous request rate (1/IAT), capped, pps.
    pub fn rate_series(&self) -> Vec<f32> {
        self.window.iat_s.iter().map(|&iat| (1.0 / iat.max(1e-4)).min(RATE_MAX)).collect()
    }

    /// Rolling SYN intensity: fraction of SYN flags among packets seen so
    /// far at each position.
    pub fn syn_intensity(&self) -> Vec<f32> {
        rolling_fraction(&self.window.syn)
    }

    /// Rolling ACK intensity.
    pub fn ack_intensity(&self) -> Vec<f32> {
        rolling_fraction(&self.window.ack)
    }

    /// Converts the window into describable sections. Signal names are
    /// chosen to share vocabulary with the DDoS base concepts (request
    /// rates, protocol behaviour, payload characteristics, source
    /// behaviour).
    pub fn sections(&self) -> Vec<DescribedSection> {
        let w = &self.window;
        vec![
            DescribedSection::new(
                "Flow packet timing",
                vec![SignalSeries::new("Request Packet Rate", "pps", self.rate_series(), RATE_MAX)],
            ),
            DescribedSection::new(
                "Protocol behavior",
                vec![
                    SignalSeries::new("Syn Handshake Intensity", "", self.syn_intensity(), 1.0),
                    SignalSeries::new("Ack Protocol Compliance", "", self.ack_intensity(), 1.0),
                ],
            ),
            DescribedSection::new(
                "Payload characteristics",
                vec![
                    SignalSeries::new(
                        "Payload Packet Size",
                        "bytes",
                        w.size_bytes.clone(),
                        SIZE_MAX,
                    ),
                    SignalSeries::new("Payload Entropy", "", w.payload_entropy.clone(), 1.0),
                ],
            ),
            DescribedSection::new(
                "Source behavior",
                vec![SignalSeries::new(
                    "Source Geographic Temporal Consistency",
                    "",
                    w.source_consistency.clone(),
                    1.0,
                )],
            ),
        ]
    }
}

fn rolling_fraction(flags: &[f32]) -> Vec<f32> {
    let mut acc = 0.0;
    flags
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            acc += f;
            acc / (i + 1) as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowKind;

    #[test]
    fn features_have_documented_dimension_and_range() {
        for kind in FlowKind::all() {
            let o = DdosObservation::new(FlowWindow::generate_seeded(kind, 3));
            let f = o.features();
            assert_eq!(f.len(), FEATURE_DIM);
            assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn syn_flood_rate_series_is_high_benign_low() {
        let flood = DdosObservation::new(FlowWindow::generate_seeded(FlowKind::SynFlood, 1));
        let dns = DdosObservation::new(FlowWindow::generate_seeded(FlowKind::BenignDns, 1));
        let mean = |v: Vec<f32>| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(flood.rate_series()) > 20.0 * mean(dns.rate_series()));
    }

    #[test]
    fn rolling_fractions_are_monotone_for_constant_flags() {
        let flood = DdosObservation::new(FlowWindow::generate_seeded(FlowKind::SynFlood, 2));
        assert!(flood.syn_intensity().iter().all(|&v| (v - 1.0).abs() < 1e-6));
        assert!(flood.ack_intensity().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn http_ack_intensity_ends_high() {
        let http = DdosObservation::new(FlowWindow::generate_seeded(FlowKind::BenignHttp, 3));
        let ack = http.ack_intensity();
        assert!(ack[WINDOW - 1] > 0.6, "final ack intensity {}", ack[WINDOW - 1]);
    }

    #[test]
    fn sections_exist_for_all_four_aspects() {
        let o = DdosObservation::new(FlowWindow::generate_seeded(FlowKind::UdpFlood, 4));
        let sections = o.sections();
        let titles: Vec<&str> = sections.iter().map(|s| s.title.as_str()).collect();
        assert_eq!(
            titles,
            vec![
                "Flow packet timing",
                "Protocol behavior",
                "Payload characteristics",
                "Source behavior"
            ]
        );
    }
}
