//! # ddos-env — flow-level traffic generation with LUCID-style features
//!
//! The paper evaluates Agua on LUCID, a supervised deep-learning DDoS
//! detector over per-flow packet windows from CIC-DDoS2019. This crate
//! generates synthetic flows with the same attack signatures that dataset
//! exhibits, so the identical supervised-learning code path can run
//! offline:
//!
//! * **benign** — HTTP request/response exchanges (handshake, bidirectional
//!   data, acknowledgements) and sparse DNS lookups;
//! * **TCP SYN flood** — unidirectional storms of tiny SYN segments with no
//!   handshake completion (the Fig. 6b workload);
//! * **UDP flood** — high-rate large datagrams with random payloads;
//! * **low-and-slow** — legitimate-looking but extremely sparse partial
//!   requests that hold connections open.
//!
//! Each flow is a [`flow::FlowWindow`] of [`WINDOW`] packets with
//! per-packet timing, sizing, flag, and payload-entropy attributes, plus a
//! spoofing-driven source-consistency signal. Conversions to normalized
//! classifier features and to describer sections live in
//! [`observation::DdosObservation`].

#![forbid(unsafe_code)]

pub mod flow;
pub mod observation;
pub mod timeline;

pub use flow::{FlowKind, FlowWindow};
pub use observation::DdosObservation;
pub use timeline::{TimedFlow, Timeline, TimelineConfig};

/// Packets per flow window (LUCID's default window is of this order).
pub const WINDOW: usize = 10;
/// Number of output classes: benign vs DDoS.
pub const CLASSES: usize = 2;
