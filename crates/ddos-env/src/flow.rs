//! Flow-window generation for benign and attack traffic.

use crate::WINDOW;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Kinds of generated flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowKind {
    /// HTTP exchange: handshake, request, response data, acknowledgements.
    BenignHttp,
    /// Sparse DNS lookups over UDP.
    BenignDns,
    /// TCP SYN flood: tiny unidirectional SYN storm, no handshake completes.
    SynFlood,
    /// UDP flood: high-rate large random datagrams.
    UdpFlood,
    /// Low-and-slow: legitimate-looking but extremely sparse partial
    /// requests holding the connection open.
    LowAndSlow,
}

impl FlowKind {
    /// All kinds.
    pub fn all() -> [FlowKind; 5] {
        [
            FlowKind::BenignHttp,
            FlowKind::BenignDns,
            FlowKind::SynFlood,
            FlowKind::UdpFlood,
            FlowKind::LowAndSlow,
        ]
    }

    /// Ground-truth label: `true` for attack traffic.
    pub fn is_attack(self) -> bool {
        matches!(self, FlowKind::SynFlood | FlowKind::UdpFlood | FlowKind::LowAndSlow)
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::BenignHttp => "benign-http",
            FlowKind::BenignDns => "benign-dns",
            FlowKind::SynFlood => "tcp-syn-flood",
            FlowKind::UdpFlood => "udp-flood",
            FlowKind::LowAndSlow => "low-and-slow",
        }
    }
}

/// A window of [`WINDOW`] packets from one flow, as LUCID consumes them.
/// All vectors have length [`WINDOW`].
///
/// ```
/// use ddos_env::{FlowKind, FlowWindow};
///
/// let flood = FlowWindow::generate_seeded(FlowKind::SynFlood, 1);
/// assert!(flood.is_attack());
/// assert!(flood.packet_rate() > 100.0);
/// let benign = FlowWindow::generate_seeded(FlowKind::BenignHttp, 1);
/// assert!(!benign.is_attack());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowWindow {
    /// Kind that generated the window.
    pub kind: FlowKind,
    /// Inter-arrival time preceding each packet, seconds.
    pub iat_s: Vec<f32>,
    /// Total packet size, bytes.
    pub size_bytes: Vec<f32>,
    /// 1.0 if the packet travels client→server (toward the victim).
    pub outbound: Vec<f32>,
    /// 1.0 if the TCP SYN flag is set.
    pub syn: Vec<f32>,
    /// 1.0 if the TCP ACK flag is set.
    pub ack: Vec<f32>,
    /// 1.0 for UDP packets.
    pub udp: Vec<f32>,
    /// Normalized payload entropy in `[0,1]` (0 = no/constant payload).
    pub payload_entropy: Vec<f32>,
    /// Source-consistency signal in `[0,1]`: 1 = same stable origin, low and
    /// jumpy when addresses are spoofed per packet.
    pub source_consistency: Vec<f32>,
}

impl FlowWindow {
    /// Generates one flow window of the given kind.
    pub fn generate(kind: FlowKind, rng: &mut StdRng) -> Self {
        let mut w = Self {
            kind,
            iat_s: Vec::with_capacity(WINDOW),
            size_bytes: Vec::with_capacity(WINDOW),
            outbound: Vec::with_capacity(WINDOW),
            syn: Vec::with_capacity(WINDOW),
            ack: Vec::with_capacity(WINDOW),
            udp: Vec::with_capacity(WINDOW),
            payload_entropy: Vec::with_capacity(WINDOW),
            source_consistency: Vec::with_capacity(WINDOW),
        };
        match kind {
            FlowKind::BenignHttp => w.fill_benign_http(rng),
            FlowKind::BenignDns => w.fill_benign_dns(rng),
            FlowKind::SynFlood => w.fill_syn_flood(rng),
            FlowKind::UdpFlood => w.fill_udp_flood(rng),
            FlowKind::LowAndSlow => w.fill_low_and_slow(rng),
        }
        debug_assert_eq!(w.iat_s.len(), WINDOW);
        w
    }

    /// Seeded convenience constructor.
    pub fn generate_seeded(kind: FlowKind, seed: u64) -> Self {
        Self::generate(kind, &mut StdRng::seed_from_u64(seed))
    }

    /// Generates a labelled dataset: `count` windows drawn from the given
    /// kinds in round-robin order (shuffle downstream if needed).
    pub fn generate_dataset(kinds: &[FlowKind], count: usize, seed: u64) -> Vec<FlowWindow> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count).map(|i| FlowWindow::generate(kinds[i % kinds.len()], &mut rng)).collect()
    }

    /// Ground-truth label of the window.
    pub fn is_attack(&self) -> bool {
        self.kind.is_attack()
    }

    /// Mean packet rate of the window, packets per second.
    pub fn packet_rate(&self) -> f32 {
        let total: f32 = self.iat_s.iter().sum();
        WINDOW as f32 / total.max(1e-6)
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        iat: f32,
        size: f32,
        outbound: bool,
        syn: bool,
        ack: bool,
        udp: bool,
        entropy: f32,
        source: f32,
    ) {
        self.iat_s.push(iat);
        self.size_bytes.push(size);
        self.outbound.push(if outbound { 1.0 } else { 0.0 });
        self.syn.push(if syn { 1.0 } else { 0.0 });
        self.ack.push(if ack { 1.0 } else { 0.0 });
        self.udp.push(if udp { 1.0 } else { 0.0 });
        self.payload_entropy.push(entropy.clamp(0.0, 1.0));
        self.source_consistency.push(source.clamp(0.0, 1.0));
    }

    fn fill_benign_http(&mut self, rng: &mut StdRng) {
        let jitter = |rng: &mut StdRng, base: f32| base * rng.random_range(0.6..1.5);
        let src = rng.random_range(0.9..1.0);
        // Handshake.
        self.push(jitter(rng, 0.02), 60.0, true, true, false, false, 0.0, src);
        self.push(jitter(rng, 0.03), 60.0, false, true, true, false, 0.0, src);
        self.push(jitter(rng, 0.02), 52.0, true, false, true, false, 0.0, src);
        // Request.
        self.push(
            jitter(rng, 0.05),
            rng.random_range(250.0..500.0),
            true,
            false,
            true,
            false,
            0.55,
            src,
        );
        // Response data with client acknowledgements.
        for i in 0..5 {
            if i % 2 == 0 {
                self.push(
                    jitter(rng, 0.04),
                    rng.random_range(1000.0..1460.0),
                    false,
                    false,
                    true,
                    false,
                    rng.random_range(0.5..0.75),
                    src,
                );
            } else {
                self.push(jitter(rng, 0.03), 52.0, true, false, true, false, 0.0, src);
            }
        }
        // Final ACK.
        self.push(jitter(rng, 0.05), 52.0, true, false, true, false, 0.0, src);
    }

    fn fill_benign_dns(&mut self, rng: &mut StdRng) {
        let src = rng.random_range(0.9..1.0);
        for i in 0..WINDOW {
            let query = i % 2 == 0;
            // Queries are sparse; responses follow quickly.
            let iat = if query { rng.random_range(1.0..8.0) } else { rng.random_range(0.01..0.05) };
            let size =
                if query { rng.random_range(60.0..90.0) } else { rng.random_range(100.0..300.0) };
            self.push(iat, size, query, false, false, true, rng.random_range(0.35..0.55), src);
        }
    }

    fn fill_syn_flood(&mut self, rng: &mut StdRng) {
        for _ in 0..WINDOW {
            // Sub-millisecond storms of minimum-size SYNs, spoofed sources.
            let iat = rng.random_range(0.0001..0.002);
            let size = rng.random_range(40.0..60.0);
            let source = rng.random_range(0.0..0.35);
            self.push(iat, size, true, true, false, false, 0.0, source);
        }
    }

    fn fill_udp_flood(&mut self, rng: &mut StdRng) {
        for _ in 0..WINDOW {
            let iat = rng.random_range(0.0002..0.003);
            let size = rng.random_range(900.0..1500.0);
            let source = rng.random_range(0.0..0.4);
            // Random payloads have near-maximal entropy.
            self.push(iat, size, true, false, false, true, rng.random_range(0.92..1.0), source);
        }
    }

    fn fill_low_and_slow(&mut self, rng: &mut StdRng) {
        let src = rng.random_range(0.8..0.95);
        // Handshake, then a trickle of tiny partial request fragments.
        self.push(rng.random_range(0.01..0.05), 60.0, true, true, false, false, 0.0, src);
        self.push(rng.random_range(0.02..0.06), 60.0, false, true, true, false, 0.0, src);
        for _ in 2..WINDOW {
            let iat = rng.random_range(8.0..28.0);
            let size = rng.random_range(40.0..120.0);
            self.push(iat, size, true, false, true, false, rng.random_range(0.1..0.3), src);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_generate_full_windows() {
        for kind in FlowKind::all() {
            let w = FlowWindow::generate_seeded(kind, 7);
            assert_eq!(w.iat_s.len(), WINDOW);
            assert_eq!(w.size_bytes.len(), WINDOW);
            assert_eq!(w.source_consistency.len(), WINDOW);
        }
    }

    #[test]
    fn syn_flood_is_all_syn_no_ack_and_fast() {
        let w = FlowWindow::generate_seeded(FlowKind::SynFlood, 1);
        assert!(w.syn.iter().all(|&s| s == 1.0));
        assert!(w.ack.iter().all(|&a| a == 0.0));
        assert!(w.packet_rate() > 400.0, "rate {}", w.packet_rate());
        assert!(w.size_bytes.iter().all(|&s| s < 70.0));
    }

    #[test]
    fn benign_http_completes_a_handshake_and_is_bidirectional() {
        let w = FlowWindow::generate_seeded(FlowKind::BenignHttp, 2);
        assert_eq!(w.syn[0], 1.0);
        assert_eq!(w.syn[1], 1.0);
        assert_eq!(w.ack[1], 1.0, "SYN/ACK");
        assert_eq!(w.ack[2], 1.0, "final handshake ACK");
        assert!(w.outbound.contains(&0.0), "server data must flow back");
        let ack_fraction: f32 = w.ack.iter().sum::<f32>() / WINDOW as f32;
        assert!(ack_fraction > 0.6);
    }

    #[test]
    fn udp_flood_has_large_high_entropy_packets() {
        let w = FlowWindow::generate_seeded(FlowKind::UdpFlood, 3);
        assert!(w.udp.iter().all(|&u| u == 1.0));
        assert!(w.size_bytes.iter().all(|&s| s >= 900.0));
        assert!(w.payload_entropy.iter().all(|&e| e > 0.9));
    }

    #[test]
    fn low_and_slow_is_orders_of_magnitude_slower_than_floods() {
        let slow = FlowWindow::generate_seeded(FlowKind::LowAndSlow, 4);
        let flood = FlowWindow::generate_seeded(FlowKind::SynFlood, 4);
        assert!(slow.packet_rate() < 1.0);
        assert!(flood.packet_rate() / slow.packet_rate() > 1000.0);
    }

    #[test]
    fn attacks_have_low_source_consistency_benign_high() {
        let benign = FlowWindow::generate_seeded(FlowKind::BenignHttp, 5);
        let flood = FlowWindow::generate_seeded(FlowKind::SynFlood, 5);
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(&benign.source_consistency) > 0.85);
        assert!(mean(&flood.source_consistency) < 0.4);
    }

    #[test]
    fn labels_match_kinds() {
        assert!(!FlowKind::BenignHttp.is_attack());
        assert!(!FlowKind::BenignDns.is_attack());
        assert!(FlowKind::SynFlood.is_attack());
        assert!(FlowKind::UdpFlood.is_attack());
        assert!(FlowKind::LowAndSlow.is_attack());
    }

    #[test]
    fn dataset_round_robins_kinds() {
        let kinds = [FlowKind::BenignHttp, FlowKind::SynFlood];
        let ds = FlowWindow::generate_dataset(&kinds, 6, 9);
        assert_eq!(ds.len(), 6);
        assert_eq!(ds[0].kind, FlowKind::BenignHttp);
        assert_eq!(ds[1].kind, FlowKind::SynFlood);
        assert_eq!(ds[4].kind, FlowKind::BenignHttp);
    }
}
