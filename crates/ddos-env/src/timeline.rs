//! Traffic timelines with an attack onset.
//!
//! LUCID's goal is to detect attacks "in the brief window between attack
//! initiation and service denial". This module generates a time-ordered
//! stream of flow windows — benign background traffic into which an
//! attack campaign erupts at a known onset — so detectors can be
//! evaluated on *detection latency*, not just per-flow accuracy.

use crate::flow::{FlowKind, FlowWindow};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One observed flow window with its arrival time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimedFlow {
    /// Arrival time of the window, seconds since timeline start.
    pub time_s: f32,
    /// The flow window.
    pub window: FlowWindow,
}

/// A traffic timeline: benign background, then a mixed benign+attack
/// phase from [`Timeline::onset_s`] onward.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Timeline {
    /// Flows ordered by arrival time.
    pub flows: Vec<TimedFlow>,
    /// Attack onset time, seconds.
    pub onset_s: f32,
    /// The attack kind used after onset.
    pub attack: FlowKind,
}

/// Timeline generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct TimelineConfig {
    /// Total duration, seconds.
    pub duration_s: f32,
    /// Attack onset, seconds.
    pub onset_s: f32,
    /// Benign flow arrivals per second (before and after onset).
    pub benign_rate: f32,
    /// Attack flow arrivals per second after onset.
    pub attack_rate: f32,
    /// The attack family.
    pub attack: FlowKind,
}

impl Default for TimelineConfig {
    fn default() -> Self {
        Self {
            duration_s: 60.0,
            onset_s: 30.0,
            benign_rate: 4.0,
            attack_rate: 20.0,
            attack: FlowKind::SynFlood,
        }
    }
}

impl Timeline {
    /// Generates a timeline under `config`.
    ///
    /// # Panics
    /// Panics if the onset is outside the duration, rates are
    /// non-positive, or the configured attack kind is not an attack.
    pub fn generate(config: TimelineConfig, seed: u64) -> Self {
        assert!(
            config.onset_s > 0.0 && config.onset_s < config.duration_s,
            "onset outside timeline"
        );
        assert!(config.benign_rate > 0.0 && config.attack_rate > 0.0, "rates must be positive");
        assert!(config.attack.is_attack(), "attack kind must be an attack");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flows = Vec::new();

        // Benign background over the whole duration (Poisson-ish: i.i.d.
        // exponential inter-arrivals).
        let mut t = 0.0f32;
        let benign_kinds = [FlowKind::BenignHttp, FlowKind::BenignHttp, FlowKind::BenignDns];
        while t < config.duration_s {
            t += exp_sample(&mut rng, config.benign_rate);
            if t >= config.duration_s {
                break;
            }
            let kind = benign_kinds[rng.random_range(0..benign_kinds.len())];
            flows.push(TimedFlow { time_s: t, window: FlowWindow::generate(kind, &mut rng) });
        }

        // Attack campaign after onset.
        let mut t = config.onset_s;
        while t < config.duration_s {
            t += exp_sample(&mut rng, config.attack_rate);
            if t >= config.duration_s {
                break;
            }
            flows.push(TimedFlow {
                time_s: t,
                window: FlowWindow::generate(config.attack, &mut rng),
            });
        }

        flows.sort_by(|a, b| a.time_s.partial_cmp(&b.time_s).expect("finite times"));
        Self { flows, onset_s: config.onset_s, attack: config.attack }
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if no flows were generated (degenerate configs only).
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Fraction of flows after `time_s` that are attacks.
    pub fn attack_fraction_after(&self, time_s: f32) -> f32 {
        let after: Vec<&TimedFlow> = self.flows.iter().filter(|f| f.time_s >= time_s).collect();
        if after.is_empty() {
            return 0.0;
        }
        after.iter().filter(|f| f.window.is_attack()).count() as f32 / after.len() as f32
    }

    /// Detection latency of a per-flow detector: the time from onset
    /// until `consecutive` attack verdicts in a row have been produced
    /// on flows arriving at or after the onset. Returns `None` if the
    /// detector never locks on.
    pub fn detection_latency(
        &self,
        mut verdict: impl FnMut(&FlowWindow) -> bool,
        consecutive: usize,
    ) -> Option<f32> {
        assert!(consecutive >= 1, "need at least one verdict");
        let mut streak = 0usize;
        for flow in self.flows.iter().filter(|f| f.time_s >= self.onset_s) {
            if verdict(&flow.window) {
                streak += 1;
                if streak >= consecutive {
                    return Some(flow.time_s - self.onset_s);
                }
            } else {
                streak = 0;
            }
        }
        None
    }

    /// False-alarm rate of a detector on the pre-onset (benign-only)
    /// prefix: fraction of benign flows flagged as attacks.
    pub fn false_alarm_rate(&self, mut verdict: impl FnMut(&FlowWindow) -> bool) -> f32 {
        let before: Vec<&TimedFlow> =
            self.flows.iter().filter(|f| f.time_s < self.onset_s).collect();
        if before.is_empty() {
            return 0.0;
        }
        before.iter().filter(|f| verdict(&f.window)).count() as f32 / before.len() as f32
    }
}

fn exp_sample(rng: &mut StdRng, rate: f32) -> f32 {
    let u: f32 = rng.random_range(1e-6..1.0);
    -u.ln() / rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline() -> Timeline {
        Timeline::generate(TimelineConfig::default(), 7)
    }

    #[test]
    fn flows_are_time_ordered_and_span_the_duration() {
        let t = timeline();
        assert!(t.len() > 100, "expected a busy timeline, got {}", t.len());
        for pair in t.flows.windows(2) {
            assert!(pair[0].time_s <= pair[1].time_s);
        }
        assert!(t.flows.last().unwrap().time_s <= 60.0);
    }

    #[test]
    fn no_attacks_before_onset() {
        let t = timeline();
        assert!(t.flows.iter().filter(|f| f.time_s < t.onset_s).all(|f| !f.window.is_attack()));
    }

    #[test]
    fn attacks_dominate_after_onset() {
        let t = timeline();
        let frac = t.attack_fraction_after(t.onset_s);
        assert!(frac > 0.7, "attack fraction after onset {frac}");
    }

    #[test]
    fn oracle_detector_has_near_zero_latency_and_no_false_alarms() {
        let t = timeline();
        let latency = t.detection_latency(|w| w.is_attack(), 3).expect("oracle must detect");
        assert!(latency < 2.0, "oracle latency {latency}s");
        assert_eq!(t.false_alarm_rate(|w| w.is_attack()), 0.0);
    }

    #[test]
    fn blind_detector_never_detects() {
        let t = timeline();
        assert_eq!(t.detection_latency(|_| false, 1), None);
    }

    #[test]
    fn paranoid_detector_has_full_false_alarm_rate() {
        let t = timeline();
        assert_eq!(t.false_alarm_rate(|_| true), 1.0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Timeline::generate(TimelineConfig::default(), 3);
        let b = Timeline::generate(TimelineConfig::default(), 3);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.flows[0].time_s, b.flows[0].time_s);
    }

    #[test]
    #[should_panic(expected = "attack kind must be an attack")]
    fn benign_attack_kind_is_rejected() {
        let config = TimelineConfig { attack: FlowKind::BenignHttp, ..TimelineConfig::default() };
        let _ = Timeline::generate(config, 1);
    }
}
