//! End-to-end tests of the daemon over real sockets: route coverage,
//! error statuses, the runtime coalescing toggle, hot reload, the
//! store-invalidation watcher, and shutdown.

use std::time::Duration;

use agua::surrogate::TrainParams;
use agua_app::CacheMode;
use agua_engine::{EngineConfig, FitSpec};
use agua_serve::http::Client;
use agua_serve::{start, RunningServer, ServeConfig, Source};

fn fast_fit() -> FitSpec {
    let mut spec = FitSpec::standard(40);
    spec.params = TrainParams::fast();
    spec
}

fn start_daemon(queue_capacity: usize, watch: Option<Duration>) -> RunningServer {
    let cache = std::env::temp_dir().join(format!(
        "agua-serve-test-{}-{}",
        std::process::id(),
        watch.is_some()
    ));
    start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        engine: EngineConfig { queue_capacity, max_batch: 16, nn: None },
        sources: vec![Source::Fit { app: "ddos".to_string(), spec: fast_fit() }],
        cache_root: cache,
        cache_mode: CacheMode::Off,
        watch,
    })
    .expect("daemon starts")
}

fn connect(server: &RunningServer) -> Client {
    Client::connect(&server.addr().to_string()).expect("client connects")
}

fn explain_body(features: &str) -> Vec<u8> {
    format!(r#"{{"app":"ddos","features":{features}}}"#).into_bytes()
}

/// A valid ddos feature vector for the fixture checkpoint's in_dim,
/// read off `/v1/apps` so the test tracks the application definition.
fn valid_features(conn: &mut Client) -> String {
    let resp = conn.get("/v1/apps").expect("apps");
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).unwrap();
    let value = serde_json::from_str(&text).unwrap();
    let apps =
        agua_app::codec::arr_of(agua_app::codec::get(&value, "apps", "apps").unwrap(), "apps")
            .unwrap();
    let in_dim = agua_app::codec::usize_of(
        agua_app::codec::get(&apps[0], "in_dim", "app").unwrap(),
        "in_dim",
    )
    .unwrap();
    let lanes: Vec<String> = (0..in_dim).map(|i| format!("{}", 0.1 * (i + 1) as f32)).collect();
    format!("[{}]", lanes.join(","))
}

#[test]
fn daemon_serves_the_api_and_its_contracts() {
    let server = start_daemon(64, None);
    let mut conn = connect(&server);

    // Liveness and session listing.
    let health = conn.get("/v1/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert!(String::from_utf8(health.body).unwrap().contains("\"ok\""));
    let apps = conn.get("/v1/apps").expect("apps");
    let apps_text = String::from_utf8(apps.body).unwrap();
    assert!(apps_text.contains("\"ddos\""), "{apps_text}");
    assert!(apps_text.contains("\"generation\""), "{apps_text}");

    // A factual explanation, twice: 200, engine headers, identical bytes.
    let features = valid_features(&mut conn);
    let first = conn.post("/v1/explain", &explain_body(&features)).expect("explain");
    assert_eq!(first.status, 200, "{:?}", String::from_utf8_lossy(&first.body));
    assert!(first.header("x-agua-batch").is_some());
    assert_eq!(first.header("x-agua-generation"), Some("0"));
    let body_text = String::from_utf8(first.body.clone()).unwrap();
    assert!(body_text.contains("\"contributions\""), "{body_text}");
    assert!(body_text.contains("\"verdict\""), "{body_text}");
    let again = conn.post("/v1/explain", &explain_body(&features)).expect("explain again");
    assert_eq!(again.body, first.body, "explain responses must be deterministic bytes");

    // A counterfactual names a different class than the factual one.
    let cf_body = format!(r#"{{"app":"ddos","features":{features},"counterfactual":0}}"#);
    let cf = conn.post("/v1/explain", cf_body.as_bytes()).expect("counterfactual");
    assert_eq!(cf.status, 200);
    assert!(String::from_utf8(cf.body).unwrap().contains("\"factual\":false"));

    // Error statuses: unknown app, wrong dim, malformed JSON, bad class,
    // unknown route, wrong verb.
    let resp = conn.post("/v1/explain", br#"{"app":"nope","features":[1.0]}"#).unwrap();
    assert_eq!(resp.status, 404);
    let resp = conn.post("/v1/explain", &explain_body("[1.0]")).unwrap();
    assert_eq!(resp.status, 400);
    let resp = conn.post("/v1/explain", b"not json").unwrap();
    assert_eq!(resp.status, 400);
    let bad_class = format!(r#"{{"app":"ddos","features":{features},"counterfactual":99}}"#);
    let resp = conn.post("/v1/explain", bad_class.as_bytes()).unwrap();
    assert_eq!(resp.status, 400);
    let resp = conn.get("/v1/no-such-route").unwrap();
    assert_eq!(resp.status, 404);
    let resp = conn.get("/v1/explain").unwrap();
    assert_eq!(resp.status, 405);

    // The coalescing toggle: set max_batch 1, confirm via GET, responses
    // byte-identical either way.
    let resp = conn.post("/v1/config", br#"{"max_batch": 1}"#).unwrap();
    assert_eq!(resp.status, 200);
    let resp = conn.get("/v1/config").unwrap();
    assert!(String::from_utf8(resp.body).unwrap().contains("\"max_batch\":1"));
    let uncoalesced = conn.post("/v1/explain", &explain_body(&features)).unwrap();
    assert_eq!(uncoalesced.body, first.body, "batch size must not change response bytes");
    let resp = conn.post("/v1/config", br#"{"max_batch": 16}"#).unwrap();
    assert_eq!(resp.status, 200);

    // Metrics surface the serve-side aggregations.
    let metrics = conn.get("/v1/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let metrics_text = String::from_utf8(metrics.body).unwrap();
    assert!(metrics_text.contains("serve.status.2xx"), "{metrics_text}");
    assert!(metrics_text.contains("serve.request_seconds"), "{metrics_text}");

    // Hot reload: same bytes, bumped generation header.
    let resp = conn.post("/v1/reload", b"{}").unwrap();
    assert_eq!(resp.status, 200, "{:?}", String::from_utf8_lossy(&resp.body));
    let reloaded = conn.post("/v1/explain", &explain_body(&features)).unwrap();
    assert_eq!(reloaded.status, 200);
    assert_eq!(reloaded.header("x-agua-generation"), Some("1"));
    assert_eq!(reloaded.body, first.body, "reload must not change response bytes");

    // Shutdown: the daemon acknowledges, then the accept loop exits.
    let resp = conn.post("/v1/shutdown", b"{}").unwrap();
    assert_eq!(resp.status, 200);
    server.wait();
}

#[test]
fn watcher_refits_after_store_invalidation() {
    let server = start_daemon(64, Some(Duration::from_millis(25)));
    let mut conn = connect(&server);
    let features = valid_features(&mut conn);
    let before = conn.post("/v1/explain", &explain_body(&features)).unwrap();
    assert_eq!(before.status, 200);
    assert_eq!(before.header("x-agua-generation"), Some("0"));

    let resp = conn.post("/v1/invalidate", b"{}").unwrap();
    assert_eq!(resp.status, 200);

    // The watcher polls every 25ms; the refit itself takes a moment.
    let mut bumped = false;
    for _ in 0..400 {
        std::thread::sleep(Duration::from_millis(25));
        let resp = conn.post("/v1/explain", &explain_body(&features)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, before.body, "watcher reload must not change response bytes");
        if resp.header("x-agua-generation") == Some("1") {
            bumped = true;
            break;
        }
    }
    assert!(bumped, "watcher never picked up the store invalidation");
    server.stop();
}
