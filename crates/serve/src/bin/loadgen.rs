//! `loadgen` — closed-loop load generator and correctness prober for a
//! running `agua-serve` daemon.
//!
//! ```text
//! loadgen --addr 127.0.0.1:8117
//! loadgen --addr-file /tmp/agua-serve.addr --smoke
//! ```
//!
//! For each coalescing mode (`sequential` = `max_batch 1`, `coalesced`
//! = `max_batch 16`, toggled live via `POST /v1/config`) and each
//! client count, runs K closed-loop connections × R requests each,
//! recording latency histograms, sustained RPS, and an FNV hash of
//! every 200 body. Then asserts the serving contracts end to end:
//!
//! - **byte-identity across coalescing**: the body hash of request
//!   `(client, i)` is identical in both modes at every concurrency;
//! - **byte-identity across reload**: a fixed request returns the same
//!   body before and after `POST /v1/reload`, with the
//!   `X-Agua-Generation` header bumped.
//!
//! Results land in `BENCH_serve.json` for `cargo xtask perfdiff` and
//! the CI serve gate.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use agua_app::codec::{arr_of, get, object, str_of, usize_of};
use agua_app::fnv1a;
use agua_obs::Histogram;
use agua_serve::http::Client;
use serde_json::Value;

const USAGE: &str = "\
loadgen — load generator + contract prober for agua-serve

USAGE:
  loadgen (--addr <host:port> | --addr-file <path>) [OPTIONS]

OPTIONS:
  --addr <host:port>    daemon address
  --addr-file <path>    read the daemon address from this file
  --smoke               small fast run (clients [1,4], 40 req/client)
  --requests <n>        requests per client (default 150; smoke 40)
  --out <path>          report path (default <repo>/results/BENCH_serve.json)
";

struct Args {
    addr: String,
    smoke: bool,
    requests: usize,
    out: PathBuf,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut addr: Option<String> = None;
    let mut smoke = false;
    let mut requests: Option<usize> = None;
    let mut out: Option<PathBuf> = None;
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--help" | "-h" => return Err("help".to_string()),
            "--smoke" => smoke = true,
            "--addr" => addr = Some(it.next().ok_or("--addr needs a value")?.to_string()),
            "--addr-file" => {
                let path = it.next().ok_or("--addr-file needs a value")?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read --addr-file {path}: {e}"))?;
                addr = Some(text.trim().to_string());
            }
            "--requests" => {
                let v = it.next().ok_or("--requests needs a value")?;
                requests = Some(v.parse().map_err(|_| format!("bad --requests `{v}`"))?);
            }
            "--out" => out = Some(PathBuf::from(it.next().ok_or("--out needs a value")?)),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Args {
        addr: addr.ok_or("pass --addr or --addr-file")?,
        smoke,
        requests: requests.unwrap_or(if smoke { 40 } else { 150 }),
        out: out.unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("results")
                .join("BENCH_serve.json")
        }),
    })
}

/// Deterministic synthetic feature vector for `(client, request)` —
/// splitmix64 per lane, mapped into [0, 1).
fn features_for(client: usize, request: usize, in_dim: usize) -> Vec<f32> {
    (0..in_dim)
        .map(|lane| {
            let mut z = (client as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((request as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
                .wrapping_add(lane as u64)
                .wrapping_add(0x94d0_49bb_1331_11eb);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 40) as f32 / (1u64 << 24) as f32
        })
        .collect()
}

fn explain_request_body(app: &str, features: &[f32]) -> Vec<u8> {
    let feats = Value::Array(features.iter().map(|&f| Value::Number(f64::from(f))).collect());
    let value = object(vec![("app", Value::String(app.to_string())), ("features", feats)]);
    serde_json::to_string(&value).expect("request body serializes").into_bytes()
}

/// What one client thread brings back from its closed loop.
struct ClientRun {
    latencies: Histogram,
    /// FNV body hash per request index, for 200 responses only.
    hashes: Vec<Option<u64>>,
    s2xx: u64,
    s4xx: u64,
    s5xx: u64,
    batch_sum: u64,
    batch_n: u64,
}

fn run_client(addr: &str, app: &str, in_dim: usize, client: usize, requests: usize) -> ClientRun {
    let mut run = ClientRun {
        latencies: Histogram::new(),
        hashes: vec![None; requests],
        s2xx: 0,
        s4xx: 0,
        s5xx: 0,
        batch_sum: 0,
        batch_n: 0,
    };
    let mut conn = Client::connect(addr).expect("loadgen connects");
    for i in 0..requests {
        let body = explain_request_body(app, &features_for(client, i, in_dim));
        let tenant = format!("client-{client}");
        let headers = vec![("X-Agua-Tenant".to_string(), tenant)];
        let start = Instant::now();
        let resp = conn.request("POST", "/v1/explain", &headers, &body).expect("explain responds");
        run.latencies.record(start.elapsed().as_secs_f64());
        match resp.status {
            200..=299 => {
                run.s2xx += 1;
                run.hashes[i] = Some(fnv1a(&resp.body));
                if let Some(batch) = resp.header("x-agua-batch").and_then(|v| v.parse::<u64>().ok())
                {
                    run.batch_sum += batch;
                    run.batch_n += 1;
                }
            }
            400..=499 => run.s4xx += 1,
            _ => run.s5xx += 1,
        }
    }
    run
}

struct ModeResult {
    rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    requests: u64,
    s4xx: u64,
    s5xx: u64,
    mean_batch: f64,
    /// `(client, request) → body hash` for identity comparison.
    hashes: BTreeMap<(usize, usize), u64>,
}

fn run_mode(addr: &str, app: &str, in_dim: usize, clients: usize, requests: usize) -> ModeResult {
    let wall = Instant::now();
    // audit:allow(thread-spawn): concurrent load clients; the daemon's
    // coalescer guarantees response bytes are schedule-independent, and
    // this bin only measures timing.
    let runs: Vec<ClientRun> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| scope.spawn(move || run_client(addr, app, in_dim, client, requests)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = wall.elapsed().as_secs_f64();
    let mut latencies = Histogram::new();
    let mut hashes = BTreeMap::new();
    let (mut s2xx, mut s4xx, mut s5xx, mut batch_sum, mut batch_n) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for (client, run) in runs.iter().enumerate() {
        latencies.merge(&run.latencies);
        s2xx += run.s2xx;
        s4xx += run.s4xx;
        s5xx += run.s5xx;
        batch_sum += run.batch_sum;
        batch_n += run.batch_n;
        for (i, hash) in run.hashes.iter().enumerate() {
            if let Some(hash) = hash {
                hashes.insert((client, i), *hash);
            }
        }
    }
    ModeResult {
        rps: s2xx as f64 / elapsed,
        p50_ms: latencies.quantile(0.50) * 1e3,
        p99_ms: latencies.quantile(0.99) * 1e3,
        p999_ms: latencies.quantile(0.999) * 1e3,
        requests: (clients * requests) as u64,
        s4xx,
        s5xx,
        mean_batch: if batch_n == 0 { 0.0 } else { batch_sum as f64 / batch_n as f64 },
        hashes,
    }
}

/// Report counters are small integers, well inside f64's exact range —
/// plain JSON numbers keep the report conventional for jq/perfdiff
/// (unlike `codec::u64_value`'s string encoding for full-64-bit keys).
fn count(n: u64) -> Value {
    Value::Number(n as f64)
}

fn mode_value(r: &ModeResult) -> Value {
    object(vec![
        ("mean_batch", Value::Number(r.mean_batch)),
        ("p50_ms", Value::Number(r.p50_ms)),
        ("p999_ms", Value::Number(r.p999_ms)),
        ("p99_ms", Value::Number(r.p99_ms)),
        ("requests", count(r.requests)),
        ("rps", Value::Number(r.rps)),
        ("s4xx", count(r.s4xx)),
        ("s5xx", count(r.s5xx)),
    ])
}

fn set_max_batch(conn: &mut Client, max_batch: usize) {
    let body = format!("{{\"max_batch\": {max_batch}}}");
    let resp = conn.post("/v1/config", body.as_bytes()).expect("config responds");
    assert_eq!(resp.status, 200, "POST /v1/config failed: {resp:?}");
}

/// Byte-identity across a warm reload: a fixed request must return the
/// same body before and after `POST /v1/reload`, on a bumped generation.
fn reload_check(conn: &mut Client, app: &str, in_dim: usize) -> (bool, bool) {
    let body = explain_request_body(app, &features_for(7, 3, in_dim));
    let before = conn.post("/v1/explain", &body).expect("explain before reload");
    assert_eq!(before.status, 200, "reload probe failed: {before:?}");
    let gen_before: u64 =
        before.header("x-agua-generation").and_then(|v| v.parse().ok()).unwrap_or(0);
    let reload = conn.post("/v1/reload", b"{}").expect("reload responds");
    assert_eq!(reload.status, 200, "POST /v1/reload failed: {reload:?}");
    let after = conn.post("/v1/explain", &body).expect("explain after reload");
    assert_eq!(after.status, 200, "post-reload probe failed: {after:?}");
    let gen_after: u64 =
        after.header("x-agua-generation").and_then(|v| v.parse().ok()).unwrap_or(0);
    (before.body == after.body, gen_after > gen_before)
}

fn main() -> std::process::ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(e) if e == "help" => {
            println!("{USAGE}");
            return std::process::ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let client_counts: &[usize] = if args.smoke { &[1, 4] } else { &[1, 2, 4, 8] };

    let mut control = Client::connect(&args.addr).expect("loadgen connects to daemon");
    let apps = control.get("/v1/apps").expect("GET /v1/apps");
    assert_eq!(apps.status, 200, "GET /v1/apps failed: {apps:?}");
    let text = String::from_utf8(apps.body).expect("apps body is UTF-8");
    let value = serde_json::from_str(&text).expect("apps body is JSON");
    let listed = arr_of(get(&value, "apps", "apps").unwrap(), "apps").unwrap();
    let first = listed.first().expect("daemon serves at least one app");
    let app = str_of(get(first, "app", "app entry").unwrap(), "app").unwrap().to_string();
    let in_dim = usize_of(get(first, "in_dim", "app entry").unwrap(), "in_dim").unwrap();
    eprintln!("[loadgen] target {} app={app} in_dim={in_dim}", args.addr);

    // Sequential first so the coalesced pass runs on a warmed daemon;
    // each (mode, clients) cell measures its own closed loop anyway.
    let modes: &[(&str, usize)] = &[("sequential", 1), ("coalesced", 16)];
    let mut results: BTreeMap<&str, BTreeMap<usize, ModeResult>> = BTreeMap::new();
    for &(mode, max_batch) in modes {
        set_max_batch(&mut control, max_batch);
        for &clients in client_counts {
            let r = run_mode(&args.addr, &app, in_dim, clients, args.requests);
            eprintln!(
                "[loadgen] {mode} clients={clients}: rps={:.1} p50={:.2}ms p99={:.2}ms \
                 mean_batch={:.2} 4xx={} 5xx={}",
                r.rps, r.p50_ms, r.p99_ms, r.mean_batch, r.s4xx, r.s5xx
            );
            results.entry(mode).or_default().insert(clients, r);
        }
    }

    // Cross-mode byte-identity: every (clients, client, i) 200 body
    // hashed identically under max_batch 1 and 16.
    let (mut compared, mut mismatched) = (0u64, 0u64);
    for &clients in client_counts {
        let seq = &results["sequential"][&clients].hashes;
        let coal = &results["coalesced"][&clients].hashes;
        for (key, hash) in seq {
            if let Some(other) = coal.get(key) {
                compared += 1;
                if hash != other {
                    mismatched += 1;
                }
            }
        }
    }
    let (reload_identical, generation_bumped) = reload_check(&mut control, &app, in_dim);
    eprintln!(
        "[loadgen] identity: compared={compared} mismatched={mismatched}; \
         reload byte-identical={reload_identical} generation-bumped={generation_bumped}"
    );

    let max_clients = *client_counts.last().expect("client counts");
    let speedup = results["coalesced"][&max_clients].rps / results["sequential"][&max_clients].rps;
    eprintln!("[loadgen] coalescing speedup at {max_clients} clients: {speedup:.2}x");

    let mode_objects: Vec<(&str, Value)> = results
        .iter()
        .map(|(mode, by_clients)| {
            (
                *mode,
                object(
                    by_clients
                        .iter()
                        .map(|(clients, r)| {
                            // object() takes &str keys; leak the few
                            // client-count strings for the report.
                            let key: &'static str = Box::leak(clients.to_string().into_boxed_str());
                            (key, mode_value(r))
                        })
                        .collect(),
                ),
            )
        })
        .collect();
    let report = object(vec![
        ("clients", Value::Array(client_counts.iter().map(|&c| Value::Number(c as f64)).collect())),
        (
            "identity",
            object(vec![("compared", count(compared)), ("mismatched", count(mismatched))]),
        ),
        ("modes", object(mode_objects)),
        (
            "reload",
            object(vec![
                ("byte_identical", Value::Bool(reload_identical)),
                ("generation_bumped", Value::Bool(generation_bumped)),
            ]),
        ),
        ("requests_per_client", count(args.requests as u64)),
        ("smoke", Value::Bool(args.smoke)),
        ("speedup_coalesced_at_max_clients", Value::Number(speedup)),
    ]);
    let text = serde_json::to_string(&report).expect("report serializes");
    if let Some(dir) = args.out.parent() {
        std::fs::create_dir_all(dir).expect("create report directory");
    }
    std::fs::write(&args.out, text.as_bytes()).expect("write report");
    eprintln!("[loadgen] wrote {}", args.out.display());

    let ok = mismatched == 0 && reload_identical && generation_bumped;
    if ok {
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("[loadgen] CONTRACT VIOLATION — see counters above");
        std::process::ExitCode::FAILURE
    }
}
