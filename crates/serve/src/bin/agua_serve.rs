//! `agua-serve` — the long-running explanation daemon.
//!
//! ```text
//! agua-serve --fit ddos --samples 1000                  # store-backed fit
//! agua-serve --model-dir /tmp/agua-ddos                 # saved checkpoint
//! agua-serve --addr 127.0.0.1:0 --addr-file /tmp/addr   # ephemeral port
//! ```
//!
//! Runs until `POST /v1/shutdown`. With `--watch-ms` a poller refits
//! store-backed sessions when the store is invalidated and reloads
//! checkpoint directories when their files change.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::Duration;

use agua_app::CacheMode;
use agua_engine::{EngineConfig, FitSpec};
use agua_nn::parallel::ThreadConfig;
use agua_serve::{start, ServeConfig, Source};

const USAGE: &str = "\
agua-serve — HTTP explanation daemon over the agua engine

USAGE:
  agua-serve [OPTIONS]

OPTIONS:
  --addr <host:port>       bind address (default 127.0.0.1:8117;
                           port 0 picks a free port)
  --addr-file <path>       write the bound address to this file once
                           listening (for port-0 discovery)
  --model-dir <dir>        serve a saved checkpoint directory
                           (repeatable)
  --fit <app>              fit-and-serve a registered application
                           through the artifact store (repeatable)
  --samples <n>            training rollout size for --fit
                           (default 1000)
  --q8-epsilon <eps>       also fit the int8 surrogate for --fit apps,
                           gated at this fidelity-drop tolerance
  --max-batch <n>          coalescing limit (default 16; 1 disables
                           coalescing — also settable at runtime via
                           POST /v1/config)
  --queue-capacity <n>     admission queue bound; overflow returns 429
                           (default 64)
  --watch-ms <n>           poll interval for hot reload (default: off)
  --cache-dir <dir>        artifact store root for --fit
                           (default <repo>/results/cache)
  --threads <n>            engine worker threads (default: AGUA_THREADS
                           env or all cores; responses are identical at
                           any value)
";

struct Args {
    addr: String,
    addr_file: Option<PathBuf>,
    sources: Vec<Source>,
    samples: usize,
    q8_epsilon: Option<f32>,
    max_batch: usize,
    queue_capacity: usize,
    watch: Option<Duration>,
    cache_dir: PathBuf,
    threads: Option<usize>,
}

fn default_cache_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..").join("results").join("cache")
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8117".to_string(),
        addr_file: None,
        sources: Vec::new(),
        samples: 1000,
        q8_epsilon: None,
        max_batch: 16,
        queue_capacity: 64,
        watch: None,
        cache_dir: default_cache_dir(),
        threads: None,
    };
    let mut fit_apps: Vec<String> = Vec::new();
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err("help".to_string());
        }
        let value = it.next().ok_or_else(|| format!("flag {flag} needs a value"))?.to_string();
        let bad = |what: &str| format!("cannot parse {flag} value `{value}` as {what}");
        match flag.as_str() {
            "--addr" => args.addr = value,
            "--addr-file" => args.addr_file = Some(PathBuf::from(value)),
            "--model-dir" => args.sources.push(Source::Dir(PathBuf::from(value))),
            "--fit" => fit_apps.push(value),
            "--samples" => args.samples = value.parse().map_err(|_| bad("an integer"))?,
            "--q8-epsilon" => args.q8_epsilon = Some(value.parse().map_err(|_| bad("a float"))?),
            "--max-batch" => args.max_batch = value.parse().map_err(|_| bad("an integer"))?,
            "--queue-capacity" => {
                args.queue_capacity = value.parse().map_err(|_| bad("an integer"))?
            }
            "--watch-ms" => {
                args.watch =
                    Some(Duration::from_millis(value.parse().map_err(|_| bad("an integer"))?))
            }
            "--cache-dir" => args.cache_dir = PathBuf::from(value),
            "--threads" => args.threads = Some(value.parse().map_err(|_| bad("an integer"))?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    for app in fit_apps {
        let mut spec = FitSpec::standard(args.samples);
        if let Some(eps) = args.q8_epsilon {
            spec = spec.quantized(eps);
        }
        args.sources.push(Source::Fit { app, spec });
    }
    if args.sources.is_empty() {
        return Err("nothing to serve: pass --fit <app> and/or --model-dir <dir>".to_string());
    }
    Ok(args)
}

fn main() -> std::process::ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(e) if e == "help" => {
            println!("{USAGE}");
            return std::process::ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let config = ServeConfig {
        addr: args.addr,
        engine: EngineConfig {
            queue_capacity: args.queue_capacity,
            max_batch: args.max_batch,
            nn: args.threads.map(|threads| ThreadConfig { threads, min_flops: 0 }),
        },
        sources: args.sources,
        cache_root: args.cache_dir,
        cache_mode: CacheMode::from_env(),
        watch: args.watch,
    };
    let server = match start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let addr = server.addr();
    if let Some(path) = &args.addr_file {
        if let Err(e) = std::fs::write(path, addr.to_string()) {
            eprintln!("error: cannot write --addr-file {}: {e}", path.display());
            server.stop();
            return std::process::ExitCode::FAILURE;
        }
    }
    eprintln!("[agua-serve] listening on {addr}");
    server.wait();
    eprintln!("[agua-serve] stopped");
    std::process::ExitCode::SUCCESS
}
