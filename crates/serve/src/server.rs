//! The daemon: a TCP accept loop over the engine, session sources with
//! hot reload, and per-tenant observability.
//!
//! ```text
//!   TcpListener ──accept──► connection thread ──route──► Engine::explain
//!        │                                                  │
//!   watcher thread ──StoreWatch / dir fingerprints──► reload_all
//! ```
//!
//! Sessions come from two kinds of [`Source`]: checkpoint directories
//! (`--model-dir`, reloaded when their file fingerprints move) and
//! store-backed fits (`--fit`, reloaded when the artifact store's
//! invalidation generation moves — the [`StoreWatch`] hook). Either
//! way a reload goes through [`Engine::install`]'s atomic swap, so
//! in-flight requests finish on the generation they were admitted
//! under and the response bytes for a given request are identical
//! across the swap (the loadgen asserts this byte-identity).

use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use agua_app::{fnv1a, CacheMode, Store, StoreWatch};
use agua_engine::{fit_pipeline, Engine, EngineConfig, FitSpec};
use agua_obs::{emit, Metrics, ServeRequestHandled, ServeRequestRejected};
use serde_json::Value;

use crate::http::{read_request, write_response, Request};
use crate::json;

/// Where a served session comes from, and how reloads find it again.
#[derive(Debug, Clone)]
pub enum Source {
    /// A checkpoint directory (`agua-cli train` output).
    Dir(PathBuf),
    /// A store-backed fit of a registered application.
    Fit {
        /// Registry name of the application.
        app: String,
        /// The fitting pipeline specification.
        spec: FitSpec,
    },
}

/// Daemon configuration.
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Engine sizing (queue bound, coalescing limit, nn threads).
    pub engine: EngineConfig,
    /// Session sources, installed at startup and on every reload.
    pub sources: Vec<Source>,
    /// Artifact store root for [`Source::Fit`] pipelines.
    pub cache_root: PathBuf,
    /// Store cache mode (daemon entry points pass `CacheMode::from_env`).
    pub cache_mode: CacheMode,
    /// Poll interval for the reload watcher; `None` disables watching
    /// (explicit `POST /v1/reload` still works).
    pub watch: Option<Duration>,
}

struct State {
    engine: Engine,
    metrics: Arc<Metrics>,
    store: Store,
    watch: StoreWatch,
    sources: Vec<Source>,
    addr: SocketAddr,
    /// Serializes reloads (watcher vs `POST /v1/reload`), and holds the
    /// last seen store generation + per-source dir fingerprints.
    reload_state: Mutex<Vec<Option<u64>>>,
    store_seen: AtomicU64,
    shutdown: AtomicBool,
}

/// A started daemon; dropping it does *not* stop the server — call
/// [`RunningServer::stop`] (tests) or [`RunningServer::wait`] (daemon).
pub struct RunningServer {
    state: Arc<State>,
    addr: SocketAddr,
    accept: JoinHandle<()>,
    watcher: Option<JoinHandle<()>>,
}

impl RunningServer {
    /// The bound address (real port even when the config said `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's metrics aggregator.
    pub fn metrics(&self) -> Arc<Metrics> {
        Arc::clone(&self.state.metrics)
    }

    /// Blocks until the accept loop exits (a `POST /v1/shutdown`).
    pub fn wait(self) {
        let _ = self.accept.join();
        if let Some(watcher) = self.watcher {
            let _ = watcher.join();
        }
    }

    /// Stops the daemon: closes admission, wakes the accept loop, joins
    /// both service threads.
    pub fn stop(self) {
        self.state.begin_shutdown();
        self.wait();
    }
}

impl State {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.engine.shutdown();
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// Binds, installs every source, and spawns the accept loop (and the
/// reload watcher when configured).
pub fn start(config: ServeConfig) -> Result<RunningServer, String> {
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    let addr = listener.local_addr().map_err(|e| format!("no local addr: {e}"))?;

    let metrics = Arc::new(Metrics::new());
    let engine = Engine::with_obs(config.engine, metrics.clone());
    let store = Store::with_mode(&config.cache_root, config.cache_mode);
    let watch = store.watch();
    let state = Arc::new(State {
        engine,
        metrics,
        store,
        watch,
        sources: config.sources,
        addr,
        reload_state: Mutex::new(Vec::new()),
        store_seen: AtomicU64::new(0),
        shutdown: AtomicBool::new(false),
    });
    reload_all(&state)?;

    let accept_state = Arc::clone(&state);
    // audit:allow(thread-spawn): the accept loop only moves sockets to
    // handler threads; explanation bytes come from the engine's
    // deterministic pipeline regardless of socket scheduling.
    let accept = std::thread::Builder::new()
        .name("agua-serve-accept".to_string())
        .spawn(move || accept_loop(&accept_state, listener))
        .map_err(|e| format!("cannot spawn accept loop: {e}"))?;

    let watcher = match config.watch {
        None => None,
        Some(interval) => {
            let watch_state = Arc::clone(&state);
            // audit:allow(thread-spawn): the watcher only polls reload
            // triggers; a reload swaps checkpoints atomically and never
            // alters what any admitted request computes.
            Some(
                std::thread::Builder::new()
                    .name("agua-serve-watcher".to_string())
                    .spawn(move || watcher_loop(&watch_state, interval))
                    .map_err(|e| format!("cannot spawn watcher: {e}"))?,
            )
        }
    };

    Ok(RunningServer { state, addr, accept, watcher })
}

/// (Re)installs every source, returning `(app, generation)` pairs.
/// Serialized by the reload lock; fingerprints and the seen store
/// generation are recorded *after* the installs so the watcher does not
/// chase the writes the fit itself performed.
fn reload_all(state: &State) -> Result<Vec<(&'static str, u64)>, String> {
    let mut fingerprints = state.reload_state.lock().expect("reload lock");
    for source in &state.sources {
        match source {
            Source::Dir(dir) => {
                state.engine.load_dir(dir).map_err(|e| e.to_string())?;
            }
            Source::Fit { app, spec } => {
                let app = agua_app::lookup(app)?;
                let fitted = fit_pipeline(&state.store, app, spec, &*state.metrics);
                if let Some(report) = fitted.q8_report() {
                    if !report.passes {
                        return Err(format!(
                            "int8 fidelity gate failed for {}: drop {} > ε {}",
                            app.name(),
                            report.drop,
                            report.epsilon
                        ));
                    }
                }
                let session = fitted.into_session(app, spec);
                state.engine.install(session.checkpoint().clone()).map_err(|e| e.to_string())?;
            }
        }
    }
    *fingerprints = state.sources.iter().map(source_fingerprint).collect();
    state.store_seen.store(state.watch.generation(), Ordering::Release);
    Ok(state.engine.apps())
}

/// FNV over (name, len, mtime) of every file in a checkpoint directory
/// — moves whenever a checkpoint is rewritten. `None` for fit sources
/// (they are watched through the store generation instead).
fn source_fingerprint(source: &Source) -> Option<u64> {
    let Source::Dir(dir) = source else { return None };
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    let mut entries: Vec<(String, u64, u128)> = Vec::new();
    let Ok(dir_entries) = std::fs::read_dir(dir) else { return Some(0) };
    for entry in dir_entries.flatten() {
        let name = entry.file_name().to_string_lossy().to_string();
        let Ok(meta) = entry.metadata() else { continue };
        let mtime = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map_or(0, |d| d.as_nanos());
        entries.push((name, meta.len(), mtime));
    }
    entries.sort();
    for (name, len, mtime) in entries {
        acc ^= fnv1a(name.as_bytes());
        acc = acc.wrapping_mul(0x100_0000_01b3);
        acc ^= len;
        acc = acc.wrapping_mul(0x100_0000_01b3);
        acc ^= mtime as u64;
        acc = acc.wrapping_mul(0x100_0000_01b3);
    }
    Some(acc)
}

fn watcher_loop(state: &State, interval: Duration) {
    while !state.shutdown.load(Ordering::Acquire) {
        std::thread::sleep(interval);
        if state.shutdown.load(Ordering::Acquire) {
            break;
        }
        let store_moved = state.watch.changed_since(state.store_seen.load(Ordering::Acquire));
        let dirs_moved = {
            let recorded = state.reload_state.lock().expect("reload lock");
            state
                .sources
                .iter()
                .zip(recorded.iter())
                .any(|(source, seen)| source_fingerprint(source) != *seen)
        };
        if store_moved || dirs_moved {
            if let Err(e) = reload_all(state) {
                eprintln!("[agua-serve] reload failed (serving previous sessions): {e}");
                // Re-arm anyway so a broken source does not spin the
                // watcher at full rate.
                state.store_seen.store(state.watch.generation(), Ordering::Release);
            }
        }
    }
}

fn accept_loop(state: &Arc<State>, listener: TcpListener) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Responses are written as one frame, but without TCP_NODELAY a
        // keep-alive client's next small request can still stall behind
        // a delayed ACK; latency here is the product being measured.
        let _ = stream.set_nodelay(true);
        let conn_state = Arc::clone(state);
        // audit:allow(thread-spawn): connection handlers submit requests
        // to the engine's queue; the coalescer's byte-identity contract
        // makes handler scheduling unobservable in response bytes.
        let _ = std::thread::Builder::new()
            .name("agua-serve-conn".to_string())
            .spawn(move || serve_connection(&conn_state, stream));
    }
}

fn serve_connection(state: &Arc<State>, stream: TcpStream) {
    let Ok(reader_stream) = stream.try_clone() else { return };
    let mut reader = BufReader::new(reader_stream);
    let mut stream = stream;
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(request)) => request,
            Ok(None) => break,
            Err(_) => {
                let body = json::error_body("malformed HTTP request");
                let _ = write_response(&mut stream, 400, &[], &body);
                break;
            }
        };
        let close = request.wants_close();
        let (status, headers, body) = route(state, &request);
        if write_response(&mut stream, status, &headers, &body).is_err() {
            break;
        }
        if close || state.shutdown.load(Ordering::Acquire) {
            break;
        }
    }
}

type Routed = (u16, Vec<(String, String)>, Vec<u8>);

fn ok(value: &Value) -> Routed {
    (200, Vec::new(), json::body(value))
}

fn error(status: u16, msg: &str) -> Routed {
    (status, Vec::new(), json::error_body(msg))
}

/// The tenant id a request bills to: FNV of the `X-Agua-Tenant` header
/// (0 when absent), so arbitrary tenant strings map to stable u64 keys.
fn tenant_of(request: &Request) -> u64 {
    request.header("x-agua-tenant").map_or(0, |v| fnv1a(v.as_bytes()))
}

fn apps_value(state: &State) -> Value {
    use agua_app::codec::{object, u64_value};
    Value::Array(
        state
            .engine
            .apps()
            .into_iter()
            .filter_map(|(name, generation)| {
                let session = state.engine.session(name)?;
                Some(object(vec![
                    ("app", Value::String(name.to_string())),
                    ("generation", u64_value(generation)),
                    ("in_dim", Value::Number(session.in_dim() as f64)),
                    ("n_outputs", Value::Number(session.n_outputs() as f64)),
                ]))
            })
            .collect(),
    )
}

fn route(state: &Arc<State>, request: &Request) -> Routed {
    use agua_app::codec::{get, object, u64_value, usize_of};
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/v1/healthz") => ok(&object(vec![
            ("apps", Value::Number(state.engine.apps().len() as f64)),
            ("status", Value::String("ok".to_string())),
        ])),
        ("GET", "/v1/apps") => ok(&object(vec![("apps", apps_value(state))])),
        ("GET", "/v1/metrics") => {
            let snapshot = state.metrics.snapshot();
            let text = serde_json::to_string(&snapshot).expect("metrics snapshot serializes");
            (200, Vec::new(), text.into_bytes())
        }
        ("GET", "/v1/config") => ok(&object(vec![
            ("max_batch", Value::Number(state.engine.max_batch() as f64)),
            ("queue_capacity", Value::Number(state.engine.queue_capacity() as f64)),
        ])),
        ("POST", "/v1/config") => {
            let text = String::from_utf8_lossy(&request.body).to_string();
            let Ok(value) = serde_json::from_str(&text) else {
                return error(400, "config body is not JSON");
            };
            if let Ok(v) = get(&value, "max_batch", "config") {
                match usize_of(v, "config.max_batch") {
                    Ok(n) => state.engine.set_max_batch(n),
                    Err(e) => return error(400, &e.to_string()),
                }
            }
            ok(&object(vec![("max_batch", Value::Number(state.engine.max_batch() as f64))]))
        }
        ("POST", "/v1/reload") => match reload_all(state) {
            Ok(_) => ok(&object(vec![("apps", apps_value(state))])),
            Err(e) => error(500, &format!("reload failed: {e}")),
        },
        ("POST", "/v1/invalidate") => {
            // Marks the artifact store dirty; the watcher (when running)
            // picks this up and refits every store-backed session.
            state.store.invalidate();
            ok(&object(vec![("generation", u64_value(state.watch.generation()))]))
        }
        ("POST", "/v1/shutdown") => {
            state.begin_shutdown();
            ok(&object(vec![("status", Value::String("shutting down".to_string()))]))
        }
        ("POST", "/v1/explain") => explain_route(state, request),
        (_, "/v1/explain" | "/v1/healthz" | "/v1/apps" | "/v1/metrics" | "/v1/config") => {
            error(405, "method not allowed")
        }
        _ => error(404, "no such route"),
    }
}

/// `POST /v1/explain`: parse, serve through the engine, and report the
/// outcome on the obs fabric keyed by tenant. The coalesced batch size
/// and checkpoint generation ride as `X-Agua-*` headers so the body
/// stays a deterministic function of the request and the checkpoint.
fn explain_route(state: &Arc<State>, request: &Request) -> Routed {
    let tenant = tenant_of(request);
    let start = Instant::now();
    let parsed = match json::parse_explain(&request.body) {
        Ok(parsed) => parsed,
        Err(e) => {
            let routed = error(400, &e);
            emit(
                &*state.metrics,
                ServeRequestHandled { tenant, status: 400, seconds: start.elapsed().as_secs_f64() },
            );
            return routed;
        }
    };
    match state.engine.explain(parsed) {
        Ok(resp) => {
            let headers = vec![
                ("X-Agua-Batch".to_string(), resp.batch_size.to_string()),
                ("X-Agua-Generation".to_string(), resp.generation.to_string()),
            ];
            let body = json::explain_body(&resp);
            emit(
                &*state.metrics,
                ServeRequestHandled { tenant, status: 200, seconds: start.elapsed().as_secs_f64() },
            );
            (200, headers, body)
        }
        Err(err) => {
            let (status, retry_after) = json::status_of(&err);
            if let agua_engine::EngineError::Overloaded { capacity } = err {
                emit(&*state.metrics, ServeRequestRejected { tenant, capacity });
            }
            let mut headers = Vec::new();
            if let Some(seconds) = retry_after {
                headers.push(("Retry-After".to_string(), seconds.to_string()));
            }
            emit(
                &*state.metrics,
                ServeRequestHandled { tenant, status, seconds: start.elapsed().as_secs_f64() },
            );
            (status, headers, json::error_body(&err.to_string()))
        }
    }
}
