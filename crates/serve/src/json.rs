//! JSON bodies for the serve API, hand-encoded through
//! [`serde_json::Value`] and the portable codec helpers.
//!
//! Encoding goes through [`agua_app::codec::object`], whose map
//! serialization is key-ordered and whose float formatting is the
//! shortest round-trippable representation — so a response body is a
//! *deterministic* function of the response value. The loadgen's
//! byte-identity checks (coalesced vs sequential, across a warm
//! reload) hash these bodies directly.

use agua::explain::{Explanation, RowQuery};
use agua_app::codec::{arr_of, f32s_value, get, object, str_of, usize_of};
use agua_engine::{EngineError, ExplainRequest, ExplainResponse};
use serde_json::Value;

/// Encodes `value` as the response body bytes.
pub fn body(value: &Value) -> Vec<u8> {
    serde_json::to_string(value).expect("JSON value serializes").into_bytes()
}

/// `{"error": msg}`.
pub fn error_body(msg: &str) -> Vec<u8> {
    body(&object(vec![("error", Value::String(msg.to_string()))]))
}

/// The explanation payload: concept contributions in rank order, the
/// queried class, and the surrogate's probability of it.
pub fn explanation_value(e: &Explanation) -> Value {
    object(vec![
        (
            "contributions",
            Value::Array(
                e.contributions
                    .iter()
                    .map(|c| {
                        object(vec![
                            ("concept", Value::String(c.concept.clone())),
                            ("per_class", f32s_value(&c.per_class)),
                            ("weight", Value::Number(f64::from(c.weight))),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("factual", Value::Bool(e.factual)),
        ("output_class", Value::Number(e.output_class as f64)),
        ("output_prob", Value::Number(f64::from(e.output_prob))),
    ])
}

/// The `POST /v1/explain` 200 body. Deliberately excludes the reload
/// generation and the coalesced batch size (they ride as `X-Agua-*`
/// headers): the body bytes depend only on `(app, features, query)`
/// and the checkpoint content, never on batch company or reload count.
pub fn explain_body(resp: &ExplainResponse) -> Vec<u8> {
    body(&object(vec![
        ("app", Value::String(resp.app.to_string())),
        ("explanation", explanation_value(&resp.explanation)),
        ("verdict", Value::Number(resp.verdict as f64)),
    ]))
}

/// Parses a `POST /v1/explain` request body:
/// `{"app": "...", "features": [...], "counterfactual": class?}`.
pub fn parse_explain(bytes: &[u8]) -> Result<ExplainRequest, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "body is not UTF-8".to_string())?;
    let value: Value = serde_json::from_str(text).map_err(|e| format!("body is not JSON: {e}"))?;
    let err = |e: agua_app::codec::CodecError| e.to_string();
    let app = str_of(get(&value, "app", "explain request").map_err(err)?, "explain request.app")
        .map_err(err)?
        .to_string();
    let features = arr_of(
        get(&value, "features", "explain request").map_err(err)?,
        "explain request.features",
    )
    .map_err(err)?
    .iter()
    .map(|v| agua_app::codec::f32_of(v, "explain request.features[]").map_err(err))
    .collect::<Result<Vec<f32>, String>>()?;
    let query = match get(&value, "counterfactual", "explain request") {
        Ok(v) => {
            RowQuery::Counterfactual(usize_of(v, "explain request.counterfactual").map_err(err)?)
        }
        Err(_) => RowQuery::Factual,
    };
    Ok(ExplainRequest { app, features, query })
}

/// Maps an [`EngineError`] to its HTTP status (and optional
/// `Retry-After` seconds). Admission-queue overflow is the
/// backpressure contract: reject fast, tell the client to come back.
//= spec: specs/serve-protocol.toml#overload-responds-429
//# a request rejected by the bounded admission queue MUST receive
//# HTTP 429 with a Retry-After header, and MUST NOT occupy queue
//# space or block behind admitted requests
pub fn status_of(err: &EngineError) -> (u16, Option<u64>) {
    match err {
        EngineError::Overloaded { .. } => (429, Some(1)),
        EngineError::UnknownApp(_) => (404, None),
        EngineError::FeatureDim { .. } | EngineError::ClassRange { .. } => (400, None),
        EngineError::ShuttingDown => (503, None),
        EngineError::Checkpoint(_) | EngineError::BatchFailed => (500, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explain_request_round_trips_and_validates() {
        let req = parse_explain(br#"{"app":"ddos","features":[0.5,-1.25,3.0],"counterfactual":1}"#)
            .unwrap();
        assert_eq!(req.app, "ddos");
        assert_eq!(req.features, vec![0.5, -1.25, 3.0]);
        assert_eq!(req.query, RowQuery::Counterfactual(1));

        let req = parse_explain(br#"{"app":"abr","features":[1.0]}"#).unwrap();
        assert_eq!(req.query, RowQuery::Factual);

        assert!(parse_explain(b"not json").is_err());
        assert!(parse_explain(br#"{"features":[1.0]}"#).is_err(), "missing app");
        assert!(parse_explain(br#"{"app":"x","features":"nope"}"#).is_err());
    }

    #[test]
    fn error_statuses_map_the_backpressure_contract() {
        assert_eq!(status_of(&EngineError::Overloaded { capacity: 8 }), (429, Some(1)));
        assert_eq!(status_of(&EngineError::UnknownApp("x".into())), (404, None));
        assert_eq!(status_of(&EngineError::FeatureDim { expected: 3, got: 1 }), (400, None));
        assert_eq!(status_of(&EngineError::ClassRange { n_outputs: 2, got: 9 }), (400, None));
        assert_eq!(status_of(&EngineError::ShuttingDown), (503, None));
        assert_eq!(status_of(&EngineError::BatchFailed), (500, None));
    }

    #[test]
    fn explanation_bodies_are_deterministic_bytes() {
        let e = Explanation {
            output_class: 1,
            output_prob: 0.75,
            factual: true,
            contributions: vec![agua::explain::ConceptContribution {
                concept: "Payload Anomalies".to_string(),
                weight: 0.5,
                per_class: vec![0.125, 0.375],
            }],
        };
        let resp = ExplainResponse {
            app: "ddos",
            generation: 3,
            batch_size: 7,
            verdict: 1,
            explanation: e,
        };
        let a = explain_body(&resp);
        let b = explain_body(&resp);
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert!(text.contains("\"verdict\""), "{text}");
        assert!(!text.contains("generation"), "generation must ride in headers only: {text}");
        assert!(!text.contains("batch"), "batch size must ride in headers only: {text}");
    }
}
