//! `agua-serve`: a long-running HTTP daemon over [`agua_engine`], plus
//! the closed-loop load generator that benchmarks it.
//!
//! The daemon speaks a hand-rolled HTTP/1.1 subset ([`http`]) — no
//! external server dependency — and serves:
//!
//! | route | verb | purpose |
//! |---|---|---|
//! | `/v1/healthz` | GET | liveness + installed app count |
//! | `/v1/apps` | GET | installed sessions (app, generation, dims) |
//! | `/v1/metrics` | GET | [`agua_obs::MetricsSnapshot`] as JSON |
//! | `/v1/config` | GET/POST | read / set the coalescing `max_batch` |
//! | `/v1/explain` | POST | one explanation request through the engine |
//! | `/v1/reload` | POST | reinstall every session source now |
//! | `/v1/invalidate` | POST | mark the artifact store dirty (watcher refits) |
//! | `/v1/shutdown` | POST | drain and exit |
//!
//! Three serving contracts, spec-anchored in `specs/serve-protocol.toml`:
//!
//! - **Byte-identity**: a `/v1/explain` 200 body is a deterministic
//!   function of `(app, features, query)` and the checkpoint content —
//!   never of batch company, thread count, or reload count. Batch size
//!   and generation ride as `X-Agua-Batch` / `X-Agua-Generation`
//!   headers instead.
//! - **Backpressure**: admission is a bounded queue; overflow is an
//!   immediate `429` + `Retry-After`, not a blocked connection.
//! - **Hot reload**: sessions swap atomically; in-flight requests
//!   finish on the generation they were admitted under.

pub mod http;
pub mod json;
pub mod server;

pub use server::{start, RunningServer, ServeConfig, Source};
