//! A deliberately small HTTP/1.1 codec over `std::net` — no external
//! dependencies, no async. Enough protocol for the daemon and its load
//! generator: request line + headers + `Content-Length` bodies,
//! keep-alive connections, and nothing else (no chunked encoding, no
//! pipelining beyond sequential requests on one connection).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// One parsed request (server side) or response (client side) payload
/// limit: bodies beyond this are rejected rather than buffered.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Header name/value pairs in arrival order, names lower-cased.
pub type Headers = Vec<(String, String)>;

/// A parsed HTTP/1.1 request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path component of the request target (no query parsing).
    pub path: String,
    /// Header name/value pairs in arrival order, names lower-cased.
    pub headers: Headers,
    /// The request body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first `name` header's value, if present (names are stored
    /// lower-cased; `name` must be given lower-cased).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (`Connection: close`; HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// A parsed HTTP/1.1 response (client side).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs, names lower-cased.
    pub headers: Headers,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// The first `name` header's value (lower-cased name), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

fn invalid(what: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string())
}

/// Reads one request from a buffered stream. `Ok(None)` means the peer
/// closed cleanly between requests (the keep-alive loop's exit).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> std::io::Result<Option<Request>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or_else(|| invalid("empty request line"))?.to_string();
    let path = parts.next().ok_or_else(|| invalid("request line without a target"))?.to_string();
    let version = parts.next().ok_or_else(|| invalid("request line without a version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(invalid("unsupported HTTP version"));
    }
    let (headers, body) = read_headers_and_body(reader)?;
    Ok(Some(Request { method, path, headers, body }))
}

fn read_headers_and_body(reader: &mut BufReader<TcpStream>) -> std::io::Result<(Headers, Vec<u8>)> {
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(invalid("connection closed inside headers"));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        let (name, value) =
            line.split_once(':').ok_or_else(|| invalid("header line without a colon"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| invalid("unparseable Content-Length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(invalid("body exceeds MAX_BODY_BYTES"));
            }
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok((headers, body))
}

/// The canonical reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one response. `extra_headers` ride between the fixed headers
/// and the blank line; `Content-Length` and `Content-Type` are always
/// emitted.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(String, String)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One write for head + body: two small writes under Nagle's
    // algorithm stall on the peer's delayed ACK (~40ms per exchange),
    // which would dwarf the explain latency being measured.
    let mut frame = head.into_bytes();
    frame.extend_from_slice(body);
    stream.write_all(&frame)?;
    stream.flush()
}

/// A keep-alive HTTP/1.1 client connection (the loadgen side).
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:8117`).
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// Sends one request and reads the response. `headers` are emitted
    /// verbatim; `Content-Length` is added for you.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(String, String)],
        body: &[u8],
    ) -> std::io::Result<Response> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: agua\r\n");
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
        // Single write per request, mirroring `write_response`.
        let mut frame = head.into_bytes();
        frame.extend_from_slice(body);
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        self.read_response()
    }

    /// Convenience: `GET path` with no body or extra headers.
    pub fn get(&mut self, path: &str) -> std::io::Result<Response> {
        self.request("GET", path, &[], b"")
    }

    /// Convenience: `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &[u8]) -> std::io::Result<Response> {
        self.request("POST", path, &[], body)
    }

    fn read_response(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(invalid("server closed before responding"));
        }
        let mut parts = line.split_whitespace();
        let version = parts.next().ok_or_else(|| invalid("empty status line"))?;
        if !version.starts_with("HTTP/1.") {
            return Err(invalid("unsupported HTTP version in response"));
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| invalid("status line without a code"))?;
        let (headers, body) = read_headers_and_body(&mut self.reader)?;
        Ok(Response { status, headers, body })
    }
}
