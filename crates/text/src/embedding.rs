//! Hashed bag-of-n-grams text embedding.
//!
//! Stand-in for the paper's OpenAI-large / BGE-M3 embedding models. Tokens
//! are lowercased alphanumeric runs; stopwords are dropped; remaining
//! unigrams and bigrams are weighted by the domain lexicon and hashed into
//! a fixed-dimension vector with sign hashing (so unrelated collisions
//! tend to cancel rather than correlate). Vectors are L2-normalized, so
//! the dot product is the cosine similarity.

use crate::lexicon::term_weight;
use serde::{Deserialize, Serialize};

/// A deterministic hashed n-gram embedder.
///
/// ```
/// use agua_text::embedding::{cosine_similarity, Embedder};
///
/// let e = Embedder::new(256);
/// let a = e.embed("rapidly increasing network latency");
/// let b = e.embed("network latency is rapidly increasing");
/// let c = e.embed("stable client buffer near full capacity");
/// assert!(cosine_similarity(&a, &b) > cosine_similarity(&a, &c));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedder {
    /// Output dimensionality.
    dim: usize,
    /// Hash seed; different seeds give (slightly) different models, which
    /// the benchmarks use to mimic switching embedding providers.
    seed: u64,
}

impl Embedder {
    /// Creates an embedder with the given output dimension.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        Self::with_seed(dim, 0x5151_7E37)
    }

    /// Creates an embedder with an explicit hash seed.
    pub fn with_seed(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self { dim, seed }
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds `text` into an L2-normalized vector.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        let tokens = tokenize(text);

        for token in &tokens {
            self.add_term(&mut v, token, term_weight(token));
        }
        // Bigrams over the filtered token stream capture phrases like
        // "rapidly increasing" vs "rapidly decreasing".
        for pair in tokens.windows(2) {
            let w = (term_weight(&pair[0]) * term_weight(&pair[1])).sqrt();
            if w > 0.0 {
                let bigram = format!("{} {}", pair[0], pair[1]);
                self.add_term(&mut v, &bigram, 1.5 * w);
            }
        }

        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        if norm > 0.0 {
            for x in &mut v {
                *x /= norm;
            }
        }
        v
    }

    fn add_term(&self, v: &mut [f32], term: &str, weight: f32) {
        if weight == 0.0 {
            return;
        }
        let h = fnv1a(term, self.seed);
        let bucket = (h % self.dim as u64) as usize;
        // One extra hash bit decides the sign, decorrelating collisions.
        let sign = if (h >> 61) & 1 == 0 { 1.0 } else { -1.0 };
        v[bucket] += sign * weight;
    }
}

/// Lowercase alphanumeric tokenization with stopword removal.
fn tokenize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .filter(|t| term_weight(t) > 0.0)
        .map(str::to_string)
        .collect()
}

/// Cosine similarity between two equal-length vectors, clamped to [0, 1]
/// (the paper treats cosine similarity as a non-negative intensity).
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine of mismatched dimensions");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot / (na * nb)).clamp(0.0, 1.0)
}

fn fnv1a(s: &str, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_are_unit_norm() {
        let e = Embedder::new(256);
        let v = e.embed("rapidly increasing network throughput");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = Embedder::new(64);
        let v = e.embed("the of and");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identical_texts_have_similarity_one() {
        let e = Embedder::new(256);
        let a = e.embed("volatile network throughput with fluctuating bandwidth");
        assert!((cosine_similarity(&a, &a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn related_texts_are_closer_than_unrelated() {
        let e = Embedder::new(512);
        let buffer_a = e.embed("buffer rapidly decreasing, depleting toward empty");
        let buffer_b = e.embed("the buffer exhibits a rapidly decreasing pattern, depleting");
        let ddos = e.embed("syn flood attack with anomalous packet volume");
        let close = cosine_similarity(&buffer_a, &buffer_b);
        let far = cosine_similarity(&buffer_a, &ddos);
        assert!(close > far + 0.2, "close {close} vs far {far}");
    }

    #[test]
    fn bigram_order_separates_opposite_phrases() {
        let e = Embedder::new(512);
        let up = e.embed("rapidly increasing latency rapidly increasing latency");
        let down = e.embed("rapidly decreasing latency rapidly decreasing latency");
        let up2 = e.embed("latency is rapidly increasing over the window");
        assert!(
            cosine_similarity(&up, &up2) > cosine_similarity(&down, &up2),
            "direction must matter"
        );
    }

    #[test]
    fn embedding_is_deterministic() {
        let e = Embedder::new(128);
        assert_eq!(e.embed("stable buffer"), e.embed("stable buffer"));
    }

    #[test]
    fn different_seeds_give_different_models() {
        let a = Embedder::with_seed(128, 1).embed("stable buffer with high throughput");
        let b = Embedder::with_seed(128, 2).embed("stable buffer with high throughput");
        assert_ne!(a, b);
    }

    #[test]
    fn cosine_similarity_is_clamped_nonnegative() {
        let a = vec![1.0, 0.0];
        let b = vec![-1.0, 0.0];
        assert_eq!(cosine_similarity(&a, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "cosine of mismatched dimensions")]
    fn cosine_rejects_mismatched_lengths() {
        let _ = cosine_similarity(&[1.0], &[1.0, 2.0]);
    }
}
