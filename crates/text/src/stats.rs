//! Time-series pattern analysis feeding the structured describer.
//!
//! The paper's prompt asks the LLM to characterize each signal over three
//! windows — "Initially", "In the middle", "In the end" — plus an overall
//! trend. This module computes those characterizations deterministically
//! from the numbers: a normalized slope classifies the *trend*, relative
//! dispersion classifies *volatility*, and the mean relative to the
//! signal's documented maximum classifies the *level*.

use serde::{Deserialize, Serialize};

/// A named time series of one controller-input feature, together with the
/// feature's documented maximum (as in the paper's prompt:
/// "Network Throughput (Mbps), max=3: […]").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignalSeries {
    /// Human-readable feature name, e.g. "Network Throughput".
    pub name: String,
    /// Unit shown in the prompt, e.g. "Mbps".
    pub unit: String,
    /// Raw values, oldest first.
    pub values: Vec<f32>,
    /// Documented maximum used to normalize levels.
    pub max: f32,
}

impl SignalSeries {
    /// Creates a signal series.
    pub fn new(name: &str, unit: &str, values: Vec<f32>, max: f32) -> Self {
        assert!(max > 0.0, "signal max must be positive");
        Self { name: name.to_string(), unit: unit.to_string(), values, max }
    }
}

/// Direction of change within a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trend {
    /// Strong positive slope.
    RapidlyIncreasing,
    /// Mild positive slope.
    Increasing,
    /// Negligible slope.
    Stable,
    /// Mild negative slope.
    Decreasing,
    /// Strong negative slope.
    RapidlyDecreasing,
}

impl Trend {
    /// Canonical lexicon phrase for the trend.
    pub fn phrase(self) -> &'static str {
        match self {
            Trend::RapidlyIncreasing => "rapidly increasing",
            Trend::Increasing => "increasing",
            Trend::Stable => "stable",
            Trend::Decreasing => "decreasing",
            Trend::RapidlyDecreasing => "rapidly decreasing",
        }
    }

    /// All variants, for enumeration in tests and noise models.
    pub fn all() -> [Trend; 5] {
        [
            Trend::RapidlyIncreasing,
            Trend::Increasing,
            Trend::Stable,
            Trend::Decreasing,
            Trend::RapidlyDecreasing,
        ]
    }

    /// The neighbouring trend categories, used by the describer's
    /// mis-read noise model (an LLM confuses "stable" with "increasing"
    /// far more often than with "rapidly decreasing").
    pub fn neighbours(self) -> Vec<Trend> {
        match self {
            Trend::RapidlyIncreasing => vec![Trend::Increasing],
            Trend::Increasing => vec![Trend::RapidlyIncreasing, Trend::Stable],
            Trend::Stable => vec![Trend::Increasing, Trend::Decreasing],
            Trend::Decreasing => vec![Trend::Stable, Trend::RapidlyDecreasing],
            Trend::RapidlyDecreasing => vec![Trend::Decreasing],
        }
    }
}

/// Magnitude buckets used for both levels and volatility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// Bottom of the range.
    VeryLow,
    /// Low.
    Low,
    /// Middle of the range.
    Moderate,
    /// High.
    High,
    /// Top of the range.
    VeryHigh,
}

impl Level {
    /// Canonical lexicon phrase for the level.
    pub fn phrase(self) -> &'static str {
        match self {
            Level::VeryLow => "very low",
            Level::Low => "low",
            Level::Moderate => "moderate",
            Level::High => "high",
            Level::VeryHigh => "very high",
        }
    }
}

/// Pattern statistics for one window of a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentStats {
    /// Direction of change across the window.
    pub trend: Trend,
    /// Whether the window is volatile (high relative dispersion around its
    /// own trend line).
    pub volatile: bool,
    /// Mean level relative to the documented maximum.
    pub level: Level,
}

/// Full analysis of a series: initial / middle / end windows plus overall.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesAnalysis {
    /// First third of the window.
    pub initial: SegmentStats,
    /// Middle third.
    pub middle: SegmentStats,
    /// Final third.
    pub end: SegmentStats,
    /// Whole window.
    pub overall: SegmentStats,
    /// Overall mean divided by the documented maximum, in [0, ~1].
    pub normalized_mean: f32,
}

/// Slope threshold (per step, relative to the documented max) above which
/// a window counts as increasing/decreasing.
const SLOPE_MILD: f32 = 0.01;
/// Slope threshold above which a trend counts as "rapid".
const SLOPE_RAPID: f32 = 0.05;
/// Residual-dispersion threshold (relative to max) for volatility.
const VOLATILITY_THRESHOLD: f32 = 0.08;

fn linear_fit(values: &[f32]) -> (f32, f32) {
    // Least-squares slope and intercept over index 0..n.
    let n = values.len() as f32;
    if values.len() < 2 {
        return (0.0, values.first().copied().unwrap_or(0.0));
    }
    let mean_x = (n - 1.0) / 2.0;
    let mean_y = values.iter().sum::<f32>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, &y) in values.iter().enumerate() {
        let dx = i as f32 - mean_x;
        num += dx * (y - mean_y);
        den += dx * dx;
    }
    let slope = if den > 0.0 { num / den } else { 0.0 };
    (slope, mean_y - slope * mean_x)
}

fn segment_stats(values: &[f32], max: f32) -> SegmentStats {
    let (slope, intercept) = linear_fit(values);
    let rel_slope = slope / max;
    let trend = if rel_slope > SLOPE_RAPID {
        Trend::RapidlyIncreasing
    } else if rel_slope > SLOPE_MILD {
        Trend::Increasing
    } else if rel_slope < -SLOPE_RAPID {
        Trend::RapidlyDecreasing
    } else if rel_slope < -SLOPE_MILD {
        Trend::Decreasing
    } else {
        Trend::Stable
    };

    // Dispersion around the fitted trend line, so a clean ramp is not
    // mistaken for volatility.
    let n = values.len().max(1) as f32;
    let resid_var = values
        .iter()
        .enumerate()
        .map(|(i, &y)| {
            let fit = intercept + slope * i as f32;
            (y - fit) * (y - fit)
        })
        .sum::<f32>()
        / n;
    let volatile = resid_var.sqrt() / max > VOLATILITY_THRESHOLD;

    let mean = values.iter().sum::<f32>() / n;
    let frac = (mean / max).clamp(0.0, 1.0);
    let level = if frac < 0.15 {
        Level::VeryLow
    } else if frac < 0.35 {
        Level::Low
    } else if frac < 0.65 {
        Level::Moderate
    } else if frac < 0.85 {
        Level::High
    } else {
        Level::VeryHigh
    };

    SegmentStats { trend, volatile, level }
}

/// Analyzes a series into initial/middle/end window statistics and an
/// overall summary.
///
/// # Panics
/// Panics if the series is empty.
pub fn analyze_series(series: &SignalSeries) -> SeriesAnalysis {
    assert!(!series.values.is_empty(), "cannot analyze an empty series");
    let v = &series.values;
    let n = v.len();
    let third = (n / 3).max(1);
    let initial = segment_stats(&v[..third.min(n)], series.max);
    let middle = segment_stats(&v[(third).min(n - 1)..(2 * third).max(third).min(n)], series.max);
    let end = segment_stats(&v[n - third.min(n)..], series.max);
    let overall = segment_stats(v, series.max);
    let normalized_mean = (v.iter().sum::<f32>() / n as f32 / series.max).clamp(0.0, 1.0);
    SeriesAnalysis { initial, middle, end, overall, normalized_mean }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: &[f32], max: f32) -> SignalSeries {
        SignalSeries::new("Test", "u", values.to_vec(), max)
    }

    #[test]
    fn flat_series_is_stable_not_volatile() {
        let a = analyze_series(&series(&[2.0; 10], 4.0));
        assert_eq!(a.overall.trend, Trend::Stable);
        assert!(!a.overall.volatile);
        assert_eq!(a.overall.level, Level::Moderate);
    }

    #[test]
    fn steep_ramp_is_rapidly_increasing_but_not_volatile() {
        let vals: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let a = analyze_series(&series(&vals, 10.0));
        assert_eq!(a.overall.trend, Trend::RapidlyIncreasing);
        assert!(!a.overall.volatile, "clean ramps must not read as volatile");
    }

    #[test]
    fn falling_series_is_decreasing() {
        let vals: Vec<f32> = (0..10).map(|i| 10.0 - 0.2 * i as f32).collect();
        let a = analyze_series(&series(&vals, 10.0));
        assert_eq!(a.overall.trend, Trend::Decreasing);
    }

    #[test]
    fn sawtooth_is_volatile() {
        let vals: Vec<f32> = (0..13).map(|i| if i % 2 == 0 { 1.0 } else { 9.0 }).collect();
        let a = analyze_series(&series(&vals, 10.0));
        assert!(a.overall.volatile);
        assert_eq!(a.overall.trend, Trend::Stable);
    }

    #[test]
    fn levels_follow_normalized_mean() {
        assert_eq!(analyze_series(&series(&[0.5; 5], 10.0)).overall.level, Level::VeryLow);
        assert_eq!(analyze_series(&series(&[2.5; 5], 10.0)).overall.level, Level::Low);
        assert_eq!(analyze_series(&series(&[5.0; 5], 10.0)).overall.level, Level::Moderate);
        assert_eq!(analyze_series(&series(&[7.5; 5], 10.0)).overall.level, Level::High);
        assert_eq!(analyze_series(&series(&[9.5; 5], 10.0)).overall.level, Level::VeryHigh);
    }

    #[test]
    fn windows_differ_when_pattern_changes() {
        // Flat, then collapse: initial stable, end rapidly decreasing.
        let mut vals = vec![9.0; 5];
        vals.extend((0..5).map(|i| 9.0 - 2.0 * i as f32));
        let a = analyze_series(&series(&vals, 10.0));
        assert_eq!(a.initial.trend, Trend::Stable);
        assert_eq!(a.end.trend, Trend::RapidlyDecreasing);
    }

    #[test]
    fn single_point_series_is_handled() {
        let a = analyze_series(&series(&[1.0], 2.0));
        assert_eq!(a.overall.trend, Trend::Stable);
    }

    #[test]
    fn neighbours_are_symmetric() {
        for t in Trend::all() {
            for n in t.neighbours() {
                assert!(n.neighbours().contains(&t), "{t:?} <-> {n:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "signal max must be positive")]
    fn zero_max_is_rejected() {
        let _ = SignalSeries::new("x", "u", vec![1.0], 0.0);
    }
}
