//! # agua-text — structured description generation and text embeddings
//!
//! Agua's training pipeline (paper Fig. 2, stages ② and ③) converts each
//! controller input into a *structured text description* via an LLM, embeds
//! the description and every base concept with a text-embedding model, and
//! quantizes their cosine similarities into concept-class labels.
//!
//! This crate provides offline, deterministic stand-ins for both models:
//!
//! * [`describer::Describer`] — a template-grounded description generator
//!   that fills exactly the blanks of the paper's Fig. 15 prompt
//!   ("Initially starts off with a {stable} pattern, as observed from the
//!   features {…}") from per-window statistics of the input's signal time
//!   series. A configurable noise model (synonym sampling and occasional
//!   pattern mis-reads) emulates the stochasticity of a real LLM; two
//!   [`describer::ModelGrade`]s mirror the paper's GPT-4o vs Llama-3.3
//!   comparison.
//! * [`embedding::Embedder`] — a hashed bag-of-n-grams embedder with an
//!   IDF-style domain lexicon. Concept tagging only ever consumes cosine
//!   similarities between short, vocabulary-controlled domain texts, which
//!   a lexical embedder models faithfully.
//!
//! The rest of the pipeline (quantization, surrogate training,
//! explanations) lives in the `agua` crate and is agnostic to whether the
//! text and vectors came from these simulators or from real models.

#![forbid(unsafe_code)]

pub mod describer;
pub mod embedding;
pub mod lexicon;
pub mod prompt;
pub mod stats;

pub use describer::{Describer, DescriberConfig, ModelGrade};
pub use embedding::{cosine_similarity, Embedder};
pub use stats::{analyze_series, Level, SegmentStats, SeriesAnalysis, SignalSeries, Trend};
