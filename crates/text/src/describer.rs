//! Template-grounded structured description generation (the paper's
//! "Input Description Generation" stage, Fig. 15/16).
//!
//! The paper deliberately constrains its LLM with fill-in-the-blank
//! prompts so that responses are "as factual as possible". This module
//! instantiates the same template directly from series statistics, with a
//! noise model standing in for LLM stochasticity:
//!
//! * **synonym noise** — pattern words are sometimes replaced by an
//!   in-lexicon synonym ("stable" → "steady"), changing the wording but
//!   only mildly perturbing the embedding;
//! * **mis-read noise** — a window's trend is occasionally reported as a
//!   neighbouring category ("stable" → "increasing"), modelling genuine
//!   hallucination.
//!
//! Two [`ModelGrade`]s mirror the paper's GPT-4o (high quality) versus
//! Llama-3.3 (open source) comparison; a third configuration mimics a
//! careful human annotator for the Appendix A.2 validation.

use crate::lexicon::synonym_group;
use crate::stats::{analyze_series, SegmentStats, SignalSeries, Trend};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A titled group of signals described together, mirroring the paper's
/// per-aspect paragraphs ("Network conditions:", "Viewer's video buffer:").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DescribedSection {
    /// Paragraph title.
    pub title: String,
    /// Signals covered by the paragraph.
    pub signals: Vec<SignalSeries>,
}

impl DescribedSection {
    /// Creates a section.
    pub fn new(title: &str, signals: Vec<SignalSeries>) -> Self {
        Self { title: title.to_string(), signals }
    }
}

/// Which "model" is generating descriptions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelGrade {
    /// Stand-in for a frontier closed model (GPT-4o class): rich wording,
    /// rare mis-reads.
    HighQuality,
    /// Stand-in for an open-source model (Llama-3.3 class): noisier
    /// wording, slightly more mis-reads.
    OpenSource,
    /// Stand-in for a careful human annotator (Appendix A.2): almost no
    /// mis-reads but highly varied wording.
    Human,
}

/// Noise configuration of a describer.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DescriberConfig {
    /// Model grade this configuration emulates.
    pub grade: ModelGrade,
    /// Probability that a pattern word is replaced by a synonym.
    pub synonym_noise: f64,
    /// Probability that a window's trend is mis-read as a neighbour, or
    /// its volatility flag flipped.
    pub misread_noise: f64,
}

impl DescriberConfig {
    /// GPT-4o-class configuration.
    pub fn high_quality() -> Self {
        Self { grade: ModelGrade::HighQuality, synonym_noise: 0.10, misread_noise: 0.02 }
    }

    /// Llama-3.3-class configuration.
    pub fn open_source() -> Self {
        Self { grade: ModelGrade::OpenSource, synonym_noise: 0.25, misread_noise: 0.05 }
    }

    /// Human-annotator configuration (Appendix A.2 validation).
    pub fn human() -> Self {
        Self { grade: ModelGrade::Human, synonym_noise: 0.45, misread_noise: 0.01 }
    }

    /// A noiseless configuration for deterministic baselines.
    pub fn noiseless() -> Self {
        Self { grade: ModelGrade::HighQuality, synonym_noise: 0.0, misread_noise: 0.0 }
    }
}

/// The structured description generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Describer {
    config: DescriberConfig,
}

impl Describer {
    /// Creates a describer with the given configuration.
    pub fn new(config: DescriberConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> DescriberConfig {
        self.config
    }

    /// Generates a structured description of the sections, consuming
    /// randomness from `rng` for the noise model.
    pub fn describe(&self, sections: &[DescribedSection], rng: &mut StdRng) -> String {
        let mut out = String::new();
        let mut summary_lines = Vec::new();
        for section in sections {
            out.push_str(&section.title);
            out.push_str(":\n");
            for signal in &section.signals {
                let analysis = analyze_series(signal);
                let initial = self.render_segment(analysis.initial, rng);
                let middle = self.render_segment(analysis.middle, rng);
                let end = self.render_segment(analysis.end, rng);
                let overall = self.render_segment(analysis.overall, rng);
                let level = self.word(analysis.overall.level.phrase(), rng);
                let name = signal.name.to_lowercase();
                out.push_str(&format!(
                    "- {name}: Initially starts off with a {initial} pattern, as observed from \
                     the feature {name}. In the middle, it exhibits a {middle} pattern, as \
                     evident from {name}. In the end, it exhibits a {end} pattern, based on \
                     {name}. Overall, the trend is {overall}, indicating the presence of \
                     {level} {name} conditions.\n",
                ));
                // The recent window dominates the summary, mirroring how
                // the paper's Fig. 16 responses weight the latest
                // behaviour of each signal.
                let recent = self.render_segment(analysis.end, rng);
                summary_lines.push(format!("- The {name} is {recent} with {level} {name}.",));
            }
        }
        out.push_str("Summary:\n");
        for line in summary_lines {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Convenience wrapper seeding an RNG from `seed`.
    pub fn describe_seeded(&self, sections: &[DescribedSection], seed: u64) -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        self.describe(sections, &mut rng)
    }

    fn render_segment(&self, mut stats: SegmentStats, rng: &mut StdRng) -> String {
        // Mis-read noise: shift the trend to a neighbouring category.
        if rng.random_bool(self.config.misread_noise) {
            let neighbours = stats.trend.neighbours();
            stats.trend = neighbours[rng.random_range(0..neighbours.len())];
        }
        if rng.random_bool(self.config.misread_noise) {
            stats.volatile = !stats.volatile;
        }
        let trend = self.trend_phrase(stats.trend, rng);
        if stats.volatile {
            format!("{trend} and {}", self.word("volatile", rng))
        } else {
            trend
        }
    }

    fn trend_phrase(&self, trend: Trend, rng: &mut StdRng) -> String {
        match trend {
            Trend::RapidlyIncreasing => format!("rapidly {}", self.word("increasing", rng)),
            Trend::Increasing => self.word("increasing", rng),
            Trend::Stable => self.word("stable", rng),
            Trend::Decreasing => self.word("decreasing", rng),
            Trend::RapidlyDecreasing => format!("rapidly {}", self.word("decreasing", rng)),
        }
    }

    /// Applies synonym noise to a canonical lexicon word. Multi-word
    /// phrases ("very high") have noise applied to their last word.
    fn word(&self, canonical: &str, rng: &mut StdRng) -> String {
        let mut parts: Vec<String> = canonical.split(' ').map(str::to_string).collect();
        if let Some(last) = parts.last_mut() {
            if let Some(group) = synonym_group(last) {
                if group.len() > 1 && rng.random_bool(self.config.synonym_noise) {
                    *last = group[rng.random_range(1..group.len())].to_string();
                }
            }
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sections() -> Vec<DescribedSection> {
        vec![
            DescribedSection::new(
                "Network conditions",
                vec![SignalSeries::new(
                    "Network Throughput",
                    "Mbps",
                    vec![3.0, 2.8, 2.5, 2.0, 1.4, 0.9, 0.6, 0.4, 0.3, 0.2],
                    3.0,
                )],
            ),
            DescribedSection::new(
                "Viewer's video buffer",
                vec![SignalSeries::new("Client Buffer", "seconds", vec![12.0; 10], 15.0)],
            ),
        ]
    }

    #[test]
    fn noiseless_description_is_deterministic_and_factual() {
        let d = Describer::new(DescriberConfig::noiseless());
        let a = d.describe_seeded(&sections(), 1);
        let b = d.describe_seeded(&sections(), 2);
        assert_eq!(a, b, "noiseless output must not depend on the seed");
        assert!(a.contains("rapidly decreasing"), "throughput collapse must be reported: {a}");
        assert!(a.contains("stable"), "flat buffer must be reported stable");
        assert!(a.contains("Network conditions:"));
        assert!(a.contains("Viewer's video buffer:"));
    }

    #[test]
    fn template_structure_follows_the_paper() {
        let d = Describer::new(DescriberConfig::noiseless());
        let text = d.describe_seeded(&sections(), 0);
        for blank in [
            "Initially starts off with a",
            "In the middle, it exhibits a",
            "In the end, it exhibits a",
            "Overall, the trend is",
            "indicating the presence of",
        ] {
            assert!(text.contains(blank), "missing template blank: {blank}");
        }
    }

    #[test]
    fn synonym_noise_changes_wording_across_seeds() {
        let d = Describer::new(DescriberConfig { synonym_noise: 1.0, ..DescriberConfig::human() });
        let a = d.describe_seeded(&sections(), 1);
        let b = Describer::new(DescriberConfig::noiseless()).describe_seeded(&sections(), 1);
        assert_ne!(a, b);
        // Full synonym noise must still avoid the canonical "decreasing".
        assert!(!a.contains("rapidly decreasing"));
        assert!(
            a.contains("rapidly falling")
                || a.contains("rapidly declining")
                || a.contains("rapidly dropping"),
            "expected a synonym of decreasing: {a}"
        );
    }

    #[test]
    fn misread_noise_eventually_flips_a_pattern() {
        let d = Describer::new(DescriberConfig {
            synonym_noise: 0.0,
            misread_noise: 0.9,
            grade: ModelGrade::OpenSource,
        });
        // The flat buffer should often be mis-read as something non-stable.
        let mut saw_misread = false;
        for seed in 0..20 {
            let text = d.describe_seeded(&sections(), seed);
            let buffer_line =
                text.lines().find(|l| l.contains("client buffer")).expect("buffer line present");
            if !buffer_line.contains("stable")
                && !buffer_line.contains("steady")
                && !buffer_line.contains("consistent")
                && !buffer_line.contains("flat")
            {
                saw_misread = true;
                break;
            }
        }
        assert!(saw_misread, "high mis-read noise never flipped a stable window");
    }

    #[test]
    fn grades_order_by_noise() {
        let hq = DescriberConfig::high_quality();
        let os = DescriberConfig::open_source();
        assert!(hq.synonym_noise < os.synonym_noise);
        assert!(hq.misread_noise < os.misread_noise);
        assert!(DescriberConfig::human().misread_noise <= hq.misread_noise);
    }
}
