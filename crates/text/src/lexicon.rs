//! Shared domain vocabulary: stopwords, term weights, and synonym groups.
//!
//! The embedder boosts domain-bearing terms and drops template glue so
//! that cosine similarity between a long structured description and a
//! short concept text is driven by the pattern vocabulary both sides
//! share, not by boilerplate.

/// Template glue dropped entirely during tokenization.
pub const STOPWORDS: &[&str] = &[
    "a",
    "an",
    "the",
    "of",
    "in",
    "on",
    "at",
    "as",
    "to",
    "from",
    "with",
    "by",
    "and",
    "or",
    "is",
    "are",
    "was",
    "be",
    "it",
    "its",
    "this",
    "that",
    "for",
    "off",
    "starts",
    "observed",
    "evident",
    "based",
    "exhibits",
    "exhibit",
    "indicating",
    "presence",
    "overall",
    "trend",
    "initially",
    "middle",
    "end",
    "pattern",
    "patterns",
    "features",
    "feature",
    "conditions",
    "altogether",
    "indicate",
    "correlates",
    "key",
    "concept",
    "per",
];

/// Pattern adjectives that carry most of the signal; they receive extra
/// weight in the embedding.
pub const PATTERN_TERMS: &[&str] = &[
    "increasing",
    "decreasing",
    "rapidly",
    "stable",
    "volatile",
    "fluctuating",
    "steady",
    "rising",
    "climbing",
    "growing",
    "falling",
    "declining",
    "dropping",
    "consistent",
    "flat",
    "erratic",
    "unstable",
    "depleting",
    "recovering",
    "improving",
    "degrading",
    "worsening",
    "low",
    "high",
    "moderate",
    "very",
    "elevated",
    "reduced",
    "empty",
    "full",
    "nearly",
    "anomalous",
    "typical",
    "bursty",
    "sparse",
    "spiking",
    "surging",
];

/// Domain nouns shared between descriptions and concept texts.
pub const DOMAIN_TERMS: &[&str] = &[
    "throughput",
    "buffer",
    "bitrate",
    "quality",
    "chunk",
    "stall",
    "stalling",
    "startup",
    "video",
    "playback",
    "experience",
    "qoe",
    "transmission",
    "bandwidth",
    "complexity",
    "latency",
    "rtt",
    "delay",
    "loss",
    "packet",
    "packets",
    "rate",
    "sending",
    "utilization",
    "congestion",
    "network",
    "capacity",
    "queue",
    "flow",
    "flows",
    "syn",
    "ack",
    "tcp",
    "udp",
    "http",
    "handshake",
    "payload",
    "protocol",
    "request",
    "requests",
    "source",
    "sources",
    "geographic",
    "temporal",
    "behavior",
    "application",
    "attack",
    "traffic",
    "volume",
    "session",
    "sessions",
    "interarrival",
    "port",
    "ports",
    "header",
    "size",
    "sizes",
    "slow",
    "access",
    "compliance",
];

/// Weight applied to a token when building the embedding.
pub fn term_weight(token: &str) -> f32 {
    if STOPWORDS.contains(&token) {
        0.0
    } else if PATTERN_TERMS.contains(&token) {
        2.0
    } else if DOMAIN_TERMS.contains(&token) {
        1.5
    } else {
        0.5
    }
}

/// Synonym groups used by the describer's lexical-noise model. The first
/// entry of each group is the canonical phrase emitted at zero noise.
pub const SYNONYMS: &[&[&str]] = &[
    &["increasing", "rising", "climbing", "growing"],
    &["decreasing", "falling", "declining", "dropping"],
    &["stable", "steady", "consistent", "flat"],
    &["volatile", "fluctuating", "erratic", "unstable"],
    &["high", "elevated"],
    &["low", "reduced"],
];

/// Returns the synonym group containing `word`, if any.
pub fn synonym_group(word: &str) -> Option<&'static [&'static str]> {
    SYNONYMS.iter().copied().find(|group| group.contains(&word))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwords_have_zero_weight() {
        assert_eq!(term_weight("the"), 0.0);
        assert_eq!(term_weight("pattern"), 0.0);
    }

    #[test]
    fn pattern_terms_outweigh_domain_terms_outweigh_unknowns() {
        assert!(term_weight("volatile") > term_weight("throughput"));
        assert!(term_weight("throughput") > term_weight("zebra"));
        assert!(term_weight("zebra") > 0.0);
    }

    #[test]
    fn synonyms_resolve_to_their_group() {
        let g = synonym_group("falling").expect("group exists");
        assert_eq!(g[0], "decreasing");
        assert!(synonym_group("xylophone").is_none());
    }

    #[test]
    fn every_synonym_is_a_weighted_pattern_term() {
        // If a synonym were not in PATTERN_TERMS the noise model would
        // silently change embedding weights, not just wording.
        for group in SYNONYMS {
            for word in *group {
                assert!(PATTERN_TERMS.contains(word), "synonym {word} missing from PATTERN_TERMS");
            }
        }
    }
}
