//! Rendering the paper's Fig. 15 prompt.
//!
//! Agua's input-description stage sends an LLM a strictly structured
//! prompt: a system instruction, the base concepts with their
//! descriptions, the raw state (each feature series with its documented
//! maximum), and a fill-in-the-blank explanation template. This module
//! renders that prompt verbatim from a set of concepts and described
//! sections — the [`crate::describer::Describer`] then plays the role of
//! the LLM producing the Fig. 16 response.
//!
//! Keeping the prompt renderer in the codebase serves two purposes:
//! the simulated pipeline documents exactly what a real-LLM deployment
//! would send, and swapping the describer for a real model is a one-line
//! change (send [`render_prompt`]'s output instead).

use crate::describer::DescribedSection;

/// The paper's system instruction (Fig. 15).
pub const SYSTEM_INSTRUCTION: &str = "You are a computer scientist trying to gather key \
    information to use in an embedding model to identify patterns. Be straight to the point \
    and avoid unnecessary words.";

/// A named concept with a description, as listed in the prompt.
#[derive(Debug, Clone)]
pub struct PromptConcept {
    /// Concept name.
    pub name: String,
    /// One-sentence description.
    pub description: String,
}

/// Renders the full Fig. 15 prompt: system instruction, concept list,
/// state dump, and the fill-in-the-blank template.
pub fn render_prompt(
    domain: &str,
    concepts: &[PromptConcept],
    sections: &[DescribedSection],
) -> String {
    let mut out = String::new();
    out.push_str("System Instructions: ");
    out.push_str(SYSTEM_INSTRUCTION);
    out.push_str(
        "\n\nUser Prompt: Explain the patterns in the state using the following key \
                  concepts for the environment of ",
    );
    out.push_str(domain);
    out.push_str(
        " alongside common statistical metrics. Give an explanation for each \
                  takeaway.\n\nHere are the concepts:\n",
    );
    for (i, c) in concepts.iter().enumerate() {
        out.push_str(&format!("({}) {}: {}\n", i + 1, c.name, c.description));
    }

    out.push_str("\nState to identify patterns for:\n");
    for section in sections {
        for signal in &section.signals {
            let values: Vec<String> = signal.values.iter().map(|v| format!("{v:.3}")).collect();
            let unit =
                if signal.unit.is_empty() { String::new() } else { format!(" ({})", signal.unit) };
            out.push_str(&format!(
                "{}{}, max={}: [{}]\n",
                signal.name,
                unit,
                signal.max,
                values.join(", ")
            ));
        }
    }

    out.push_str("\nExplanation Template:\n");
    for section in sections {
        out.push_str(&format!(
            "{}: Initially starts off with (a/an) _ pattern, as observed from the features _. \
             In the middle, it exhibits (a/an) _ to (a/an) _ pattern, as evident from \
             features _. In the end, it exhibits (a/an) _ to (a/an) _ pattern, based on \
             features _. Overall, the trend is _, indicating the presence of _ conditions.\n",
            section.title
        ));
    }
    out.push_str(
        "Altogether, the patterns in the features indicate _ conditions. This correlates with \
         the key concepts of _, _, _, _, and _.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::SignalSeries;

    fn sections() -> Vec<DescribedSection> {
        vec![DescribedSection::new(
            "Network conditions",
            vec![SignalSeries::new("Network Throughput", "Mbps", vec![3.0, 2.5, 2.0], 3.0)],
        )]
    }

    fn concepts() -> Vec<PromptConcept> {
        vec![
            PromptConcept {
                name: "Volatile Network Throughput".into(),
                description: "throughput varies rapidly".into(),
            },
            PromptConcept {
                name: "Stable Buffer".into(),
                description: "the buffer holds steady".into(),
            },
        ]
    }

    #[test]
    fn prompt_contains_all_fig15_parts() {
        let p = render_prompt("Adaptive Bitrate Streaming", &concepts(), &sections());
        assert!(p.contains(SYSTEM_INSTRUCTION));
        assert!(p.contains("(1) Volatile Network Throughput:"));
        assert!(p.contains("(2) Stable Buffer:"));
        assert!(p.contains("Network Throughput (Mbps), max=3: [3.000, 2.500, 2.000]"));
        assert!(p.contains("Explanation Template:"));
        assert!(p.contains("Initially starts off with (a/an) _ pattern"));
        assert!(p.contains("correlates with the key concepts"));
    }

    #[test]
    fn unitless_signals_omit_parentheses() {
        let s = vec![DescribedSection::new(
            "QoE",
            vec![SignalSeries::new("Quality of Experience", "", vec![3.0], 5.0)],
        )];
        let p = render_prompt("ABR", &concepts(), &s);
        assert!(p.contains("Quality of Experience, max=5: [3.000]"));
        assert!(!p.contains("Quality of Experience ()"));
    }

    #[test]
    fn values_render_with_three_decimals() {
        let p = render_prompt("ABR", &concepts(), &sections());
        assert!(p.contains("2.500"));
    }
}
