//! Synthetic network throughput traces.
//!
//! The paper rolls Gelato out on Puffer client traces; four access-network
//! families stand in for that corpus. Each trace is a piecewise-constant
//! throughput process sampled once per second, produced by an AR(1)
//! baseline with regime events (outages, ramps) whose rates differ per
//! family. Two *era mixes* replicate the 2021-training vs 2024-deployment
//! drift of paper Figs. 5 and 7.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A throughput trace sampled at 1 Hz, in Mbps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkTrace {
    /// Throughput at each whole second, Mbps.
    pub mbps: Vec<f32>,
    /// Family that generated the trace (for bookkeeping in experiments).
    pub family: TraceFamily,
}

impl NetworkTrace {
    /// Throughput at absolute time `t` seconds (clamped to the last
    /// sample so simulations can run past the nominal end).
    pub fn throughput_at(&self, t: f32) -> f32 {
        let idx = (t.max(0.0) as usize).min(self.mbps.len() - 1);
        self.mbps[idx]
    }

    /// Trace duration in seconds.
    pub fn duration(&self) -> f32 {
        self.mbps.len() as f32
    }

    /// Mean throughput in Mbps.
    pub fn mean_mbps(&self) -> f32 {
        self.mbps.iter().sum::<f32>() / self.mbps.len() as f32
    }
}

/// Access-network families with distinct throughput statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceFamily {
    /// Low, fairly steady throughput with deep fades.
    ThreeG,
    /// Moderate throughput, moderate variation.
    FourG,
    /// High but volatile throughput (beam/cell switches).
    FiveG,
    /// High, very stable wired throughput.
    Broadband,
}

impl TraceFamily {
    /// All families.
    pub fn all() -> [TraceFamily; 4] {
        [TraceFamily::ThreeG, TraceFamily::FourG, TraceFamily::FiveG, TraceFamily::Broadband]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            TraceFamily::ThreeG => "3G",
            TraceFamily::FourG => "4G",
            TraceFamily::FiveG => "5G",
            TraceFamily::Broadband => "broadband",
        }
    }

    fn params(self) -> FamilyParams {
        match self {
            TraceFamily::ThreeG => FamilyParams {
                base: 0.9,
                ar: 0.92,
                sigma: 0.12,
                outage_prob: 0.020,
                outage_depth: 0.15,
                ramp_prob: 0.010,
                floor: 0.1,
                cap: 2.0,
            },
            TraceFamily::FourG => FamilyParams {
                base: 2.0,
                ar: 0.90,
                sigma: 0.30,
                outage_prob: 0.012,
                outage_depth: 0.25,
                ramp_prob: 0.012,
                floor: 0.2,
                cap: 4.0,
            },
            TraceFamily::FiveG => FamilyParams {
                base: 3.4,
                ar: 0.72,
                sigma: 1.05,
                outage_prob: 0.025,
                outage_depth: 0.2,
                ramp_prob: 0.030,
                floor: 0.3,
                cap: 6.0,
            },
            TraceFamily::Broadband => FamilyParams {
                base: 4.5,
                ar: 0.97,
                sigma: 0.10,
                outage_prob: 0.002,
                outage_depth: 0.5,
                ramp_prob: 0.002,
                floor: 1.0,
                cap: 6.0,
            },
        }
    }

    /// Generates one trace of `seconds` duration.
    pub fn generate(self, seconds: usize, rng: &mut StdRng) -> NetworkTrace {
        assert!(seconds > 0, "trace must span at least one second");
        let p = self.params();
        let mut mbps = Vec::with_capacity(seconds);
        let mut level = p.base;
        // Regime events persist for a geometric number of seconds.
        let mut event_left = 0usize;
        let mut event_scale = 1.0f32;
        for _ in 0..seconds {
            if event_left == 0 {
                if rng.random_bool(p.outage_prob) {
                    event_left = rng.random_range(3..12);
                    event_scale = p.outage_depth;
                } else if rng.random_bool(p.ramp_prob) {
                    event_left = rng.random_range(3..10);
                    event_scale = 1.5;
                } else {
                    event_scale = 1.0;
                }
            } else {
                event_left -= 1;
            }
            let noise: f32 = rng.random_range(-p.sigma..p.sigma);
            level = p.ar * level + (1.0 - p.ar) * p.base + noise;
            level = level.clamp(p.floor, p.cap);
            mbps.push((level * event_scale).clamp(0.05, p.cap));
        }
        NetworkTrace { mbps, family: self }
    }
}

#[derive(Debug, Clone, Copy)]
struct FamilyParams {
    base: f32,
    ar: f32,
    sigma: f32,
    outage_prob: f64,
    outage_depth: f32,
    ramp_prob: f64,
    floor: f32,
    cap: f32,
}

/// Dataset eras reproducing the paper's 2021-vs-2024 drift: the 2024 mix
/// has far more volatile 5G clients and fewer deep-3G clients, shifting
/// the throughput CDF upward and the concept mix toward volatility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetEra {
    /// April–May 2021 training data: mostly 3G/4G with some broadband.
    Train2021,
    /// June 2024 deployment data: 5G-heavy, higher and more volatile.
    Deploy2024,
}

impl DatasetEra {
    /// Sampling weights over `[3G, 4G, 5G, broadband]`.
    pub fn family_weights(self) -> [f32; 4] {
        match self {
            DatasetEra::Train2021 => [0.35, 0.40, 0.05, 0.20],
            DatasetEra::Deploy2024 => [0.10, 0.30, 0.45, 0.15],
        }
    }

    /// Mean content complexity of videos in this era (richer 2024 catalog).
    pub fn mean_complexity(self) -> f32 {
        match self {
            DatasetEra::Train2021 => 0.95,
            DatasetEra::Deploy2024 => 1.15,
        }
    }

    /// Samples a trace family according to the era weights.
    pub fn sample_family(self, rng: &mut StdRng) -> TraceFamily {
        let w = self.family_weights();
        let mut x: f32 = rng.random_range(0.0..1.0);
        for (i, fam) in TraceFamily::all().into_iter().enumerate() {
            if x < w[i] {
                return fam;
            }
            x -= w[i];
        }
        TraceFamily::Broadband
    }

    /// Generates `count` traces of `seconds` duration each.
    pub fn generate_traces(self, count: usize, seconds: usize, seed: u64) -> Vec<NetworkTrace> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let family = self.sample_family(&mut rng);
                family.generate(seconds, &mut rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(family: TraceFamily, seed: u64) -> NetworkTrace {
        family.generate(600, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn families_order_by_mean_throughput() {
        let mean = |f: TraceFamily| (0..8).map(|s| gen(f, s).mean_mbps()).sum::<f32>() / 8.0;
        let m3 = mean(TraceFamily::ThreeG);
        let m4 = mean(TraceFamily::FourG);
        let m5 = mean(TraceFamily::FiveG);
        let mb = mean(TraceFamily::Broadband);
        assert!(m3 < m4 && m4 < m5, "3G {m3} < 4G {m4} < 5G {m5}");
        assert!(mb > m4, "broadband {mb} above 4G {m4}");
    }

    #[test]
    fn fiveg_is_more_volatile_than_broadband() {
        let cv = |f: TraceFamily| {
            let t = gen(f, 42);
            let mean = t.mean_mbps();
            let var =
                t.mbps.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / t.mbps.len() as f32;
            var.sqrt() / mean
        };
        assert!(cv(TraceFamily::FiveG) > 2.0 * cv(TraceFamily::Broadband));
    }

    #[test]
    fn throughput_is_always_positive_and_bounded() {
        for fam in TraceFamily::all() {
            let t = gen(fam, 9);
            assert!(t.mbps.iter().all(|&v| v > 0.0 && v <= 6.0));
        }
    }

    #[test]
    fn throughput_at_clamps_to_trace_end() {
        let t = gen(TraceFamily::FourG, 1);
        assert_eq!(t.throughput_at(1e9), *t.mbps.last().unwrap());
        assert_eq!(t.throughput_at(-5.0), t.mbps[0]);
    }

    #[test]
    fn era_weights_sum_to_one() {
        for era in [DatasetEra::Train2021, DatasetEra::Deploy2024] {
            let s: f32 = era.family_weights().iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn eras_shift_throughput_upward() {
        let mean_of = |era: DatasetEra| {
            let traces = era.generate_traces(40, 300, 7);
            traces.iter().map(|t| t.mean_mbps()).sum::<f32>() / 40.0
        };
        let m21 = mean_of(DatasetEra::Train2021);
        let m24 = mean_of(DatasetEra::Deploy2024);
        assert!(m24 > m21 * 1.15, "2024 mean {m24} must exceed 2021 mean {m21}");
    }

    #[test]
    fn trace_generation_is_deterministic() {
        let a = DatasetEra::Train2021.generate_traces(3, 100, 5);
        let b = DatasetEra::Train2021.generate_traces(3, 100, 5);
        assert_eq!(a[2].mbps, b[2].mbps);
    }
}
