//! The streaming client simulator: chunk downloads, buffer dynamics,
//! stalls, and QoE accounting.

use crate::manifest::VideoManifest;
use crate::observation::{AbrObservation, BUFFER_MAX};
use crate::trace::NetworkTrace;
use crate::{CHUNK_SECONDS, HISTORY, LEVELS, LOOKAHEAD};
use serde::{Deserialize, Serialize};

/// Maximum time we allow a single chunk download to take, seconds.
const TX_TIME_CAP: f32 = 20.0;

/// QoE model weights. QoE per chunk is
/// `ssim/5 − stall_penalty·stall − smooth_penalty·|Δssim|/5`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
//= spec: specs/applications.toml#abr-qoe
//# ssim/5 minus stall_penalty * stall seconds minus
//# smooth_penalty * |delta ssim|/5
pub struct QoeParams {
    /// Penalty per second of stall.
    pub stall_penalty: f32,
    /// Penalty per (scaled) dB of quality switch.
    pub smooth_penalty: f32,
}

impl Default for QoeParams {
    fn default() -> Self {
        Self { stall_penalty: 2.0, smooth_penalty: 0.5 }
    }
}

/// Result of one simulator step.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StepOutcome {
    /// QoE earned by the chunk.
    pub qoe: f32,
    /// Stall time incurred, seconds.
    pub stall: f32,
    /// Download time of the chunk, seconds.
    pub tx_time: f32,
    /// SSIM dB of the downloaded chunk.
    pub quality_db: f32,
    /// True when the video has finished.
    pub done: bool,
}

/// Event-driven ABR client simulation. Call [`AbrSimulator::observation`]
/// to read the controller input, then [`AbrSimulator::step`] with the
/// chosen quality level.
#[derive(Debug, Clone)]
pub struct AbrSimulator {
    manifest: VideoManifest,
    trace: NetworkTrace,
    qoe_params: QoeParams,
    /// Next chunk index to download.
    chunk: usize,
    /// Wall-clock time within the trace, seconds.
    clock: f32,
    /// Playback buffer, seconds of video.
    buffer: f32,
    // Rolling histories, most recent last, always HISTORY long.
    hist_quality: Vec<f32>,
    hist_size: Vec<f32>,
    hist_tx: Vec<f32>,
    hist_tput: Vec<f32>,
    hist_buffer: Vec<f32>,
    hist_qoe: Vec<f32>,
    hist_stall: Vec<f32>,
    last_quality_db: f32,
    total_qoe: f32,
}

impl AbrSimulator {
    /// Creates a simulator at the start of the video with an empty buffer.
    pub fn new(manifest: VideoManifest, trace: NetworkTrace) -> Self {
        Self::with_qoe(manifest, trace, QoeParams::default())
    }

    /// Creates a simulator with explicit QoE weights.
    pub fn with_qoe(manifest: VideoManifest, trace: NetworkTrace, qoe_params: QoeParams) -> Self {
        Self {
            manifest,
            trace,
            qoe_params,
            chunk: 0,
            clock: 0.0,
            buffer: 0.0,
            hist_quality: vec![0.0; HISTORY],
            hist_size: vec![0.0; HISTORY],
            hist_tx: vec![0.0; HISTORY],
            hist_tput: vec![0.0; HISTORY],
            hist_buffer: vec![0.0; HISTORY],
            hist_qoe: vec![0.0; HISTORY],
            hist_stall: vec![0.0; HISTORY],
            last_quality_db: 0.0,
            total_qoe: 0.0,
        }
    }

    /// Remaining chunks.
    pub fn chunks_left(&self) -> usize {
        self.manifest.chunks() - self.chunk
    }

    /// True when the whole video has been downloaded.
    pub fn done(&self) -> bool {
        self.chunk >= self.manifest.chunks()
    }

    /// Current playback buffer in seconds.
    pub fn buffer(&self) -> f32 {
        self.buffer
    }

    /// Total QoE accumulated so far.
    pub fn total_qoe(&self) -> f32 {
        self.total_qoe
    }

    /// Mean QoE per chunk downloaded so far (0 before the first step).
    pub fn mean_qoe(&self) -> f32 {
        if self.chunk == 0 {
            0.0
        } else {
            self.total_qoe / self.chunk as f32
        }
    }

    /// The manifest being streamed.
    pub fn manifest(&self) -> &VideoManifest {
        &self.manifest
    }

    /// Index of the next chunk to download.
    pub fn next_chunk(&self) -> usize {
        self.chunk
    }

    /// Per-level sizes (Mb) of the next chunk, if any remains.
    pub fn next_chunk_sizes(&self) -> Option<&[f32; LEVELS]> {
        self.manifest.sizes.get(self.chunk)
    }

    /// Per-level qualities (SSIM dB) of the next chunk, if any remains.
    pub fn next_chunk_qualities(&self) -> Option<&[f32; LEVELS]> {
        self.manifest.qualities.get(self.chunk)
    }

    /// SSIM dB of the most recently downloaded chunk (0 before the first).
    pub fn last_quality_db(&self) -> f32 {
        self.last_quality_db
    }

    /// The controller observation for the upcoming decision.
    pub fn observation(&self) -> AbrObservation {
        AbrObservation {
            quality_db: self.hist_quality.clone(),
            chunk_size_mb: self.hist_size.clone(),
            tx_time_s: self.hist_tx.clone(),
            throughput_mbps: self.hist_tput.clone(),
            buffer_s: self.hist_buffer.clone(),
            qoe: self.hist_qoe.clone(),
            stall_s: self.hist_stall.clone(),
            upcoming_quality_db: self.manifest.upcoming_mean_qualities(self.chunk, LOOKAHEAD),
            upcoming_size_mb: self.manifest.upcoming_mean_sizes(self.chunk, LOOKAHEAD),
        }
    }

    /// Downloads the next chunk at `level`, advancing the simulation.
    ///
    /// # Panics
    /// Panics if the video is already finished or `level` is out of range.
    pub fn step(&mut self, level: usize) -> StepOutcome {
        assert!(!self.done(), "stepping a finished video");
        assert!(level < LEVELS, "level {level} out of range");

        let size_mb = self.manifest.sizes[self.chunk][level];
        let quality_db = self.manifest.qualities[self.chunk][level];

        // Integrate the piecewise-constant trace until the chunk is
        // delivered (or the cap is reached).
        let mut remaining_mb = size_mb;
        let mut tx_time = 0.0f32;
        while remaining_mb > 1e-6 && tx_time < TX_TIME_CAP {
            let t = self.clock + tx_time;
            let rate = self.trace.throughput_at(t).max(0.05);
            // Time to the next whole-second trace boundary.
            let to_boundary = (t.floor() + 1.0 - t).max(1e-3);
            let dt = to_boundary.min(remaining_mb / rate).min(TX_TIME_CAP - tx_time);
            if dt < 1e-4 {
                // Too close to the cap (or done) for f32 to make progress.
                break;
            }
            remaining_mb -= rate * dt;
            tx_time += dt;
        }
        let tx_time = tx_time.max(1e-3);
        let measured_tput = size_mb / tx_time;

        // Buffer dynamics: playback drains while downloading.
        let stall = (tx_time - self.buffer).max(0.0);
        self.buffer = (self.buffer - tx_time).max(0.0) + CHUNK_SECONDS;
        self.clock += tx_time + stall;
        // If the buffer exceeds its cap the client pauses downloading
        // until there is room, advancing wall-clock time.
        if self.buffer > BUFFER_MAX {
            let wait = self.buffer - BUFFER_MAX;
            self.buffer = BUFFER_MAX;
            self.clock += wait;
        }

        // SSIM-based QoE with stall and smoothness penalties.
        let smooth =
            if self.chunk == 0 { 0.0 } else { (quality_db - self.last_quality_db).abs() / 5.0 };
        let qoe = quality_db / 5.0
            - self.qoe_params.stall_penalty * stall
            - self.qoe_params.smooth_penalty * smooth;

        self.push_history(quality_db, size_mb, tx_time, measured_tput, qoe, stall);
        self.last_quality_db = quality_db;
        self.total_qoe += qoe;
        self.chunk += 1;

        StepOutcome { qoe, stall, tx_time, quality_db, done: self.done() }
    }

    fn push_history(&mut self, quality: f32, size: f32, tx: f32, tput: f32, qoe: f32, stall: f32) {
        for (hist, v) in [
            (&mut self.hist_quality, quality),
            (&mut self.hist_size, size),
            (&mut self.hist_tx, tx),
            (&mut self.hist_tput, tput),
            (&mut self.hist_buffer, self.buffer),
            (&mut self.hist_qoe, qoe),
            (&mut self.hist_stall, stall),
        ] {
            hist.remove(0);
            hist.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceFamily;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sim(seed: u64, family: TraceFamily) -> AbrSimulator {
        let manifest = VideoManifest::generate_seeded(60, 1.0, seed);
        let trace = family.generate(600, &mut StdRng::seed_from_u64(seed));
        AbrSimulator::new(manifest, trace)
    }

    #[test]
    fn video_finishes_after_all_chunks() {
        let mut s = sim(1, TraceFamily::Broadband);
        let mut steps = 0;
        while !s.done() {
            s.step(0);
            steps += 1;
        }
        assert_eq!(steps, 60);
        assert_eq!(s.chunks_left(), 0);
    }

    #[test]
    fn buffer_never_exceeds_cap_or_goes_negative() {
        let mut s = sim(2, TraceFamily::FourG);
        while !s.done() {
            s.step(2);
            assert!(s.buffer() >= 0.0 && s.buffer() <= BUFFER_MAX + 1e-3);
        }
    }

    #[test]
    fn low_level_on_fast_link_never_stalls_after_warmup() {
        let mut s = sim(3, TraceFamily::Broadband);
        let mut total_stall = 0.0;
        for i in 0..60 {
            let out = s.step(0);
            if i > 2 {
                total_stall += out.stall;
            }
        }
        assert_eq!(total_stall, 0.0, "tiny chunks on broadband must not stall");
    }

    #[test]
    fn top_level_on_3g_stalls() {
        let mut s = sim(4, TraceFamily::ThreeG);
        let mut total_stall = 0.0;
        while !s.done() {
            total_stall += s.step(LEVELS - 1).stall;
        }
        assert!(total_stall > 5.0, "8.6 Mb chunks on a ~0.9 Mbps link must stall");
    }

    #[test]
    fn higher_levels_yield_higher_quality_on_fast_links() {
        let run = |level: usize| {
            let mut s = sim(5, TraceFamily::Broadband);
            while !s.done() {
                s.step(level);
            }
            s.mean_qoe()
        };
        assert!(run(4) > run(0), "high quality must pay off when bandwidth allows");
    }

    #[test]
    fn stalls_are_penalized_in_qoe() {
        let mut greedy = sim(6, TraceFamily::ThreeG);
        let mut cautious = sim(6, TraceFamily::ThreeG);
        while !greedy.done() {
            greedy.step(LEVELS - 1);
        }
        while !cautious.done() {
            cautious.step(0);
        }
        assert!(cautious.mean_qoe() > greedy.mean_qoe());
    }

    #[test]
    fn observation_histories_shift_correctly() {
        let mut s = sim(7, TraceFamily::FourG);
        s.step(1);
        let obs = s.observation();
        assert_eq!(obs.buffer_s.len(), HISTORY);
        // Only the most recent slot is populated after one step.
        assert!(obs.chunk_size_mb[HISTORY - 1] > 0.0);
        assert_eq!(obs.chunk_size_mb[HISTORY - 2], 0.0);
        s.step(1);
        let obs2 = s.observation();
        assert!(obs2.chunk_size_mb[HISTORY - 2] > 0.0);
    }

    #[test]
    fn measured_throughput_matches_trace_scale() {
        let mut s = sim(8, TraceFamily::Broadband);
        for _ in 0..10 {
            s.step(3);
        }
        let obs = s.observation();
        let tput = obs.throughput_mbps[HISTORY - 1];
        assert!(tput > 1.0 && tput < 6.5, "measured {tput} Mbps");
    }

    #[test]
    #[should_panic(expected = "stepping a finished video")]
    fn stepping_past_end_panics() {
        let mut s = sim(9, TraceFamily::Broadband);
        while !s.done() {
            s.step(0);
        }
        s.step(0);
    }
}
