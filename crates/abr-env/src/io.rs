//! Trace-dataset persistence.
//!
//! Real deployments accumulate client traces over months (the paper's
//! Puffer datasets span 2021–2024); this module stores generated trace
//! datasets as JSON so experiments can pin exact workloads, diff eras,
//! and share corpora between runs.

use crate::trace::{NetworkTrace, TraceFamily};
use serde_json::Value;
use std::io;
use std::path::Path;

/// A named bundle of traces (e.g. "puffer-2021-train").
#[derive(Debug, Clone)]
pub struct TraceDataset {
    /// Dataset name.
    pub name: String,
    /// The traces.
    pub traces: Vec<NetworkTrace>,
}

impl TraceDataset {
    /// Creates a dataset.
    pub fn new(name: &str, traces: Vec<NetworkTrace>) -> Self {
        assert!(!traces.is_empty(), "a trace dataset cannot be empty");
        Self { name: name.to_string(), traces }
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True if empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Mean of per-trace mean throughputs, Mbps.
    pub fn mean_mbps(&self) -> f32 {
        self.traces.iter().map(|t| t.mean_mbps()).sum::<f32>() / self.len() as f32
    }

    /// Serializes the dataset to a JSON file. The codec is hand-rolled
    /// over `serde_json::Value` so the wire format is pinned
    /// (`{"name", "traces": [{"family", "mbps"}]}`, keys sorted).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let traces: Vec<Value> = self
            .traces
            .iter()
            .map(|t| {
                let mut obj = serde_json::Map::new();
                obj.insert("family".to_string(), Value::String(family_tag(t.family).to_string()));
                obj.insert(
                    "mbps".to_string(),
                    Value::Array(t.mbps.iter().map(|&m| Value::Number(f64::from(m))).collect()),
                );
                Value::Object(obj)
            })
            .collect();
        let mut root = serde_json::Map::new();
        root.insert("name".to_string(), Value::String(self.name.clone()));
        root.insert("traces".to_string(), Value::Array(traces));
        let json =
            serde_json::to_string(&Value::Object(root)).expect("trace dataset serialization");
        std::fs::write(path, json)
    }

    /// Loads a dataset from a JSON file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
        let json = std::fs::read_to_string(path)?;
        let value: Value = serde_json::from_str(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let name = value
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| bad("missing dataset name"))?
            .to_string();
        let mut traces = Vec::new();
        for entry in
            value.get("traces").and_then(Value::as_array).ok_or_else(|| bad("missing traces"))?
        {
            let family = entry
                .get("family")
                .and_then(Value::as_str)
                .and_then(family_of)
                .ok_or_else(|| bad("bad trace family"))?;
            let mbps = entry
                .get("mbps")
                .and_then(Value::as_array)
                .ok_or_else(|| bad("missing mbps"))?
                .iter()
                .map(|v| v.as_f64().map(|m| m as f32).ok_or_else(|| bad("bad mbps sample")))
                .collect::<io::Result<Vec<f32>>>()?;
            traces.push(NetworkTrace { mbps, family });
        }
        if traces.is_empty() {
            return Err(bad("a trace dataset cannot be empty"));
        }
        Ok(Self { name, traces })
    }
}

fn family_tag(family: TraceFamily) -> &'static str {
    match family {
        TraceFamily::ThreeG => "3g",
        TraceFamily::FourG => "4g",
        TraceFamily::FiveG => "5g",
        TraceFamily::Broadband => "broadband",
    }
}

fn family_of(tag: &str) -> Option<TraceFamily> {
    match tag {
        "3g" => Some(TraceFamily::ThreeG),
        "4g" => Some(TraceFamily::FourG),
        "5g" => Some(TraceFamily::FiveG),
        "broadband" => Some(TraceFamily::Broadband),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{DatasetEra, TraceFamily};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("abr-env-io-{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_traces() {
        let traces = DatasetEra::Train2021.generate_traces(5, 60, 7);
        let ds = TraceDataset::new("t", traces);
        let path = tmp("roundtrip");
        ds.save(&path).expect("save");
        let loaded = TraceDataset::load(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 5);
        for (a, b) in ds.traces.iter().zip(&loaded.traces) {
            assert_eq!(a.mbps, b.mbps);
            assert_eq!(a.family, b.family);
        }
        assert!((ds.mean_mbps() - loaded.mean_mbps()).abs() < 1e-6);
    }

    #[test]
    fn load_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, "not json").expect("write");
        let err = TraceDataset::load(&path);
        std::fs::remove_file(&path).ok();
        assert!(err.is_err());
    }

    #[test]
    fn single_family_dataset_statistics() {
        let mut rng = StdRng::seed_from_u64(3);
        let traces: Vec<_> =
            (0..4).map(|_| TraceFamily::Broadband.generate(60, &mut rng)).collect();
        let ds = TraceDataset::new("bb", traces);
        assert!(ds.mean_mbps() > 3.0, "broadband mean {}", ds.mean_mbps());
    }

    #[test]
    #[should_panic(expected = "trace dataset cannot be empty")]
    fn empty_dataset_is_rejected() {
        let _ = TraceDataset::new("x", vec![]);
    }
}
