//! The ABR controller observation — the paper's Fig. 15 state.
//!
//! Ten-step histories of seven client signals plus a five-chunk lookahead
//! of mean upcoming sizes and qualities, with conversions to a normalized
//! feature vector (controller input) and to titled text sections
//! (describer input).

use crate::{HISTORY, LOOKAHEAD};
use agua_text::describer::DescribedSection;
use agua_text::stats::SignalSeries;
use serde::{Deserialize, Serialize};

/// Documented maxima used for normalization, mirroring the "max=…"
/// annotations of the paper's prompt.
pub const QUALITY_MAX: f32 = 25.0;
/// Maximum chunk size, Mb.
pub const SIZE_MAX: f32 = 15.0;
/// Maximum transmission time, seconds.
pub const TX_MAX: f32 = 20.0;
/// Maximum throughput, Mbps.
pub const THROUGHPUT_MAX: f32 = 6.0;
/// Maximum (and cap of) the client buffer, seconds.
pub const BUFFER_MAX: f32 = 15.0;
/// Maximum per-chunk QoE.
pub const QOE_MAX: f32 = 5.0;
/// Stall normalization cap, seconds.
pub const STALL_MAX: f32 = 5.0;
/// Normalization cap for *mean upcoming* chunk sizes, Mb. Upcoming sizes
/// are averaged over the whole encoding ladder, so their natural scale is
/// far below the largest single chunk; normalizing by [`SIZE_MAX`] would
/// flatten the content-complexity signal into a quasi-constant.
pub const UP_SIZE_MAX: f32 = 6.0;

/// Dimensionality of [`AbrObservation::features`].
pub const FEATURE_DIM: usize = 7 * HISTORY + 2 * LOOKAHEAD;

/// One controller input: the client's recent viewing experience.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbrObservation {
    /// Selected video quality history, SSIM dB.
    pub quality_db: Vec<f32>,
    /// Selected chunk size history, Mb.
    pub chunk_size_mb: Vec<f32>,
    /// Transmission time history, seconds.
    pub tx_time_s: Vec<f32>,
    /// Measured network throughput history, Mbps.
    pub throughput_mbps: Vec<f32>,
    /// Client buffer history, seconds.
    pub buffer_s: Vec<f32>,
    /// Per-chunk QoE history.
    pub qoe: Vec<f32>,
    /// Stall history, seconds.
    pub stall_s: Vec<f32>,
    /// Mean upcoming chunk qualities, SSIM dB.
    pub upcoming_quality_db: Vec<f32>,
    /// Mean upcoming chunk sizes, Mb.
    pub upcoming_size_mb: Vec<f32>,
}

impl AbrObservation {
    /// Flattens the observation into a `[0,1]`-normalized feature vector
    /// of length [`FEATURE_DIM`].
    pub fn features(&self) -> Vec<f32> {
        let mut f = Vec::with_capacity(FEATURE_DIM);
        let norm = |values: &[f32], max: f32, out: &mut Vec<f32>| {
            out.extend(values.iter().map(|v| (v / max).clamp(0.0, 1.0)));
        };
        norm(&self.quality_db, QUALITY_MAX, &mut f);
        norm(&self.chunk_size_mb, SIZE_MAX, &mut f);
        norm(&self.tx_time_s, TX_MAX, &mut f);
        norm(&self.throughput_mbps, THROUGHPUT_MAX, &mut f);
        norm(&self.buffer_s, BUFFER_MAX, &mut f);
        norm(&self.qoe, QOE_MAX, &mut f);
        norm(&self.stall_s, STALL_MAX, &mut f);
        norm(&self.upcoming_quality_db, QUALITY_MAX, &mut f);
        norm(&self.upcoming_size_mb, UP_SIZE_MAX, &mut f);
        debug_assert_eq!(f.len(), FEATURE_DIM);
        f
    }

    /// Reconstructs an observation from a feature vector produced by
    /// [`AbrObservation::features`] (used by noise-robustness experiments
    /// that perturb the normalized features and re-describe them).
    pub fn from_features(f: &[f32]) -> Self {
        assert_eq!(f.len(), FEATURE_DIM, "wrong ABR feature length");
        let take = |offset: usize, len: usize, max: f32| -> Vec<f32> {
            f[offset..offset + len].iter().map(|v| v * max).collect()
        };
        let h = HISTORY;
        let l = LOOKAHEAD;
        Self {
            quality_db: take(0, h, QUALITY_MAX),
            chunk_size_mb: take(h, h, SIZE_MAX),
            tx_time_s: take(2 * h, h, TX_MAX),
            throughput_mbps: take(3 * h, h, THROUGHPUT_MAX),
            buffer_s: take(4 * h, h, BUFFER_MAX),
            qoe: take(5 * h, h, QOE_MAX),
            stall_s: take(6 * h, h, STALL_MAX),
            upcoming_quality_db: take(7 * h, l, QUALITY_MAX),
            upcoming_size_mb: take(7 * h + l, l, UP_SIZE_MAX),
        }
    }

    /// Converts the observation into the titled sections the describer
    /// narrates, following the paragraph structure of the paper's Fig. 16
    /// response.
    pub fn sections(&self) -> Vec<DescribedSection> {
        vec![
            DescribedSection::new(
                "Network conditions",
                vec![
                    SignalSeries::new(
                        "Network Throughput",
                        "Mbps",
                        self.throughput_mbps.clone(),
                        THROUGHPUT_MAX,
                    ),
                    SignalSeries::new(
                        "Transmission Time",
                        "seconds",
                        self.tx_time_s.clone(),
                        TX_MAX,
                    ),
                ],
            ),
            DescribedSection::new(
                "Viewer's video buffer",
                vec![SignalSeries::new(
                    "Client Buffer",
                    "seconds",
                    self.buffer_s.clone(),
                    BUFFER_MAX,
                )],
            ),
            DescribedSection::new(
                "Viewer's Quality of Experience",
                vec![
                    SignalSeries::new("Quality of Experience", "", self.qoe.clone(), QOE_MAX),
                    SignalSeries::new("Stalling", "seconds", self.stall_s.clone(), STALL_MAX),
                    SignalSeries::new(
                        "Selected Video Quality",
                        "SSIM dB",
                        self.quality_db.clone(),
                        QUALITY_MAX,
                    ),
                ],
            ),
            DescribedSection::new(
                "Upcoming video",
                vec![
                    SignalSeries::new(
                        "Upcoming Video Quality",
                        "SSIM dB",
                        self.upcoming_quality_db.clone(),
                        QUALITY_MAX,
                    ),
                    SignalSeries::new(
                        "Upcoming Video Size Complexity",
                        "Mb",
                        self.upcoming_size_mb.clone(),
                        UP_SIZE_MAX,
                    ),
                ],
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> AbrObservation {
        AbrObservation {
            quality_db: vec![15.0; HISTORY],
            chunk_size_mb: vec![2.0; HISTORY],
            tx_time_s: vec![1.0; HISTORY],
            throughput_mbps: vec![3.0; HISTORY],
            buffer_s: vec![12.0; HISTORY],
            qoe: vec![3.0; HISTORY],
            stall_s: vec![0.0; HISTORY],
            upcoming_quality_db: vec![14.0; LOOKAHEAD],
            upcoming_size_mb: vec![1.5; LOOKAHEAD],
        }
    }

    #[test]
    fn feature_vector_has_documented_dimension_and_range() {
        let f = demo().features();
        assert_eq!(f.len(), FEATURE_DIM);
        assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn features_roundtrip_through_from_features() {
        let obs = demo();
        let restored = AbrObservation::from_features(&obs.features());
        for (a, b) in obs.buffer_s.iter().zip(&restored.buffer_s) {
            assert!((a - b).abs() < 1e-4);
        }
        for (a, b) in obs.upcoming_size_mb.iter().zip(&restored.upcoming_size_mb) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn out_of_range_values_are_clamped() {
        let mut obs = demo();
        obs.stall_s[0] = 99.0;
        let f = obs.features();
        assert!(f.iter().all(|&v| v <= 1.0));
    }

    #[test]
    fn sections_cover_all_signals() {
        let sections = demo().sections();
        let names: Vec<String> =
            sections.iter().flat_map(|s| s.signals.iter().map(|sig| sig.name.clone())).collect();
        for expected in [
            "Network Throughput",
            "Transmission Time",
            "Client Buffer",
            "Quality of Experience",
            "Stalling",
            "Selected Video Quality",
            "Upcoming Video Quality",
            "Upcoming Video Size Complexity",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    #[should_panic(expected = "wrong ABR feature length")]
    fn from_features_validates_length() {
        let _ = AbrObservation::from_features(&[0.0; 3]);
    }
}
