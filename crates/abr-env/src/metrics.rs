//! Episode-level QoE metrics.
//!
//! QoE papers decompose the scalar reward into interpretable components —
//! mean quality, rebuffering, and switching. [`EpisodeStats`] accumulates
//! those while a policy plays a video, so experiments can report *why*
//! one controller's QoE beats another's.

use crate::sim::{AbrSimulator, StepOutcome};
use serde::{Deserialize, Serialize};

/// Decomposed statistics of one playback episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeStats {
    /// Number of chunks played.
    pub chunks: usize,
    /// Mean per-chunk QoE.
    pub mean_qoe: f32,
    /// Mean SSIM dB of the selected chunks.
    pub mean_quality_db: f32,
    /// Total stall time, seconds.
    pub total_stall_s: f32,
    /// Stall time divided by nominal playback time.
    pub stall_ratio: f32,
    /// Number of chunk-to-chunk quality-level... switches measured as
    /// SSIM changes above 0.5 dB.
    pub quality_switches: usize,
    /// Mean |ΔSSIM| across consecutive chunks, dB.
    pub mean_switch_magnitude_db: f32,
}

/// Accumulates [`EpisodeStats`] from step outcomes.
#[derive(Debug, Clone, Default)]
pub struct EpisodeRecorder {
    outcomes: Vec<StepOutcome>,
}

impl EpisodeRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one step outcome.
    pub fn record(&mut self, outcome: StepOutcome) {
        self.outcomes.push(outcome);
    }

    /// Finalizes the statistics.
    ///
    /// # Panics
    /// Panics if no steps were recorded.
    pub fn finish(&self) -> EpisodeStats {
        assert!(!self.outcomes.is_empty(), "no steps recorded");
        let n = self.outcomes.len();
        let mean_qoe = self.outcomes.iter().map(|o| o.qoe).sum::<f32>() / n as f32;
        let mean_quality_db = self.outcomes.iter().map(|o| o.quality_db).sum::<f32>() / n as f32;
        let total_stall_s: f32 = self.outcomes.iter().map(|o| o.stall).sum();
        let playback_s = n as f32 * crate::CHUNK_SECONDS;
        let mut switches = 0usize;
        let mut switch_mag = 0.0f32;
        for pair in self.outcomes.windows(2) {
            let d = (pair[1].quality_db - pair[0].quality_db).abs();
            switch_mag += d;
            if d > 0.5 {
                switches += 1;
            }
        }
        EpisodeStats {
            chunks: n,
            mean_qoe,
            mean_quality_db,
            total_stall_s,
            stall_ratio: total_stall_s / playback_s,
            quality_switches: switches,
            mean_switch_magnitude_db: switch_mag / (n - 1).max(1) as f32,
        }
    }
}

/// Plays a full video with `policy` and returns the decomposed stats.
pub fn run_episode(
    sim: &mut AbrSimulator,
    mut policy: impl FnMut(&AbrSimulator) -> usize,
) -> EpisodeStats {
    let mut recorder = EpisodeRecorder::new();
    while !sim.done() {
        let action = policy(sim);
        recorder.record(sim.step(action));
    }
    recorder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::VideoManifest;
    use crate::trace::TraceFamily;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sim(seed: u64, family: TraceFamily) -> AbrSimulator {
        let manifest = VideoManifest::generate_seeded(40, 1.0, seed);
        let trace = family.generate(300, &mut StdRng::seed_from_u64(seed));
        AbrSimulator::new(manifest, trace)
    }

    #[test]
    fn constant_policy_has_no_switches() {
        let mut s = sim(1, TraceFamily::Broadband);
        let stats = run_episode(&mut s, |_| 2);
        assert_eq!(stats.chunks, 40);
        // Same level every chunk: only content-driven SSIM jitter remains.
        assert!(stats.mean_switch_magnitude_db < 1.5);
        assert!(stats.stall_ratio < 0.05);
    }

    #[test]
    fn alternating_policy_switches_every_chunk() {
        let mut s = sim(2, TraceFamily::Broadband);
        let mut flip = false;
        let stats = run_episode(&mut s, |_| {
            flip = !flip;
            if flip {
                0
            } else {
                5
            }
        });
        assert!(stats.quality_switches >= 35, "switches {}", stats.quality_switches);
        assert!(stats.mean_switch_magnitude_db > 3.0);
    }

    #[test]
    fn greedy_top_level_on_3g_stalls_heavily() {
        let mut s = sim(3, TraceFamily::ThreeG);
        let stats = run_episode(&mut s, |_| 5);
        assert!(stats.stall_ratio > 0.5, "stall ratio {}", stats.stall_ratio);
        assert!(stats.mean_qoe < 1.0);
    }

    #[test]
    fn qoe_decomposition_is_consistent_with_sim_totals() {
        let mut s = sim(4, TraceFamily::FourG);
        let stats = run_episode(&mut s, |_| 1);
        assert!((stats.mean_qoe - s.mean_qoe()).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "no steps recorded")]
    fn empty_recorder_panics() {
        let _ = EpisodeRecorder::new().finish();
    }
}
