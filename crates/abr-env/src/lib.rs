//! # abr-env — adaptive bitrate streaming simulator
//!
//! A chunked video-streaming environment in the style of the Puffer
//! platform that hosts the paper's Gelato controller: videos are divided
//! into 2-second chunks pre-encoded at several quality levels, a client
//! downloads chunks over a time-varying network, and an ABR policy picks
//! the next chunk's level to maximize quality of experience (QoE).
//!
//! The crate provides:
//!
//! * [`manifest::VideoManifest`] — per-chunk sizes and SSIM-dB qualities
//!   driven by a content-complexity process;
//! * [`trace::NetworkTrace`] and [`trace::TraceFamily`] — synthetic
//!   throughput traces for 3G/4G/5G/broadband access networks, plus the
//!   "2021 training" and "2024 deployment" era mixes used by the
//!   distribution-shift experiments (paper Figs. 5 and 7);
//! * [`sim::AbrSimulator`] — the step-by-step client model (buffer,
//!   stalls, download times, QoE);
//! * [`observation::AbrObservation`] — the controller input: 10-step
//!   histories of seven signals plus 5-chunk lookahead, exactly the state
//!   laid out in the paper's Fig. 15 prompt, with conversions to a
//!   normalized feature vector and to describable text sections.

#![forbid(unsafe_code)]

pub mod io;
pub mod manifest;
pub mod metrics;
pub mod observation;
pub mod sim;
pub mod trace;

pub use io::TraceDataset;
pub use manifest::VideoManifest;
pub use metrics::{run_episode, EpisodeRecorder, EpisodeStats};
pub use observation::AbrObservation;
pub use sim::{AbrSimulator, QoeParams, StepOutcome};
pub use trace::{DatasetEra, NetworkTrace, TraceFamily};

/// Number of quality levels per chunk.
pub const LEVELS: usize = 6;
/// Chunk playback duration in seconds.
pub const CHUNK_SECONDS: f32 = 2.0;
/// History length of the controller observation.
pub const HISTORY: usize = 10;
/// Lookahead horizon (chunks) of the controller observation.
pub const LOOKAHEAD: usize = 5;
