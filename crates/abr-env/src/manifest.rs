//! Video manifests: per-chunk sizes and qualities across the bitrate
//! ladder.
//!
//! Chunk sizes follow a slowly varying *content-complexity* process
//! (talking heads need fewer bits than sports), and SSIM-dB quality is a
//! concave function of the encoded bitrate, degraded for complex content
//! at a fixed bitrate — the behaviour real encoders exhibit.

use crate::{CHUNK_SECONDS, LEVELS};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Bitrates of the encoding ladder in Mbps.
pub const LADDER_MBPS: [f32; LEVELS] = [0.3, 0.75, 1.2, 1.85, 2.85, 4.3];

/// A video: per-chunk sizes (Mb) and qualities (SSIM dB) for each level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VideoManifest {
    /// `sizes[chunk][level]` in megabits.
    pub sizes: Vec<[f32; LEVELS]>,
    /// `qualities[chunk][level]` in SSIM dB.
    pub qualities: Vec<[f32; LEVELS]>,
    /// Per-chunk content complexity in [0.5, 1.5]; >1 means hard content.
    pub complexity: Vec<f32>,
}

impl VideoManifest {
    /// Generates a manifest for `chunks` chunks with a mean complexity of
    /// `mean_complexity` (1.0 is typical; the 2024 deployment mix uses a
    /// higher value to model richer content).
    pub fn generate(chunks: usize, mean_complexity: f32, rng: &mut StdRng) -> Self {
        assert!(chunks > 0, "a video needs at least one chunk");
        let mut sizes = Vec::with_capacity(chunks);
        let mut qualities = Vec::with_capacity(chunks);
        let mut complexity = Vec::with_capacity(chunks);

        // AR(1) complexity process so scenes persist for several chunks.
        let mut c = mean_complexity;
        for _ in 0..chunks {
            let innovation: f32 = rng.random_range(-0.12..0.12);
            c = (0.85 * c + 0.15 * mean_complexity + innovation).clamp(0.5, 1.5);
            complexity.push(c);

            let mut s = [0.0f32; LEVELS];
            let mut q = [0.0f32; LEVELS];
            for (l, &mbps) in LADDER_MBPS.iter().enumerate() {
                // Size scales with complexity plus per-chunk jitter.
                let jitter: f32 = rng.random_range(0.9..1.1);
                s[l] = mbps * CHUNK_SECONDS * c * jitter;
                // Concave quality curve, penalized by complexity: encoding
                // hard content at a fixed bitrate yields lower SSIM.
                q[l] = 9.0 + 7.0 * (1.0 + mbps).ln() / c.sqrt();
            }
            sizes.push(s);
            qualities.push(q);
        }

        Self { sizes, qualities, complexity }
    }

    /// Convenience seeded constructor.
    pub fn generate_seeded(chunks: usize, mean_complexity: f32, seed: u64) -> Self {
        Self::generate(chunks, mean_complexity, &mut StdRng::seed_from_u64(seed))
    }

    /// Number of chunks.
    pub fn chunks(&self) -> usize {
        self.sizes.len()
    }

    /// Mean size (Mb) of the next `horizon` chunks starting at `chunk`,
    /// averaged over the ladder — the "Mean Upcoming Video Sizes" feature.
    pub fn upcoming_mean_sizes(&self, chunk: usize, horizon: usize) -> Vec<f32> {
        (0..horizon)
            .map(|i| {
                let idx = chunk + i;
                if idx < self.chunks() {
                    self.sizes[idx].iter().sum::<f32>() / LEVELS as f32
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Mean quality (SSIM dB) of the next `horizon` chunks, averaged over
    /// the ladder — the "Mean Upcoming Video Qualities" feature.
    pub fn upcoming_mean_qualities(&self, chunk: usize, horizon: usize) -> Vec<f32> {
        (0..horizon)
            .map(|i| {
                let idx = chunk + i;
                if idx < self.chunks() {
                    self.qualities[idx].iter().sum::<f32>() / LEVELS as f32
                } else {
                    0.0
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_increase_along_the_ladder() {
        let m = VideoManifest::generate_seeded(50, 1.0, 7);
        for chunk in &m.sizes {
            for l in 1..LEVELS {
                // Jitter is ±10% while ladder steps are ≥50%, so order holds.
                assert!(chunk[l] > chunk[l - 1], "ladder must be monotone: {chunk:?}");
            }
        }
    }

    #[test]
    fn qualities_increase_along_the_ladder() {
        let m = VideoManifest::generate_seeded(50, 1.0, 7);
        for chunk in &m.qualities {
            for l in 1..LEVELS {
                assert!(chunk[l] > chunk[l - 1]);
            }
        }
    }

    #[test]
    fn complex_content_is_larger_and_lower_quality() {
        let easy = VideoManifest::generate_seeded(200, 0.7, 3);
        let hard = VideoManifest::generate_seeded(200, 1.3, 3);
        let mean_size =
            |m: &VideoManifest| m.sizes.iter().map(|s| s[3]).sum::<f32>() / m.chunks() as f32;
        let easy_size = mean_size(&easy);
        let hard_size = mean_size(&hard);
        assert!(hard_size > easy_size * 1.3);
        let easy_q: f32 = easy.qualities.iter().map(|q| q[3]).sum::<f32>() / easy.chunks() as f32;
        let hard_q: f32 = hard.qualities.iter().map(|q| q[3]).sum::<f32>() / hard.chunks() as f32;
        assert!(easy_q > hard_q);
    }

    #[test]
    fn complexity_stays_in_bounds() {
        let m = VideoManifest::generate_seeded(500, 1.0, 11);
        assert!(m.complexity.iter().all(|&c| (0.5..=1.5).contains(&c)));
    }

    #[test]
    fn upcoming_views_pad_with_zero_past_the_end() {
        let m = VideoManifest::generate_seeded(10, 1.0, 1);
        let sizes = m.upcoming_mean_sizes(8, 5);
        assert_eq!(sizes.len(), 5);
        assert!(sizes[0] > 0.0 && sizes[1] > 0.0);
        assert_eq!(&sizes[2..], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = VideoManifest::generate_seeded(20, 1.0, 5);
        let b = VideoManifest::generate_seeded(20, 1.0, 5);
        assert_eq!(a.sizes, b.sizes);
    }
}
