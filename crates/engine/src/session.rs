//! Sessions and the store-backed fitting pipeline that produces them.
//!
//! An [`AppSession`] is the unit the engine serves from: one loaded
//! checkpoint, bound to its registered application, tagged with the
//! reload generation the engine assigned when it was installed.
//! Sessions come from two places — [`agua_app::Checkpoint::load`] on a
//! checkpoint directory (the CLI / daemon path) or [`fit_pipeline`]
//! over an artifact [`Store`] (the bench path) — and are identical to
//! serve from either way.

use agua::labeling::ConceptLabeler;
use agua::quantized::{QuantFidelityReport, QuantizedAguaModel};
use agua::surrogate::{AguaModel, TrainParams};
use agua_app::{
    AppData, Application, Checkpoint, CheckpointMeta, Keyed, LlmVariant, RolloutSpec, Store,
};
use agua_controllers::policy::PolicyNet;
use agua_obs::Subscriber;

/// A servable pipeline: a checkpoint bound to its application, plus
/// the engine-assigned reload generation.
#[derive(Debug, Clone)]
pub struct AppSession {
    name: &'static str,
    checkpoint: Checkpoint,
    generation: u64,
}

impl AppSession {
    /// Wraps a loaded checkpoint, resolving its `meta.app` through the
    /// application registry (generation 0 until the engine installs it).
    pub fn new(checkpoint: Checkpoint) -> Result<Self, String> {
        let app = agua_app::lookup(&checkpoint.meta.app)?;
        Ok(Self { name: app.name(), checkpoint, generation: 0 })
    }

    /// The application's registry name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The loaded checkpoint (controller + surrogate + quantizer + meta).
    pub fn checkpoint(&self) -> &Checkpoint {
        &self.checkpoint
    }

    /// The reload generation the engine installed this session under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The controller's input feature dimensionality.
    pub fn in_dim(&self) -> usize {
        self.checkpoint.controller.in_dim
    }

    /// The controller's output (action) count.
    pub fn n_outputs(&self) -> usize {
        self.checkpoint.meta.n_outputs
    }

    pub(crate) fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }
}

/// Specification of the store-backed fitting pipeline: which
/// controller to train, what to roll out, and how to fit the surrogate.
#[derive(Debug, Clone)]
pub struct FitSpec {
    /// Controller training seed.
    pub controller_seed: u64,
    /// Training rollout (samples, seed, workload).
    pub rollout: RolloutSpec,
    /// Concept-labelling LLM variant.
    pub variant: LlmVariant,
    /// Surrogate training hyper-parameters.
    pub params: TrainParams,
    /// Concept labelling seed.
    pub label_seed: u64,
    /// When set, also quantize the surrogate to int8 and run the
    /// fidelity gate at this ε (specs/quantization.toml#fidelity-gate).
    pub q8_epsilon: Option<f32>,
}

impl FitSpec {
    /// The standard experiment pipeline shared by the figure bins:
    /// controller seed 31, training rollout seed 32, high-quality
    /// labels, tuned hyper-parameters, label seed 42, no quantization.
    pub fn standard(samples: usize) -> Self {
        Self {
            controller_seed: 31,
            rollout: RolloutSpec::new(samples, 32),
            variant: LlmVariant::HighQuality,
            params: TrainParams::tuned(),
            label_seed: 42,
            q8_epsilon: None,
        }
    }

    /// Adds the int8 surrogate behind a fidelity gate at `epsilon`.
    pub fn quantized(mut self, epsilon: f32) -> Self {
        self.q8_epsilon = Some(epsilon);
        self
    }
}

/// Everything [`fit_pipeline`] produced, with the content keys the
/// store filed each stage under (so downstream specs can chain on
/// them, and bench bins can reuse the training rollout).
pub struct FittedPipeline {
    /// The trained controller.
    pub controller: Keyed<PolicyNet>,
    /// The training rollout the surrogate was fitted on.
    pub train: Keyed<AppData>,
    /// The fitted f32 surrogate.
    pub model: Keyed<AguaModel>,
    /// The labelling pipeline (rebuilt deterministically; not cached).
    pub labeler: ConceptLabeler,
    /// The int8 surrogate and its gate report — `Some(Err(report))`
    /// when the gate withheld the quantized model, `None` when
    /// [`FitSpec::q8_epsilon`] was unset.
    #[allow(clippy::type_complexity)]
    pub quantized:
        Option<Result<(Keyed<QuantizedAguaModel>, QuantFidelityReport), QuantFidelityReport>>,
}

impl FittedPipeline {
    /// The gate report of the quantized surrogate, pass or fail.
    pub fn q8_report(&self) -> Option<QuantFidelityReport> {
        match &self.quantized {
            Some(Ok((_, report))) | Some(Err(report)) => Some(report.clone()),
            None => None,
        }
    }

    /// Packages the fitted artifacts as a servable [`AppSession`]
    /// (generation 0), computing the train fidelity for the meta record.
    pub fn into_session(self, app: &'static dyn Application, spec: &FitSpec) -> AppSession {
        let train_fidelity = self.model.fidelity(&self.train.embeddings, &self.train.outputs);
        AppSession {
            name: app.name(),
            generation: 0,
            checkpoint: Checkpoint {
                controller: self.controller.value,
                model: self.model.value,
                quantizer: self.labeler.quantizer().clone(),
                meta: CheckpointMeta {
                    app: app.name().to_string(),
                    llm: spec.variant.tag().to_string(),
                    seed: spec.controller_seed,
                    n_outputs: app.n_outputs(),
                    train_fidelity,
                },
            },
        }
    }
}

/// Runs the controller → rollout → surrogate (→ int8 gate) pipeline
/// through the artifact store: every stage is a content-addressed
/// [`Store::get_or_compute`], so a warm cache turns the whole fit into
/// decode-only loads, and the q8 fidelity gate re-verifies exactly once
/// per process per (artifact, calibration, ε) triple.
pub fn fit_pipeline(
    store: &Store,
    app: &'static dyn Application,
    spec: &FitSpec,
    obs: &dyn Subscriber,
) -> FittedPipeline {
    let controller = store.controller(app, spec.controller_seed, obs);
    let train = store.rollout(app, &controller, &spec.rollout, obs);
    let (model, labeler) =
        store.surrogate(app, spec.variant, &spec.params, spec.label_seed, &train, obs);
    let quantized = spec.q8_epsilon.map(|eps| store.surrogate_q8(&model, &train, eps, obs));
    FittedPipeline { controller, train, model, labeler, quantized }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agua_app::{CacheMode, DDOS};
    use agua_obs::Noop;

    #[test]
    fn fit_pipeline_produces_a_servable_session() {
        let store = Store::with_mode(
            std::env::temp_dir().join(format!("agua-engine-fit-{}", std::process::id())),
            CacheMode::Off,
        );
        let mut spec = FitSpec::standard(40).quantized(1.0);
        spec.params = TrainParams::fast();
        let fitted = fit_pipeline(&store, &DDOS, &spec, &Noop);
        assert!(fitted.q8_report().expect("gate ran").passes, "ε=1.0 always passes");
        let session = fitted.into_session(&DDOS, &spec);
        assert_eq!(session.name(), "ddos");
        assert_eq!(session.generation(), 0);
        assert_eq!(session.n_outputs(), DDOS.n_outputs());
        assert_eq!(session.in_dim(), session.checkpoint().controller.in_dim);
        assert_eq!(session.checkpoint().meta.llm, "hq");
    }

    #[test]
    fn session_rejects_checkpoints_for_unknown_apps() {
        let controller = DDOS.build_controller(7);
        let data = DDOS.rollout(&controller, &RolloutSpec::new(30, 8));
        let (model, labeler) = agua_app::fit_agua(
            &DDOS.concepts(),
            DDOS.n_outputs(),
            &data,
            LlmVariant::HighQuality,
            &TrainParams::fast(),
            9,
        );
        let checkpoint = Checkpoint {
            controller,
            model,
            quantizer: labeler.quantizer().clone(),
            meta: CheckpointMeta {
                app: "no-such-app".to_string(),
                llm: "hq".to_string(),
                seed: 7,
                n_outputs: 2,
                train_fidelity: 0.5,
            },
        };
        let err = AppSession::new(checkpoint).unwrap_err();
        assert!(err.contains("no-such-app"), "{err}");
    }
}
