//! The engine proper: session registry, request admission, and the
//! coalescing flusher.
//!
//! ```text
//!   client threads ──submit──► BatchQueue (bounded) ──drain──► flusher
//!        ▲                                                       │
//!        └────────────── Ticket::wait ◄── Responder::complete ───┘
//! ```
//!
//! Clients call [`Engine::explain`] from any thread; the request is
//! validated against its session, admitted into the bounded queue, and
//! the caller blocks on its ticket. The flusher thread drains whatever
//! has accumulated (arrival order), groups it by `(app, generation)`,
//! and serves each group through **one** shared forward —
//! [`explain_rows`] — completing every responder with its own row.
//! `max_batch = 1` degenerates into the no-coalescing mode the loadgen
//! A/B-compares against: same queue, same flusher, one row per forward.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use agua::explain::{
    counterfactual_observed, explain_rows, factual_observed, Explanation, RowQuery,
};
use agua_app::Checkpoint;
use agua_nn::parallel::ThreadConfig;
use agua_nn::{BatchQueue, Matrix, Responder, SubmitError, Ticket};
use agua_obs::{emit, CheckpointReloaded, EngineBatchFlushed, Noop, Subscriber};

use crate::session::AppSession;

/// A subscriber handle the flusher thread can emit through.
pub type SharedSubscriber = Arc<dyn Subscriber + Send + Sync>;

/// One single-input explanation request.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainRequest {
    /// Registry name of the application to explain.
    pub app: String,
    /// Raw controller features (length must match the controller).
    pub features: Vec<f32>,
    /// Factual, or a named counterfactual class.
    pub query: RowQuery,
}

/// The engine's answer to one [`ExplainRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainResponse {
    /// Registry name of the application that served the request.
    pub app: &'static str,
    /// Checkpoint generation that served the request.
    pub generation: u64,
    /// How many coalesced rows shared the forward that produced this
    /// response (1 in no-coalescing mode). Metadata only: the
    /// explanation bytes are independent of it.
    pub batch_size: usize,
    /// The controller's chosen action for these features.
    pub verdict: usize,
    /// The concept-level explanation.
    pub explanation: Explanation,
}

/// Why the engine could not serve a request.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A checkpoint failed to load or decode.
    Checkpoint(String),
    /// The request named an application with no installed session.
    UnknownApp(String),
    /// The feature vector does not match the controller's input width.
    FeatureDim {
        /// The controller's input dimensionality.
        expected: usize,
        /// What the request carried.
        got: usize,
    },
    /// A counterfactual class beyond the controller's action count.
    ClassRange {
        /// The controller's action count.
        n_outputs: usize,
        /// The class the request asked about.
        got: usize,
    },
    /// The admission queue is full — back off and retry.
    Overloaded {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The engine is shutting down and admits nothing.
    ShuttingDown,
    /// The flusher dropped this request's batch (it panicked or the
    /// engine tore down mid-flight).
    BatchFailed,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            EngineError::UnknownApp(app) => write!(f, "no session installed for app `{app}`"),
            EngineError::FeatureDim { expected, got } => {
                write!(f, "feature dimension mismatch: controller expects {expected}, got {got}")
            }
            EngineError::ClassRange { n_outputs, got } => {
                write!(f, "counterfactual class {got} out of range ({n_outputs} outputs)")
            }
            EngineError::Overloaded { capacity } => {
                write!(f, "engine overloaded: admission queue at capacity {capacity}")
            }
            EngineError::ShuttingDown => write!(f, "engine is shutting down"),
            EngineError::BatchFailed => write!(f, "batch worker dropped the request"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Engine sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Admission bound: requests waiting in the queue beyond this are
    /// rejected with [`EngineError::Overloaded`].
    pub queue_capacity: usize,
    /// Largest number of requests one flush may coalesce into a single
    /// forward. `1` disables coalescing (the loadgen baseline mode).
    pub max_batch: usize,
    /// Worker-thread configuration installed on the flusher thread for
    /// the batched kernels; `None` inherits the process default
    /// (`AGUA_THREADS`).
    pub nn: Option<ThreadConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { queue_capacity: 64, max_batch: 16, nn: None }
    }
}

struct Inner {
    sessions: Mutex<BTreeMap<&'static str, Arc<AppSession>>>,
    queue: BatchQueue<Queued, ExplainResponse>,
    max_batch: AtomicUsize,
    obs: SharedSubscriber,
}

struct Queued {
    session: Arc<AppSession>,
    features: Vec<f32>,
    query: RowQuery,
}

/// The long-lived explanation engine. See the crate docs for the
/// architecture; construction spawns the flusher thread, drop joins it.
pub struct Engine {
    inner: Arc<Inner>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl Engine {
    /// An engine with no observability (tests, CLI one-shots).
    pub fn new(config: EngineConfig) -> Self {
        Self::with_obs(config, Arc::new(Noop))
    }

    /// An engine reporting [`EngineBatchFlushed`] / [`CheckpointReloaded`]
    /// events to `obs`.
    pub fn with_obs(config: EngineConfig, obs: SharedSubscriber) -> Self {
        let engine = Self::unflushed(config, obs);
        let inner = Arc::clone(&engine.inner);
        let nn = config.nn;
        // audit:allow(thread-spawn): the flusher only routes requests
        // through the deterministic row-local kernels; batch composition
        // and scheduling cannot reach the response bytes
        // (specs/serve-protocol.toml#coalesce-byte-identity).
        let handle = std::thread::Builder::new()
            .name("agua-engine-flusher".to_string())
            .spawn(move || match nn {
                Some(cfg) => agua_nn::parallel::with_thread_config(cfg, || flusher_loop(&inner)),
                None => flusher_loop(&inner),
            })
            .expect("spawn engine flusher thread");
        *engine.flusher.lock().expect("flusher handle lock") = Some(handle);
        engine
    }

    /// The engine without its flusher — requests queue but are never
    /// served. Used by tests that need deterministic queue states.
    fn unflushed(config: EngineConfig, obs: SharedSubscriber) -> Self {
        Engine {
            inner: Arc::new(Inner {
                sessions: Mutex::new(BTreeMap::new()),
                queue: BatchQueue::bounded(config.queue_capacity.max(1)),
                max_batch: AtomicUsize::new(config.max_batch.max(1)),
                obs,
            }),
            flusher: Mutex::new(None),
        }
    }

    /// Installs `checkpoint`'s session, or hot-swaps the one already
    /// serving its app. The swap is atomic under the sessions lock:
    /// requests admitted before it keep the `Arc` of the generation
    /// they captured, requests admitted after it see only the new one.
    //= spec: specs/serve-protocol.toml#reload-atomicity
    //# A reload MUST swap the serving session atomically: every request
    //# admitted before the swap is served entirely by the generation it
    //# captured at admission, and every request admitted after the swap
    //# is served by the new generation.
    pub fn install(&self, checkpoint: Checkpoint) -> Result<Arc<AppSession>, EngineError> {
        let session = AppSession::new(checkpoint).map_err(EngineError::Checkpoint)?;
        let mut sessions = self.inner.sessions.lock().expect("sessions lock");
        let generation = sessions.get(session.name()).map_or(0, |old| old.generation() + 1);
        let session = Arc::new(session.with_generation(generation));
        sessions.insert(session.name(), Arc::clone(&session));
        drop(sessions);
        if generation > 0 {
            emit(&*self.inner.obs, CheckpointReloaded { app: session.name(), generation });
        }
        Ok(session)
    }

    /// Loads the checkpoint directory `dir` and installs its session
    /// (hot-swapping on re-load — the daemon's reload entry point).
    pub fn load_dir(&self, dir: &Path) -> Result<Arc<AppSession>, EngineError> {
        let checkpoint = Checkpoint::load(dir).map_err(EngineError::Checkpoint)?;
        self.install(checkpoint)
    }

    /// The installed session for `app`, if any.
    pub fn session(&self, app: &str) -> Option<Arc<AppSession>> {
        self.inner.sessions.lock().expect("sessions lock").get(app).cloned()
    }

    /// Installed `(app, generation)` pairs, in name order.
    pub fn apps(&self) -> Vec<(&'static str, u64)> {
        let sessions = self.inner.sessions.lock().expect("sessions lock");
        sessions.values().map(|s| (s.name(), s.generation())).collect()
    }

    /// The admission queue bound.
    pub fn queue_capacity(&self) -> usize {
        self.inner.queue.capacity()
    }

    /// The current coalescing limit (rows per flushed forward).
    pub fn max_batch(&self) -> usize {
        self.inner.max_batch.load(Ordering::Relaxed)
    }

    /// Retunes the coalescing limit at runtime (clamped to ≥ 1; `1`
    /// disables coalescing). Takes effect at the next flush.
    pub fn set_max_batch(&self, max_batch: usize) {
        self.inner.max_batch.store(max_batch.max(1), Ordering::Relaxed);
    }

    /// Validates and admits `req`, returning the ticket its response
    /// will arrive on. Validation happens here, on the caller's thread,
    /// so the flusher only ever sees well-formed rows.
    pub fn submit(&self, req: ExplainRequest) -> Result<Ticket<ExplainResponse>, EngineError> {
        let session =
            self.session(&req.app).ok_or_else(|| EngineError::UnknownApp(req.app.clone()))?;
        validate(&session, &req)?;
        self.inner
            .queue
            .submit(Queued { session, features: req.features, query: req.query })
            .map_err(|e| match e {
                SubmitError::Full { capacity } => EngineError::Overloaded { capacity },
                SubmitError::Closed => EngineError::ShuttingDown,
            })
    }

    /// Serves one request end-to-end: admit, wait, return the response.
    pub fn explain(&self, req: ExplainRequest) -> Result<ExplainResponse, EngineError> {
        self.submit(req)?.wait().map_err(|_| EngineError::BatchFailed)
    }

    /// Stops admitting requests. Queued requests are still flushed; the
    /// flusher exits once the queue is dry (joined on drop).
    pub fn shutdown(&self) {
        self.inner.queue.close();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.inner.queue.close();
        if let Some(handle) = self.flusher.lock().expect("flusher handle lock").take() {
            let _ = handle.join();
        }
    }
}

/// Shared request validation: feature width and counterfactual class
/// range against the session's controller.
fn validate(session: &AppSession, req: &ExplainRequest) -> Result<(), EngineError> {
    if req.features.len() != session.in_dim() {
        return Err(EngineError::FeatureDim {
            expected: session.in_dim(),
            got: req.features.len(),
        });
    }
    if let RowQuery::Counterfactual(class) = req.query {
        if class >= session.n_outputs() {
            return Err(EngineError::ClassRange { n_outputs: session.n_outputs(), got: class });
        }
    }
    Ok(())
}

/// Serves one request synchronously on the calling thread against a
/// single session — the one-shot path for the CLI and scripts that have
/// no concurrency to coalesce. Same validation and bitwise the same
/// explanation as the queued path (`batch_size` 1 by construction);
/// pipeline events go to `obs`, which — unlike the flusher's
/// [`SharedSubscriber`] — may be a thread-local subscriber.
pub fn serve_one(
    session: &AppSession,
    req: &ExplainRequest,
    obs: &dyn Subscriber,
) -> Result<ExplainResponse, EngineError> {
    if req.app != session.name() {
        return Err(EngineError::UnknownApp(req.app.clone()));
    }
    validate(session, req)?;
    let checkpoint = session.checkpoint();
    let x = Matrix::row_vector(&req.features);
    let (h, logits) = checkpoint.controller.embeddings_and_logits(&x);
    let explanation = match req.query {
        RowQuery::Factual => factual_observed(&checkpoint.model, &h, obs),
        RowQuery::Counterfactual(class) => {
            counterfactual_observed(&checkpoint.model, &h, class, obs)
        }
    };
    Ok(ExplainResponse {
        app: session.name(),
        generation: session.generation(),
        batch_size: 1,
        verdict: logits.argmax_row(0),
        explanation,
    })
}

fn flusher_loop(inner: &Inner) {
    while let Some(batch) = inner.queue.drain() {
        serve_drained(inner, batch);
    }
}

/// Groups one drained admission sequence by `(app, generation)` —
/// preserving arrival order within each group — and serves every group
/// in coalesced chunks. Grouping by generation means a batch is served
/// entirely by one checkpoint even when a hot reload landed mid-queue.
fn serve_drained(inner: &Inner, batch: Vec<(Queued, Responder<ExplainResponse>)>) {
    let max_batch = inner.max_batch.load(Ordering::Relaxed).max(1);
    let mut keys: Vec<(&'static str, u64)> = Vec::new();
    let mut groups: Vec<Vec<(Queued, Responder<ExplainResponse>)>> = Vec::new();
    for item in batch {
        let key = (item.0.session.name(), item.0.session.generation());
        match keys.iter().position(|k| *k == key) {
            Some(i) => groups[i].push(item),
            None => {
                keys.push(key);
                groups.push(vec![item]);
            }
        }
    }
    for mut group in groups {
        while group.len() > max_batch {
            let rest = group.split_off(max_batch);
            serve_chunk(inner, group);
            group = rest;
        }
        serve_chunk(inner, group);
    }
}

/// One coalesced forward: stack the chunk's feature rows, run the
/// controller embedding + logits once and [`explain_rows`] once, and
/// complete each responder with its own row. Row `r` of the batch is
/// bitwise the single-input pipeline on request `r` alone, so clients
/// cannot tell whether (or with whom) they were coalesced.
fn serve_chunk(inner: &Inner, chunk: Vec<(Queued, Responder<ExplainResponse>)>) {
    if chunk.is_empty() {
        return;
    }
    let session = Arc::clone(&chunk[0].0.session);
    // audit:allow(wall-clock): latency telemetry only — feeds the
    // EngineBatchFlushed event, never the responses.
    let start = Instant::now();
    let rows: Vec<Vec<f32>> = chunk.iter().map(|(q, _)| q.features.clone()).collect();
    let features = Matrix::from_rows(&rows);
    let checkpoint = session.checkpoint();
    let (embeddings, logits) = checkpoint.controller.embeddings_and_logits(&features);
    let queries: Vec<RowQuery> = chunk.iter().map(|(q, _)| q.query).collect();
    let explanations = explain_rows(&checkpoint.model, &embeddings, &queries);
    let size = chunk.len();
    for (r, ((_, responder), explanation)) in chunk.into_iter().zip(explanations).enumerate() {
        responder.complete(ExplainResponse {
            app: session.name(),
            generation: session.generation(),
            batch_size: size,
            verdict: logits.argmax_row(r),
            explanation,
        });
    }
    emit(
        &*inner.obs,
        EngineBatchFlushed { app: session.name(), size, seconds: start.elapsed().as_secs_f64() },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{fit_pipeline, FitSpec};
    use agua::surrogate::TrainParams;
    use agua_app::{CacheMode, Store, DDOS};
    use agua_obs::Metrics;
    use std::sync::OnceLock;

    /// One fast fitted checkpoint shared by every test (fitting
    /// dominates the suite's runtime otherwise).
    fn fixture() -> &'static (Checkpoint, Vec<Vec<f32>>) {
        static CELL: OnceLock<(Checkpoint, Vec<Vec<f32>>)> = OnceLock::new();
        CELL.get_or_init(|| {
            let store = Store::with_mode(std::env::temp_dir(), CacheMode::Off);
            let mut spec = FitSpec::standard(40);
            spec.params = TrainParams::fast();
            let fitted = fit_pipeline(&store, &DDOS, &spec, &agua_obs::Noop);
            let features = fitted.train.features.clone();
            (fitted.into_session(&DDOS, &spec).checkpoint().clone(), features)
        })
    }

    fn request(features: Vec<f32>, query: RowQuery) -> ExplainRequest {
        ExplainRequest { app: "ddos".to_string(), features, query }
    }

    #[test]
    fn serves_validated_requests_and_rejects_malformed_ones() {
        let (checkpoint, features) = fixture();
        let engine = Engine::new(EngineConfig::default());
        let err = engine.explain(request(features[0].clone(), RowQuery::Factual)).unwrap_err();
        assert_eq!(err, EngineError::UnknownApp("ddos".to_string()));

        engine.install(checkpoint.clone()).unwrap();
        let resp = engine.explain(request(features[0].clone(), RowQuery::Factual)).unwrap();
        assert_eq!(resp.app, "ddos");
        assert_eq!(resp.generation, 0);
        assert!(resp.batch_size >= 1);
        assert_eq!(resp.verdict, checkpoint.controller.act(&features[0]));
        assert!(resp.explanation.factual);

        let err = engine.explain(request(vec![1.0, 2.0], RowQuery::Factual)).unwrap_err();
        assert_eq!(err, EngineError::FeatureDim { expected: checkpoint.controller.in_dim, got: 2 });
        let err =
            engine.explain(request(features[0].clone(), RowQuery::Counterfactual(99))).unwrap_err();
        assert_eq!(err, EngineError::ClassRange { n_outputs: 2, got: 99 });
    }

    #[test]
    fn engine_responses_match_the_sequential_oracle() {
        let (checkpoint, features) = fixture();
        let engine = Engine::new(EngineConfig::default());
        engine.install(checkpoint.clone()).unwrap();
        for (i, row) in features.iter().take(6).enumerate() {
            let query =
                if i % 2 == 0 { RowQuery::Factual } else { RowQuery::Counterfactual(i % 2) };
            let resp = engine.explain(request(row.clone(), query)).unwrap();
            let x = Matrix::row_vector(row);
            let h = checkpoint.controller.embeddings(&x);
            let oracle = match query {
                RowQuery::Factual => agua::explain::factual(&checkpoint.model, &h),
                RowQuery::Counterfactual(c) => {
                    agua::explain::counterfactual(&checkpoint.model, &h, c)
                }
            };
            assert_eq!(resp.explanation, oracle, "request {i}");
            assert_eq!(resp.verdict, checkpoint.controller.act(row), "request {i}");

            // The synchronous one-shot path returns the same bytes.
            let session = AppSession::new(checkpoint.clone()).unwrap();
            let inline = serve_one(&session, &request(row.clone(), query), &Noop).unwrap();
            assert_eq!(inline.explanation, resp.explanation, "request {i}");
            assert_eq!(inline.verdict, resp.verdict, "request {i}");
            assert_eq!(inline.batch_size, 1);
        }
        let session = AppSession::new(checkpoint.clone()).unwrap();
        let mut wrong_app = request(features[0].clone(), RowQuery::Factual);
        wrong_app.app = "abr".to_string();
        let err = serve_one(&session, &wrong_app, &Noop).unwrap_err();
        assert_eq!(err, EngineError::UnknownApp("abr".to_string()));
    }

    #[test]
    fn install_hot_swaps_with_a_generation_bump() {
        let (checkpoint, features) = fixture();
        let metrics = std::sync::Arc::new(Metrics::new());
        let engine = Engine::with_obs(EngineConfig::default(), metrics.clone());
        let s0 = engine.install(checkpoint.clone()).unwrap();
        assert_eq!(s0.generation(), 0);
        let s1 = engine.install(checkpoint.clone()).unwrap();
        assert_eq!(s1.generation(), 1);
        assert_eq!(engine.apps(), vec![("ddos", 1)]);
        // The old Arc still serves in-flight requests.
        assert_eq!(s0.generation(), 0);
        let resp = engine.explain(request(features[0].clone(), RowQuery::Factual)).unwrap();
        assert_eq!(resp.generation, 1, "new admissions see the new generation");
        let sched = metrics.snapshot().scheduling;
        assert_eq!(sched.get("engine.ddos.reloads"), Some(&1));
        assert_eq!(sched.get("engine.ddos.generation"), Some(&1));
    }

    #[test]
    fn bounded_admission_rejects_without_blocking() {
        let (checkpoint, features) = fixture();
        let engine = Engine::unflushed(
            EngineConfig { queue_capacity: 2, max_batch: 8, nn: None },
            Arc::new(agua_obs::Noop),
        );
        engine.install(checkpoint.clone()).unwrap();
        let _t1 = engine.submit(request(features[0].clone(), RowQuery::Factual)).unwrap();
        let _t2 = engine.submit(request(features[1].clone(), RowQuery::Factual)).unwrap();
        let err = engine.submit(request(features[2].clone(), RowQuery::Factual)).unwrap_err();
        assert_eq!(err, EngineError::Overloaded { capacity: 2 });
        engine.shutdown();
        let err = engine.submit(request(features[0].clone(), RowQuery::Factual)).unwrap_err();
        assert_eq!(err, EngineError::ShuttingDown);
    }

    #[test]
    fn shutdown_fails_queued_requests_instead_of_hanging() {
        let (checkpoint, features) = fixture();
        let engine = Engine::unflushed(
            EngineConfig { queue_capacity: 2, max_batch: 8, nn: None },
            Arc::new(agua_obs::Noop),
        );
        engine.install(checkpoint.clone()).unwrap();
        let ticket = engine.submit(request(features[0].clone(), RowQuery::Factual)).unwrap();
        engine.shutdown();
        // No flusher will ever run: dropping the engine (and with it the
        // queue's responders) must abandon the ticket, not leak a waiter.
        drop(engine);
        assert!(ticket.wait().is_err());
    }

    #[test]
    fn max_batch_is_runtime_tunable_and_clamped() {
        let engine = Engine::new(EngineConfig { queue_capacity: 4, max_batch: 16, nn: None });
        assert_eq!(engine.max_batch(), 16);
        engine.set_max_batch(1);
        assert_eq!(engine.max_batch(), 1);
        engine.set_max_batch(0);
        assert_eq!(engine.max_batch(), 1, "0 clamps to the no-coalescing mode");
        assert_eq!(engine.queue_capacity(), 4);
    }
}
