//! # agua-engine — the long-lived explanation engine
//!
//! The CLI and the experiment bins used to assemble the same pipeline
//! by hand for every invocation: load (or fit) a checkpoint, pick the
//! f32 or int8 surrogate, run one explanation, exit. This crate turns
//! that one-shot plumbing into a resident service core:
//!
//! - [`AppSession`]: a loaded [`Checkpoint`](agua_app::Checkpoint)
//!   bound to its registered application, tagged with a reload
//!   *generation*.
//! - [`FitSpec`] / [`fit_pipeline`]: the store-backed
//!   controller → rollout → surrogate (→ int8 gate) pipeline behind the
//!   bench bins and `agua-cli train`, producing an [`AppSession`]
//!   without touching disk checkpoints.
//! - [`Engine`]: owns the sessions, accepts [`ExplainRequest`]s from
//!   any thread, and **coalesces** concurrent single-input requests
//!   into one batched [`explain_rows`](agua::explain::explain_rows)
//!   call through a dedicated flusher thread.
//!
//! ## Determinism contract
//!
//! Coalescing is an *optimization with no observable effect*: every
//! kernel under the shared forward is row-local with a fixed
//! accumulation order, so row `r` of a coalesced batch is bitwise the
//! explanation of request `r` alone (specs/serve-protocol.toml
//! `#coalesce-byte-identity`). The proptest suite in
//! `tests/coalesce_props.rs` drives the engine from concurrent client
//! threads at nn thread counts 1/2/4/7 and compares every response
//! against the sequential single-input oracle.
//!
//! ## Admission and backpressure
//!
//! The request queue is the bounded [`BatchQueue`](agua_nn::BatchQueue)
//! from `agua-nn`: a submission beyond capacity fails fast with
//! [`EngineError::Overloaded`] (the daemon in `agua-serve` maps it to
//! HTTP 429) instead of queueing unbounded work behind the flusher.
//!
//! ## Hot reload
//!
//! [`Engine::install`] swaps a session atomically under the sessions
//! lock and bumps its generation. In-flight requests keep the `Arc` of
//! the session they were admitted under, so a coalesced batch never
//! mixes checkpoint generations and a reload never tears a response.

#![forbid(unsafe_code)]

pub mod engine;
pub mod session;

pub use engine::{
    serve_one, Engine, EngineConfig, EngineError, ExplainRequest, ExplainResponse, SharedSubscriber,
};
pub use session::{fit_pipeline, AppSession, FitSpec, FittedPipeline};
