//! Property suite for the engine's coalescing determinism contract
//! (specs/serve-protocol.toml#coalesce-byte-identity): any interleaving
//! and any batch split of N concurrent requests must produce responses
//! byte-identical to N sequential single-input explain calls, at every
//! nn worker thread count.
//!
//! Each case drives a live engine from N concurrent client threads —
//! the OS scheduler picks the interleaving, `max_batch` picks the
//! split — once per nn thread count in {1, 2, 4, 7}, and compares every
//! response against the sequential oracle computed on the test thread
//! under the *default* thread config, so the comparison also crosses
//! thread-count boundaries.

use agua::explain::{counterfactual, factual, Explanation, RowQuery};
use agua_app::{CacheMode, Checkpoint, Store, DDOS};
use agua_engine::{fit_pipeline, Engine, EngineConfig, ExplainRequest, FitSpec};
use agua_nn::parallel::ThreadConfig;
use agua_nn::Matrix;
use proptest::prelude::*;
use std::sync::OnceLock;

const THREADS: [usize; 4] = [1, 2, 4, 7];

/// One fast fitted checkpoint + feature pool shared across cases (the
/// fit dominates the suite's runtime otherwise).
fn fixture() -> &'static (Checkpoint, Vec<Vec<f32>>) {
    static CELL: OnceLock<(Checkpoint, Vec<Vec<f32>>)> = OnceLock::new();
    CELL.get_or_init(|| {
        let store = Store::with_mode(std::env::temp_dir(), CacheMode::Off);
        let mut spec = FitSpec::standard(48);
        spec.params = agua::surrogate::TrainParams::fast();
        let fitted = fit_pipeline(&store, &DDOS, &spec, &agua_obs::Noop);
        let features = fitted.train.features.clone();
        (fitted.into_session(&DDOS, &spec).checkpoint().clone(), features)
    })
}

/// Every float of an explanation as raw bits, plus the concept order —
/// the byte-identity comparison (f32 `==` would conflate `-0.0`/`0.0`).
fn explanation_bits(e: &Explanation) -> (Vec<&str>, Vec<u32>) {
    let names: Vec<&str> = e.contributions.iter().map(|c| c.concept.as_str()).collect();
    let mut bits = vec![e.output_prob.to_bits()];
    for c in &e.contributions {
        bits.push(c.weight.to_bits());
        bits.extend(c.per_class.iter().map(|v| v.to_bits()));
    }
    (names, bits)
}

fn query_of(tag: u8) -> RowQuery {
    match tag % 3 {
        0 => RowQuery::Factual,
        1 => RowQuery::Counterfactual(0),
        _ => RowQuery::Counterfactual(1),
    }
}

proptest! {
    /// N concurrent clients against a coalescing engine vs N sequential
    /// single-input calls: byte-identical explanations, identical
    /// verdicts, at nn thread counts 1/2/4/7 and a randomized batch
    /// split. Each pick encodes `(row, query)` as `row * 3 + query_tag`.
    #[test]
    fn concurrent_coalesced_responses_match_the_sequential_oracle(
        encoded in prop::collection::vec(0usize..48 * 3, 1..9),
        max_batch in 1usize..9,
    ) {
        let picks: Vec<(usize, u8)> =
            encoded.iter().map(|&p| (p / 3, (p % 3) as u8)).collect();
        let (checkpoint, features) = fixture();
        for threads in THREADS {
            let engine = Engine::new(EngineConfig {
                queue_capacity: 64,
                max_batch,
                nn: Some(ThreadConfig { threads, min_flops: 0 }),
            });
            engine.install(checkpoint.clone()).unwrap();

            let responses: Vec<_> = std::thread::scope(|scope| {
                let handles: Vec<_> = picks
                    .iter()
                    .map(|&(row, tag)| {
                        let engine = &engine;
                        let row = row.min(features.len() - 1);
                        scope.spawn(move || {
                            engine.explain(ExplainRequest {
                                app: "ddos".to_string(),
                                features: features[row].clone(),
                                query: query_of(tag),
                            })
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("client thread")).collect()
            });

            for (i, (&(row, tag), response)) in picks.iter().zip(&responses).enumerate() {
                let response = response.as_ref().expect("request served");
                let row = row.min(features.len() - 1);
                let x = Matrix::row_vector(&features[row]);
                let h = checkpoint.controller.embeddings(&x);
                let oracle = match query_of(tag) {
                    RowQuery::Factual => factual(&checkpoint.model, &h),
                    RowQuery::Counterfactual(class) => {
                        counterfactual(&checkpoint.model, &h, class)
                    }
                };
                // Byte identity: the explanation a coalesced client
                // reads must not depend on batch company, bit for bit.
                prop_assert_eq!(
                    response.explanation.output_class,
                    oracle.output_class,
                    "class of request {} at {} threads", i, threads
                );
                prop_assert_eq!(response.explanation.factual, oracle.factual);
                prop_assert_eq!(
                    explanation_bits(&response.explanation),
                    explanation_bits(&oracle),
                    "bits of request {} at {} threads, max_batch {}", i, threads, max_batch
                );
                prop_assert_eq!(
                    response.verdict,
                    checkpoint.controller.act(&features[row]),
                    "verdict of request {} at {} threads", i, threads
                );
                prop_assert!(response.batch_size >= 1 && response.batch_size <= max_batch);
                prop_assert_eq!(response.app, "ddos");
                prop_assert_eq!(response.generation, 0u64);
            }
        }
    }
}
