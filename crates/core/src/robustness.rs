//! Robustness metrics (paper §5.3, Fig. 12).
//!
//! All three robustness experiments reduce to the same measurement:
//! compute a baseline top-5 concept ranking, re-run the pipeline under a
//! perturbation (a fresh LLM query, input noise before description, input
//! noise before explanation), and report the **recall** of the baseline
//! top-5 within the perturbed top-5.

/// Indices of the `k` largest scores (ties broken toward lower indices).
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[b].partial_cmp(&scores[a]).expect("finite scores").then(a.cmp(&b))
    });
    order.truncate(k);
    order
}

/// Recall of `baseline` members within `perturbed` (both top-k sets).
pub fn recall(baseline: &[usize], perturbed: &[usize]) -> f32 {
    if baseline.is_empty() {
        return 1.0;
    }
    let hits = baseline.iter().filter(|i| perturbed.contains(i)).count();
    hits as f32 / baseline.len() as f32
}

/// Recall@k between two score vectors: the fraction of the baseline's
/// top-k that survives in the perturbed top-k.
pub fn recall_at_k(baseline_scores: &[f32], perturbed_scores: &[f32], k: usize) -> f32 {
    assert_eq!(baseline_scores.len(), perturbed_scores.len(), "score vectors must align");
    recall(&top_k_indices(baseline_scores, k), &top_k_indices(perturbed_scores, k))
}

/// Mean recall@k of a baseline against many perturbed score vectors —
/// the aggregation plotted in Fig. 12.
pub fn mean_recall_at_k(baseline_scores: &[f32], perturbed: &[Vec<f32>], k: usize) -> f32 {
    assert!(!perturbed.is_empty(), "need at least one perturbed run");
    // audit:allow(fp-reduce): sequential sum in fixed slice order on one
    // thread — never dispatched to the parallel backend.
    perturbed.iter().map(|p| recall_at_k(baseline_scores, p, k)).sum::<f32>()
        / perturbed.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_by_score() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&scores, 2), vec![1, 3]);
    }

    #[test]
    fn top_k_breaks_ties_by_index() {
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(top_k_indices(&scores, 2), vec![0, 1]);
    }

    #[test]
    fn recall_is_fraction_of_survivors() {
        assert_eq!(recall(&[1, 2, 3, 4], &[1, 2, 9, 8]), 0.5);
        assert_eq!(recall(&[1], &[1]), 1.0);
        assert_eq!(recall(&[], &[1]), 1.0);
    }

    #[test]
    fn identical_scores_give_perfect_recall() {
        let s = vec![0.3, 0.9, 0.1, 0.8, 0.6];
        assert_eq!(recall_at_k(&s, &s, 3), 1.0);
    }

    #[test]
    fn small_perturbations_keep_high_recall() {
        let base = vec![0.9, 0.8, 0.7, 0.2, 0.1];
        let perturbed = vec![0.88, 0.83, 0.69, 0.22, 0.09];
        assert_eq!(recall_at_k(&base, &perturbed, 3), 1.0);
    }

    #[test]
    fn scrambled_scores_lower_recall() {
        let base = vec![1.0, 0.9, 0.8, 0.0, 0.0, 0.0];
        let scrambled = vec![0.0, 0.0, 0.0, 1.0, 0.9, 0.8];
        assert_eq!(recall_at_k(&base, &scrambled, 3), 0.0);
    }

    #[test]
    fn mean_recall_averages_runs() {
        let base = vec![1.0, 0.5, 0.0];
        let runs = vec![vec![1.0, 0.5, 0.0], vec![0.0, 0.5, 1.0]];
        let m = mean_recall_at_k(&base, &runs, 1);
        assert!((m - 0.5).abs() < 1e-6);
    }
}
